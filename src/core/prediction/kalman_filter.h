#ifndef STREAMLIB_CORE_PREDICTION_KALMAN_FILTER_H_
#define STREAMLIB_CORE_PREDICTION_KALMAN_FILTER_H_

#include <cstdint>

namespace streamlib {

/// Scalar Kalman filter (Kalman 1960, cited as [111]) with a local-level
/// (random walk + observation noise) model: the canonical tool for
/// predicting and imputing missing values in sensor streams (Vijayakumar &
/// Plale, cited as [160], use exactly this for "prediction of missing
/// events in sensor data streams").
class ScalarKalmanFilter {
 public:
  /// \param process_noise      Q: variance of the level's random walk.
  /// \param observation_noise  R: variance of the measurement noise.
  ScalarKalmanFilter(double process_noise, double observation_noise);

  /// Incorporates one observation; returns the filtered level estimate.
  double Update(double observation);

  /// Advances one step without an observation (a missing value): the
  /// prediction is the prior level and uncertainty grows by Q.
  double PredictMissing();

  double level() const { return level_; }
  double uncertainty() const { return variance_; }
  uint64_t count() const { return count_; }

 private:
  double q_;
  double r_;
  double level_ = 0.0;
  double variance_ = 1.0;
  uint64_t count_ = 0;
};

/// Constant-velocity Kalman filter: 2-state [level, trend] linear system.
/// Predicts one step ahead as level + trend — sharper than the local-level
/// model on drifting sensors, as the prediction bench quantifies.
class VelocityKalmanFilter {
 public:
  VelocityKalmanFilter(double process_noise, double observation_noise);

  /// Incorporates one observation; returns the filtered level.
  double Update(double observation);

  /// Advances one step on the model only (missing observation).
  double PredictMissing();

  /// One-step-ahead forecast without advancing state.
  double Forecast() const { return level_ + trend_; }

  double level() const { return level_; }
  double trend() const { return trend_; }

 private:
  void Predict();

  double q_;
  double r_;
  double level_ = 0.0;
  double trend_ = 0.0;
  // State covariance [[p00, p01], [p01, p11]].
  double p00_ = 1.0;
  double p01_ = 0.0;
  double p11_ = 1.0;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_PREDICTION_KALMAN_FILTER_H_
