#include "core/prediction/online_ar.h"

#include "common/check.h"

namespace streamlib {

OnlineArModel::OnlineArModel(size_t order, double forgetting)
    : order_(order), lambda_(forgetting) {
  STREAMLIB_CHECK_MSG(order >= 1, "order must be >= 1");
  STREAMLIB_CHECK_MSG(forgetting > 0.0 && forgetting <= 1.0,
                      "forgetting factor must be in (0, 1]");
  coeffs_.assign(order, 0.0);
  // P initialized to a large multiple of identity (weak prior).
  p_.assign(order * order, 0.0);
  for (size_t i = 0; i < order; i++) p_[i * order + i] = 1000.0;
}

double OnlineArModel::Forecast() const {
  if (lags_.size() < order_) {
    return lags_.empty() ? 0.0 : lags_.front();  // Persistence fallback.
  }
  double forecast = 0.0;
  for (size_t i = 0; i < order_; i++) forecast += coeffs_[i] * lags_[i];
  return forecast;
}

void OnlineArModel::Update(double value) {
  count_++;
  if (lags_.size() == order_) {
    // RLS step with regressor x = lag vector.
    // k = P x / (lambda + x^T P x)
    std::vector<double> px(order_, 0.0);
    for (size_t i = 0; i < order_; i++) {
      for (size_t j = 0; j < order_; j++) {
        px[i] += p_[i * order_ + j] * lags_[j];
      }
    }
    double xpx = 0.0;
    for (size_t i = 0; i < order_; i++) xpx += lags_[i] * px[i];
    const double denom = lambda_ + xpx;
    const double error = value - Forecast();
    for (size_t i = 0; i < order_; i++) {
      coeffs_[i] += px[i] / denom * error;
    }
    // P = (P - k x^T P) / lambda, with k = px / denom.
    for (size_t i = 0; i < order_; i++) {
      for (size_t j = 0; j < order_; j++) {
        p_[i * order_ + j] =
            (p_[i * order_ + j] - px[i] * px[j] / denom) / lambda_;
      }
    }
  }
  lags_.push_front(value);
  if (lags_.size() > order_) lags_.pop_back();
}

double OnlineArModel::ForecastAhead(size_t horizon) const {
  STREAMLIB_CHECK_MSG(horizon >= 1, "horizon must be >= 1");
  std::deque<double> lags = lags_;
  double prediction = Forecast();
  for (size_t step = 1; step < horizon; step++) {
    if (lags.size() == order_) lags.pop_back();
    lags.push_front(prediction);
    prediction = 0.0;
    for (size_t i = 0; i < order_ && i < lags.size(); i++) {
      prediction += coeffs_[i] * lags[i];
    }
  }
  return prediction;
}

HoltWinters::HoltWinters(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  STREAMLIB_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  STREAMLIB_CHECK_MSG(beta > 0.0 && beta < 1.0, "beta must be in (0, 1)");
}

void HoltWinters::Update(double value) {
  count_++;
  if (count_ == 1) {
    level_ = value;
    trend_ = 0.0;
    return;
  }
  const double prev_level = level_;
  level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
}

}  // namespace streamlib
