#include "core/prediction/kalman_filter.h"

#include "common/check.h"

namespace streamlib {

ScalarKalmanFilter::ScalarKalmanFilter(double process_noise,
                                       double observation_noise)
    : q_(process_noise), r_(observation_noise) {
  STREAMLIB_CHECK_MSG(process_noise > 0.0, "Q must be positive");
  STREAMLIB_CHECK_MSG(observation_noise > 0.0, "R must be positive");
}

double ScalarKalmanFilter::Update(double observation) {
  count_++;
  if (count_ == 1) {
    level_ = observation;
    variance_ = r_;
    return level_;
  }
  // Predict.
  variance_ += q_;
  // Update.
  const double gain = variance_ / (variance_ + r_);
  level_ += gain * (observation - level_);
  variance_ *= (1.0 - gain);
  return level_;
}

double ScalarKalmanFilter::PredictMissing() {
  variance_ += q_;
  return level_;
}

VelocityKalmanFilter::VelocityKalmanFilter(double process_noise,
                                           double observation_noise)
    : q_(process_noise), r_(observation_noise) {
  STREAMLIB_CHECK_MSG(process_noise > 0.0, "Q must be positive");
  STREAMLIB_CHECK_MSG(observation_noise > 0.0, "R must be positive");
}

void VelocityKalmanFilter::Predict() {
  // x = F x with F = [[1, 1], [0, 1]].
  level_ += trend_;
  // P = F P F^T + Q (Q only on the trend component, discrete white noise).
  const double p00 = p00_ + 2.0 * p01_ + p11_ + q_ / 4.0;
  const double p01 = p01_ + p11_ + q_ / 2.0;
  const double p11 = p11_ + q_;
  p00_ = p00;
  p01_ = p01;
  p11_ = p11;
}

double VelocityKalmanFilter::Update(double observation) {
  count_++;
  if (count_ == 1) {
    level_ = observation;
    trend_ = 0.0;
    p00_ = r_;
    p01_ = 0.0;
    p11_ = 1.0;
    return level_;
  }
  Predict();
  // Innovation with H = [1, 0].
  const double innovation = observation - level_;
  const double s = p00_ + r_;
  const double k0 = p00_ / s;
  const double k1 = p01_ / s;
  level_ += k0 * innovation;
  trend_ += k1 * innovation;
  // Joseph-free covariance update (numerically fine at this scale):
  // P = (I - K H) P.
  const double p00 = (1.0 - k0) * p00_;
  const double p01 = (1.0 - k0) * p01_;
  const double p11 = p11_ - k1 * p01_;
  p00_ = p00;
  p01_ = p01;
  p11_ = p11;
  return level_;
}

double VelocityKalmanFilter::PredictMissing() {
  Predict();
  return level_;
}

}  // namespace streamlib
