#ifndef STREAMLIB_CORE_PREDICTION_ONLINE_AR_H_
#define STREAMLIB_CORE_PREDICTION_ONLINE_AR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace streamlib {

/// Online autoregressive model AR(p) fit by recursive least squares with a
/// forgetting factor — the "adaptive forecasting" approach for data streams
/// (APForecast, cited as [164], is of this family). Coefficients adapt as
/// the stream drifts; prediction is the inner product of the learned
/// coefficients with the lag vector.
class OnlineArModel {
 public:
  /// \param order       AR order p (number of lags).
  /// \param forgetting  RLS forgetting factor lambda in (0, 1]; 1 = none.
  OnlineArModel(size_t order, double forgetting = 0.999);

  /// One-step-ahead forecast from the current lags (0 until p lags seen).
  double Forecast() const;

  /// Incorporates one observation: updates coefficients against the
  /// forecast error, then pushes the value into the lag window.
  void Update(double value);

  /// Forecast `horizon` steps ahead by iterating the model on its own
  /// predictions.
  double ForecastAhead(size_t horizon) const;

  const std::vector<double>& coefficients() const { return coeffs_; }
  uint64_t count() const { return count_; }

 private:
  size_t order_;
  double lambda_;
  std::vector<double> coeffs_;       // AR coefficients, newest lag first.
  std::vector<double> p_;            // RLS inverse-covariance, row-major.
  std::deque<double> lags_;          // Newest first.
  uint64_t count_ = 0;
};

/// Holt–Winters double exponential smoothing (level + trend): the classic
/// lightweight forecaster for trending streams; the prediction bench
/// compares it to the Kalman and AR models on drift and seasonality.
class HoltWinters {
 public:
  /// \param alpha  level smoothing in (0, 1).
  /// \param beta   trend smoothing in (0, 1).
  HoltWinters(double alpha, double beta);

  /// One-step-ahead forecast (level + trend).
  double Forecast() const { return level_ + trend_; }

  /// Incorporates one observation.
  void Update(double value);

  double level() const { return level_; }
  double trend() const { return trend_; }

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_PREDICTION_ONLINE_AR_H_
