#ifndef STREAMLIB_CORE_FILTERING_BLOOM_FILTER_H_
#define STREAMLIB_CORE_FILTERING_BLOOM_FILTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace streamlib {

/// Standard Bloom filter (Bloom 1970, cited as [49]): approximate set
/// membership with no false negatives and a tunable false-positive
/// probability, using ~1.44 log2(1/fpp) bits per key.
///
/// Hashing follows Kirsch & Mitzenmacher [116]: the k probe positions are
/// derived from two 64-bit halves of one 128-bit Murmur3 digest, which
/// preserves the asymptotic false-positive rate with a single hash pass.
///
/// Application (Table 1): set membership — e.g. "has this URL/user/tweet id
/// been seen before" in a high-velocity event stream.
class BloomFilter {
 public:
  /// \param num_bits     filter size in bits (rounded up to a multiple of 64)
  /// \param num_hashes   number of probes k (>= 1)
  BloomFilter(uint64_t num_bits, uint32_t num_hashes);

  /// Sizes the filter for `expected_items` keys at false-positive probability
  /// `fpp` using the textbook optima m = -n ln p / (ln 2)^2, k = m/n ln 2.
  static BloomFilter WithExpectedItems(uint64_t expected_items, double fpp);

  /// Inserts a key.
  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  /// Membership probe: false => definitely absent; true => probably present.
  template <typename T>
  bool Contains(const T& key) const {
    return ContainsHash(HashValue(key, kHashSeed));
  }

  /// Hash-level interface (used when the caller already has the digest).
  void AddHash(uint64_t hash);
  bool ContainsHash(uint64_t hash) const;

  /// Batched inserts/probes over pre-hashed digests, with the next keys'
  /// first-probe words prefetched. Bit-OR commutes, so the final filter is
  /// bit-identical to scalar insertion order; `results[i]` matches
  /// ContainsHash(hashes[i]) exactly.
  void AddHashBatch(std::span<const uint64_t> hashes);
  void ContainsHashBatch(std::span<const uint64_t> hashes,
                         uint8_t* results) const;

  /// Batched insert over raw keys: vectorized hashing (64-bit integral
  /// keys) feeding AddHashBatch. Bit-identical to N scalar Add calls.
  template <typename T>
  void AddBatch(std::span<const T> keys) {
    uint64_t digests[kBatchChunk];
    for (size_t done = 0; done < keys.size();) {
      const size_t n = keys.size() - done < kBatchChunk ? keys.size() - done
                                                        : kBatchChunk;
      if constexpr (std::is_integral_v<T> && sizeof(T) == sizeof(uint64_t)) {
        HashBatch64(reinterpret_cast<const uint64_t*>(keys.data() + done), n,
                    kHashSeed, digests);
      } else {
        for (size_t i = 0; i < n; i++) {
          digests[i] = HashValue(keys[done + i], kHashSeed);
        }
      }
      AddHashBatch(std::span<const uint64_t>(digests, n));
      done += n;
    }
  }

  /// In-place union with a filter of identical geometry.
  Status Union(const BloomFilter& other);

  /// Estimated number of distinct inserted keys from the bit density
  /// (Swamidass & Baldi): n* = -(m/k) ln(1 - X/m).
  double EstimatedCardinality() const;

  /// Theoretical false-positive probability at `items` inserted keys.
  double TheoreticalFpp(uint64_t items) const;

  /// Fraction of bits set.
  double FillRatio() const;

  uint64_t num_bits() const { return num_bits_; }
  uint32_t num_hashes() const { return num_hashes_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Digest seed — public so batched feeders can pre-hash keys once.
  static constexpr uint64_t kHashSeed = 0x9747b28c9747b28cULL;

 private:
  static constexpr size_t kBatchChunk = 64;

  // Splits `hash` into the two Kirsch–Mitzenmacher base hashes.
  static void BaseHashes(uint64_t hash, uint64_t* h1, uint64_t* h2);

  uint64_t num_bits_;
  uint32_t num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FILTERING_BLOOM_FILTER_H_
