#ifndef STREAMLIB_CORE_FILTERING_STABLE_BLOOM_FILTER_H_
#define STREAMLIB_CORE_FILTERING_STABLE_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace streamlib {

/// Stable Bloom filter (Deng & Rafiei, SIGMOD 2006) for *duplicate detection
/// in unbounded streams* — the "stream imperfections" requirement the paper
/// lists for production systems (dedup of redelivered events). A plain Bloom
/// filter saturates on an infinite stream; the stable variant decays: before
/// each insertion it decrements `decrement_count` random cells, so stale
/// entries fade and the false-positive rate converges to a stable limit
/// (at the cost of a bounded false-negative rate for old duplicates).
class StableBloomFilter {
 public:
  /// \param num_cells        number of d-bit cells
  /// \param num_hashes       probes per key
  /// \param cell_max         maximum cell value (d bits => (1<<d)-1); fresh
  ///                         insertions set cells to this value
  /// \param decrement_count  cells decremented per insertion (the decay rate)
  StableBloomFilter(uint64_t num_cells, uint32_t num_hashes, uint8_t cell_max,
                    uint32_t decrement_count, uint64_t seed);

  /// Returns true iff the key was (probably) already present, then marks it
  /// present — the one-call dedup primitive.
  template <typename T>
  bool AddAndCheckDuplicate(const T& key) {
    return AddAndCheckDuplicateHash(HashValue(key, kHashSeed));
  }

  template <typename T>
  bool Contains(const T& key) const {
    return ContainsHash(HashValue(key, kHashSeed));
  }

  bool AddAndCheckDuplicateHash(uint64_t hash);
  bool ContainsHash(uint64_t hash) const;

  uint64_t num_cells() const { return num_cells_; }
  size_t MemoryBytes() const { return cells_.size(); }

 private:
  static constexpr uint64_t kHashSeed = 0x31415926535897ULL;

  uint64_t num_cells_;
  uint32_t num_hashes_;
  uint8_t cell_max_;
  uint32_t decrement_count_;
  Rng rng_;
  std::vector<uint8_t> cells_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FILTERING_STABLE_BLOOM_FILTER_H_
