#include "core/filtering/counting_bloom_filter.h"

#include <cmath>

#include "common/check.h"

namespace streamlib {

CountingBloomFilter::CountingBloomFilter(uint64_t num_counters,
                                         uint32_t num_hashes)
    : num_counters_((num_counters + 15) / 16 * 16), num_hashes_(num_hashes) {
  STREAMLIB_CHECK_MSG(num_counters >= 16, "need at least 16 counters");
  STREAMLIB_CHECK_MSG(num_hashes >= 1, "need at least one hash");
  words_.assign(num_counters_ / 16, 0);
}

CountingBloomFilter CountingBloomFilter::WithExpectedItems(
    uint64_t expected_items, double fpp) {
  STREAMLIB_CHECK_MSG(expected_items >= 1, "expected_items must be >= 1");
  STREAMLIB_CHECK_MSG(fpp > 0.0 && fpp < 1.0, "fpp must be in (0, 1)");
  const double ln2 = 0.6931471805599453;
  const double m = -static_cast<double>(expected_items) * std::log(fpp) /
                   (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  return CountingBloomFilter(
      std::max<uint64_t>(16, static_cast<uint64_t>(m) + 1),
      std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(k))));
}

void CountingBloomFilter::AddHash(uint64_t hash) {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t slot = DoubleHash(h1, h2, i) % num_counters_;
    const uint64_t c = GetCounter(slot);
    if (c < kCounterMax) SetCounter(slot, c + 1);
  }
}

void CountingBloomFilter::RemoveHash(uint64_t hash) {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t slot = DoubleHash(h1, h2, i) % num_counters_;
    const uint64_t c = GetCounter(slot);
    // Saturated counters stick: decrementing one could underflow the true
    // count and cause false negatives for co-hashed keys.
    if (c > 0 && c < kCounterMax) SetCounter(slot, c - 1);
  }
}

bool CountingBloomFilter::ContainsHash(uint64_t hash) const {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t slot = DoubleHash(h1, h2, i) % num_counters_;
    if (GetCounter(slot) == 0) return false;
  }
  return true;
}

uint64_t CountingBloomFilter::SaturatedCounters() const {
  uint64_t saturated = 0;
  for (uint64_t slot = 0; slot < num_counters_; slot++) {
    if (GetCounter(slot) == kCounterMax) saturated++;
  }
  return saturated;
}

}  // namespace streamlib
