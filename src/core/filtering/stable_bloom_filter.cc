#include "core/filtering/stable_bloom_filter.h"

#include "common/check.h"

namespace streamlib {

StableBloomFilter::StableBloomFilter(uint64_t num_cells, uint32_t num_hashes,
                                     uint8_t cell_max,
                                     uint32_t decrement_count, uint64_t seed)
    : num_cells_(num_cells),
      num_hashes_(num_hashes),
      cell_max_(cell_max),
      decrement_count_(decrement_count),
      rng_(seed) {
  STREAMLIB_CHECK_MSG(num_cells >= 64, "need at least 64 cells");
  STREAMLIB_CHECK_MSG(num_hashes >= 1, "need at least one hash");
  STREAMLIB_CHECK_MSG(cell_max >= 1, "cell_max must be >= 1");
  cells_.assign(num_cells, 0);
}

bool StableBloomFilter::AddAndCheckDuplicateHash(uint64_t hash) {
  const bool duplicate = ContainsHash(hash);
  // Decay: decrement `decrement_count` uniformly random cells.
  for (uint32_t i = 0; i < decrement_count_; i++) {
    const uint64_t cell = rng_.NextBounded(num_cells_);
    if (cells_[cell] > 0) cells_[cell]--;
  }
  // Mark: set the key's cells to the maximum.
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    cells_[DoubleHash(h1, h2, i) % num_cells_] = cell_max_;
  }
  return duplicate;
}

bool StableBloomFilter::ContainsHash(uint64_t hash) const {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    if (cells_[DoubleHash(h1, h2, i) % num_cells_] == 0) return false;
  }
  return true;
}

}  // namespace streamlib
