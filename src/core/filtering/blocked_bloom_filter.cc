#include "core/filtering/blocked_bloom_filter.h"

#include <cmath>

#include "common/check.h"
#include "common/simd.h"

namespace streamlib {

BlockedBloomFilter::BlockedBloomFilter(uint64_t num_bits, uint32_t num_hashes)
    : num_blocks_((num_bits + kBlockBits - 1) / kBlockBits),
      num_hashes_(num_hashes) {
  STREAMLIB_CHECK_MSG(num_bits >= kBlockBits, "need at least one block");
  STREAMLIB_CHECK_MSG(num_hashes >= 1, "need at least one hash");
  words_.assign(num_blocks_ * kWordsPerBlock, 0);
}

BlockedBloomFilter BlockedBloomFilter::WithExpectedItems(
    uint64_t expected_items, double fpp) {
  STREAMLIB_CHECK_MSG(expected_items >= 1, "expected_items must be >= 1");
  STREAMLIB_CHECK_MSG(fpp > 0.0 && fpp < 1.0, "fpp must be in (0, 1)");
  const double ln2 = 0.6931471805599453;
  const double m = -static_cast<double>(expected_items) * std::log(fpp) /
                   (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  return BlockedBloomFilter(
      std::max<uint64_t>(kBlockBits, static_cast<uint64_t>(m) + 1),
      std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(k))));
}

void BlockedBloomFilter::AddHash(uint64_t hash) {
  // High bits pick the block; the remaining entropy drives in-block probes.
  const uint64_t block = (hash >> 32) % num_blocks_;
  uint64_t* base = &words_[block * kWordsPerBlock];
  uint64_t h = Mix64(hash);
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint32_t bit = static_cast<uint32_t>(h) % kBlockBits;
    base[bit >> 6] |= uint64_t{1} << (bit & 63);
    h = Mix64(h + 0x9e3779b97f4a7c15ULL);
  }
}

void BlockedBloomFilter::AddHashBatch(std::span<const uint64_t> hashes) {
  constexpr size_t kAhead = 4;
  for (size_t i = 0; i < hashes.size(); i++) {
    if (i + kAhead < hashes.size()) {
      const uint64_t block = (hashes[i + kAhead] >> 32) % num_blocks_;
      simd::PrefetchRead(&words_[block * kWordsPerBlock]);
    }
    AddHash(hashes[i]);
  }
}

void BlockedBloomFilter::ContainsHashBatch(std::span<const uint64_t> hashes,
                                           uint8_t* results) const {
  constexpr size_t kAhead = 4;
  for (size_t i = 0; i < hashes.size(); i++) {
    if (i + kAhead < hashes.size()) {
      const uint64_t block = (hashes[i + kAhead] >> 32) % num_blocks_;
      simd::PrefetchRead(&words_[block * kWordsPerBlock]);
    }
    results[i] = ContainsHash(hashes[i]) ? 1 : 0;
  }
}

bool BlockedBloomFilter::ContainsHash(uint64_t hash) const {
  const uint64_t block = (hash >> 32) % num_blocks_;
  const uint64_t* base = &words_[block * kWordsPerBlock];
  uint64_t h = Mix64(hash);
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint32_t bit = static_cast<uint32_t>(h) % kBlockBits;
    if ((base[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
    h = Mix64(h + 0x9e3779b97f4a7c15ULL);
  }
  return true;
}

}  // namespace streamlib
