#ifndef STREAMLIB_CORE_FILTERING_DELETABLE_BLOOM_FILTER_H_
#define STREAMLIB_CORE_FILTERING_DELETABLE_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace streamlib {

/// Deletable Bloom Filter (Rothenberg, Macapuna, Verdi & Magalhães, cited
/// as [143]): supports *probabilistic* deletion at a fraction of the space
/// counting Bloom filters pay. The bit array is split into r regions; a
/// small collision bitmap records which regions ever had a bit set twice.
/// Deleting a key resets only its bits in collision-free regions — always
/// safe (no false negatives for other keys); a key is fully removable when
/// at least one of its bits lies in a collision-free region, which the
/// paper shows holds for most keys at practical load.
class DeletableBloomFilter {
 public:
  /// \param num_bits     bit array size (rounded up to 64).
  /// \param num_hashes   probes per key.
  /// \param num_regions  r collision-tracking regions (the overhead is
  ///                     r bits; more regions = higher delete success).
  DeletableBloomFilter(uint64_t num_bits, uint32_t num_hashes,
                       uint32_t num_regions);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  template <typename T>
  bool Contains(const T& key) const {
    return ContainsHash(HashValue(key, kHashSeed));
  }

  /// Attempts to delete a previously added key. Returns true if at least
  /// one of its bits was reset (the key will no longer be reported present
  /// unless other keys cover all its positions); false when every bit lies
  /// in a collided region (the deletion could not be safely applied).
  template <typename T>
  bool Remove(const T& key) {
    return RemoveHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);
  bool ContainsHash(uint64_t hash) const;
  bool RemoveHash(uint64_t hash);

  /// Fraction of regions marked collided (deletability diagnostic).
  double CollidedRegionFraction() const;

  uint64_t num_bits() const { return num_bits_; }
  size_t MemoryBytes() const {
    return words_.size() * sizeof(uint64_t) + (regions_.size() + 7) / 8;
  }

 private:
  static constexpr uint64_t kHashSeed = 0x1b873593c2b2ae35ULL;

  uint32_t RegionOf(uint64_t bit) const {
    return static_cast<uint32_t>(bit * regions_.size() / num_bits_);
  }
  bool GetBit(uint64_t bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1;
  }
  void SetBit(uint64_t bit) { words_[bit >> 6] |= uint64_t{1} << (bit & 63); }
  void ClearBit(uint64_t bit) {
    words_[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
  }

  uint64_t num_bits_;
  uint32_t num_hashes_;
  std::vector<uint64_t> words_;
  std::vector<bool> regions_;  // true = region has had a bit collision.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FILTERING_DELETABLE_BLOOM_FILTER_H_
