#ifndef STREAMLIB_CORE_FILTERING_BLOCKED_BLOOM_FILTER_H_
#define STREAMLIB_CORE_FILTERING_BLOCKED_BLOOM_FILTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"

namespace streamlib {

/// Cache-blocked Bloom filter (Putze, Sanders & Singler, cited as [137]):
/// each key confines all k probes to one 512-bit (cache-line) block chosen by
/// the hash, so a lookup touches exactly one cache line instead of k. This
/// buys a large throughput win at the cost of a slightly higher
/// false-positive rate (block-load variance), the trade-off quantified by the
/// A-bloom-blocked ablation bench.
class BlockedBloomFilter {
 public:
  /// \param num_bits    total size in bits (rounded up to whole 512-bit blocks)
  /// \param num_hashes  probes per key within the block
  BlockedBloomFilter(uint64_t num_bits, uint32_t num_hashes);

  /// Same sizing rule as BloomFilter::WithExpectedItems; identical bit budget
  /// so benches compare like for like.
  static BlockedBloomFilter WithExpectedItems(uint64_t expected_items,
                                              double fpp);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  template <typename T>
  bool Contains(const T& key) const {
    return ContainsHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);
  bool ContainsHash(uint64_t hash) const;

  /// Batched inserts/probes with each lead key's whole block prefetched —
  /// the blocked layout's one-line-per-key property makes a single
  /// prefetch cover every probe of that key. Bit-identical to scalar order.
  void AddHashBatch(std::span<const uint64_t> hashes);
  void ContainsHashBatch(std::span<const uint64_t> hashes,
                         uint8_t* results) const;

  /// Batched insert over raw keys: vectorized hashing (64-bit integral
  /// keys) feeding AddHashBatch. Bit-identical to N scalar Add calls.
  template <typename T>
  void AddBatch(std::span<const T> keys) {
    uint64_t digests[kBatchChunk];
    for (size_t done = 0; done < keys.size();) {
      const size_t n = keys.size() - done < kBatchChunk ? keys.size() - done
                                                        : kBatchChunk;
      if constexpr (std::is_integral_v<T> && sizeof(T) == sizeof(uint64_t)) {
        HashBatch64(reinterpret_cast<const uint64_t*>(keys.data() + done), n,
                    kHashSeed, digests);
      } else {
        for (size_t i = 0; i < n; i++) {
          digests[i] = HashValue(keys[done + i], kHashSeed);
        }
      }
      AddHashBatch(std::span<const uint64_t>(digests, n));
      done += n;
    }
  }

  uint64_t num_bits() const { return num_blocks_ * kBlockBits; }
  uint32_t num_hashes() const { return num_hashes_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Digest seed — public so batched feeders can pre-hash keys once.
  static constexpr uint64_t kHashSeed = 0x2545f4914f6cdd1dULL;

 private:
  static constexpr size_t kBatchChunk = 64;
  static constexpr uint64_t kBlockBits = 512;
  static constexpr uint64_t kWordsPerBlock = kBlockBits / 64;

  uint64_t num_blocks_;
  uint32_t num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FILTERING_BLOCKED_BLOOM_FILTER_H_
