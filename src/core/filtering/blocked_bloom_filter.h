#ifndef STREAMLIB_CORE_FILTERING_BLOCKED_BLOOM_FILTER_H_
#define STREAMLIB_CORE_FILTERING_BLOCKED_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace streamlib {

/// Cache-blocked Bloom filter (Putze, Sanders & Singler, cited as [137]):
/// each key confines all k probes to one 512-bit (cache-line) block chosen by
/// the hash, so a lookup touches exactly one cache line instead of k. This
/// buys a large throughput win at the cost of a slightly higher
/// false-positive rate (block-load variance), the trade-off quantified by the
/// A-bloom-blocked ablation bench.
class BlockedBloomFilter {
 public:
  /// \param num_bits    total size in bits (rounded up to whole 512-bit blocks)
  /// \param num_hashes  probes per key within the block
  BlockedBloomFilter(uint64_t num_bits, uint32_t num_hashes);

  /// Same sizing rule as BloomFilter::WithExpectedItems; identical bit budget
  /// so benches compare like for like.
  static BlockedBloomFilter WithExpectedItems(uint64_t expected_items,
                                              double fpp);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  template <typename T>
  bool Contains(const T& key) const {
    return ContainsHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);
  bool ContainsHash(uint64_t hash) const;

  uint64_t num_bits() const { return num_blocks_ * kBlockBits; }
  uint32_t num_hashes() const { return num_hashes_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  static constexpr uint64_t kHashSeed = 0x2545f4914f6cdd1dULL;
  static constexpr uint64_t kBlockBits = 512;
  static constexpr uint64_t kWordsPerBlock = kBlockBits / 64;

  uint64_t num_blocks_;
  uint32_t num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FILTERING_BLOCKED_BLOOM_FILTER_H_
