#include "core/filtering/deletable_bloom_filter.h"

#include "common/check.h"

namespace streamlib {

DeletableBloomFilter::DeletableBloomFilter(uint64_t num_bits,
                                           uint32_t num_hashes,
                                           uint32_t num_regions)
    : num_bits_((num_bits + 63) / 64 * 64), num_hashes_(num_hashes) {
  STREAMLIB_CHECK_MSG(num_bits >= 64, "need at least 64 bits");
  STREAMLIB_CHECK_MSG(num_hashes >= 1, "need at least one hash");
  STREAMLIB_CHECK_MSG(num_regions >= 1 && num_regions <= num_bits,
                      "regions must be in [1, num_bits]");
  words_.assign(num_bits_ / 64, 0);
  regions_.assign(num_regions, false);
}

void DeletableBloomFilter::AddHash(uint64_t hash) {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t bit = DoubleHash(h1, h2, i) % num_bits_;
    if (GetBit(bit)) {
      // Second writer to this bit: its whole region becomes non-deletable.
      regions_[RegionOf(bit)] = true;
    } else {
      SetBit(bit);
    }
  }
}

bool DeletableBloomFilter::ContainsHash(uint64_t hash) const {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t bit = DoubleHash(h1, h2, i) % num_bits_;
    if (!GetBit(bit)) return false;
  }
  return true;
}

bool DeletableBloomFilter::RemoveHash(uint64_t hash) {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  bool cleared_any = false;
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t bit = DoubleHash(h1, h2, i) % num_bits_;
    if (!regions_[RegionOf(bit)]) {
      ClearBit(bit);
      cleared_any = true;
    }
  }
  return cleared_any;
}

double DeletableBloomFilter::CollidedRegionFraction() const {
  size_t collided = 0;
  for (bool r : regions_) {
    if (r) collided++;
  }
  return static_cast<double>(collided) /
         static_cast<double>(regions_.size());
}

}  // namespace streamlib
