#ifndef STREAMLIB_CORE_FILTERING_CUCKOO_FILTER_H_
#define STREAMLIB_CORE_FILTERING_CUCKOO_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace streamlib {

/// Cuckoo filter (Fan, Andersen, Kaminsky & Mitzenmacher, cited as [82]):
/// approximate membership with deletion support and, at low false-positive
/// targets, fewer bits per key than Bloom filters. Stores 16-bit fingerprints
/// in 4-way buckets; each key has two candidate buckets related by
/// partial-key cuckoo hashing (i2 = i1 XOR hash(fingerprint)), and inserts
/// displace residents BFS-style up to a kick budget.
class CuckooFilter {
 public:
  /// \param capacity  design capacity in keys. The filter allocates
  ///                  ceil(capacity / (4 * 0.95)) buckets rounded to a power
  ///                  of two (95% is the paper's achievable load factor).
  /// \param seed      seed for the eviction-victim RNG.
  explicit CuckooFilter(uint64_t capacity, uint64_t seed = 0x1234abcd);

  /// Inserts a key. Returns false when the filter is full (kick budget
  /// exhausted) — callers should treat that as "resize needed".
  template <typename T>
  bool Add(const T& key) {
    return AddHash(HashValue(key, kHashSeed));
  }

  template <typename T>
  bool Contains(const T& key) const {
    return ContainsHash(HashValue(key, kHashSeed));
  }

  /// Deletes one insertion of the key. Returns false when no matching
  /// fingerprint exists (the key was never added, or its fingerprint was
  /// displaced by a colliding delete). Deleting never-added keys can cause
  /// false negatives for co-hashed keys — caller contract, as in the paper.
  template <typename T>
  bool Remove(const T& key) {
    return RemoveHash(HashValue(key, kHashSeed));
  }

  bool AddHash(uint64_t hash);
  bool ContainsHash(uint64_t hash) const;
  bool RemoveHash(uint64_t hash);

  /// Number of fingerprints currently stored.
  uint64_t size() const { return size_; }
  uint64_t num_buckets() const { return num_buckets_; }
  double LoadFactor() const {
    return static_cast<double>(size_) /
           static_cast<double>(num_buckets_ * kBucketSize);
  }
  size_t MemoryBytes() const { return slots_.size() * sizeof(uint16_t); }

 private:
  static constexpr uint64_t kHashSeed = 0x7a3f9d2b1c45e6f8ULL;
  static constexpr uint32_t kBucketSize = 4;
  static constexpr uint32_t kMaxKicks = 500;

  uint16_t FingerprintOf(uint64_t hash) const;
  uint64_t IndexOf(uint64_t hash) const;
  uint64_t AltIndex(uint64_t index, uint16_t fp) const;
  bool InsertIntoBucket(uint64_t index, uint16_t fp);
  bool BucketContains(uint64_t index, uint16_t fp) const;
  bool RemoveFromBucket(uint64_t index, uint16_t fp);

  uint64_t num_buckets_;  // Power of two.
  Rng rng_;
  std::vector<uint16_t> slots_;  // num_buckets_ * kBucketSize; 0 = empty.
  uint64_t size_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FILTERING_CUCKOO_FILTER_H_
