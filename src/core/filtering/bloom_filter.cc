#include "core/filtering/bloom_filter.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/simd.h"

namespace streamlib {

BloomFilter::BloomFilter(uint64_t num_bits, uint32_t num_hashes)
    : num_bits_((num_bits + 63) / 64 * 64), num_hashes_(num_hashes) {
  STREAMLIB_CHECK_MSG(num_bits >= 64, "filter needs at least 64 bits");
  STREAMLIB_CHECK_MSG(num_hashes >= 1, "need at least one hash");
  words_.assign(num_bits_ / 64, 0);
}

BloomFilter BloomFilter::WithExpectedItems(uint64_t expected_items,
                                           double fpp) {
  STREAMLIB_CHECK_MSG(expected_items >= 1, "expected_items must be >= 1");
  STREAMLIB_CHECK_MSG(fpp > 0.0 && fpp < 1.0, "fpp must be in (0, 1)");
  const double ln2 = 0.6931471805599453;
  const double m = -static_cast<double>(expected_items) * std::log(fpp) /
                   (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  const uint64_t bits = std::max<uint64_t>(64, static_cast<uint64_t>(m) + 1);
  const uint32_t hashes =
      std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(k)));
  return BloomFilter(bits, hashes);
}

void BloomFilter::BaseHashes(uint64_t hash, uint64_t* h1, uint64_t* h2) {
  *h1 = hash;
  // Re-mix for the second base hash; force odd so probe strides cover the
  // (power-of-two-free) modulus space well.
  *h2 = Mix64(hash ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
}

void BloomFilter::AddHash(uint64_t hash) {
  uint64_t h1;
  uint64_t h2;
  BaseHashes(hash, &h1, &h2);
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t bit = DoubleHash(h1, h2, i) % num_bits_;
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::ContainsHash(uint64_t hash) const {
  uint64_t h1;
  uint64_t h2;
  BaseHashes(hash, &h1, &h2);
  for (uint32_t i = 0; i < num_hashes_; i++) {
    const uint64_t bit = DoubleHash(h1, h2, i) % num_bits_;
    if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::AddHashBatch(std::span<const uint64_t> hashes) {
  constexpr size_t kAhead = 8;
  for (size_t i = 0; i < hashes.size(); i++) {
    if (i + kAhead < hashes.size()) {
      // Prefetch the lead key's first probe word; the first base hash is
      // the raw digest, so this costs one modulo, not a re-mix.
      simd::PrefetchRead(&words_[(hashes[i + kAhead] % num_bits_) >> 6]);
    }
    AddHash(hashes[i]);
  }
}

void BloomFilter::ContainsHashBatch(std::span<const uint64_t> hashes,
                                    uint8_t* results) const {
  constexpr size_t kAhead = 8;
  for (size_t i = 0; i < hashes.size(); i++) {
    if (i + kAhead < hashes.size()) {
      simd::PrefetchRead(&words_[(hashes[i + kAhead] % num_bits_) >> 6]);
    }
    results[i] = ContainsHash(hashes[i]) ? 1 : 0;
  }
}

Status BloomFilter::Union(const BloomFilter& other) {
  if (other.num_bits_ != num_bits_ || other.num_hashes_ != num_hashes_) {
    return Status::InvalidArgument(
        "Bloom union requires identical geometry (bits, hashes)");
  }
  for (size_t i = 0; i < words_.size(); i++) words_[i] |= other.words_[i];
  return Status::OK();
}

double BloomFilter::EstimatedCardinality() const {
  uint64_t set_bits = 0;
  for (uint64_t w : words_) set_bits += PopCount64(w);
  if (set_bits == 0) return 0.0;
  const double m = static_cast<double>(num_bits_);
  const double x = static_cast<double>(set_bits);
  if (set_bits >= num_bits_) return m;  // Saturated; estimate diverges.
  return -(m / num_hashes_) * std::log1p(-x / m);
}

double BloomFilter::TheoreticalFpp(uint64_t items) const {
  const double exponent = -static_cast<double>(num_hashes_) *
                          static_cast<double>(items) /
                          static_cast<double>(num_bits_);
  return std::pow(1.0 - std::exp(exponent), num_hashes_);
}

double BloomFilter::FillRatio() const {
  uint64_t set_bits = 0;
  for (uint64_t w : words_) set_bits += PopCount64(w);
  return static_cast<double>(set_bits) / static_cast<double>(num_bits_);
}

}  // namespace streamlib
