#include "core/filtering/cuckoo_filter.h"

#include "common/bitutil.h"
#include "common/check.h"

namespace streamlib {

CuckooFilter::CuckooFilter(uint64_t capacity, uint64_t seed) : rng_(seed) {
  STREAMLIB_CHECK_MSG(capacity >= 1, "capacity must be >= 1");
  const uint64_t needed =
      (capacity + kBucketSize - 1) / kBucketSize * 100 / 95 + 1;
  num_buckets_ = NextPowerOfTwo(std::max<uint64_t>(needed, 2));
  slots_.assign(num_buckets_ * kBucketSize, 0);
}

uint16_t CuckooFilter::FingerprintOf(uint64_t hash) const {
  // Low 16 bits, remapped away from the empty-slot sentinel 0.
  uint16_t fp = static_cast<uint16_t>(hash & 0xffff);
  return fp == 0 ? 1 : fp;
}

uint64_t CuckooFilter::IndexOf(uint64_t hash) const {
  return (hash >> 16) & (num_buckets_ - 1);
}

uint64_t CuckooFilter::AltIndex(uint64_t index, uint16_t fp) const {
  // Partial-key cuckoo hashing: xor with a hash of the fingerprint gives an
  // involution, so AltIndex(AltIndex(i, fp), fp) == i.
  return (index ^ HashInt64(fp, 0xc0ffee)) & (num_buckets_ - 1);
}

bool CuckooFilter::InsertIntoBucket(uint64_t index, uint16_t fp) {
  uint16_t* bucket = &slots_[index * kBucketSize];
  for (uint32_t i = 0; i < kBucketSize; i++) {
    if (bucket[i] == 0) {
      bucket[i] = fp;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::BucketContains(uint64_t index, uint16_t fp) const {
  const uint16_t* bucket = &slots_[index * kBucketSize];
  for (uint32_t i = 0; i < kBucketSize; i++) {
    if (bucket[i] == fp) return true;
  }
  return false;
}

bool CuckooFilter::RemoveFromBucket(uint64_t index, uint16_t fp) {
  uint16_t* bucket = &slots_[index * kBucketSize];
  for (uint32_t i = 0; i < kBucketSize; i++) {
    if (bucket[i] == fp) {
      bucket[i] = 0;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::AddHash(uint64_t hash) {
  uint16_t fp = FingerprintOf(hash);
  const uint64_t i1 = IndexOf(hash);
  const uint64_t i2 = AltIndex(i1, fp);
  if (InsertIntoBucket(i1, fp) || InsertIntoBucket(i2, fp)) {
    size_++;
    return true;
  }
  // Relocation loop: evict a random resident and push it to its alternate.
  uint64_t index = rng_.NextBool(0.5) ? i1 : i2;
  for (uint32_t kick = 0; kick < kMaxKicks; kick++) {
    uint16_t* bucket = &slots_[index * kBucketSize];
    const uint32_t victim = static_cast<uint32_t>(rng_.NextBounded(kBucketSize));
    std::swap(fp, bucket[victim]);
    index = AltIndex(index, fp);
    if (InsertIntoBucket(index, fp)) {
      size_++;
      return true;
    }
  }
  // Filter full. The displaced fingerprint `fp` is currently homeless; put
  // the original back is impossible without history, so we report failure —
  // matching the reference implementation's behaviour (the caller's last
  // inserted key is the one reported as failed, and one prior fingerprint
  // may have been dropped; callers must treat false as "stop inserting").
  return false;
}

bool CuckooFilter::ContainsHash(uint64_t hash) const {
  const uint16_t fp = FingerprintOf(hash);
  const uint64_t i1 = IndexOf(hash);
  if (BucketContains(i1, fp)) return true;
  return BucketContains(AltIndex(i1, fp), fp);
}

bool CuckooFilter::RemoveHash(uint64_t hash) {
  const uint16_t fp = FingerprintOf(hash);
  const uint64_t i1 = IndexOf(hash);
  if (RemoveFromBucket(i1, fp) || RemoveFromBucket(AltIndex(i1, fp), fp)) {
    size_--;
    return true;
  }
  return false;
}

}  // namespace streamlib
