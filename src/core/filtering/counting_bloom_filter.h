#ifndef STREAMLIB_CORE_FILTERING_COUNTING_BLOOM_FILTER_H_
#define STREAMLIB_CORE_FILTERING_COUNTING_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace streamlib {

/// Counting Bloom filter (Fan et al.; improved constructions surveyed in
/// Bonomi et al., cited as [50]): replaces each bit with a 4-bit saturating
/// counter so keys can be *deleted* — the capability plain Bloom filters
/// lack. Counters saturate at 15 and then stick (a saturated counter is never
/// decremented), trading a vanishing false-negative-on-delete risk for
/// correctness under overflow.
class CountingBloomFilter {
 public:
  /// \param num_counters  number of 4-bit counters (rounded up to 16/word)
  /// \param num_hashes    probes per key
  CountingBloomFilter(uint64_t num_counters, uint32_t num_hashes);

  /// Sizes for `expected_items` at target false-positive probability `fpp`
  /// (same geometry math as BloomFilter; 4 bits per slot instead of 1).
  static CountingBloomFilter WithExpectedItems(uint64_t expected_items,
                                               double fpp);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  /// Removes one previous insertion of `key`. Removing a key that was never
  /// added may introduce false negatives for other keys — caller contract,
  /// as in all counting-Bloom designs.
  template <typename T>
  void Remove(const T& key) {
    RemoveHash(HashValue(key, kHashSeed));
  }

  template <typename T>
  bool Contains(const T& key) const {
    return ContainsHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);
  void RemoveHash(uint64_t hash);
  bool ContainsHash(uint64_t hash) const;

  uint64_t num_counters() const { return num_counters_; }
  uint32_t num_hashes() const { return num_hashes_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Number of counters at the saturation value (overflow diagnostic).
  uint64_t SaturatedCounters() const;

 private:
  static constexpr uint64_t kHashSeed = 0x71ee9ae7b2dca7d5ULL;
  static constexpr uint64_t kCounterMax = 15;

  uint64_t GetCounter(uint64_t slot) const {
    return (words_[slot >> 4] >> ((slot & 15) * 4)) & 0xf;
  }
  void SetCounter(uint64_t slot, uint64_t v) {
    const uint64_t shift = (slot & 15) * 4;
    words_[slot >> 4] =
        (words_[slot >> 4] & ~(uint64_t{0xf} << shift)) | (v << shift);
  }

  uint64_t num_counters_;
  uint32_t num_hashes_;
  std::vector<uint64_t> words_;  // 16 counters per word.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FILTERING_COUNTING_BLOOM_FILTER_H_
