#ifndef STREAMLIB_CORE_FREQUENCY_HIERARCHICAL_HEAVY_HITTERS_H_
#define STREAMLIB_CORE_FREQUENCY_HIERARCHICAL_HEAVY_HITTERS_H_

#include <cstdint>
#include <vector>

#include "core/frequency/space_saving.h"

namespace streamlib {

/// A hierarchical heavy hitter: a prefix whose *conditioned* count (its own
/// traffic minus traffic already attributed to heavy descendants) exceeds
/// the threshold.
struct HhhResult {
  uint32_t prefix = 0;         ///< prefix value, low bits zeroed
  int prefix_bits = 32;        ///< prefix length in bits
  uint64_t count = 0;          ///< estimated total count under this prefix
  uint64_t conditioned = 0;    ///< count minus heavy-descendant counts
};

/// Hierarchical heavy hitters over a 32-bit key hierarchy (Cormode, Korn,
/// Muthukrishnan & Srivastava, cited as [67]) — the "which subnets are
/// hot" generalization of heavy hitters for network accounting. Keys are
/// aggregated at byte-granularity prefix levels (/32, /24, /16, /8, /0);
/// each level runs its own SpaceSaving summary and the query conditions
/// parent counts on already-reported heavy descendants, so a hot /24 does
/// not also report its /16 and /8 ancestors.
class HierarchicalHeavyHitters {
 public:
  /// \param counters_per_level  SpaceSaving capacity at each prefix level.
  explicit HierarchicalHeavyHitters(size_t counters_per_level);

  /// Processes one occurrence of a 32-bit key (e.g. an IPv4 address).
  void Add(uint32_t key, uint64_t increment = 1);

  /// Prefixes whose conditioned count >= threshold, deepest level first.
  std::vector<HhhResult> Query(uint64_t threshold) const;

  /// Estimated count of an arbitrary prefix.
  uint64_t EstimatePrefix(uint32_t prefix, int prefix_bits) const;

  uint64_t count() const { return count_; }

  static constexpr int kLevels = 5;  // /32, /24, /16, /8, /0.

 private:
  static uint32_t MaskFor(int level) {
    // level 0 => /32 ... level 4 => /0.
    const int bits = 32 - level * 8;
    return bits == 0 ? 0 : ~uint32_t{0} << (32 - bits);
  }

  uint64_t count_ = 0;
  std::vector<SpaceSaving<uint32_t>> levels_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_HIERARCHICAL_HEAVY_HITTERS_H_
