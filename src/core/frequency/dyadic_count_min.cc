#include "core/frequency/dyadic_count_min.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace streamlib {

DyadicCountMin::DyadicCountMin(uint32_t universe_bits, uint32_t width,
                               uint32_t depth)
    : universe_bits_(universe_bits) {
  STREAMLIB_CHECK_MSG(universe_bits >= 1 && universe_bits <= 32,
                      "universe_bits must be in [1, 32]");
  levels_.reserve(universe_bits + 1);
  for (uint32_t l = 0; l <= universe_bits; l++) {
    levels_.emplace_back(width, depth, /*conservative=*/false);
  }
}

void DyadicCountMin::Add(uint32_t value, uint64_t count) {
  STREAMLIB_CHECK_MSG(
      universe_bits_ == 32 || value < (uint32_t{1} << universe_bits_),
      "value outside universe");
  total_ += count;
  for (uint32_t l = 0; l <= universe_bits_; l++) {
    // Key at level l: the prefix (value >> l), salted by the level so the
    // same numeric prefix at different levels doesn't collide.
    const uint64_t key = (static_cast<uint64_t>(l) << 32) | (value >> l);
    levels_[l].Add(key, count);
  }
}

void DyadicCountMin::AddBatch(std::span<const uint32_t> values,
                              uint64_t count) {
  constexpr size_t kChunk = 64;
  uint64_t keys[kChunk];
  uint64_t digests[kChunk];
  for (size_t done = 0; done < values.size(); done += kChunk) {
    const size_t n = std::min(kChunk, values.size() - done);
    const uint32_t* chunk = values.data() + done;
    for (size_t i = 0; i < n; i++) {
      STREAMLIB_CHECK_MSG(
          universe_bits_ == 32 || chunk[i] < (uint32_t{1} << universe_bits_),
          "value outside universe");
    }
    for (uint32_t l = 0; l <= universe_bits_; l++) {
      // Same level-salted prefix keys as the scalar Add; one vectorized
      // hash pass replaces n per-key HashValue calls.
      for (size_t i = 0; i < n; i++) {
        keys[i] = (static_cast<uint64_t>(l) << 32) | (chunk[i] >> l);
      }
      HashBatch64(keys, n, CountMinSketch::kHashSeed, digests);
      levels_[l].AddHashBatch(std::span<const uint64_t>(digests, n), count);
    }
    total_ += count * n;
  }
}

uint64_t DyadicCountMin::EstimatePoint(uint32_t value) const {
  return levels_[0].Estimate(static_cast<uint64_t>(value));
}

uint64_t DyadicCountMin::EstimateRange(uint32_t lo, uint32_t hi) const {
  STREAMLIB_CHECK_MSG(lo <= hi, "invalid range");
  // Greedy dyadic decomposition of [lo, hi].
  uint64_t sum = 0;
  uint64_t a = lo;
  const uint64_t b = hi;
  while (a <= b) {
    // Largest level l such that a is aligned to 2^l and the block fits.
    uint32_t l = 0;
    while (l < universe_bits_) {
      const uint64_t block = uint64_t{1} << (l + 1);
      if ((a & (block - 1)) != 0) break;          // Alignment fails.
      if (a + block - 1 > b) break;               // Block overshoots.
      l++;
    }
    const uint64_t key = (static_cast<uint64_t>(l) << 32) | (a >> l);
    sum += levels_[l].Estimate(key);
    a += uint64_t{1} << l;
  }
  return sum;
}

uint32_t DyadicCountMin::Quantile(double phi) const {
  STREAMLIB_CHECK_MSG(phi >= 0.0 && phi <= 1.0, "phi must be in [0, 1]");
  STREAMLIB_CHECK_MSG(total_ > 0, "quantile of empty sketch");
  const uint64_t target =
      static_cast<uint64_t>(phi * static_cast<double>(total_));
  // Binary search the smallest x with prefix count >= target.
  uint64_t lo = 0;
  uint64_t hi = (universe_bits_ == 32 ? ~uint32_t{0}
                                      : (uint32_t{1} << universe_bits_) - 1);
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (EstimateRange(0, static_cast<uint32_t>(mid)) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<uint32_t>(lo);
}

Status DyadicCountMin::Merge(const DyadicCountMin& other) {
  if (other.universe_bits_ != universe_bits_) {
    return Status::InvalidArgument("dyadic CM merge: universe mismatch");
  }
  // Probe geometry compatibility up front so a mismatch cannot leave the
  // structure half-merged.
  for (size_t l = 0; l < levels_.size(); l++) {
    if (levels_[l].width() != other.levels_[l].width() ||
        levels_[l].depth() != other.levels_[l].depth()) {
      return Status::InvalidArgument("dyadic CM merge: geometry mismatch");
    }
  }
  for (size_t l = 0; l < levels_.size(); l++) {
    STREAMLIB_RETURN_NOT_OK(levels_[l].Merge(other.levels_[l]));
  }
  total_ += other.total_;
  return Status::OK();
}

void DyadicCountMin::SerializeTo(ByteWriter& w) const {
  w.PutU32(universe_bits_);
  w.PutU64(total_);
  for (const CountMinSketch& level : levels_) level.SerializeTo(w);
}

Result<DyadicCountMin> DyadicCountMin::Deserialize(ByteReader& r) {
  uint32_t universe_bits = 0;
  uint64_t total = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&universe_bits));
  STREAMLIB_RETURN_NOT_OK(r.GetU64(&total));
  if (universe_bits < 1 || universe_bits > 32) {
    return Status::Corruption("dyadic CM: universe_bits out of range");
  }
  std::vector<CountMinSketch> levels;
  levels.reserve(universe_bits + 1);
  for (uint32_t l = 0; l <= universe_bits; l++) {
    Result<CountMinSketch> level = CountMinSketch::Deserialize(r);
    STREAMLIB_RETURN_NOT_OK(level.status());
    if (l > 0 && (level.value().width() != levels[0].width() ||
                  level.value().depth() != levels[0].depth())) {
      return Status::Corruption("dyadic CM: level geometry mismatch");
    }
    levels.push_back(std::move(level).value());
  }
  DyadicCountMin sketch(universe_bits, levels[0].width(), levels[0].depth());
  sketch.levels_ = std::move(levels);
  sketch.total_ = total;
  return sketch;
}

size_t DyadicCountMin::MemoryBytes() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.MemoryBytes();
  return total;
}

}  // namespace streamlib
