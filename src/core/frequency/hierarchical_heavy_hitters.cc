#include "core/frequency/hierarchical_heavy_hitters.h"

#include <unordered_map>

#include "common/check.h"

namespace streamlib {

HierarchicalHeavyHitters::HierarchicalHeavyHitters(size_t counters_per_level) {
  levels_.reserve(kLevels);
  for (int level = 0; level < kLevels; level++) {
    levels_.emplace_back(counters_per_level);
  }
}

void HierarchicalHeavyHitters::Add(uint32_t key, uint64_t increment) {
  count_ += increment;
  for (int level = 0; level < kLevels; level++) {
    levels_[level].Add(key & MaskFor(level), increment);
  }
}

uint64_t HierarchicalHeavyHitters::EstimatePrefix(uint32_t prefix,
                                                  int prefix_bits) const {
  STREAMLIB_CHECK_MSG(prefix_bits % 8 == 0 && prefix_bits <= 32,
                      "prefix_bits must be one of 0, 8, 16, 24, 32");
  const int level = (32 - prefix_bits) / 8;
  return levels_[level].Estimate(prefix & MaskFor(level));
}

std::vector<HhhResult> HierarchicalHeavyHitters::Query(
    uint64_t threshold) const {
  std::vector<HhhResult> out;
  // Count already attributed to heavy descendants, keyed by ancestor prefix
  // at the *next* level up.
  std::unordered_map<uint32_t, uint64_t> attributed;

  for (int level = 0; level < kLevels; level++) {
    std::unordered_map<uint32_t, uint64_t> next_attributed;
    for (const auto& item : levels_[level].HeavyHitters(1)) {
      const uint32_t prefix = item.key;
      uint64_t discounted = item.estimate;
      auto it = attributed.find(prefix);
      const uint64_t child_sum = it == attributed.end() ? 0 : it->second;
      discounted = discounted > child_sum ? discounted - child_sum : 0;

      const uint32_t parent =
          level + 1 < kLevels ? (prefix & MaskFor(level + 1)) : 0;
      if (discounted >= threshold) {
        out.push_back(HhhResult{prefix, 32 - level * 8, item.estimate,
                                discounted});
        // The full (undiscounted-from-here) mass is now attributed upward.
        next_attributed[parent] += item.estimate;
      } else {
        // Pass through descendants' attribution to the parent level.
        next_attributed[parent] += child_sum;
      }
    }
    attributed = std::move(next_attributed);
  }
  return out;
}

}  // namespace streamlib
