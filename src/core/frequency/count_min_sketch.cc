#include "core/frequency/count_min_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/serde.h"
#include "common/simd.h"

namespace streamlib {

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth,
                               bool conservative)
    : width_(0), mask_(0), depth_(depth), conservative_(conservative) {
  STREAMLIB_CHECK_MSG(width >= 1, "width must be >= 1");
  STREAMLIB_CHECK_MSG(depth >= 1 && depth <= 64, "depth must be in [1, 64]");
  STREAMLIB_CHECK_MSG(width <= (1u << 31), "width must be <= 2^31");
  width_ = static_cast<uint32_t>(NextPowerOfTwo(width));
  mask_ = width_ - 1;
  table_.assign(static_cast<size_t>(width_) * depth_, 0);
}

CountMinSketch CountMinSketch::WithErrorBound(double eps, double delta,
                                              bool conservative) {
  STREAMLIB_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  STREAMLIB_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  const uint32_t width =
      static_cast<uint32_t>(std::ceil(std::exp(1.0) / eps));
  const uint32_t depth = static_cast<uint32_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<uint32_t>(1, depth), conservative);
}

void CountMinSketch::AddHash(uint64_t hash, uint64_t count) {
  total_count_ += count;
  const uint64_t h2 = KmStepHash(hash, kKmSalt);
  if (!conservative_) {
    for (uint32_t row = 0; row < depth_; row++) {
      Cell(row, ColumnOf(hash, h2, row)) += count;
    }
    return;
  }
  // Conservative update: raise each counter only as far as the post-update
  // point estimate requires.
  uint64_t current = EstimateHash(hash);
  const uint64_t target = current + count;
  for (uint32_t row = 0; row < depth_; row++) {
    uint64_t& cell = Cell(row, ColumnOf(hash, h2, row));
    cell = std::max(cell, target);
  }
}

uint64_t CountMinSketch::EstimateHash(uint64_t hash) const {
  const uint64_t h2 = KmStepHash(hash, kKmSalt);
  uint64_t estimate = std::numeric_limits<uint64_t>::max();
  for (uint32_t row = 0; row < depth_; row++) {
    estimate = std::min(estimate, Cell(row, ColumnOf(hash, h2, row)));
  }
  return estimate;
}

void CountMinSketch::AddHashBatch(std::span<const uint64_t> hashes,
                                  uint64_t count) {
  uint64_t h2s[kBatchChunk];
  for (size_t done = 0; done < hashes.size(); done += kBatchChunk) {
    const size_t n = std::min(kBatchChunk, hashes.size() - done);
    const uint64_t* h1s = hashes.data() + done;
    // One vectorized h2 derivation feeds every row of the chunk.
    KmStepHashBatch(h1s, n, kKmSalt, h2s);
    if (conservative_) {
      // Conservative updates are order-dependent (an in-batch duplicate
      // must see the estimate raised by its predecessor), so only the
      // hashing is batched; the raise pass stays sequential and therefore
      // bit-identical to the scalar loop.
      for (size_t i = 0; i < n; i++) {
        uint64_t estimate = std::numeric_limits<uint64_t>::max();
        for (uint32_t row = 0; row < depth_; row++) {
          estimate = std::min(estimate, Cell(row, ColumnOf(h1s[i], h2s[i], row)));
        }
        const uint64_t target = estimate + count;
        for (uint32_t row = 0; row < depth_; row++) {
          uint64_t& cell = Cell(row, ColumnOf(h1s[i], h2s[i], row));
          cell = std::max(cell, target);
        }
      }
      total_count_ += count * n;
      continue;
    }
    // Row-major sweep: all chunk increments for row r land in one width_
    // region before moving on. Addition commutes, so reordering per-key
    // work across rows leaves the final counters bit-identical to the
    // scalar order. Prefetch only pays when a row overflows L2 — on a
    // cache-resident row the extra address computation just steals issue
    // slots from the increments.
    const bool stream_row =
        static_cast<size_t>(width_) * sizeof(uint64_t) > (size_t{256} << 10);
    for (uint32_t row = 0; row < depth_; row++) {
      uint64_t* base = table_.data() + static_cast<size_t>(row) * width_;
      if (stream_row) {
        constexpr size_t kAhead = 8;
        const size_t lead = std::min(kAhead, n);
        for (size_t i = 0; i < lead; i++) {
          simd::PrefetchRead(base + ColumnOf(h1s[i], h2s[i], row));
        }
        for (size_t i = 0; i < n; i++) {
          if (i + kAhead < n) {
            simd::PrefetchRead(
                base + ColumnOf(h1s[i + kAhead], h2s[i + kAhead], row));
          }
          base[ColumnOf(h1s[i], h2s[i], row)] += count;
        }
      } else {
        for (size_t i = 0; i < n; i++) {
          base[ColumnOf(h1s[i], h2s[i], row)] += count;
        }
      }
    }
    total_count_ += count * n;
  }
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_) {
    return Status::InvalidArgument("CMS merge: geometry mismatch");
  }
  for (size_t i = 0; i < table_.size(); i++) table_[i] += other.table_[i];
  total_count_ += other.total_count_;
  return Status::OK();
}

Result<uint64_t> CountMinSketch::InnerProduct(
    const CountMinSketch& other) const {
  if (other.width_ != width_ || other.depth_ != depth_) {
    return Status::InvalidArgument("CMS inner product: geometry mismatch");
  }
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (uint32_t row = 0; row < depth_; row++) {
    uint64_t dot = 0;
    for (uint64_t col = 0; col < width_; col++) {
      dot += Cell(row, col) * other.Cell(row, col);
    }
    best = std::min(best, dot);
  }
  return best;
}

void CountMinSketch::SerializeTo(ByteWriter& w) const {
  w.PutU32(width_);
  w.PutU32(depth_);
  w.PutU8(conservative_ ? 1 : 0);
  w.PutU64(total_count_);
  for (uint64_t cell : table_) w.PutVarint(cell);
}

Result<CountMinSketch> CountMinSketch::Deserialize(ByteReader& r) {
  uint32_t width;
  uint32_t depth;
  uint8_t conservative;
  uint64_t total;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&width));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&depth));
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&conservative));
  STREAMLIB_RETURN_NOT_OK(r.GetU64(&total));
  if (width < 1 || depth < 1 || depth > 64) {
    return Status::Corruption("CMS: geometry out of range");
  }
  // v2 only ever writes power-of-two widths; anything else is corruption.
  if (!IsPowerOfTwo(width)) {
    return Status::Corruption("CMS: width not a power of two");
  }
  // Each cell is at least one varint byte: a corrupted geometry claiming
  // more cells than the payload could hold must be rejected *before*
  // allocating the table (a flipped width bit would otherwise trigger a
  // multi-gigabyte allocation).
  if (static_cast<uint64_t>(width) * depth > r.remaining()) {
    return Status::Corruption("CMS: geometry exceeds payload");
  }
  CountMinSketch sketch(width, depth, conservative != 0);
  sketch.total_count_ = total;
  for (uint64_t& cell : sketch.table_) {
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&cell));
  }
  return sketch;
}

std::vector<uint8_t> CountMinSketch::Serialize() const {
  ByteWriter w;
  SerializeTo(w);
  return w.TakeBytes();
}

Result<CountMinSketch> CountMinSketch::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  Result<CountMinSketch> sketch = Deserialize(r);
  STREAMLIB_RETURN_NOT_OK(sketch.status());
  if (!r.AtEnd()) return Status::Corruption("CMS: trailing bytes");
  return sketch;
}

double CountMinSketch::ErrorBound() const {
  return std::exp(1.0) / static_cast<double>(width_) *
         static_cast<double>(total_count_);
}

}  // namespace streamlib
