#include "core/frequency/count_min_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/serde.h"

namespace streamlib {

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth,
                               bool conservative)
    : width_(width), depth_(depth), conservative_(conservative) {
  STREAMLIB_CHECK_MSG(width >= 1, "width must be >= 1");
  STREAMLIB_CHECK_MSG(depth >= 1 && depth <= 64, "depth must be in [1, 64]");
  table_.assign(static_cast<size_t>(width_) * depth_, 0);
}

CountMinSketch CountMinSketch::WithErrorBound(double eps, double delta,
                                              bool conservative) {
  STREAMLIB_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  STREAMLIB_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  const uint32_t width =
      static_cast<uint32_t>(std::ceil(std::exp(1.0) / eps));
  const uint32_t depth = static_cast<uint32_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<uint32_t>(1, depth), conservative);
}

uint64_t CountMinSketch::ColumnOf(uint64_t hash, uint32_t row) const {
  // Independent row hashes via seeded remixing of the base digest.
  return HashInt64(hash, row + 1) % width_;
}

void CountMinSketch::AddHash(uint64_t hash, uint64_t count) {
  total_count_ += count;
  if (!conservative_) {
    for (uint32_t row = 0; row < depth_; row++) {
      Cell(row, ColumnOf(hash, row)) += count;
    }
    return;
  }
  // Conservative update: raise each counter only as far as the post-update
  // point estimate requires.
  uint64_t current = EstimateHash(hash);
  const uint64_t target = current + count;
  for (uint32_t row = 0; row < depth_; row++) {
    uint64_t& cell = Cell(row, ColumnOf(hash, row));
    cell = std::max(cell, target);
  }
}

uint64_t CountMinSketch::EstimateHash(uint64_t hash) const {
  uint64_t estimate = std::numeric_limits<uint64_t>::max();
  for (uint32_t row = 0; row < depth_; row++) {
    estimate = std::min(estimate, Cell(row, ColumnOf(hash, row)));
  }
  return estimate;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_) {
    return Status::InvalidArgument("CMS merge: geometry mismatch");
  }
  for (size_t i = 0; i < table_.size(); i++) table_[i] += other.table_[i];
  total_count_ += other.total_count_;
  return Status::OK();
}

Result<uint64_t> CountMinSketch::InnerProduct(
    const CountMinSketch& other) const {
  if (other.width_ != width_ || other.depth_ != depth_) {
    return Status::InvalidArgument("CMS inner product: geometry mismatch");
  }
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (uint32_t row = 0; row < depth_; row++) {
    uint64_t dot = 0;
    for (uint64_t col = 0; col < width_; col++) {
      dot += Cell(row, col) * other.Cell(row, col);
    }
    best = std::min(best, dot);
  }
  return best;
}

void CountMinSketch::SerializeTo(ByteWriter& w) const {
  w.PutU32(width_);
  w.PutU32(depth_);
  w.PutU8(conservative_ ? 1 : 0);
  w.PutU64(total_count_);
  for (uint64_t cell : table_) w.PutVarint(cell);
}

Result<CountMinSketch> CountMinSketch::Deserialize(ByteReader& r) {
  uint32_t width;
  uint32_t depth;
  uint8_t conservative;
  uint64_t total;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&width));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&depth));
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&conservative));
  STREAMLIB_RETURN_NOT_OK(r.GetU64(&total));
  if (width < 1 || depth < 1 || depth > 64) {
    return Status::Corruption("CMS: geometry out of range");
  }
  // Each cell is at least one varint byte: a corrupted geometry claiming
  // more cells than the payload could hold must be rejected *before*
  // allocating the table (a flipped width bit would otherwise trigger a
  // multi-gigabyte allocation).
  if (static_cast<uint64_t>(width) * depth > r.remaining()) {
    return Status::Corruption("CMS: geometry exceeds payload");
  }
  CountMinSketch sketch(width, depth, conservative != 0);
  sketch.total_count_ = total;
  for (uint64_t& cell : sketch.table_) {
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&cell));
  }
  return sketch;
}

std::vector<uint8_t> CountMinSketch::Serialize() const {
  ByteWriter w;
  SerializeTo(w);
  return w.TakeBytes();
}

Result<CountMinSketch> CountMinSketch::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  Result<CountMinSketch> sketch = Deserialize(r);
  STREAMLIB_RETURN_NOT_OK(sketch.status());
  if (!r.AtEnd()) return Status::Corruption("CMS: trailing bytes");
  return sketch;
}

double CountMinSketch::ErrorBound() const {
  return std::exp(1.0) / static_cast<double>(width_) *
         static_cast<double>(total_count_);
}

}  // namespace streamlib
