#ifndef STREAMLIB_CORE_FREQUENCY_DYADIC_COUNT_MIN_H_
#define STREAMLIB_CORE_FREQUENCY_DYADIC_COUNT_MIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/frequency/count_min_sketch.h"

namespace streamlib {

/// Dyadic Count-Min structure — the *range query* and *quantile* machinery
/// from the Count-Min paper itself (Cormode & Muthukrishnan [66], §4):
/// one CM sketch per dyadic level of a 2^bits integer universe; a range
/// [a, b] decomposes into at most 2·bits dyadic intervals, each answered by
/// one sketch, so range counts carry error 2·bits·eps·n and quantiles fall
/// out by binary search over prefix counts. The structure that turns a
/// point-query sketch into a full distribution summary.
class DyadicCountMin {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kDyadicCountMin;
  /// v2: embeds CountMinSketch v2 payloads (power-of-two width, KM row
  /// indexing), whose cells a v1 reader would misinterpret.
  static constexpr uint16_t kStateVersion = 2;

  /// \param universe_bits  values in [0, 2^universe_bits), <= 32.
  /// \param width/depth    per-level CM geometry.
  DyadicCountMin(uint32_t universe_bits, uint32_t width, uint32_t depth);

  /// Adds `count` occurrences of `value`.
  void Add(uint32_t value, uint64_t count = 1);

  /// Batched Add: per level, builds the salted prefix keys for a chunk of
  /// values, hashes them in vectorized lanes, and feeds the level's
  /// CountMinSketch::AddHashBatch. Bit-identical to N scalar Add calls.
  void AddBatch(std::span<const uint32_t> values, uint64_t count = 1);

  /// Point estimate (level-0 sketch).
  uint64_t EstimatePoint(uint32_t value) const;

  /// Estimated number of stream items with value in [lo, hi] (inclusive).
  uint64_t EstimateRange(uint32_t lo, uint32_t hi) const;

  /// Value x such that rank(x) ~ phi * n, via binary search on prefix
  /// counts. Rank error ~ 2 * universe_bits * (e/width) * n.
  uint32_t Quantile(double phi) const;

  /// In-place merge; all levels delegate to CountMinSketch::Merge, so both
  /// structures must share universe_bits and per-level geometry.
  Status Merge(const DyadicCountMin& other);

  /// state::MergeableSketch payload: universe_bits, total, then each
  /// level's CountMinSketch payload (delegated serde — no duplicate cell
  /// encoding here).
  void SerializeTo(ByteWriter& w) const;
  static Result<DyadicCountMin> Deserialize(ByteReader& r);

  uint64_t total_count() const { return total_; }
  size_t MemoryBytes() const;

 private:
  uint32_t universe_bits_;
  uint64_t total_ = 0;
  std::vector<CountMinSketch> levels_;  // levels_[l]: prefixes of length
                                        // universe_bits - l (l = 0 exact).
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_DYADIC_COUNT_MIN_H_
