#ifndef STREAMLIB_CORE_FREQUENCY_LOSSY_COUNTING_H_
#define STREAMLIB_CORE_FREQUENCY_LOSSY_COUNTING_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "core/frequency/misra_gries.h"

namespace streamlib {

/// Lossy Counting (Manku & Motwani, VLDB 2002, cited as [125]): processes
/// the stream in buckets of width ceil(1/eps); at each bucket boundary every
/// entry whose count + bucket-slack falls below the bucket id is pruned.
/// Guarantees: no item with true frequency >= theta*n is missed when queried
/// with threshold (theta - eps)*n, estimates undercount by at most eps*n,
/// and space is O((1/eps) log(eps n)).
template <typename Key>
class LossyCounting {
 public:
  /// \param eps  frequency-error bound (e.g. 0.001); space ~ (1/eps) log(eps n).
  explicit LossyCounting(double eps) : eps_(eps) {
    STREAMLIB_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    bucket_width_ = static_cast<uint64_t>(std::ceil(1.0 / eps));
    current_bucket_ = 1;
  }

  /// Processes one occurrence of `key`.
  void Add(const Key& key) {
    count_++;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.count++;
    } else {
      // New entry may have been pruned before: charge it the maximum count
      // it could have had, current_bucket - 1.
      entries_.emplace(key, Entry{1, current_bucket_ - 1});
    }
    if (count_ % bucket_width_ == 0) {
      Prune();
      current_bucket_++;
    }
  }

  /// Estimated count (an underestimate by at most eps*n; 0 if untracked).
  uint64_t Estimate(const Key& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.count;
  }

  /// Items with estimated count >= threshold, sorted descending. Querying
  /// with threshold = (theta - eps) * n yields all true theta-heavy hitters.
  std::vector<FrequentItem<Key>> HeavyHitters(uint64_t threshold) const {
    std::vector<FrequentItem<Key>> out;
    for (const auto& [key, e] : entries_) {
      if (e.count >= threshold) {
        out.push_back(FrequentItem<Key>{key, e.count, e.delta});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FrequentItem<Key>& a, const FrequentItem<Key>& b) {
                return a.estimate > b.estimate;
              });
    return out;
  }

  uint64_t count() const { return count_; }
  size_t size() const { return entries_.size(); }
  double eps() const { return eps_; }

 private:
  struct Entry {
    uint64_t count;
    uint64_t delta;  // Maximum undercount (bucket id at insertion - 1).
  };

  void Prune() {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.count + it->second.delta <= current_bucket_) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  double eps_;
  uint64_t bucket_width_;
  uint64_t current_bucket_;
  uint64_t count_ = 0;
  std::unordered_map<Key, Entry> entries_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_LOSSY_COUNTING_H_
