#ifndef STREAMLIB_CORE_FREQUENCY_DECAYED_COUNTER_H_
#define STREAMLIB_CORE_FREQUENCY_DECAYED_COUNTER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// Exponentially time-decayed counting — the practical cousin of the
/// polynomial-decay frequent-items problem (Feigenblat, Itzhaki & Porat,
/// cited as [84]) and the recency weighting behind real trending systems:
/// an occurrence at time t contributes 2^-((now - t)/half_life) to the
/// current count. Counts are stored in *scaled* form (divided by
/// 2^-(t/half_life) at insert time... equivalently multiplied by
/// 2^(t/half_life)) so decay needs no per-tick updates; periodic
/// renormalization keeps the scale within double range.
template <typename Key>
class DecayedCounter {
 public:
  /// \param half_life  time units for a count to halve.
  explicit DecayedCounter(double half_life) : half_life_(half_life) {
    STREAMLIB_CHECK_MSG(half_life > 0.0, "half life must be positive");
  }

  /// Records `weight` occurrences of `key` at time `now` (nondecreasing).
  void Add(const Key& key, double now, double weight = 1.0) {
    STREAMLIB_DCHECK(now >= last_time_);
    last_time_ = std::max(last_time_, now);
    // Scaled weight: weight * 2^((now - origin) / half_life).
    const double scaled =
        weight * std::exp2((now - origin_) / half_life_);
    counts_[key] += scaled;
    if (scaled > 1e100) Renormalize(now);
  }

  /// Decayed count of `key` as of time `now`.
  double Estimate(const Key& key, double now) const {
    auto it = counts_.find(key);
    if (it == counts_.end()) return 0.0;
    return it->second * std::exp2(-(now - origin_) / half_life_);
  }

  /// Keys with decayed count >= threshold at `now`, descending. Also prunes
  /// entries that have decayed below `threshold / 1000` (the bounded-memory
  /// property decayed counters buy: stale keys evaporate).
  std::vector<std::pair<Key, double>> Trending(double now, double threshold) {
    const double scale = std::exp2(-(now - origin_) / half_life_);
    std::vector<std::pair<Key, double>> out;
    for (auto it = counts_.begin(); it != counts_.end();) {
      const double value = it->second * scale;
      if (value < threshold / 1000.0) {
        it = counts_.erase(it);
        continue;
      }
      if (value >= threshold) out.emplace_back(it->first, value);
      ++it;
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    return out;
  }

  size_t size() const { return counts_.size(); }

 private:
  void Renormalize(double now) {
    const double factor = std::exp2(-(now - origin_) / half_life_);
    for (auto& [key, value] : counts_) value *= factor;
    origin_ = now;
  }

  double half_life_;
  double origin_ = 0.0;
  double last_time_ = 0.0;
  std::unordered_map<Key, double> counts_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_DECAYED_COUNTER_H_
