#ifndef STREAMLIB_CORE_FREQUENCY_COUNT_MIN_SKETCH_H_
#define STREAMLIB_CORE_FREQUENCY_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Count-Min sketch (Cormode & Muthukrishnan, cited as [66]): a d x w
/// counter array; each key increments one counter per row, point queries
/// take the row-wise *minimum*. With w = ceil(e/eps) and d = ceil(ln(1/dl)),
/// estimates overcount by at most eps * n with probability 1 - dl.
/// Linear (merge-able) and supports weighted updates — the workhorse sketch
/// behind distributed heavy-hitter pipelines (Summingbird-style, per the
/// paper's Lambda discussion).
///
/// The optional *conservative update* (Estan & Varghese [81]) increments
/// only the counters that equal the current minimum, provably never
/// increasing error; its effect is measured by the A-cms-conservative
/// ablation bench.
class CountMinSketch {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kCountMinSketch;
  static constexpr uint16_t kStateVersion = 1;

  /// \param width  counters per row (error ~ e/width of total count).
  /// \param depth  rows (failure probability ~ exp(-depth)).
  /// \param conservative  enable conservative update.
  CountMinSketch(uint32_t width, uint32_t depth, bool conservative = false);

  /// Sizes the sketch for overcount <= eps*n with probability >= 1 - delta.
  static CountMinSketch WithErrorBound(double eps, double delta,
                                       bool conservative = false);

  template <typename T>
  void Add(const T& key, uint64_t count = 1) {
    AddHash(HashValue(key, kHashSeed), count);
  }

  template <typename T>
  uint64_t Estimate(const T& key) const {
    return EstimateHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash, uint64_t count);
  uint64_t EstimateHash(uint64_t hash) const;

  /// In-place merge with an identically shaped, same-mode sketch.
  /// (Conservative-update sketches are not linear; merging them degrades
  /// their tightened bound back to the standard CM guarantee.)
  Status Merge(const CountMinSketch& other);

  /// Estimated inner product of the two frequency vectors (self-join size
  /// when `other` is this sketch) — min over rows of the row dot-product.
  Result<uint64_t> InnerProduct(const CountMinSketch& other) const;

  /// state::MergeableSketch payload: geometry, mode, total, varint cells.
  void SerializeTo(ByteWriter& w) const;
  static Result<CountMinSketch> Deserialize(ByteReader& r);

  /// Legacy whole-buffer forms (wire-compatible with SerializeTo) — used by
  /// the platform checkpoint store so stateful bolts can persist state.
  std::vector<uint8_t> Serialize() const;
  static Result<CountMinSketch> Deserialize(const std::vector<uint8_t>& bytes);

  uint64_t total_count() const { return total_count_; }
  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  bool conservative() const { return conservative_; }
  size_t MemoryBytes() const { return table_.size() * sizeof(uint64_t); }

  /// Additive error bound eps*n implied by the geometry: e/width * n.
  double ErrorBound() const;

 private:
  static constexpr uint64_t kHashSeed = 0x0b4c61d34d2f5ee9ULL;

  uint64_t& Cell(uint32_t row, uint64_t col) {
    return table_[static_cast<size_t>(row) * width_ + col];
  }
  const uint64_t& Cell(uint32_t row, uint64_t col) const {
    return table_[static_cast<size_t>(row) * width_ + col];
  }
  uint64_t ColumnOf(uint64_t hash, uint32_t row) const;

  uint32_t width_;
  uint32_t depth_;
  bool conservative_;
  uint64_t total_count_ = 0;
  std::vector<uint64_t> table_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_COUNT_MIN_SKETCH_H_
