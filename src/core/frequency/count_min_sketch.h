#ifndef STREAMLIB_CORE_FREQUENCY_COUNT_MIN_SKETCH_H_
#define STREAMLIB_CORE_FREQUENCY_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Count-Min sketch (Cormode & Muthukrishnan, cited as [66]): a d x w
/// counter array; each key increments one counter per row, point queries
/// take the row-wise *minimum*. With w = ceil(e/eps) and d = ceil(ln(1/dl)),
/// estimates overcount by at most eps * n with probability 1 - dl.
/// Linear (merge-able) and supports weighted updates — the workhorse sketch
/// behind distributed heavy-hitter pipelines (Summingbird-style, per the
/// paper's Lambda discussion).
///
/// Width is rounded up to a power of two so every probe is a bitmask
/// instead of a modulo, and row indices derive from one base digest via
/// Kirsch–Mitzenmacher double hashing (col_r = h1 + r*h2) instead of
/// re-mixing per row — the two index-path changes behind state version 2.
///
/// The optional *conservative update* (Estan & Varghese [81]) increments
/// only the counters that equal the current minimum, provably never
/// increasing error; its effect is measured by the A-cms-conservative
/// ablation bench.
class CountMinSketch {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kCountMinSketch;
  /// v2: power-of-two width, Kirsch–Mitzenmacher row indexing. v1 blobs
  /// (per-row remix, arbitrary width) map cells differently and are
  /// rejected by the envelope version check rather than silently misread.
  static constexpr uint16_t kStateVersion = 2;

  /// Base-digest seed — public so batched feeders (bolts, benches) can
  /// pre-hash keys once and call AddHashBatch directly.
  static constexpr uint64_t kHashSeed = 0x0b4c61d34d2f5ee9ULL;

  /// \param width  counters per row, rounded up to a power of two
  ///               (error ~ e/width of total count).
  /// \param depth  rows (failure probability ~ exp(-depth)).
  /// \param conservative  enable conservative update.
  CountMinSketch(uint32_t width, uint32_t depth, bool conservative = false);

  /// Sizes the sketch for overcount <= eps*n with probability >= 1 - delta.
  static CountMinSketch WithErrorBound(double eps, double delta,
                                       bool conservative = false);

  template <typename T>
  void Add(const T& key, uint64_t count = 1) {
    AddHash(HashValue(key, kHashSeed), count);
  }

  template <typename T>
  uint64_t Estimate(const T& key) const {
    return EstimateHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash, uint64_t count);
  uint64_t EstimateHash(uint64_t hash) const;

  /// Batched update over pre-hashed digests, each weighted `count`.
  /// Final sketch state is bit-identical to calling AddHash in order —
  /// including conservative mode, where in-batch duplicates must see each
  /// other's increments.
  void AddHashBatch(std::span<const uint64_t> hashes, uint64_t count = 1);

  /// Batched update over raw keys: hashes in vectorized chunks (integral
  /// keys) and feeds AddHashBatch. Bit-identical to N scalar Add calls.
  template <typename T>
  void AddBatch(std::span<const T> keys, uint64_t count = 1) {
    uint64_t digests[kBatchChunk];
    for (size_t done = 0; done < keys.size();) {
      const size_t n = HashKeyChunk(keys.subspan(done), kHashSeed, digests);
      AddHashBatch(std::span<const uint64_t>(digests, n), count);
      done += n;
    }
  }

  /// In-place merge with an identically shaped, same-mode sketch.
  /// (Conservative-update sketches are not linear; merging them degrades
  /// their tightened bound back to the standard CM guarantee.)
  Status Merge(const CountMinSketch& other);

  /// Estimated inner product of the two frequency vectors (self-join size
  /// when `other` is this sketch) — min over rows of the row dot-product.
  Result<uint64_t> InnerProduct(const CountMinSketch& other) const;

  /// state::MergeableSketch payload: geometry, mode, total, varint cells.
  void SerializeTo(ByteWriter& w) const;
  static Result<CountMinSketch> Deserialize(ByteReader& r);

  /// Legacy whole-buffer forms (wire-compatible with SerializeTo) — used by
  /// the platform checkpoint store so stateful bolts can persist state.
  std::vector<uint8_t> Serialize() const;
  static Result<CountMinSketch> Deserialize(const std::vector<uint8_t>& bytes);

  uint64_t total_count() const { return total_count_; }
  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  bool conservative() const { return conservative_; }
  size_t MemoryBytes() const { return table_.size() * sizeof(uint64_t); }

  /// Additive error bound eps*n implied by the geometry: e/width * n.
  double ErrorBound() const;

 private:
  /// Stack chunk size for the batched paths (hash/index scratch arrays).
  static constexpr size_t kBatchChunk = 64;
  /// Salt for the KM step hash h2 = Mix64(h1 ^ salt) | 1.
  static constexpr uint64_t kKmSalt = 0x7a0c5e3dbb2f8d1bULL;

  /// Hashes up to kBatchChunk keys into `out`; returns how many it took.
  template <typename T>
  static size_t HashKeyChunk(std::span<const T> keys, uint64_t seed,
                             uint64_t* out) {
    const size_t n = keys.size() < kBatchChunk ? keys.size() : kBatchChunk;
    if constexpr (std::is_integral_v<T> && sizeof(T) == sizeof(uint64_t)) {
      HashBatch64(reinterpret_cast<const uint64_t*>(keys.data()), n, seed,
                  out);
    } else {
      for (size_t i = 0; i < n; i++) out[i] = HashValue(keys[i], seed);
    }
    return n;
  }

  uint64_t& Cell(uint32_t row, uint64_t col) {
    return table_[static_cast<size_t>(row) * width_ + col];
  }
  const uint64_t& Cell(uint32_t row, uint64_t col) const {
    return table_[static_cast<size_t>(row) * width_ + col];
  }
  uint64_t ColumnOf(uint64_t h1, uint64_t h2, uint32_t row) const {
    return DoubleHash(h1, h2, row) & mask_;
  }

  uint32_t width_;
  uint64_t mask_;  ///< width_ - 1 (width_ is a power of two)
  uint32_t depth_;
  bool conservative_;
  uint64_t total_count_ = 0;
  std::vector<uint64_t> table_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_COUNT_MIN_SKETCH_H_
