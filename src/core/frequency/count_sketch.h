#ifndef STREAMLIB_CORE_FREQUENCY_COUNT_SKETCH_H_
#define STREAMLIB_CORE_FREQUENCY_COUNT_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Count sketch (Charikar, Chen & Farach-Colton, cited as [57]): like
/// Count-Min but each update carries a +-1 sign hash and point queries take
/// the *median* across rows. Estimates are unbiased with error proportional
/// to sqrt(F2)/sqrt(width) — much tighter than Count-Min's eps*F1 on
/// skewed streams where a few heavy items dominate F2. Also the basis of F2
/// estimation (row L2 norms).
///
/// Width is rounded up to a power of two; row r's probe derives from one
/// base digest via Kirsch–Mitzenmacher double hashing g = h1 + r*h2, with
/// col = (g >> 1) & mask and sign = g & 1 (state version 2).
class CountSketch {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kCountSketch;
  /// v2: power-of-two width, Kirsch–Mitzenmacher row indexing — v1 blobs
  /// map cells differently and are rejected by the envelope version check.
  static constexpr uint16_t kStateVersion = 2;

  /// Base-digest seed — public so batched feeders can pre-hash keys once.
  static constexpr uint64_t kHashSeed = 0x9ddfea08eb382d69ULL;

  /// \param width  counters per row, rounded up to a power of two.
  /// \param depth  rows; the median over rows needs depth >= 3 (odd).
  CountSketch(uint32_t width, uint32_t depth);

  template <typename T>
  void Add(const T& key, int64_t count = 1) {
    AddHash(HashValue(key, kHashSeed), count);
  }

  /// Unbiased point estimate (median of signed row counters). May be
  /// negative for rare keys; callers typically clamp at 0.
  template <typename T>
  int64_t Estimate(const T& key) const {
    return EstimateHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash, int64_t count);
  int64_t EstimateHash(uint64_t hash) const;

  /// Batched update over pre-hashed digests, each weighted `count`. Final
  /// state is bit-identical to calling AddHash per digest in order.
  void AddHashBatch(std::span<const uint64_t> hashes, int64_t count = 1);

  /// Batched update over raw keys: vectorized hashing (integral keys) into
  /// AddHashBatch. Bit-identical to N scalar Add calls.
  template <typename T>
  void AddBatch(std::span<const T> keys, int64_t count = 1) {
    uint64_t digests[kBatchChunk];
    for (size_t done = 0; done < keys.size();) {
      const size_t n = keys.size() - done < kBatchChunk ? keys.size() - done
                                                        : kBatchChunk;
      if constexpr (std::is_integral_v<T> && sizeof(T) == sizeof(uint64_t)) {
        HashBatch64(reinterpret_cast<const uint64_t*>(keys.data() + done), n,
                    kHashSeed, digests);
      } else {
        for (size_t i = 0; i < n; i++) {
          digests[i] = HashValue(keys[done + i], kHashSeed);
        }
      }
      AddHashBatch(std::span<const uint64_t>(digests, n), count);
      done += n;
    }
  }

  /// Median across rows of the row's sum of squared counters: an estimate of
  /// the second frequency moment F2 (see AmsSketch for the lineage).
  double EstimateF2() const;

  /// In-place merge with an identically shaped sketch.
  Status Merge(const CountSketch& other);

  /// state::MergeableSketch payload: geometry, then zigzag-varint cells.
  void SerializeTo(ByteWriter& w) const;
  static Result<CountSketch> Deserialize(ByteReader& r);

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  size_t MemoryBytes() const { return table_.size() * sizeof(int64_t); }

 private:
  static constexpr size_t kBatchChunk = 64;
  static constexpr uint64_t kKmSalt = 0x452821e638d01377ULL;

  int64_t& Cell(uint32_t row, uint64_t col) {
    return table_[static_cast<size_t>(row) * width_ + col];
  }
  const int64_t& Cell(uint32_t row, uint64_t col) const {
    return table_[static_cast<size_t>(row) * width_ + col];
  }

  uint32_t width_;
  uint64_t mask_;  ///< width_ - 1 (width_ is a power of two)
  uint32_t depth_;
  std::vector<int64_t> table_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_COUNT_SKETCH_H_
