#ifndef STREAMLIB_CORE_FREQUENCY_COUNT_SKETCH_H_
#define STREAMLIB_CORE_FREQUENCY_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Count sketch (Charikar, Chen & Farach-Colton, cited as [57]): like
/// Count-Min but each update carries a +-1 sign hash and point queries take
/// the *median* across rows. Estimates are unbiased with error proportional
/// to sqrt(F2)/sqrt(width) — much tighter than Count-Min's eps*F1 on
/// skewed streams where a few heavy items dominate F2. Also the basis of F2
/// estimation (row L2 norms).
class CountSketch {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kCountSketch;
  static constexpr uint16_t kStateVersion = 1;

  /// \param width  counters per row.
  /// \param depth  rows; the median over rows needs depth >= 3 (odd).
  CountSketch(uint32_t width, uint32_t depth);

  template <typename T>
  void Add(const T& key, int64_t count = 1) {
    AddHash(HashValue(key, kHashSeed), count);
  }

  /// Unbiased point estimate (median of signed row counters). May be
  /// negative for rare keys; callers typically clamp at 0.
  template <typename T>
  int64_t Estimate(const T& key) const {
    return EstimateHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash, int64_t count);
  int64_t EstimateHash(uint64_t hash) const;

  /// Median across rows of the row's sum of squared counters: an estimate of
  /// the second frequency moment F2 (see AmsSketch for the lineage).
  double EstimateF2() const;

  /// In-place merge with an identically shaped sketch.
  Status Merge(const CountSketch& other);

  /// state::MergeableSketch payload: geometry, then zigzag-varint cells.
  void SerializeTo(ByteWriter& w) const;
  static Result<CountSketch> Deserialize(ByteReader& r);

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  size_t MemoryBytes() const { return table_.size() * sizeof(int64_t); }

 private:
  static constexpr uint64_t kHashSeed = 0x9ddfea08eb382d69ULL;

  int64_t& Cell(uint32_t row, uint64_t col) {
    return table_[static_cast<size_t>(row) * width_ + col];
  }
  const int64_t& Cell(uint32_t row, uint64_t col) const {
    return table_[static_cast<size_t>(row) * width_ + col];
  }

  uint32_t width_;
  uint32_t depth_;
  std::vector<int64_t> table_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_COUNT_SKETCH_H_
