#ifndef STREAMLIB_CORE_FREQUENCY_SLIDING_FREQUENT_H_
#define STREAMLIB_CORE_FREQUENCY_SLIDING_FREQUENT_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "core/frequency/space_saving.h"

namespace streamlib {

/// Heavy hitters over a sequence-based sliding window (the problem of Hung,
/// Lee & Ting [106] and Lee & Ting [119]), implemented with the
/// jumping-window / basic-window decomposition: the window of size W is
/// split into B panes, each summarized by its own SpaceSaving sketch; panes
/// rotate as the stream advances and a query sums per-pane estimates.
/// The window covered is the last (B-1..B)/B * W elements (pane
/// granularity), and per-key error is bounded by B * pane_n / capacity.
template <typename Key>
class SlidingWindowFrequent {
 public:
  /// \param window     sliding window size W in elements.
  /// \param num_panes  decomposition granularity B (window staleness W/B).
  /// \param capacity   SpaceSaving counters per pane.
  SlidingWindowFrequent(uint64_t window, size_t num_panes, size_t capacity)
      : pane_size_(window / num_panes),
        num_panes_(num_panes),
        capacity_(capacity) {
    STREAMLIB_CHECK_MSG(num_panes >= 1, "need at least one pane");
    STREAMLIB_CHECK_MSG(window >= num_panes, "window smaller than pane count");
    panes_.emplace_back(capacity_);
  }

  void Add(const Key& key) {
    panes_.back().Add(key);
    in_current_pane_++;
    if (in_current_pane_ >= pane_size_) {
      in_current_pane_ = 0;
      panes_.emplace_back(capacity_);
      if (panes_.size() > num_panes_) panes_.pop_front();
    }
  }

  /// Estimated count of `key` within the covered window.
  uint64_t Estimate(const Key& key) const {
    uint64_t total = 0;
    for (const auto& pane : panes_) {
      // Only count monitored keys: unmonitored SpaceSaving estimates are
      // upper bounds that would compound across panes.
      if (pane.ErrorOf(key) < pane.Estimate(key)) total += pane.Estimate(key);
    }
    return total;
  }

  /// Items whose window estimate >= threshold, sorted descending.
  std::vector<FrequentItem<Key>> HeavyHitters(uint64_t threshold) const {
    std::unordered_map<Key, uint64_t> totals;
    std::unordered_map<Key, uint64_t> errors;
    for (const auto& pane : panes_) {
      for (const auto& item : pane.HeavyHitters(1)) {
        totals[item.key] += item.estimate;
        errors[item.key] += item.error_bound;
      }
    }
    std::vector<FrequentItem<Key>> out;
    for (const auto& [key, total] : totals) {
      if (total >= threshold) {
        out.push_back(FrequentItem<Key>{key, total, errors[key]});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FrequentItem<Key>& a, const FrequentItem<Key>& b) {
                return a.estimate > b.estimate;
              });
    return out;
  }

  /// Number of stream elements currently covered by the panes.
  uint64_t CoveredElements() const {
    return (panes_.size() - 1) * pane_size_ + in_current_pane_;
  }

 private:
  uint64_t pane_size_;
  size_t num_panes_;
  size_t capacity_;
  uint64_t in_current_pane_ = 0;
  std::deque<SpaceSaving<Key>> panes_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_SLIDING_FREQUENT_H_
