#include "core/frequency/count_sketch.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/simd.h"

namespace streamlib {

CountSketch::CountSketch(uint32_t width, uint32_t depth)
    : width_(0), mask_(0), depth_(depth) {
  STREAMLIB_CHECK_MSG(width >= 1, "width must be >= 1");
  STREAMLIB_CHECK_MSG(depth >= 1 && depth <= 64, "depth must be in [1, 64]");
  STREAMLIB_CHECK_MSG(width <= (1u << 31), "width must be <= 2^31");
  width_ = static_cast<uint32_t>(NextPowerOfTwo(width));
  mask_ = width_ - 1;
  table_.assign(static_cast<size_t>(width_) * depth_, 0);
}

void CountSketch::AddHash(uint64_t hash, int64_t count) {
  const uint64_t h2 = KmStepHash(hash, kKmSalt);
  for (uint32_t row = 0; row < depth_; row++) {
    const uint64_t g = DoubleHash(hash, h2, row);
    const uint64_t col = (g >> 1) & mask_;
    const int64_t sign = (g & 1) != 0 ? 1 : -1;
    Cell(row, col) += sign * count;
  }
}

int64_t CountSketch::EstimateHash(uint64_t hash) const {
  const uint64_t h2 = KmStepHash(hash, kKmSalt);
  std::vector<int64_t> row_estimates;
  row_estimates.reserve(depth_);
  for (uint32_t row = 0; row < depth_; row++) {
    const uint64_t g = DoubleHash(hash, h2, row);
    const uint64_t col = (g >> 1) & mask_;
    const int64_t sign = (g & 1) != 0 ? 1 : -1;
    row_estimates.push_back(sign * Cell(row, col));
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + row_estimates.size() / 2,
                   row_estimates.end());
  return row_estimates[row_estimates.size() / 2];
}

void CountSketch::AddHashBatch(std::span<const uint64_t> hashes,
                               int64_t count) {
  uint64_t h2s[kBatchChunk];
  for (size_t done = 0; done < hashes.size(); done += kBatchChunk) {
    const size_t n = std::min(kBatchChunk, hashes.size() - done);
    const uint64_t* h1s = hashes.data() + done;
    KmStepHashBatch(h1s, n, kKmSalt, h2s);
    // Row-major sweep with prefetch; signed addition commutes, so the
    // reordered increments leave counters bit-identical to scalar order.
    for (uint32_t row = 0; row < depth_; row++) {
      int64_t* base = table_.data() + static_cast<size_t>(row) * width_;
      constexpr size_t kAhead = 8;
      const size_t lead = std::min(kAhead, n);
      for (size_t i = 0; i < lead; i++) {
        simd::PrefetchRead(base + ((DoubleHash(h1s[i], h2s[i], row) >> 1) & mask_));
      }
      for (size_t i = 0; i < n; i++) {
        if (i + kAhead < n) {
          const uint64_t g = DoubleHash(h1s[i + kAhead], h2s[i + kAhead], row);
          simd::PrefetchRead(base + ((g >> 1) & mask_));
        }
        const uint64_t g = DoubleHash(h1s[i], h2s[i], row);
        base[(g >> 1) & mask_] += ((g & 1) != 0 ? count : -count);
      }
    }
  }
}

double CountSketch::EstimateF2() const {
  std::vector<double> row_f2;
  row_f2.reserve(depth_);
  for (uint32_t row = 0; row < depth_; row++) {
    double sum = 0.0;
    for (uint64_t col = 0; col < width_; col++) {
      const double c = static_cast<double>(Cell(row, col));
      sum += c * c;
    }
    row_f2.push_back(sum);
  }
  std::nth_element(row_f2.begin(), row_f2.begin() + row_f2.size() / 2,
                   row_f2.end());
  return row_f2[row_f2.size() / 2];
}

Status CountSketch::Merge(const CountSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_) {
    return Status::InvalidArgument("CountSketch merge: geometry mismatch");
  }
  for (size_t i = 0; i < table_.size(); i++) table_[i] += other.table_[i];
  return Status::OK();
}

void CountSketch::SerializeTo(ByteWriter& w) const {
  w.PutU32(width_);
  w.PutU32(depth_);
  for (int64_t cell : table_) w.PutVarintSigned(cell);
}

Result<CountSketch> CountSketch::Deserialize(ByteReader& r) {
  uint32_t width = 0;
  uint32_t depth = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&width));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&depth));
  if (width < 1 || depth < 1 || depth > 64) {
    return Status::Corruption("CountSketch: geometry out of range");
  }
  // v2 only ever writes power-of-two widths; anything else is corruption.
  if (!IsPowerOfTwo(width)) {
    return Status::Corruption("CountSketch: width not a power of two");
  }
  // One varint byte minimum per cell: reject impossible geometry before
  // allocating the table.
  if (static_cast<uint64_t>(width) * depth > r.remaining()) {
    return Status::Corruption("CountSketch: geometry exceeds payload");
  }
  CountSketch sketch(width, depth);
  for (int64_t& cell : sketch.table_) {
    STREAMLIB_RETURN_NOT_OK(r.GetVarintSigned(&cell));
  }
  return sketch;
}

}  // namespace streamlib
