#ifndef STREAMLIB_CORE_FREQUENCY_SPACE_SAVING_H_
#define STREAMLIB_CORE_FREQUENCY_SPACE_SAVING_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"
#include "core/frequency/misra_gries.h"

namespace streamlib {

/// SpaceSaving (Metwally, Agrawal & El Abbadi, cited as [128]): the
/// empirically strongest counter-based heavy-hitter algorithm (per the
/// Cormode–Hadjieleftheriou experimental study cited as [65] and the
/// Manerikar–Palpanas study [124]). Keeps exactly k (key, count, error)
/// entries; an unmonitored arrival *replaces the minimum* entry, inheriting
/// its count as the overestimate bound. Estimates are overestimates with
/// error <= min-count <= n/k.
///
/// The minimum entry is found in O(log k) via an indexed min-heap (the
/// "stream summary" structure of the paper achieves O(1); the heap keeps the
/// code simple while preserving the space/accuracy behaviour benches
/// measure).
template <typename Key>
class SpaceSaving {
 public:
  static constexpr state::TypeId kTypeId = [] {
    if constexpr (std::is_same_v<Key, std::string>) {
      return state::TypeId::kSpaceSavingString;
    } else {
      static_assert(std::is_same_v<Key, uint64_t>,
                    "no TypeId registered for this SpaceSaving key type");
      return state::TypeId::kSpaceSavingU64;
    }
  }();
  static constexpr uint16_t kStateVersion = 1;

  /// \param capacity  number of monitored entries k; error <= n/k.
  explicit SpaceSaving(size_t capacity) : capacity_(capacity) {
    STREAMLIB_CHECK_MSG(capacity >= 1, "capacity must be >= 1");
    entries_.reserve(capacity);
    heap_.reserve(capacity);
    index_.reserve(capacity * 2);
  }

  /// Processes `increment` occurrences of `key`.
  void Add(const Key& key, uint64_t increment = 1) {
    count_ += increment;
    auto it = index_.find(key);
    if (it != index_.end()) {
      entries_[it->second].count += increment;
      SiftDown(entries_[it->second].heap_pos);
      return;
    }
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{key, increment, 0, entries_.size()});
      heap_.push_back(entries_.size() - 1);
      index_.emplace(key, entries_.size() - 1);
      SiftUp(heap_.size() - 1);
      return;
    }
    // Replace the minimum-count entry.
    const size_t slot = heap_[0];
    Entry& victim = entries_[slot];
    index_.erase(victim.key);
    const uint64_t min_count = victim.count;
    victim.key = key;
    victim.error = min_count;
    victim.count = min_count + increment;
    index_.emplace(key, slot);
    SiftDown(0);
  }

  /// Estimated count (an overestimate; true count in
  /// [estimate - error, estimate]). Unmonitored keys report the current
  /// minimum count (the algorithm's upper bound for any unmonitored key).
  uint64_t Estimate(const Key& key) const {
    auto it = index_.find(key);
    if (it != index_.end()) return entries_[it->second].count;
    return entries_.size() < capacity_ ? 0 : MinCount();
  }

  /// Guaranteed-overestimate error bound for a monitored key, 0 if exact.
  uint64_t ErrorOf(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? MinCount() : entries_[it->second].error;
  }

  /// All monitored items with estimate >= threshold, sorted descending.
  std::vector<FrequentItem<Key>> HeavyHitters(uint64_t threshold) const {
    std::vector<FrequentItem<Key>> out;
    for (const Entry& e : entries_) {
      if (e.count >= threshold) {
        out.push_back(FrequentItem<Key>{e.key, e.count, e.error});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FrequentItem<Key>& a, const FrequentItem<Key>& b) {
                return a.estimate > b.estimate;
              });
    return out;
  }

  /// Top-k by estimated count (k <= capacity), sorted descending. An entry is
  /// a *guaranteed* top item when estimate - error exceeds the next
  /// estimate — callers can check via the error bounds.
  std::vector<FrequentItem<Key>> TopK(size_t k) const {
    std::vector<FrequentItem<Key>> out = HeavyHitters(0);
    if (out.size() > k) out.resize(k);
    return out;
  }

  uint64_t count() const { return count_; }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Current minimum monitored count (= max overestimate of any key).
  uint64_t MinCount() const {
    return entries_.empty() ? 0 : entries_[heap_[0]].count;
  }

  /// Mergeable-summaries combine (Agarwal et al.): counts and errors add
  /// pointwise; a key monitored on only one side inherits the other side's
  /// MinCount as both count and error (its upper bound there), and the top
  /// `capacity` combined entries survive. The merged error bound is the sum
  /// of the two sides' bounds, matching the paper's isomorphism between
  /// merged SpaceSaving summaries.
  Status Merge(const SpaceSaving& other) {
    if (other.capacity_ != capacity_) {
      return Status::InvalidArgument("SpaceSaving merge: capacity mismatch");
    }
    const uint64_t my_min = entries_.size() < capacity_ ? 0 : MinCount();
    const uint64_t other_min =
        other.entries_.size() < other.capacity_ ? 0 : other.MinCount();
    std::vector<Entry> combined;
    combined.reserve(entries_.size() + other.entries_.size());
    for (const Entry& e : entries_) {
      Entry merged = e;
      auto it = other.index_.find(e.key);
      if (it != other.index_.end()) {
        merged.count += other.entries_[it->second].count;
        merged.error += other.entries_[it->second].error;
      } else {
        merged.count += other_min;
        merged.error += other_min;
      }
      combined.push_back(std::move(merged));
    }
    for (const Entry& e : other.entries_) {
      if (index_.find(e.key) != index_.end()) continue;  // Already merged.
      combined.push_back(Entry{e.key, e.count + my_min, e.error + my_min, 0});
    }
    std::sort(combined.begin(), combined.end(),
              [](const Entry& a, const Entry& b) { return a.count > b.count; });
    if (combined.size() > capacity_) combined.resize(capacity_);
    count_ += other.count_;
    Rebuild(std::move(combined));
    return Status::OK();
  }

  /// state::MergeableSketch payload: capacity, processed count, then the
  /// monitored (key, count, error) entries.
  void SerializeTo(ByteWriter& w) const {
    w.PutVarint(capacity_);
    w.PutVarint(count_);
    w.PutVarint(entries_.size());
    for (const Entry& e : entries_) {
      state::KeyCodec<Key>::Write(w, e.key);
      w.PutVarint(e.count);
      w.PutVarint(e.error);
    }
  }

  static Result<SpaceSaving> Deserialize(ByteReader& r) {
    uint64_t capacity = 0;
    uint64_t count = 0;
    uint64_t num_entries = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&capacity));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_entries));
    if (capacity < 1) {
      return Status::Corruption("SpaceSaving: capacity out of range");
    }
    if (num_entries > capacity) {
      return Status::Corruption("SpaceSaving: more entries than capacity");
    }
    // Three varint bytes minimum per entry (empty string keys still carry a
    // length byte): reject impossible counts before allocating.
    if (num_entries * 3 > r.remaining()) {
      return Status::Corruption("SpaceSaving: entry count exceeds payload");
    }
    SpaceSaving sketch(capacity);
    std::vector<Entry> entries;
    entries.reserve(num_entries);
    for (uint64_t i = 0; i < num_entries; i++) {
      Entry e{};
      STREAMLIB_RETURN_NOT_OK(state::KeyCodec<Key>::Read(r, &e.key));
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&e.count));
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&e.error));
      if (e.error >= e.count) {
        return Status::Corruption("SpaceSaving: entry error >= count");
      }
      entries.push_back(std::move(e));
    }
    sketch.count_ = count;
    sketch.Rebuild(std::move(entries));
    if (sketch.index_.size() != sketch.entries_.size()) {
      return Status::Corruption("SpaceSaving: duplicate keys");
    }
    return sketch;
  }

 private:
  struct Entry {
    Key key;
    uint64_t count;
    uint64_t error;
    size_t heap_pos;
  };

  bool HeapLess(size_t slot_a, size_t slot_b) const {
    return entries_[slot_a].count < entries_[slot_b].count;
  }

  void HeapSwap(size_t pos_a, size_t pos_b) {
    std::swap(heap_[pos_a], heap_[pos_b]);
    entries_[heap_[pos_a]].heap_pos = pos_a;
    entries_[heap_[pos_b]].heap_pos = pos_b;
  }

  void SiftUp(size_t pos) {
    while (pos > 0) {
      const size_t parent = (pos - 1) / 2;
      if (!HeapLess(heap_[pos], heap_[parent])) break;
      HeapSwap(pos, parent);
      pos = parent;
    }
  }

  void SiftDown(size_t pos) {
    const size_t n = heap_.size();
    while (true) {
      size_t smallest = pos;
      const size_t l = 2 * pos + 1;
      const size_t r = 2 * pos + 2;
      if (l < n && HeapLess(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && HeapLess(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == pos) break;
      HeapSwap(pos, smallest);
      pos = smallest;
    }
  }

  /// Replaces the monitored set and rebuilds the heap and key index.
  void Rebuild(std::vector<Entry> entries) {
    entries_ = std::move(entries);
    heap_.resize(entries_.size());
    index_.clear();
    for (size_t i = 0; i < entries_.size(); i++) {
      heap_[i] = i;
      entries_[i].heap_pos = i;
      index_.emplace(entries_[i].key, i);
    }
    if (heap_.size() > 1) {
      for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
    }
  }

  size_t capacity_;
  uint64_t count_ = 0;
  std::vector<Entry> entries_;          // Slot-addressed entries.
  std::vector<size_t> heap_;            // Min-heap of slots by count.
  std::unordered_map<Key, size_t> index_;  // Key -> slot.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_SPACE_SAVING_H_
