#ifndef STREAMLIB_CORE_FREQUENCY_SPACE_SAVING_H_
#define STREAMLIB_CORE_FREQUENCY_SPACE_SAVING_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "core/frequency/misra_gries.h"

namespace streamlib {

/// SpaceSaving (Metwally, Agrawal & El Abbadi, cited as [128]): the
/// empirically strongest counter-based heavy-hitter algorithm (per the
/// Cormode–Hadjieleftheriou experimental study cited as [65] and the
/// Manerikar–Palpanas study [124]). Keeps exactly k (key, count, error)
/// entries; an unmonitored arrival *replaces the minimum* entry, inheriting
/// its count as the overestimate bound. Estimates are overestimates with
/// error <= min-count <= n/k.
///
/// The minimum entry is found in O(log k) via an indexed min-heap (the
/// "stream summary" structure of the paper achieves O(1); the heap keeps the
/// code simple while preserving the space/accuracy behaviour benches
/// measure).
template <typename Key>
class SpaceSaving {
 public:
  /// \param capacity  number of monitored entries k; error <= n/k.
  explicit SpaceSaving(size_t capacity) : capacity_(capacity) {
    STREAMLIB_CHECK_MSG(capacity >= 1, "capacity must be >= 1");
    entries_.reserve(capacity);
    heap_.reserve(capacity);
    index_.reserve(capacity * 2);
  }

  /// Processes `increment` occurrences of `key`.
  void Add(const Key& key, uint64_t increment = 1) {
    count_ += increment;
    auto it = index_.find(key);
    if (it != index_.end()) {
      entries_[it->second].count += increment;
      SiftDown(entries_[it->second].heap_pos);
      return;
    }
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{key, increment, 0, entries_.size()});
      heap_.push_back(entries_.size() - 1);
      index_.emplace(key, entries_.size() - 1);
      SiftUp(heap_.size() - 1);
      return;
    }
    // Replace the minimum-count entry.
    const size_t slot = heap_[0];
    Entry& victim = entries_[slot];
    index_.erase(victim.key);
    const uint64_t min_count = victim.count;
    victim.key = key;
    victim.error = min_count;
    victim.count = min_count + increment;
    index_.emplace(key, slot);
    SiftDown(0);
  }

  /// Estimated count (an overestimate; true count in
  /// [estimate - error, estimate]). Unmonitored keys report the current
  /// minimum count (the algorithm's upper bound for any unmonitored key).
  uint64_t Estimate(const Key& key) const {
    auto it = index_.find(key);
    if (it != index_.end()) return entries_[it->second].count;
    return entries_.size() < capacity_ ? 0 : MinCount();
  }

  /// Guaranteed-overestimate error bound for a monitored key, 0 if exact.
  uint64_t ErrorOf(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? MinCount() : entries_[it->second].error;
  }

  /// All monitored items with estimate >= threshold, sorted descending.
  std::vector<FrequentItem<Key>> HeavyHitters(uint64_t threshold) const {
    std::vector<FrequentItem<Key>> out;
    for (const Entry& e : entries_) {
      if (e.count >= threshold) {
        out.push_back(FrequentItem<Key>{e.key, e.count, e.error});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FrequentItem<Key>& a, const FrequentItem<Key>& b) {
                return a.estimate > b.estimate;
              });
    return out;
  }

  /// Top-k by estimated count (k <= capacity), sorted descending. An entry is
  /// a *guaranteed* top item when estimate - error exceeds the next
  /// estimate — callers can check via the error bounds.
  std::vector<FrequentItem<Key>> TopK(size_t k) const {
    std::vector<FrequentItem<Key>> out = HeavyHitters(0);
    if (out.size() > k) out.resize(k);
    return out;
  }

  uint64_t count() const { return count_; }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Current minimum monitored count (= max overestimate of any key).
  uint64_t MinCount() const {
    return entries_.empty() ? 0 : entries_[heap_[0]].count;
  }

 private:
  struct Entry {
    Key key;
    uint64_t count;
    uint64_t error;
    size_t heap_pos;
  };

  bool HeapLess(size_t slot_a, size_t slot_b) const {
    return entries_[slot_a].count < entries_[slot_b].count;
  }

  void HeapSwap(size_t pos_a, size_t pos_b) {
    std::swap(heap_[pos_a], heap_[pos_b]);
    entries_[heap_[pos_a]].heap_pos = pos_a;
    entries_[heap_[pos_b]].heap_pos = pos_b;
  }

  void SiftUp(size_t pos) {
    while (pos > 0) {
      const size_t parent = (pos - 1) / 2;
      if (!HeapLess(heap_[pos], heap_[parent])) break;
      HeapSwap(pos, parent);
      pos = parent;
    }
  }

  void SiftDown(size_t pos) {
    const size_t n = heap_.size();
    while (true) {
      size_t smallest = pos;
      const size_t l = 2 * pos + 1;
      const size_t r = 2 * pos + 2;
      if (l < n && HeapLess(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && HeapLess(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == pos) break;
      HeapSwap(pos, smallest);
      pos = smallest;
    }
  }

  size_t capacity_;
  uint64_t count_ = 0;
  std::vector<Entry> entries_;          // Slot-addressed entries.
  std::vector<size_t> heap_;            // Min-heap of slots by count.
  std::unordered_map<Key, size_t> index_;  // Key -> slot.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_SPACE_SAVING_H_
