#ifndef STREAMLIB_CORE_FREQUENCY_MISRA_GRIES_H_
#define STREAMLIB_CORE_FREQUENCY_MISRA_GRIES_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// A heavy-hitter candidate with its estimated count and error bound.
template <typename Key>
struct FrequentItem {
  Key key{};
  uint64_t estimate = 0;     ///< Estimated frequency (algorithm-specific bias).
  uint64_t error_bound = 0;  ///< Max overestimate; true count in
                             ///< [estimate - error_bound, estimate] for
                             ///< SpaceSaving, [estimate, estimate +
                             ///< error_bound] for Misra–Gries.
};

/// Misra–Gries / FREQUENT algorithm (rediscovered by Demaine et al. [75] and
/// Karp et al. [114], both cited): k-1 counters answer "which items occur
/// more than n/k times" with *underestimates* whose error is at most n/k.
/// The classic deterministic heavy-hitter summary; O(k) space, O(1) amortized
/// update.
///
/// Application (Table 1): trending hashtags — items above a frequency
/// threshold theta = 1/k.
template <typename Key>
class MisraGries {
 public:
  /// \param num_counters  k-1 counters: detects items with freq > n/k where
  ///                      k = num_counters + 1; estimate error <= n/k.
  explicit MisraGries(size_t num_counters) : capacity_(num_counters) {
    STREAMLIB_CHECK_MSG(num_counters >= 1, "need at least one counter");
    counters_.reserve(capacity_ * 2);
  }

  /// Processes one occurrence of `key`.
  void Add(const Key& key) {
    count_++;
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      it->second++;
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(key, 1);
      return;
    }
    // Decrement-all step: every counter (and the new item, implicitly) loses
    // one; zeroed counters are evicted.
    for (auto iter = counters_.begin(); iter != counters_.end();) {
      if (--iter->second == 0) {
        iter = counters_.erase(iter);
      } else {
        ++iter;
      }
    }
  }

  /// Estimated count for `key` (an underestimate; 0 if untracked). The true
  /// count is at most Estimate(key) + MaxError().
  uint64_t Estimate(const Key& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Upper bound on undercounting: n / (capacity + 1).
  uint64_t MaxError() const { return count_ / (capacity_ + 1); }

  /// Items whose estimated count exceeds `threshold`, sorted by estimate
  /// descending. With threshold = theta*n - MaxError() this returns every
  /// item of true frequency >= theta*n (no false negatives).
  std::vector<FrequentItem<Key>> HeavyHitters(uint64_t threshold) const {
    std::vector<FrequentItem<Key>> out;
    for (const auto& [key, cnt] : counters_) {
      if (cnt >= threshold) {
        out.push_back(FrequentItem<Key>{key, cnt, MaxError()});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FrequentItem<Key>& a, const FrequentItem<Key>& b) {
                return a.estimate > b.estimate;
              });
    return out;
  }

  uint64_t count() const { return count_; }
  size_t size() const { return counters_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  std::unordered_map<Key, uint64_t> counters_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_MISRA_GRIES_H_
