#ifndef STREAMLIB_CORE_FREQUENCY_MISRA_GRIES_H_
#define STREAMLIB_CORE_FREQUENCY_MISRA_GRIES_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// A heavy-hitter candidate with its estimated count and error bound.
template <typename Key>
struct FrequentItem {
  Key key{};
  uint64_t estimate = 0;     ///< Estimated frequency (algorithm-specific bias).
  uint64_t error_bound = 0;  ///< Max overestimate; true count in
                             ///< [estimate - error_bound, estimate] for
                             ///< SpaceSaving, [estimate, estimate +
                             ///< error_bound] for Misra–Gries.
};

/// Misra–Gries / FREQUENT algorithm (rediscovered by Demaine et al. [75] and
/// Karp et al. [114], both cited): k-1 counters answer "which items occur
/// more than n/k times" with *underestimates* whose error is at most n/k.
/// The classic deterministic heavy-hitter summary; O(k) space, O(1) amortized
/// update.
///
/// Application (Table 1): trending hashtags — items above a frequency
/// threshold theta = 1/k.
template <typename Key>
class MisraGries {
 public:
  static constexpr state::TypeId kTypeId = [] {
    if constexpr (std::is_same_v<Key, std::string>) {
      return state::TypeId::kMisraGriesString;
    } else {
      static_assert(std::is_same_v<Key, uint64_t>,
                    "no TypeId registered for this MisraGries key type");
      return state::TypeId::kMisraGriesU64;
    }
  }();
  static constexpr uint16_t kStateVersion = 1;

  /// \param num_counters  k-1 counters: detects items with freq > n/k where
  ///                      k = num_counters + 1; estimate error <= n/k.
  explicit MisraGries(size_t num_counters) : capacity_(num_counters) {
    STREAMLIB_CHECK_MSG(num_counters >= 1, "need at least one counter");
    counters_.reserve(capacity_ * 2);
  }

  /// Processes one occurrence of `key`.
  void Add(const Key& key) {
    count_++;
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      it->second++;
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(key, 1);
      return;
    }
    // Decrement-all step: every counter (and the new item, implicitly) loses
    // one; zeroed counters are evicted.
    for (auto iter = counters_.begin(); iter != counters_.end();) {
      if (--iter->second == 0) {
        iter = counters_.erase(iter);
      } else {
        ++iter;
      }
    }
  }

  /// Estimated count for `key` (an underestimate; 0 if untracked). The true
  /// count is at most Estimate(key) + MaxError().
  uint64_t Estimate(const Key& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Upper bound on undercounting: n / (capacity + 1).
  uint64_t MaxError() const { return count_ / (capacity_ + 1); }

  /// Items whose estimated count exceeds `threshold`, sorted by estimate
  /// descending. With threshold = theta*n - MaxError() this returns every
  /// item of true frequency >= theta*n (no false negatives).
  std::vector<FrequentItem<Key>> HeavyHitters(uint64_t threshold) const {
    std::vector<FrequentItem<Key>> out;
    for (const auto& [key, cnt] : counters_) {
      if (cnt >= threshold) {
        out.push_back(FrequentItem<Key>{key, cnt, MaxError()});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FrequentItem<Key>& a, const FrequentItem<Key>& b) {
                return a.estimate > b.estimate;
              });
    return out;
  }

  uint64_t count() const { return count_; }
  size_t size() const { return counters_.size(); }
  size_t capacity() const { return capacity_; }

  /// Mergeable-summaries combine (Agarwal et al., §3): add counters
  /// pointwise, then subtract the (capacity+1)-th largest combined value
  /// from every counter and evict the non-positive ones. The subtraction is
  /// a batch of decrement-all steps, so the merged summary obeys the same
  /// n/(capacity+1) error bound over the combined stream.
  Status Merge(const MisraGries& other) {
    if (other.capacity_ != capacity_) {
      return Status::InvalidArgument("MisraGries merge: capacity mismatch");
    }
    for (const auto& [key, cnt] : other.counters_) counters_[key] += cnt;
    count_ += other.count_;
    if (counters_.size() > capacity_) {
      std::vector<uint64_t> values;
      values.reserve(counters_.size());
      for (const auto& [key, cnt] : counters_) values.push_back(cnt);
      // The (capacity+1)-th largest value: subtracting it leaves at most
      // `capacity` strictly positive counters.
      std::nth_element(values.begin(), values.begin() + capacity_,
                       values.end(), std::greater<uint64_t>());
      const uint64_t decrement = values[capacity_];
      for (auto it = counters_.begin(); it != counters_.end();) {
        if (it->second <= decrement) {
          it = counters_.erase(it);
        } else {
          it->second -= decrement;
          ++it;
        }
      }
    }
    return Status::OK();
  }

  /// state::MergeableSketch payload: capacity, processed count, then the
  /// (key, counter) pairs.
  void SerializeTo(ByteWriter& w) const {
    w.PutVarint(capacity_);
    w.PutVarint(count_);
    w.PutVarint(counters_.size());
    for (const auto& [key, cnt] : counters_) {
      state::KeyCodec<Key>::Write(w, key);
      w.PutVarint(cnt);
    }
  }

  static Result<MisraGries> Deserialize(ByteReader& r) {
    uint64_t capacity = 0;
    uint64_t count = 0;
    uint64_t num_counters = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&capacity));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_counters));
    if (capacity < 1) {
      return Status::Corruption("MisraGries: capacity out of range");
    }
    if (num_counters > capacity) {
      return Status::Corruption("MisraGries: more counters than capacity");
    }
    if (num_counters * 2 > r.remaining()) {
      return Status::Corruption("MisraGries: counter count exceeds payload");
    }
    MisraGries sketch(capacity);
    for (uint64_t i = 0; i < num_counters; i++) {
      Key key{};
      uint64_t cnt = 0;
      STREAMLIB_RETURN_NOT_OK(state::KeyCodec<Key>::Read(r, &key));
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&cnt));
      if (cnt == 0) return Status::Corruption("MisraGries: zero counter");
      if (!sketch.counters_.emplace(std::move(key), cnt).second) {
        return Status::Corruption("MisraGries: duplicate keys");
      }
    }
    sketch.count_ = count;
    return sketch;
  }

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  std::unordered_map<Key, uint64_t> counters_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_MISRA_GRIES_H_
