#ifndef STREAMLIB_CORE_FREQUENCY_TOPK_TRACKER_H_
#define STREAMLIB_CORE_FREQUENCY_TOPK_TRACKER_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/misra_gries.h"

namespace streamlib {

/// Top-k tracking via Count-Min sketch + candidate set (the composition used
/// by stream-lib/DataSketches "topk" and surveyed in Homem & Carvalho,
/// cited as [104]): the sketch supplies point estimates for *every* key;
/// a size-k ordered candidate set keeps the keys whose estimates are
/// currently largest. Unlike SpaceSaving the estimates come from a sketch,
/// so the same structure also answers point queries for non-top keys.
template <typename Key>
class TopKTracker {
 public:
  /// \param k      number of tracked top items.
  /// \param width  Count-Min width (error ~ e/width of stream length).
  /// \param depth  Count-Min depth.
  TopKTracker(size_t k, uint32_t width, uint32_t depth)
      : k_(k), sketch_(width, depth, /*conservative=*/true) {
    STREAMLIB_CHECK_MSG(k >= 1, "k must be >= 1");
  }

  void Add(const Key& key, uint64_t increment = 1) {
    sketch_.Add(key, increment);
    const uint64_t estimate = sketch_.Estimate(key);

    auto it = candidates_.find(key);
    if (it != candidates_.end()) {
      ordered_.erase({it->second, key});
      it->second = estimate;
      ordered_.insert({estimate, key});
      return;
    }
    if (candidates_.size() < k_) {
      candidates_.emplace(key, estimate);
      ordered_.insert({estimate, key});
      return;
    }
    const auto& min_entry = *ordered_.begin();
    if (estimate > min_entry.first) {
      candidates_.erase(min_entry.second);
      ordered_.erase(ordered_.begin());
      candidates_.emplace(key, estimate);
      ordered_.insert({estimate, key});
    }
  }

  /// Point estimate for any key (Count-Min upper bound).
  uint64_t Estimate(const Key& key) const { return sketch_.Estimate(key); }

  /// Current top-k, sorted by estimated count descending.
  std::vector<FrequentItem<Key>> TopK() const {
    std::vector<FrequentItem<Key>> out;
    out.reserve(ordered_.size());
    for (auto it = ordered_.rbegin(); it != ordered_.rend(); ++it) {
      out.push_back(FrequentItem<Key>{
          it->second, it->first,
          static_cast<uint64_t>(sketch_.ErrorBound())});
    }
    return out;
  }

  uint64_t count() const { return sketch_.total_count(); }
  size_t k() const { return k_; }
  size_t MemoryBytes() const {
    return sketch_.MemoryBytes() +
           candidates_.size() * (sizeof(Key) + sizeof(uint64_t)) * 3;
  }

 private:
  size_t k_;
  CountMinSketch sketch_;
  std::unordered_map<Key, uint64_t> candidates_;     // Key -> last estimate.
  std::set<std::pair<uint64_t, Key>> ordered_;       // (estimate, key).
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_TOPK_TRACKER_H_
