#ifndef STREAMLIB_CORE_FREQUENCY_STICKY_SAMPLING_H_
#define STREAMLIB_CORE_FREQUENCY_STICKY_SAMPLING_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "core/frequency/misra_gries.h"

namespace streamlib {

/// Sticky Sampling (Manku & Motwani, VLDB 2002, cited as [125] alongside
/// Lossy Counting): the probabilistic sibling of Lossy Counting. Entries
/// are *sampled in* at a rate that halves as the stream grows; at each rate
/// change, every tracked counter survives a run of coin flips. With
/// probability 1 - delta, all items of frequency >= theta*n are reported
/// when queried at threshold (theta - eps)*n, using expected
/// O((1/eps) log(1/(theta*delta))) entries — *independent of n*, the
/// property that distinguishes it from Lossy Counting's log(eps n) growth.
template <typename Key>
class StickySampling {
 public:
  /// \param eps    frequency error bound.
  /// \param theta  support threshold the guarantee targets (> eps).
  /// \param delta  failure probability.
  StickySampling(double eps, double theta, double delta, uint64_t seed)
      : eps_(eps), rng_(seed) {
    STREAMLIB_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    STREAMLIB_CHECK_MSG(theta > eps, "theta must exceed eps");
    STREAMLIB_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta in (0, 1)");
    // t = (1/eps) * ln(1/(theta*delta)); the first 2t elements are sampled
    // at rate 1, the next 2t at rate 2, then 4t at rate 4, ...
    t_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(
               1.0 / eps * std::log(1.0 / (theta * delta)))));
    window_end_ = 2 * t_;
  }

  void Add(const Key& key) {
    count_++;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second++;
    } else if (rate_ == 1 || rng_.NextBounded(rate_) == 0) {
      entries_.emplace(key, 1);
    }
    if (count_ >= window_end_) {
      rate_ *= 2;
      window_end_ += rate_ * t_;
      Resample();
    }
  }

  /// Estimated count (an underestimate; 0 if untracked).
  uint64_t Estimate(const Key& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second;
  }

  /// Items with estimate >= threshold. Query with (theta - eps) * n for the
  /// probabilistic no-false-negative guarantee.
  std::vector<FrequentItem<Key>> HeavyHitters(uint64_t threshold) const {
    std::vector<FrequentItem<Key>> out;
    for (const auto& [key, cnt] : entries_) {
      if (cnt >= threshold) {
        out.push_back(FrequentItem<Key>{
            key, cnt, static_cast<uint64_t>(eps_ * count_)});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FrequentItem<Key>& a, const FrequentItem<Key>& b) {
                return a.estimate > b.estimate;
              });
    return out;
  }

  uint64_t count() const { return count_; }
  size_t size() const { return entries_.size(); }
  uint64_t sampling_rate() const { return rate_; }

 private:
  /// Rate doubled: each tracked count is diminished by a geometric number
  /// of failed coin flips; entries reaching zero are dropped (the paper's
  /// "for each entry, repeatedly toss an unbiased coin" step).
  void Resample() {
    for (auto it = entries_.begin(); it != entries_.end();) {
      uint64_t cnt = it->second;
      while (cnt > 0 && rng_.NextBool(0.5)) cnt--;
      if (cnt == 0) {
        it = entries_.erase(it);
      } else {
        it->second = cnt;
        ++it;
      }
    }
  }

  double eps_;
  Rng rng_;
  uint64_t t_;
  uint64_t rate_ = 1;
  uint64_t window_end_;
  uint64_t count_ = 0;
  std::unordered_map<Key, uint64_t> entries_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_FREQUENCY_STICKY_SAMPLING_H_
