#ifndef STREAMLIB_CORE_HISTOGRAM_END_BIASED_HISTOGRAM_H_
#define STREAMLIB_CORE_HISTOGRAM_END_BIASED_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "core/frequency/space_saving.h"

namespace streamlib {

/// End-biased histogram (per the paper's synopsis taxonomy): exact counts
/// for values whose frequency clears a threshold, a single uniform bucket
/// for everything else. The streaming adaptation tracks the frequent values
/// with SpaceSaving (counts are then eps-approximate rather than exact,
/// with the usual n/k bound) and attributes the residual mass to the
/// uniform tail.
class EndBiasedHistogram {
 public:
  /// \param num_tracked  values tracked individually (SpaceSaving capacity).
  explicit EndBiasedHistogram(size_t num_tracked);

  void Add(int64_t value, uint64_t weight = 1);

  /// Estimated frequency of `value`: the tracked estimate if monitored,
  /// otherwise the uniform-tail per-value mass.
  double EstimateFrequency(int64_t value) const;

  /// Tracked (value, count) pairs with count >= threshold, descending.
  std::vector<FrequentItem<int64_t>> FrequentValues(uint64_t threshold) const;

  /// Total stream mass not attributed to tracked values.
  uint64_t TailMass() const;

  /// Number of distinct untracked values seen (upper-bounded estimate used
  /// to spread the tail mass; exact while few, capped at 2x tracked size).
  uint64_t total() const { return total_; }

 private:
  SpaceSaving<int64_t> tracked_;
  uint64_t total_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_HISTOGRAM_END_BIASED_HISTOGRAM_H_
