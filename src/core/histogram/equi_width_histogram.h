#ifndef STREAMLIB_CORE_HISTOGRAM_EQUI_WIDTH_HISTOGRAM_H_
#define STREAMLIB_CORE_HISTOGRAM_EQUI_WIDTH_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// Equi-width streaming histogram over a fixed value domain [lo, hi):
/// the domain is split into equal buckets and each observation increments
/// one counter (out-of-range values clamp to the edge buckets). The paper's
/// synopsis-construction section lists equi-width histograms as the baseline
/// distribution summary.
class EquiWidthHistogram {
 public:
  EquiWidthHistogram(double lo, double hi, size_t num_buckets);

  void Add(double value, uint64_t weight = 1);

  /// Count in bucket `i`.
  uint64_t BucketCount(size_t i) const {
    STREAMLIB_CHECK(i < counts_.size());
    return counts_[i];
  }

  /// [lo, hi) range of bucket `i`.
  double BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double BucketHigh(size_t i) const { return BucketLow(i) + width_; }

  /// Estimated count of observations <= value, assuming uniform spread
  /// within buckets.
  double EstimateRank(double value) const;

  /// Estimated value at quantile phi (inverse of EstimateRank).
  double EstimateQuantile(double phi) const;

  /// Sum of squared errors of the piecewise-constant density against the
  /// per-bucket uniform assumption — the V-optimal objective evaluated on
  /// this partition, used by the histogram bench to compare layouts.
  double SseAgainst(const std::vector<double>& sorted_values) const;

  size_t num_buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_HISTOGRAM_EQUI_WIDTH_HISTOGRAM_H_
