#ifndef STREAMLIB_CORE_HISTOGRAM_V_OPTIMAL_HISTOGRAM_H_
#define STREAMLIB_CORE_HISTOGRAM_V_OPTIMAL_HISTOGRAM_H_

#include <cstddef>
#include <vector>

namespace streamlib {

/// One bucket of a piecewise-constant value approximation.
struct HistogramBucket {
  size_t begin = 0;    ///< first value index covered (inclusive)
  size_t end = 0;      ///< one past the last value index covered
  double mean = 0.0;   ///< the constant approximating values in [begin, end)
  double sse = 0.0;    ///< sum of squared error within the bucket
};

/// V-Optimal histogram construction (the paper's synopsis section defines it
/// as the piecewise-constant approximation minimizing total squared error;
/// streaming constructions are Guha–Koudas–Shim, cited as [96]).
///
/// `BuildExact` is the O(n^2 b) dynamic program (the evaluation baseline);
/// `BuildGreedy` is a one-pass merge heuristic standing in for the streaming
/// (1+eps)-approximation, whose SSE the histogram bench compares against the
/// exact optimum.
class VOptimalHistogram {
 public:
  /// Exact DP over `values` (in sequence order) with `num_buckets` pieces.
  static std::vector<HistogramBucket> BuildExact(
      const std::vector<double>& values, size_t num_buckets);

  /// Greedy bottom-up pairwise merging to `num_buckets` pieces: start from
  /// fine-grained buckets and repeatedly merge the adjacent pair with the
  /// smallest SSE increase. O(n log n), single pass over the data.
  static std::vector<HistogramBucket> BuildGreedy(
      const std::vector<double>& values, size_t num_buckets);

  /// Total SSE of a bucket list.
  static double TotalSse(const std::vector<HistogramBucket>& buckets);
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_HISTOGRAM_V_OPTIMAL_HISTOGRAM_H_
