#include "core/histogram/end_biased_histogram.h"

namespace streamlib {

EndBiasedHistogram::EndBiasedHistogram(size_t num_tracked)
    : tracked_(num_tracked) {}

void EndBiasedHistogram::Add(int64_t value, uint64_t weight) {
  tracked_.Add(value, weight);
  total_ += weight;
}

double EndBiasedHistogram::EstimateFrequency(int64_t value) const {
  const uint64_t est = tracked_.Estimate(value);
  const uint64_t err = tracked_.ErrorOf(value);
  if (est > err) return static_cast<double>(est);
  // Untracked: spread the residual mass uniformly over a nominal tail of
  // the same order as the tracked set (end-biased convention).
  const uint64_t tail = TailMass();
  const double tail_values =
      static_cast<double>(tracked_.capacity()) * 2.0 + 1.0;
  return static_cast<double>(tail) / tail_values;
}

std::vector<FrequentItem<int64_t>> EndBiasedHistogram::FrequentValues(
    uint64_t threshold) const {
  return tracked_.HeavyHitters(threshold);
}

uint64_t EndBiasedHistogram::TailMass() const {
  uint64_t tracked_mass = 0;
  for (const auto& item : tracked_.HeavyHitters(1)) {
    const uint64_t guaranteed = item.estimate - item.error_bound;
    tracked_mass += guaranteed;
  }
  return total_ > tracked_mass ? total_ - tracked_mass : 0;
}

}  // namespace streamlib
