#include "core/histogram/equi_width_histogram.h"

#include <algorithm>
#include <cmath>

namespace streamlib {

EquiWidthHistogram::EquiWidthHistogram(double lo, double hi,
                                       size_t num_buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(num_buckets)) {
  STREAMLIB_CHECK_MSG(hi > lo, "domain must be nonempty");
  STREAMLIB_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
  counts_.assign(num_buckets, 0);
}

void EquiWidthHistogram::Add(double value, uint64_t weight) {
  double idx = (value - lo_) / width_;
  size_t bucket;
  if (idx < 0.0) {
    bucket = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    bucket = counts_.size() - 1;
  } else {
    bucket = static_cast<size_t>(idx);
  }
  counts_[bucket] += weight;
  total_ += weight;
}

double EquiWidthHistogram::EstimateRank(double value) const {
  double rank = 0.0;
  for (size_t i = 0; i < counts_.size(); i++) {
    if (value >= BucketHigh(i)) {
      rank += static_cast<double>(counts_[i]);
    } else if (value > BucketLow(i)) {
      rank += static_cast<double>(counts_[i]) * (value - BucketLow(i)) / width_;
      break;
    } else {
      break;
    }
  }
  return rank;
}

double EquiWidthHistogram::EstimateQuantile(double phi) const {
  STREAMLIB_CHECK_MSG(phi >= 0.0 && phi <= 1.0, "phi must be in [0, 1]");
  const double target = phi * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); i++) {
    const double c = static_cast<double>(counts_[i]);
    if (cum + c >= target) {
      const double frac = c > 0.0 ? (target - cum) / c : 0.0;
      return BucketLow(i) + frac * width_;
    }
    cum += c;
  }
  return BucketHigh(counts_.size() - 1);
}

double EquiWidthHistogram::SseAgainst(
    const std::vector<double>& sorted_values) const {
  // For each bucket, the piecewise-constant model predicts the bucket mean;
  // SSE sums squared deviation of member values from their bucket mean.
  double sse = 0.0;
  size_t begin = 0;
  for (size_t b = 0; b < counts_.size(); b++) {
    const double hi = BucketHigh(b);
    size_t end = begin;
    while (end < sorted_values.size() &&
           (sorted_values[end] < hi || b + 1 == counts_.size())) {
      end++;
    }
    if (end > begin) {
      double mean = 0.0;
      for (size_t i = begin; i < end; i++) mean += sorted_values[i];
      mean /= static_cast<double>(end - begin);
      for (size_t i = begin; i < end; i++) {
        const double d = sorted_values[i] - mean;
        sse += d * d;
      }
    }
    begin = end;
  }
  return sse;
}

}  // namespace streamlib
