#include "core/histogram/v_optimal_histogram.h"

#include <cstdint>
#include <limits>
#include <queue>

#include "common/check.h"

namespace streamlib {
namespace {

// SSE of approximating values[i, j) by their mean, from prefix sums.
double SegmentSse(const std::vector<double>& prefix_sum,
                  const std::vector<double>& prefix_sq, size_t i, size_t j) {
  const double n = static_cast<double>(j - i);
  if (n <= 1.0) return 0.0;
  const double s = prefix_sum[j] - prefix_sum[i];
  const double q = prefix_sq[j] - prefix_sq[i];
  return q - s * s / n;
}

double SegmentMean(const std::vector<double>& prefix_sum, size_t i, size_t j) {
  return (prefix_sum[j] - prefix_sum[i]) / static_cast<double>(j - i);
}

void BuildPrefixes(const std::vector<double>& values,
                   std::vector<double>* prefix_sum,
                   std::vector<double>* prefix_sq) {
  prefix_sum->assign(values.size() + 1, 0.0);
  prefix_sq->assign(values.size() + 1, 0.0);
  for (size_t i = 0; i < values.size(); i++) {
    (*prefix_sum)[i + 1] = (*prefix_sum)[i] + values[i];
    (*prefix_sq)[i + 1] = (*prefix_sq)[i] + values[i] * values[i];
  }
}

}  // namespace

std::vector<HistogramBucket> VOptimalHistogram::BuildExact(
    const std::vector<double>& values, size_t num_buckets) {
  STREAMLIB_CHECK_MSG(!values.empty(), "empty input");
  STREAMLIB_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
  const size_t n = values.size();
  const size_t b = std::min(num_buckets, n);

  std::vector<double> prefix_sum;
  std::vector<double> prefix_sq;
  BuildPrefixes(values, &prefix_sum, &prefix_sq);

  constexpr double kInf = std::numeric_limits<double>::max();
  // dp[j]: min SSE of covering values[0, j) with the current bucket budget.
  std::vector<double> dp(n + 1, kInf);
  std::vector<std::vector<size_t>> split(b + 1,
                                         std::vector<size_t>(n + 1, 0));
  for (size_t j = 0; j <= n; j++) {
    dp[j] = SegmentSse(prefix_sum, prefix_sq, 0, j);
  }
  for (size_t budget = 2; budget <= b; budget++) {
    std::vector<double> next(n + 1, kInf);
    for (size_t j = budget; j <= n; j++) {
      for (size_t i = budget - 1; i < j; i++) {
        const double cost =
            dp[i] + SegmentSse(prefix_sum, prefix_sq, i, j);
        if (cost < next[j]) {
          next[j] = cost;
          split[budget][j] = i;
        }
      }
    }
    dp = std::move(next);
  }

  // Reconstruct boundaries.
  std::vector<HistogramBucket> buckets(b);
  size_t j = n;
  for (size_t budget = b; budget >= 1; budget--) {
    const size_t i = budget == 1 ? 0 : split[budget][j];
    buckets[budget - 1] = HistogramBucket{
        i, j, SegmentMean(prefix_sum, i, j),
        SegmentSse(prefix_sum, prefix_sq, i, j)};
    j = i;
  }
  return buckets;
}

std::vector<HistogramBucket> VOptimalHistogram::BuildGreedy(
    const std::vector<double>& values, size_t num_buckets) {
  STREAMLIB_CHECK_MSG(!values.empty(), "empty input");
  STREAMLIB_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
  const size_t n = values.size();

  std::vector<double> prefix_sum;
  std::vector<double> prefix_sq;
  BuildPrefixes(values, &prefix_sum, &prefix_sq);

  // Doubly linked list of bucket boundaries over [0, n].
  std::vector<size_t> prev(n + 1);
  std::vector<size_t> next(n + 1);
  std::vector<bool> alive(n + 1, true);
  for (size_t i = 0; i <= n; i++) {
    prev[i] = i == 0 ? 0 : i - 1;
    next[i] = i == n ? n : i + 1;
  }

  struct Merge {
    double cost;
    size_t boundary;  // Interior boundary to remove.
    uint64_t version; // For lazy invalidation.
  };
  struct MergeGreater {
    bool operator()(const Merge& a, const Merge& b) const {
      return a.cost > b.cost;
    }
  };
  std::vector<uint64_t> version(n + 1, 0);
  std::priority_queue<Merge, std::vector<Merge>, MergeGreater> heap;

  auto merge_cost = [&](size_t boundary) {
    const size_t left = prev[boundary];
    const size_t right = next[boundary];
    return SegmentSse(prefix_sum, prefix_sq, left, right) -
           SegmentSse(prefix_sum, prefix_sq, left, boundary) -
           SegmentSse(prefix_sum, prefix_sq, boundary, right);
  };

  for (size_t i = 1; i < n; i++) {
    heap.push(Merge{merge_cost(i), i, 0});
  }

  size_t buckets_left = n;
  while (buckets_left > num_buckets && !heap.empty()) {
    const Merge top = heap.top();
    heap.pop();
    const size_t boundary = top.boundary;
    if (!alive[boundary] || top.version != version[boundary]) continue;
    // Remove the boundary: splice the linked list.
    const size_t left = prev[boundary];
    const size_t right = next[boundary];
    alive[boundary] = false;
    next[left] = right;
    prev[right] = left;
    buckets_left--;
    // Refresh the two neighbouring interior boundaries.
    for (size_t nb : {left, right}) {
      if (nb != 0 && nb != n && alive[nb]) {
        version[nb]++;
        heap.push(Merge{merge_cost(nb), nb, version[nb]});
      }
    }
  }

  std::vector<HistogramBucket> out;
  size_t begin = 0;
  while (begin < n) {
    const size_t end = next[begin] == begin ? n : next[begin];
    out.push_back(HistogramBucket{
        begin, end, SegmentMean(prefix_sum, begin, end),
        SegmentSse(prefix_sum, prefix_sq, begin, end)});
    begin = end;
  }
  return out;
}

double VOptimalHistogram::TotalSse(
    const std::vector<HistogramBucket>& buckets) {
  double total = 0.0;
  for (const auto& b : buckets) total += b.sse;
  return total;
}

}  // namespace streamlib
