#include "core/cardinality/sliding_hyperloglog.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"

namespace streamlib {

SlidingHyperLogLog::SlidingHyperLogLog(int precision, uint64_t max_window)
    : precision_(precision), max_window_(max_window) {
  STREAMLIB_CHECK_MSG(precision >= 4 && precision <= 16,
                      "precision must be in [4, 16]");
  STREAMLIB_CHECK_MSG(max_window >= 1, "max_window must be >= 1");
  registers_.resize(size_t{1} << precision_);
}

void SlidingHyperLogLog::AddHash(uint64_t hash, uint64_t timestamp) {
  const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  // The remaining 64-p low bits, kept low-aligned for RankOfLeadingOne.
  const uint64_t remaining = (hash << precision_) >> precision_;
  const uint8_t rank =
      static_cast<uint8_t>(RankOfLeadingOne(remaining, 64 - precision_));

  std::deque<Entry>& lfpm = registers_[index];
  // Expire entries older than the maximum horizon.
  while (!lfpm.empty() &&
         lfpm.front().timestamp + max_window_ <= timestamp) {
    lfpm.pop_front();
  }
  // Dominance pruning: an older entry with rank <= the new rank can never be
  // the max of any future window that still contains the new entry.
  while (!lfpm.empty() && lfpm.back().rank <= rank) {
    lfpm.pop_back();
  }
  lfpm.push_back(Entry{timestamp, rank});
}

double SlidingHyperLogLog::Estimate(uint64_t now, uint64_t window) const {
  STREAMLIB_CHECK_MSG(window >= 1 && window <= max_window_,
                      "window out of range");
  const uint32_t m = uint32_t{1} << precision_;

  double inverse_sum = 0.0;
  uint32_t zeros = 0;
  for (const auto& lfpm : registers_) {
    // Ranks within an LFPM are strictly decreasing in time, so the first
    // unexpired entry carries the window maximum. An entry is in the window
    // iff timestamp + window > now (avoids unsigned underflow of now-window).
    uint8_t best = 0;
    for (const Entry& e : lfpm) {
      if (e.timestamp + window > now) {
        best = e.rank;
        break;
      }
    }
    inverse_sum += std::ldexp(1.0, -static_cast<int>(best));
    if (best == 0) zeros++;
  }

  const double md = static_cast<double>(m);
  const double alpha =
      m <= 16 ? 0.673
      : m <= 32 ? 0.697
      : m <= 64 ? 0.709
                : 0.7213 / (1.0 + 1.079 / md);
  const double raw = alpha * md * md / inverse_sum;
  if (raw <= 2.5 * md && zeros > 0) {
    return md * std::log(md / static_cast<double>(zeros));
  }
  return raw;
}

size_t SlidingHyperLogLog::TotalEntries() const {
  size_t total = 0;
  for (const auto& lfpm : registers_) total += lfpm.size();
  return total;
}

size_t SlidingHyperLogLog::MemoryBytes() const {
  return TotalEntries() * sizeof(Entry) +
         registers_.size() * sizeof(std::deque<Entry>);
}

}  // namespace streamlib
