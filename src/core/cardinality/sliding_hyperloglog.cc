#include "core/cardinality/sliding_hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/cardinality/hll_register.h"

namespace streamlib {

SlidingHyperLogLog::SlidingHyperLogLog(int precision, uint64_t max_window)
    : precision_(precision), max_window_(max_window) {
  STREAMLIB_CHECK_MSG(precision >= 4 && precision <= 16,
                      "precision must be in [4, 16]");
  STREAMLIB_CHECK_MSG(max_window >= 1, "max_window must be >= 1");
  registers_.resize(size_t{1} << precision_);
}

void SlidingHyperLogLog::AddHash(uint64_t hash, uint64_t timestamp) {
  const hll::RegisterProbe probe = hll::ProbeHash(hash, precision_);

  std::deque<Entry>& lfpm = registers_[probe.index];
  // Expire entries older than the maximum horizon.
  while (!lfpm.empty() &&
         lfpm.front().timestamp + max_window_ <= timestamp) {
    lfpm.pop_front();
  }
  // Dominance pruning: an older entry with rank <= the new rank can never be
  // the max of any future window that still contains the new entry.
  while (!lfpm.empty() && lfpm.back().rank <= probe.rank) {
    lfpm.pop_back();
  }
  lfpm.push_back(Entry{timestamp, probe.rank});
}

void SlidingHyperLogLog::AddHashBatch(std::span<const uint64_t> hashes,
                                      uint64_t timestamp) {
  for (uint64_t hash : hashes) AddHash(hash, timestamp);
}

double SlidingHyperLogLog::Estimate(uint64_t now, uint64_t window) const {
  STREAMLIB_CHECK_MSG(window >= 1 && window <= max_window_,
                      "window out of range");
  const uint32_t m = uint32_t{1} << precision_;

  double inverse_sum = 0.0;
  uint32_t zeros = 0;
  for (const auto& lfpm : registers_) {
    // Ranks within an LFPM are strictly decreasing in time, so the first
    // unexpired entry carries the window maximum. An entry is in the window
    // iff timestamp + window > now (avoids unsigned underflow of now-window).
    uint8_t best = 0;
    for (const Entry& e : lfpm) {
      if (e.timestamp + window > now) {
        best = e.rank;
        break;
      }
    }
    inverse_sum += std::ldexp(1.0, -static_cast<int>(best));
    if (best == 0) zeros++;
  }

  return hll::EstimateFromRegisterSum(m, inverse_sum, zeros);
}

Status SlidingHyperLogLog::Merge(const SlidingHyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("sliding HLL merge: precision mismatch");
  }
  if (other.max_window_ != max_window_) {
    return Status::InvalidArgument("sliding HLL merge: max_window mismatch");
  }
  // The merged stream's "now" is the newest timestamp on either side;
  // entries that have already aged past max_window relative to it can never
  // influence a future estimate.
  uint64_t latest = 0;
  for (const auto& reg : registers_) {
    if (!reg.empty()) latest = std::max(latest, reg.back().timestamp);
  }
  for (const auto& reg : other.registers_) {
    if (!reg.empty()) latest = std::max(latest, reg.back().timestamp);
  }
  for (size_t i = 0; i < registers_.size(); i++) {
    const std::deque<Entry>& a = registers_[i];
    const std::deque<Entry>& b = other.registers_[i];
    if (b.empty()) continue;
    // Interleave both LFPMs by timestamp, then re-apply dominance pruning —
    // exactly what replaying the combined arrival order would have built.
    std::vector<Entry> merged;
    merged.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(merged),
               [](const Entry& x, const Entry& y) {
                 return x.timestamp < y.timestamp;
               });
    std::deque<Entry> out;
    for (const Entry& e : merged) {
      if (e.timestamp + max_window_ <= latest) continue;  // Expired.
      while (!out.empty() && out.back().rank <= e.rank) out.pop_back();
      out.push_back(e);
    }
    registers_[i] = std::move(out);
  }
  return Status::OK();
}

void SlidingHyperLogLog::SerializeTo(ByteWriter& w) const {
  w.PutU8(static_cast<uint8_t>(precision_));
  w.PutU64(max_window_);
  for (const auto& lfpm : registers_) {
    w.PutVarint(lfpm.size());
    for (const Entry& e : lfpm) {
      w.PutVarint(e.timestamp);
      w.PutU8(e.rank);
    }
  }
}

Result<SlidingHyperLogLog> SlidingHyperLogLog::Deserialize(ByteReader& r) {
  uint8_t precision = 0;
  uint64_t max_window = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&precision));
  STREAMLIB_RETURN_NOT_OK(r.GetU64(&max_window));
  if (precision < 4 || precision > 16) {
    return Status::Corruption("sliding HLL: precision out of range");
  }
  if (max_window < 1) {
    return Status::Corruption("sliding HLL: max_window out of range");
  }
  SlidingHyperLogLog sketch(precision, max_window);
  for (auto& lfpm : sketch.registers_) {
    uint64_t count = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
    // Two bytes minimum per serialized entry: a count the remaining payload
    // cannot possibly hold is corruption, caught before allocating.
    if (count * 2 > r.remaining()) {
      return Status::Corruption("sliding HLL: LFPM count exceeds payload");
    }
    uint64_t prev_timestamp = 0;
    uint8_t prev_rank = 255;
    for (uint64_t i = 0; i < count; i++) {
      uint64_t timestamp = 0;
      uint8_t rank = 0;
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&timestamp));
      STREAMLIB_RETURN_NOT_OK(r.GetU8(&rank));
      // LFPM invariant: timestamps nondecreasing, ranks strictly decreasing.
      if (rank == 0 || rank >= prev_rank ||
          (i > 0 && timestamp < prev_timestamp)) {
        return Status::Corruption("sliding HLL: LFPM invariant violated");
      }
      lfpm.push_back(Entry{timestamp, rank});
      prev_timestamp = timestamp;
      prev_rank = rank;
    }
  }
  return sketch;
}

size_t SlidingHyperLogLog::TotalEntries() const {
  size_t total = 0;
  for (const auto& lfpm : registers_) total += lfpm.size();
  return total;
}

size_t SlidingHyperLogLog::MemoryBytes() const {
  return TotalEntries() * sizeof(Entry) +
         registers_.size() * sizeof(std::deque<Entry>);
}

}  // namespace streamlib
