#include "core/cardinality/loglog.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"

namespace streamlib {

LogLogCounter::LogLogCounter(int precision) : precision_(precision) {
  STREAMLIB_CHECK_MSG(precision >= 4 && precision <= 16,
                      "precision must be in [4, 16]");
  registers_.assign(size_t{1} << precision_, 0);
}

void LogLogCounter::AddHash(uint64_t hash) {
  const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  // The remaining 64-p low bits, kept low-aligned for RankOfLeadingOne.
  const uint64_t remaining = (hash << precision_) >> precision_;
  const uint8_t rank =
      static_cast<uint8_t>(RankOfLeadingOne(remaining, 64 - precision_));
  if (rank > registers_[index]) registers_[index] = rank;
}

double LogLogCounter::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double rank_sum = 0.0;
  for (uint8_t r : registers_) rank_sum += r;
  // alpha_m -> Gamma(-1/m)^m-based constant; 0.39701 is the asymptotic value
  // (Durand & Flajolet), accurate for m >= 64.
  const double alpha = 0.39701;
  return alpha * m * std::exp2(rank_sum / m);
}

}  // namespace streamlib
