#include "core/cardinality/loglog.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/cardinality/hll_register.h"

namespace streamlib {

LogLogCounter::LogLogCounter(int precision) : precision_(precision) {
  STREAMLIB_CHECK_MSG(precision >= 4 && precision <= 16,
                      "precision must be in [4, 16]");
  registers_.assign(size_t{1} << precision_, 0);
}

void LogLogCounter::AddHash(uint64_t hash) {
  const hll::RegisterProbe probe = hll::ProbeHash(hash, precision_);
  if (probe.rank > registers_[probe.index]) {
    registers_[probe.index] = probe.rank;
  }
}

double LogLogCounter::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double rank_sum = 0.0;
  for (uint8_t r : registers_) rank_sum += r;
  // alpha_m -> Gamma(-1/m)^m-based constant; 0.39701 is the asymptotic value
  // (Durand & Flajolet), accurate for m >= 64.
  const double alpha = 0.39701;
  return alpha * m * std::exp2(rank_sum / m);
}

Status LogLogCounter::Merge(const LogLogCounter& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("LogLog merge: precision mismatch");
  }
  for (size_t i = 0; i < registers_.size(); i++) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

void LogLogCounter::SerializeTo(ByteWriter& w) const {
  w.PutU8(static_cast<uint8_t>(precision_));
  w.PutBytes(registers_.data(), registers_.size());
}

Result<LogLogCounter> LogLogCounter::Deserialize(ByteReader& r) {
  uint8_t precision = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&precision));
  if (precision < 4 || precision > 16) {
    return Status::Corruption("LogLog: precision out of range");
  }
  LogLogCounter counter(precision);
  if (r.remaining() < counter.registers_.size()) {
    return Status::Corruption("LogLog: register payload truncated");
  }
  STREAMLIB_RETURN_NOT_OK(
      r.GetBytes(counter.registers_.data(), counter.registers_.size()));
  return counter;
}

}  // namespace streamlib
