#ifndef STREAMLIB_CORE_CARDINALITY_HYPERLOGLOG_H_
#define STREAMLIB_CORE_CARDINALITY_HYPERLOGLOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// HyperLogLog (Flajolet, Fusy, Gandouet & Meunier, cited as [85]) with the
/// HyperLogLog++ practical refinements from Heule, Nunkesser & Hall [103]:
/// 64-bit hashing (no large-range correction needed) and a sparse
/// representation for low cardinalities that upgrades to the dense 2^p
/// register array on demand. Standard error is ~1.04 / sqrt(2^p).
///
/// Below the linear-counting threshold the estimator answers with linear
/// counting over the zero registers, per both the original paper and HLL++.
/// (HLL++'s empirically fitted bias tables are omitted; linear counting
/// covers the regime they correct — the deviation is visible only in a
/// narrow band around ~3·2^p and is quantified in the cardinality bench.)
///
/// Application (Table 1): site-audience analysis — distinct users/queries.
class HyperLogLog {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kHyperLogLog;
  static constexpr uint16_t kStateVersion = 1;

  /// Digest seed — public so batched feeders can pre-hash keys once.
  static constexpr uint64_t kHashSeed = 0x5bd1e9955bd1e995ULL;

  /// \param precision  p in [4, 18]; 2^p registers, stderr ~1.04/sqrt(2^p).
  /// \param sparse     start in sparse mode (HLL++-style) when true.
  explicit HyperLogLog(int precision, bool sparse = true);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);

  /// Batched AddHash. While sparse it replays the scalar sequence exactly
  /// (including a mid-batch densify); once dense it streams register maxes
  /// with prefetch. Register max commutes, so the final state is
  /// bit-identical to calling AddHash per digest in order.
  void AddHashBatch(std::span<const uint64_t> hashes);

  /// Batched Add over raw keys. 64-bit integral keys take a fused
  /// hash+probe kernel (no digest buffer round-trip); other key types hash
  /// per chunk into AddHashBatch. Bit-identical to N scalar Add calls.
  template <typename T>
  void AddBatch(std::span<const T> keys) {
    if constexpr (std::is_integral_v<T> && sizeof(T) == sizeof(uint64_t)) {
      AddBatch64(reinterpret_cast<const uint64_t*>(keys.data()), keys.size());
      return;
    }
    uint64_t digests[kBatchChunk];
    for (size_t done = 0; done < keys.size();) {
      const size_t n = keys.size() - done < kBatchChunk ? keys.size() - done
                                                        : kBatchChunk;
      for (size_t i = 0; i < n; i++) {
        digests[i] = HashValue(keys[done + i], kHashSeed);
      }
      AddHashBatch(std::span<const uint64_t>(digests, n));
      done += n;
    }
  }

  /// Estimated distinct count.
  double Estimate() const;

  /// In-place union; requires equal precision. The union of two HLLs is the
  /// register-wise max and estimates the cardinality of the set union.
  Status Merge(const HyperLogLog& other);

  /// True while the sketch holds the exact (hash-level) sparse set.
  bool IsSparse() const { return sparse_; }

  int precision() const { return precision_; }
  uint32_t num_registers() const { return uint32_t{1} << precision_; }

  /// Current memory footprint (sparse buffer or dense registers).
  size_t MemoryBytes() const;

  /// state::MergeableSketch payload: precision byte plus the dense 2^p
  /// registers (sparse sketches are densified on save).
  void SerializeTo(ByteWriter& w) const;
  static Result<HyperLogLog> Deserialize(ByteReader& r);

  /// Legacy whole-buffer forms (wire-compatible with SerializeTo).
  std::vector<uint8_t> Serialize() const;
  static Result<HyperLogLog> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  static constexpr size_t kBatchChunk = 64;
  // Sparse set upgrades to dense when it would exceed dense memory * 0.75.
  size_t SparseLimit() const { return (size_t{1} << precision_) * 3 / 4 / 8; }

  void AddHashDense(uint64_t hash);
  void AddBatch64(const uint64_t* keys, size_t n);
  void Densify();
  double EstimateDense() const;
  static double Alpha(uint32_t m);

  int precision_;
  bool sparse_;
  std::vector<uint64_t> sparse_hashes_;  // Exact hash set while sparse.
  std::vector<uint8_t> registers_;       // Dense registers once upgraded.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_HYPERLOGLOG_H_
