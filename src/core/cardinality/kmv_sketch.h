#ifndef STREAMLIB_CORE_CARDINALITY_KMV_SKETCH_H_
#define STREAMLIB_CORE_CARDINALITY_KMV_SKETCH_H_

#include <cstdint>
#include <set>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// K-Minimum-Values sketch (Bar-Yossef et al., cited as [46]; Giroire [92];
/// the basis of "theta" sketches in DataSketches [141]). Keeps the k smallest
/// distinct 64-bit hash values; the k-th smallest, mapped to (0,1], estimates
/// distinct count as (k-1)/h_(k). Unlike HLL, KMV sketches compose under set
/// *intersection* as well as union, enabling Jaccard estimates — the
/// "audience overlap" query in the paper's site-analysis application.
class KmvSketch {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kKmvSketch;
  static constexpr uint16_t kStateVersion = 1;

  /// \param k  number of minima retained; stderr ~ 1/sqrt(k-2).
  explicit KmvSketch(uint32_t k);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);

  /// Estimated distinct count. Exact while fewer than k distinct hashes.
  double Estimate() const;

  /// In-place union with a sketch of the same k.
  Status Merge(const KmvSketch& other);

  /// Estimated Jaccard similarity |A ∩ B| / |A ∪ B| of the two underlying
  /// sets, via the k smallest values of the union.
  static double EstimateJaccard(const KmvSketch& a, const KmvSketch& b);

  /// Estimated intersection size: Jaccard * |A ∪ B|.
  static double EstimateIntersection(const KmvSketch& a, const KmvSketch& b);

  /// state::MergeableSketch payload: k, then the sorted minima.
  void SerializeTo(ByteWriter& w) const;
  static Result<KmvSketch> Deserialize(ByteReader& r);

  uint32_t k() const { return k_; }
  size_t size() const { return minima_.size(); }
  size_t MemoryBytes() const { return minima_.size() * sizeof(uint64_t); }

 private:
  static constexpr uint64_t kHashSeed = 0x6c62272e07bb0142ULL;

  uint32_t k_;
  std::set<uint64_t> minima_;  // The up-to-k smallest distinct hashes.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_KMV_SKETCH_H_
