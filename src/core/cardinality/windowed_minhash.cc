#include "core/cardinality/windowed_minhash.h"

#include <limits>

namespace streamlib {

WindowedMinHash::WindowedMinHash(uint32_t num_hashes, uint64_t window)
    : window_(window) {
  STREAMLIB_CHECK_MSG(num_hashes >= 1, "need at least one hash");
  STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
  queues_.resize(num_hashes);
}

void WindowedMinHash::AddHash(uint64_t hash, uint64_t time) {
  for (uint32_t i = 0; i < queues_.size(); i++) {
    const uint64_t value = HashInt64(hash, i + 1);
    std::deque<Entry>& queue = queues_[i];
    // Expire entries that left the window.
    while (!queue.empty() && queue.front().time + window_ <= time) {
      queue.pop_front();
    }
    // Dominance pruning: an older entry with value >= the newcomer's can
    // never again be the minimum of a window containing the newcomer.
    while (!queue.empty() && queue.back().value >= value) {
      queue.pop_back();
    }
    queue.push_back(Entry{time, value});
  }
}

uint64_t WindowedMinHash::MinOf(uint32_t i, uint64_t now) const {
  STREAMLIB_CHECK(i < queues_.size());
  for (const Entry& e : queues_[i]) {
    if (e.time + window_ > now) return e.value;
  }
  return std::numeric_limits<uint64_t>::max();
}

double WindowedMinHash::EstimateJaccard(const WindowedMinHash& a,
                                        const WindowedMinHash& b,
                                        uint64_t now) {
  STREAMLIB_CHECK_MSG(
      a.queues_.size() == b.queues_.size() && a.window_ == b.window_,
      "geometry mismatch");
  uint32_t agree = 0;
  for (uint32_t i = 0; i < a.queues_.size(); i++) {
    if (a.MinOf(i, now) == b.MinOf(i, now)) agree++;
  }
  return static_cast<double>(agree) /
         static_cast<double>(a.queues_.size());
}

size_t WindowedMinHash::TotalEntries() const {
  size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

}  // namespace streamlib
