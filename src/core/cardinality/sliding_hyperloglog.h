#ifndef STREAMLIB_CORE_CARDINALITY_SLIDING_HYPERLOGLOG_H_
#define STREAMLIB_CORE_CARDINALITY_SLIDING_HYPERLOGLOG_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Sliding HyperLogLog (Chabchoub & Hébrail, cited as [54]): answers
/// "how many distinct keys in the last w time units" for *any* w up to a
/// configured maximum. Each register keeps the List of Possible Future
/// Maxima (LFPM): (timestamp, rank) pairs where no later pair has an equal
/// or higher rank; expired and dominated pairs are pruned, so per-register
/// memory stays O(log window) in expectation.
class SlidingHyperLogLog {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kSlidingHyperLogLog;
  static constexpr uint16_t kStateVersion = 1;

  /// Digest seed — public so batched feeders can pre-hash keys once.
  static constexpr uint64_t kHashSeed = 0x5bd1e9955bd1e995ULL;

  /// \param precision   p in [4, 16]; 2^p registers.
  /// \param max_window  maximum look-back horizon in time units.
  SlidingHyperLogLog(int precision, uint64_t max_window);

  /// Records a key arrival at time `timestamp` (monotonically nondecreasing).
  template <typename T>
  void Add(const T& key, uint64_t timestamp) {
    AddHash(HashValue(key, kHashSeed), timestamp);
  }

  void AddHash(uint64_t hash, uint64_t timestamp);

  /// Batched AddHash: all digests arrive at the same `timestamp` (the
  /// batched-transport case — one flush shares an arrival tick). LFPM
  /// pruning is order-dependent, so the per-register apply loop stays
  /// sequential and bit-identical; the batch win is upstream vectorized
  /// hashing via AddBatch.
  void AddHashBatch(std::span<const uint64_t> hashes, uint64_t timestamp);

  /// Batched Add over raw keys at one timestamp: vectorized hashing
  /// (64-bit integral keys) feeding AddHashBatch. Bit-identical to N
  /// scalar Add calls.
  template <typename T>
  void AddBatch(std::span<const T> keys, uint64_t timestamp) {
    uint64_t digests[kBatchChunk];
    for (size_t done = 0; done < keys.size();) {
      const size_t n = keys.size() - done < kBatchChunk ? keys.size() - done
                                                        : kBatchChunk;
      if constexpr (std::is_integral_v<T> && sizeof(T) == sizeof(uint64_t)) {
        HashBatch64(reinterpret_cast<const uint64_t*>(keys.data() + done), n,
                    kHashSeed, digests);
      } else {
        for (size_t i = 0; i < n; i++) {
          digests[i] = HashValue(keys[done + i], kHashSeed);
        }
      }
      AddHashBatch(std::span<const uint64_t>(digests, n), timestamp);
      done += n;
    }
  }

  /// Estimated distinct keys among arrivals in (now - window, now].
  /// `window` must be <= max_window; `now` >= the last Add timestamp.
  double Estimate(uint64_t now, uint64_t window) const;

  /// In-place union over two partial streams; requires equal precision and
  /// max_window. Each register's merged LFPM is the dominance-pruned union
  /// of both sides' entries, so any window estimate over the merged sketch
  /// equals the estimate over the interleaved combined stream.
  Status Merge(const SlidingHyperLogLog& other);

  /// state::MergeableSketch payload: precision, max_window, then each
  /// register's LFPM as (count, (timestamp, rank)...).
  void SerializeTo(ByteWriter& w) const;
  static Result<SlidingHyperLogLog> Deserialize(ByteReader& r);

  int precision() const { return precision_; }
  uint64_t max_window() const { return max_window_; }

  /// Total LFPM entries across registers (memory diagnostic).
  size_t TotalEntries() const;
  size_t MemoryBytes() const;

 private:
  static constexpr size_t kBatchChunk = 64;

  struct Entry {
    uint64_t timestamp;
    uint8_t rank;
  };

  int precision_;
  uint64_t max_window_;
  std::vector<std::deque<Entry>> registers_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_SLIDING_HYPERLOGLOG_H_
