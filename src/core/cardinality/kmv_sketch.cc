#include "core/cardinality/kmv_sketch.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace streamlib {
namespace {

// Maps a 64-bit hash to (0, 1].
double ToUnit(uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

KmvSketch::KmvSketch(uint32_t k) : k_(k) {
  STREAMLIB_CHECK_MSG(k >= 3, "k must be >= 3 for a meaningful estimate");
}

void KmvSketch::AddHash(uint64_t hash) {
  if (minima_.size() < k_) {
    minima_.insert(hash);
    return;
  }
  auto last = std::prev(minima_.end());
  if (hash < *last && minima_.find(hash) == minima_.end()) {
    minima_.erase(last);
    minima_.insert(hash);
  }
}

double KmvSketch::Estimate() const {
  if (minima_.size() < k_) {
    return static_cast<double>(minima_.size());  // Exact below k.
  }
  const double kth = ToUnit(*std::prev(minima_.end()));
  return (static_cast<double>(k_) - 1.0) / kth;
}

Status KmvSketch::Merge(const KmvSketch& other) {
  if (other.k_ != k_) {
    return Status::InvalidArgument("KMV merge: k mismatch");
  }
  for (uint64_t h : other.minima_) AddHash(h);
  return Status::OK();
}

void KmvSketch::SerializeTo(ByteWriter& w) const {
  w.PutU32(k_);
  w.PutVarint(minima_.size());
  for (uint64_t h : minima_) w.PutU64(h);
}

Result<KmvSketch> KmvSketch::Deserialize(ByteReader& r) {
  uint32_t k = 0;
  uint64_t count = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&k));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
  if (k < 3) return Status::Corruption("KMV: k out of range");
  if (count > k) return Status::Corruption("KMV: more minima than k");
  if (count * sizeof(uint64_t) > r.remaining()) {
    return Status::Corruption("KMV: minima count exceeds payload");
  }
  KmvSketch sketch(k);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; i++) {
    uint64_t h = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&h));
    if (i > 0 && h <= prev) {
      return Status::Corruption("KMV: minima not strictly increasing");
    }
    sketch.minima_.insert(sketch.minima_.end(), h);
    prev = h;
  }
  return sketch;
}

double KmvSketch::EstimateJaccard(const KmvSketch& a, const KmvSketch& b) {
  STREAMLIB_CHECK_MSG(a.k_ == b.k_, "Jaccard requires equal k");
  // k smallest hashes of the union.
  std::vector<uint64_t> merged;
  merged.reserve(a.minima_.size() + b.minima_.size());
  std::set_union(a.minima_.begin(), a.minima_.end(), b.minima_.begin(),
                 b.minima_.end(), std::back_inserter(merged));
  const size_t k = std::min<size_t>(a.k_, merged.size());
  if (k == 0) return 0.0;
  // Fraction of the union's k minima present in both sketches.
  size_t in_both = 0;
  for (size_t i = 0; i < k; i++) {
    const uint64_t h = merged[i];
    if (a.minima_.count(h) != 0 && b.minima_.count(h) != 0) in_both++;
  }
  return static_cast<double>(in_both) / static_cast<double>(k);
}

double KmvSketch::EstimateIntersection(const KmvSketch& a,
                                       const KmvSketch& b) {
  KmvSketch u = a;
  STREAMLIB_CHECK(u.Merge(b).ok());
  return EstimateJaccard(a, b) * u.Estimate();
}

}  // namespace streamlib
