#ifndef STREAMLIB_CORE_CARDINALITY_LINEAR_COUNTER_H_
#define STREAMLIB_CORE_CARDINALITY_LINEAR_COUNTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Linear (probabilistic) counting — Whang et al.; the small-range estimator
/// HyperLogLog falls back to. A bitmap of m bits is populated by hashing;
/// the estimate is m * ln(m / zero_bits). Accurate while the map is sparse
/// (distinct count up to a small multiple of m); memory O(m) bits.
class LinearCounter {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kLinearCounter;
  static constexpr uint16_t kStateVersion = 1;

  /// \param num_bits  bitmap size (rounded up to a multiple of 64).
  explicit LinearCounter(uint64_t num_bits);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);

  /// Estimated number of distinct keys. Returns num_bits * ln(num_bits) as a
  /// saturation cap when every bit is set.
  double Estimate() const;

  /// In-place union with an identically sized counter.
  Status Union(const LinearCounter& other);

  /// Contract-spelling alias for Union.
  Status Merge(const LinearCounter& other) { return Union(other); }

  /// state::MergeableSketch payload: bit count, then the bitmap words.
  void SerializeTo(ByteWriter& w) const;
  static Result<LinearCounter> Deserialize(ByteReader& r);

  uint64_t num_bits() const { return num_bits_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  static constexpr uint64_t kHashSeed = 0x8badf00d8badf00dULL;

  uint64_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_LINEAR_COUNTER_H_
