#ifndef STREAMLIB_CORE_CARDINALITY_WINDOWED_MINHASH_H_
#define STREAMLIB_CORE_CARDINALITY_WINDOWED_MINHASH_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace streamlib {

/// Similarity over data stream windows — the problem of Datar &
/// Muthukrishnan (cited as [73], "estimating rarity and similarity over
/// data stream windows"). A bank of k min-hash functions, each maintained
/// over a sliding window with a monotonic queue (the same
/// dominated-entry pruning as sliding HyperLogLog): per function, entries
/// whose hash is >= a fresher entry's hash can never again be the window
/// minimum, so expected memory is O(k log W).
///
/// The Jaccard similarity of two windowed streams is estimated as the
/// fraction of hash functions whose window minima agree — the classic
/// min-wise estimator, now valid for *any* aligned window position.
class WindowedMinHash {
 public:
  /// \param num_hashes  k; similarity stderr ~ 1/sqrt(k).
  /// \param window      sliding window length in arrivals.
  WindowedMinHash(uint32_t num_hashes, uint64_t window);

  /// Records a key arriving at position `time` (monotonically
  /// nondecreasing; share a clock between streams being compared).
  template <typename T>
  void Add(const T& key, uint64_t time) {
    AddHash(HashValue(key, kHashSeed), time);
  }

  void AddHash(uint64_t hash, uint64_t time);

  /// Estimated Jaccard similarity of the two streams' current windows.
  /// Both must share geometry and have seen data.
  static double EstimateJaccard(const WindowedMinHash& a,
                                const WindowedMinHash& b, uint64_t now);

  /// Current minimum of hash function `i` over the window, or UINT64_MAX.
  uint64_t MinOf(uint32_t i, uint64_t now) const;

  uint32_t num_hashes() const {
    return static_cast<uint32_t>(queues_.size());
  }
  uint64_t window() const { return window_; }

  /// Total retained entries across functions (memory diagnostic).
  size_t TotalEntries() const;

 private:
  static constexpr uint64_t kHashSeed = 0x243f6a8885a308d3ULL;

  struct Entry {
    uint64_t time;
    uint64_t value;
  };

  uint64_t window_;
  // Per function: entries with strictly increasing hash values front-to-
  // back; front = current window minimum (after expiry).
  std::vector<std::deque<Entry>> queues_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_WINDOWED_MINHASH_H_
