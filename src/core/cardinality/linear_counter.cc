#include "core/cardinality/linear_counter.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"

namespace streamlib {

LinearCounter::LinearCounter(uint64_t num_bits)
    : num_bits_((num_bits + 63) / 64 * 64) {
  STREAMLIB_CHECK_MSG(num_bits >= 64, "need at least 64 bits");
  words_.assign(num_bits_ / 64, 0);
}

void LinearCounter::AddHash(uint64_t hash) {
  const uint64_t bit = hash % num_bits_;
  words_[bit >> 6] |= uint64_t{1} << (bit & 63);
}

double LinearCounter::Estimate() const {
  uint64_t set_bits = 0;
  for (uint64_t w : words_) set_bits += PopCount64(w);
  const uint64_t zero_bits = num_bits_ - set_bits;
  const double m = static_cast<double>(num_bits_);
  if (zero_bits == 0) return m * std::log(m);  // Saturated.
  return m * std::log(m / static_cast<double>(zero_bits));
}

Status LinearCounter::Union(const LinearCounter& other) {
  if (other.num_bits_ != num_bits_) {
    return Status::InvalidArgument("LinearCounter union: size mismatch");
  }
  for (size_t i = 0; i < words_.size(); i++) words_[i] |= other.words_[i];
  return Status::OK();
}

void LinearCounter::SerializeTo(ByteWriter& w) const {
  w.PutU64(num_bits_);
  for (uint64_t word : words_) w.PutU64(word);
}

Result<LinearCounter> LinearCounter::Deserialize(ByteReader& r) {
  uint64_t num_bits = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU64(&num_bits));
  if (num_bits < 64 || num_bits % 64 != 0) {
    return Status::Corruption("LinearCounter: bit count not a multiple of 64");
  }
  if (num_bits / 64 * sizeof(uint64_t) > r.remaining()) {
    return Status::Corruption("LinearCounter: bit count exceeds payload");
  }
  LinearCounter counter(num_bits);
  for (uint64_t& word : counter.words_) {
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&word));
  }
  return counter;
}

}  // namespace streamlib
