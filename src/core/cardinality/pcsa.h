#ifndef STREAMLIB_CORE_CARDINALITY_PCSA_H_
#define STREAMLIB_CORE_CARDINALITY_PCSA_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Probabilistic Counting with Stochastic Averaging — Flajolet & Martin,
/// FOCS 1983 (cited as [86]; the ancestor of the whole LogLog/HyperLogLog
/// line). Each of m bitmaps records which trailing-zero ranks have been
/// seen among its hash partition; the estimate is m/phi * 2^(mean R) where
/// R is each bitmap's lowest unset position and phi ~ 0.77351 is the FM
/// magic constant. Standard error ~ 0.78/sqrt(m) — kept as the historical
/// baseline the cardinality bench charts against LogLog and HLL.
class PcsaCounter {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kPcsa;
  static constexpr uint16_t kStateVersion = 1;

  /// \param num_bitmaps  m (rounded up to a power of two), 64 bits each.
  explicit PcsaCounter(uint32_t num_bitmaps);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);

  /// Estimated distinct count.
  double Estimate() const;

  /// In-place union (bitwise OR of bitmaps).
  Status Merge(const PcsaCounter& other);

  /// state::MergeableSketch payload: bitmap count, then the 64-bit bitmaps.
  void SerializeTo(ByteWriter& w) const;
  static Result<PcsaCounter> Deserialize(ByteReader& r);

  uint32_t num_bitmaps() const {
    return static_cast<uint32_t>(bitmaps_.size());
  }
  size_t MemoryBytes() const { return bitmaps_.size() * sizeof(uint64_t); }

 private:
  static constexpr uint64_t kHashSeed = 0x7fe5f0cc10b0a482ULL;

  std::vector<uint64_t> bitmaps_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_PCSA_H_
