#include "core/cardinality/windowed_rarity.h"

namespace streamlib {

WindowedRarity::WindowedRarity(uint32_t num_hashes, uint64_t window)
    : window_(window) {
  STREAMLIB_CHECK_MSG(num_hashes >= 1, "need at least one hash");
  STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
  queues_.resize(num_hashes);
}

void WindowedRarity::AddHash(uint64_t hash, uint64_t time) {
  STREAMLIB_DCHECK(time >= last_time_);
  last_time_ = time;
  occurrences_[hash].push_back(time);

  for (uint32_t i = 0; i < queues_.size(); i++) {
    const uint64_t value = HashInt64(hash, i + 1);
    std::deque<Entry>& queue = queues_[i];
    while (!queue.empty() && queue.front().time + window_ <= time) {
      queue.pop_front();
    }
    while (!queue.empty() && queue.back().value >= value) {
      queue.pop_back();
    }
    queue.push_back(Entry{time, value, hash});
  }

  // Periodic GC: drop occurrence histories of keys no queue references —
  // only referenced keys can become a window minimum, and by the time an
  // evicted key re-enters the candidate set its dropped occurrences have
  // expired, so counts at query time stay exact.
  if ((time & 0xff) == 0) {
    std::unordered_map<uint64_t, uint32_t> referenced;
    for (const auto& queue : queues_) {
      for (const Entry& e : queue) referenced[e.key_hash]++;
    }
    for (auto it = occurrences_.begin(); it != occurrences_.end();) {
      if (referenced.find(it->first) == referenced.end()) {
        it = occurrences_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

const WindowedRarity::Entry* WindowedRarity::MinEntry(uint32_t i,
                                                      uint64_t now) const {
  for (const Entry& e : queues_[i]) {
    if (e.time + window_ > now) return &e;
  }
  return nullptr;
}

double WindowedRarity::EstimateRarity(uint32_t alpha, uint64_t now) const {
  uint32_t eligible = 0;
  uint32_t hits = 0;
  for (uint32_t i = 0; i < queues_.size(); i++) {
    const Entry* entry = MinEntry(i, now);
    if (entry == nullptr) continue;
    eligible++;
    auto it = occurrences_.find(entry->key_hash);
    if (it == occurrences_.end()) continue;  // Should not happen.
    // Lazily prune expired timestamps.
    std::deque<uint64_t>& times = it->second;
    while (!times.empty() && times.front() + window_ <= now) {
      times.pop_front();
    }
    if (times.size() == alpha) hits++;
  }
  return eligible == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(eligible);
}

}  // namespace streamlib
