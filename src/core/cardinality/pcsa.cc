#include "core/cardinality/pcsa.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"

namespace streamlib {

namespace {
// Flajolet–Martin correction constant phi.
constexpr double kPhi = 0.77351;
}  // namespace

PcsaCounter::PcsaCounter(uint32_t num_bitmaps) {
  STREAMLIB_CHECK_MSG(num_bitmaps >= 2, "need at least 2 bitmaps");
  bitmaps_.assign(NextPowerOfTwo(num_bitmaps), 0);
}

void PcsaCounter::AddHash(uint64_t hash) {
  const uint64_t m = bitmaps_.size();
  const uint64_t bucket = hash & (m - 1);
  const uint64_t rest = hash >> Log2Floor(m);
  // Rank = number of trailing zeros of the remaining bits (capped at 63).
  int rank = CountTrailingZeros64(rest);
  if (rank > 63) rank = 63;
  bitmaps_[bucket] |= uint64_t{1} << rank;
}

double PcsaCounter::Estimate() const {
  const double m = static_cast<double>(bitmaps_.size());
  double rank_sum = 0.0;
  for (uint64_t bitmap : bitmaps_) {
    // R = position of the lowest 0 bit.
    const uint64_t inverted = ~bitmap;
    rank_sum += static_cast<double>(CountTrailingZeros64(inverted));
  }
  return m / kPhi * std::exp2(rank_sum / m);
}

Status PcsaCounter::Merge(const PcsaCounter& other) {
  if (other.bitmaps_.size() != bitmaps_.size()) {
    return Status::InvalidArgument("PCSA merge: bitmap count mismatch");
  }
  for (size_t i = 0; i < bitmaps_.size(); i++) {
    bitmaps_[i] |= other.bitmaps_[i];
  }
  return Status::OK();
}

void PcsaCounter::SerializeTo(ByteWriter& w) const {
  w.PutU32(static_cast<uint32_t>(bitmaps_.size()));
  for (uint64_t bitmap : bitmaps_) w.PutU64(bitmap);
}

Result<PcsaCounter> PcsaCounter::Deserialize(ByteReader& r) {
  uint32_t m = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&m));
  // The constructor rounds up to a power of two, so a serialized m is one.
  if (m < 2 || !IsPowerOfTwo(m)) {
    return Status::Corruption("PCSA: bitmap count not a power of two >= 2");
  }
  if (static_cast<uint64_t>(m) * sizeof(uint64_t) > r.remaining()) {
    return Status::Corruption("PCSA: bitmap count exceeds payload");
  }
  PcsaCounter counter(m);
  for (uint32_t i = 0; i < m; i++) {
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&counter.bitmaps_[i]));
  }
  return counter;
}

}  // namespace streamlib
