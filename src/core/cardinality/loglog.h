#ifndef STREAMLIB_CORE_CARDINALITY_LOGLOG_H_
#define STREAMLIB_CORE_CARDINALITY_LOGLOG_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// LogLog counting (Durand & Flajolet, cited as [78]) — HyperLogLog's
/// predecessor. Same register array, but the estimator is the *geometric
/// mean* alpha_m * m * 2^(mean rank) instead of the harmonic mean, giving
/// standard error ~1.30/sqrt(m) (vs 1.04 for HLL). Kept as the historical
/// baseline the cardinality bench compares against.
class LogLogCounter {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kLogLog;
  static constexpr uint16_t kStateVersion = 1;

  /// \param precision  p in [4, 16]; 2^p registers.
  explicit LogLogCounter(int precision);

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash);

  /// LogLog estimate (geometric mean of register ranks).
  double Estimate() const;

  /// In-place union (register-wise max); requires equal precision.
  Status Merge(const LogLogCounter& other);

  /// state::MergeableSketch payload: precision byte plus the 2^p registers.
  void SerializeTo(ByteWriter& w) const;
  static Result<LogLogCounter> Deserialize(ByteReader& r);

  int precision() const { return precision_; }
  size_t MemoryBytes() const { return registers_.size(); }

 private:
  // Same seed as HyperLogLog so comparisons see identical hash streams.
  static constexpr uint64_t kHashSeed = 0x5bd1e9955bd1e995ULL;

  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_LOGLOG_H_
