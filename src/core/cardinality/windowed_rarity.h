#ifndef STREAMLIB_CORE_CARDINALITY_WINDOWED_RARITY_H_
#define STREAMLIB_CORE_CARDINALITY_WINDOWED_RARITY_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace streamlib {

/// Alpha-rarity over sliding windows — the other half of Datar &
/// Muthukrishnan [73]: the fraction of *distinct* items in the window that
/// occur exactly alpha times (alpha = 1 is the classic "rarity": the share
/// of singletons, a staleness/novelty signal for caches and crawlers).
///
/// Construction, per the paper's min-wise idea: k independent min-hash
/// functions each select one distinct item of the window uniformly (the
/// window minimum); for each selected item the estimator tracks its exact
/// in-window occurrence count (timestamps of that item only). The fraction
/// of selected items with count == alpha is an unbiased rarity estimate
/// with stderr ~ 1/sqrt(k). Memory: O(k log W) for the min-queues plus the
/// tracked items' timestamps.
class WindowedRarity {
 public:
  /// \param num_hashes  k samplers; stderr ~ 1/sqrt(k).
  /// \param window      sliding window length in arrivals.
  WindowedRarity(uint32_t num_hashes, uint64_t window);

  /// Records a key arriving at position `time` (monotone nondecreasing).
  template <typename T>
  void Add(const T& key, uint64_t time) {
    AddHash(HashValue(key, kHashSeed), time);
  }

  void AddHash(uint64_t hash, uint64_t time);

  /// Estimated fraction of the window's distinct items occurring exactly
  /// `alpha` times, as of time `now`.
  double EstimateRarity(uint32_t alpha, uint64_t now) const;

  uint64_t window() const { return window_; }
  uint32_t num_hashes() const {
    return static_cast<uint32_t>(queues_.size());
  }

 private:
  static constexpr uint64_t kHashSeed = 0x452821e638d01377ULL;

  struct Entry {
    uint64_t time;
    uint64_t value;     // Hash under this function.
    uint64_t key_hash;  // Original key hash (identifies the item).
  };

  /// The key hash currently selected by function `i` (its window minimum),
  /// or nullopt when the window is empty.
  const Entry* MinEntry(uint32_t i, uint64_t now) const;

  uint64_t window_;
  std::vector<std::deque<Entry>> queues_;  // Monotonic min-queues.
  // Occurrence timestamps per key hash, pruned lazily to the window. Only
  // keys that are (or recently were) some function's minimum are retained.
  mutable std::unordered_map<uint64_t, std::deque<uint64_t>> occurrences_;
  uint64_t last_time_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CARDINALITY_WINDOWED_RARITY_H_
