#include "core/cardinality/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/serde.h"

namespace streamlib {

HyperLogLog::HyperLogLog(int precision, bool sparse)
    : precision_(precision), sparse_(sparse) {
  STREAMLIB_CHECK_MSG(precision >= 4 && precision <= 18,
                      "precision must be in [4, 18]");
  if (!sparse_) registers_.assign(size_t{1} << precision_, 0);
}

double HyperLogLog::Alpha(uint32_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

void HyperLogLog::AddHash(uint64_t hash) {
  if (sparse_) {
    // Exact hash set while small: sorted insert with dedup.
    auto it = std::lower_bound(sparse_hashes_.begin(), sparse_hashes_.end(),
                               hash);
    if (it == sparse_hashes_.end() || *it != hash) {
      sparse_hashes_.insert(it, hash);
    }
    if (sparse_hashes_.size() > SparseLimit()) Densify();
    return;
  }
  AddHashDense(hash);
}

void HyperLogLog::AddHashDense(uint64_t hash) {
  const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  // The remaining 64-p low bits, kept low-aligned for RankOfLeadingOne.
  const uint64_t remaining = (hash << precision_) >> precision_;
  const uint8_t rank =
      static_cast<uint8_t>(RankOfLeadingOne(remaining, 64 - precision_));
  if (rank > registers_[index]) registers_[index] = rank;
}

void HyperLogLog::Densify() {
  registers_.assign(size_t{1} << precision_, 0);
  sparse_ = false;
  for (uint64_t h : sparse_hashes_) AddHashDense(h);
  sparse_hashes_.clear();
  sparse_hashes_.shrink_to_fit();
}

double HyperLogLog::Estimate() const {
  if (sparse_) {
    // The sparse set is exact up to 64-bit hash collisions (negligible).
    return static_cast<double>(sparse_hashes_.size());
  }
  return EstimateDense();
}

double HyperLogLog::EstimateDense() const {
  const uint32_t m = num_registers();
  double inverse_sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) zeros++;
  }
  const double md = static_cast<double>(m);
  const double raw = Alpha(m) * md * md / inverse_sum;
  // Small-range correction: linear counting while any register is empty and
  // the raw estimate is below the 2.5m threshold from the HLL paper.
  if (raw <= 2.5 * md && zeros > 0) {
    return md * std::log(md / static_cast<double>(zeros));
  }
  // 64-bit hashing: no large-range correction required (HLL++ observation).
  return raw;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL merge: precision mismatch");
  }
  if (other.sparse_) {
    for (uint64_t h : other.sparse_hashes_) AddHash(h);
    return Status::OK();
  }
  if (sparse_) Densify();
  for (size_t i = 0; i < registers_.size(); i++) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

size_t HyperLogLog::MemoryBytes() const {
  if (sparse_) return sparse_hashes_.size() * sizeof(uint64_t);
  return registers_.size();
}

std::vector<uint8_t> HyperLogLog::Serialize() const {
  HyperLogLog dense = *this;
  if (dense.sparse_) dense.Densify();
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(dense.precision_));
  w.PutBytes(dense.registers_.data(), dense.registers_.size());
  return w.TakeBytes();
}

Result<HyperLogLog> HyperLogLog::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t precision;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&precision));
  if (precision < 4 || precision > 18) {
    return Status::Corruption("HLL: precision out of range");
  }
  HyperLogLog hll(precision, /*sparse=*/false);
  if (r.remaining() != hll.registers_.size()) {
    return Status::Corruption("HLL: register payload size mismatch");
  }
  STREAMLIB_RETURN_NOT_OK(
      r.GetBytes(hll.registers_.data(), hll.registers_.size()));
  return hll;
}

}  // namespace streamlib
