#include "core/cardinality/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/serde.h"
#include "common/simd.h"
#include "core/cardinality/hll_register.h"

namespace streamlib {
HyperLogLog::HyperLogLog(int precision, bool sparse)
    : precision_(precision), sparse_(sparse) {
  STREAMLIB_CHECK_MSG(precision >= 4 && precision <= 18,
                      "precision must be in [4, 18]");
  if (!sparse_) registers_.assign(size_t{1} << precision_, 0);
}

double HyperLogLog::Alpha(uint32_t m) { return hll::Alpha(m); }

void HyperLogLog::AddHash(uint64_t hash) {
  if (sparse_) {
    // Exact hash set while small: sorted insert with dedup.
    auto it = std::lower_bound(sparse_hashes_.begin(), sparse_hashes_.end(),
                               hash);
    if (it == sparse_hashes_.end() || *it != hash) {
      sparse_hashes_.insert(it, hash);
    }
    if (sparse_hashes_.size() > SparseLimit()) Densify();
    return;
  }
  AddHashDense(hash);
}

void HyperLogLog::AddHashDense(uint64_t hash) {
  const hll::RegisterProbe probe = hll::ProbeHash(hash, precision_);
  if (probe.rank > registers_[probe.index]) {
    registers_[probe.index] = probe.rank;
  }
}

void HyperLogLog::AddHashBatch(std::span<const uint64_t> hashes) {
  size_t i = 0;
  // While sparse, replay the exact scalar sequence (sorted insert, dedup,
  // possibly a mid-batch densify flips sparse_ and drops to the dense loop).
  for (; i < hashes.size() && sparse_; i++) AddHash(hashes[i]);
  if (i >= hashes.size()) return;
  const int value_bits = 64 - precision_;
  uint8_t* regs = registers_.data();
#if STREAMLIB_SIMD_AVX2
  // Vectorized probe: index and rank for four digests at a time. rank =
  // value_bits - floor(log2 value) for value != 0 (else value_bits + 1),
  // with floor(log2) from the exact double-conversion exponent trick —
  // valid only while value fits a 52-bit mantissa, i.e. precision >= 12.
  // The register-max merge itself stays scalar (lane order == input order,
  // and max commutes anyway, so state is bit-identical to the scalar loop).
  if (value_bits <= 52) {
    const simd::U64x4 value_mask = simd::Set1((uint64_t{1} << value_bits) - 1);
    const simd::U64x4 vbits = simd::Set1(static_cast<uint64_t>(value_bits));
    const simd::U64x4 vbits1 =
        simd::Set1(static_cast<uint64_t>(value_bits) + 1);
    const simd::U64x4 zero = simd::Set1(0);
    alignas(32) uint64_t idx[simd::kLanes];
    alignas(32) uint64_t rnk[simd::kLanes];
    for (; i + simd::kLanes <= hashes.size(); i += simd::kLanes) {
      const simd::U64x4 h = simd::Load4(&hashes[i]);
      const simd::U64x4 value = simd::And(h, value_mask);
      const simd::U64x4 rank =
          simd::Select(simd::Sub64(vbits, simd::FloorLog2Below52(value)),
                       vbits1, simd::CmpEq64(value, zero));
      simd::Store4(idx, simd::ShiftRightVar(h, value_bits));
      simd::Store4(rnk, rank);
      for (size_t lane = 0; lane < simd::kLanes; lane++) {
        const uint8_t r = static_cast<uint8_t>(rnk[lane]);
        if (r > regs[idx[lane]]) regs[idx[lane]] = r;
      }
    }
  }
#endif
  // Dense scalar loop (full batch on the scalar backend or precision < 12;
  // the < kLanes tail otherwise). Register max commutes, so the streaming
  // loop is free to prefetch ahead without changing the final state.
  constexpr size_t kAhead = 8;
  for (; i < hashes.size(); i++) {
    if (i + kAhead < hashes.size()) {
      simd::PrefetchRead(regs + (hashes[i + kAhead] >> value_bits));
    }
    const hll::RegisterProbe probe = hll::ProbeHash(hashes[i], precision_);
    if (probe.rank > regs[probe.index]) regs[probe.index] = probe.rank;
  }
}

void HyperLogLog::AddBatch64(const uint64_t* keys, size_t n) {
  size_t i = 0;
  // While sparse, replay the exact scalar sequence (sorted insert, dedup,
  // possibly a mid-batch densify flips sparse_ and drops through).
  for (; i < n && sparse_; i++) AddHash(HashInt64(keys[i], kHashSeed));
  if (i >= n) return;
  const uint64_t offset = 0x9e3779b97f4a7c15ULL * (kHashSeed + 1);
  uint8_t* regs = registers_.data();
#if STREAMLIB_SIMD_AVX2
  const int value_bits = 64 - precision_;
  // Fused hash+probe, two 4-lane groups per iteration for ILP: the digest
  // never round-trips through a buffer, and the rank comes from the
  // double-conversion trick (exact while the value fits a 52-bit mantissa,
  // i.e. precision >= 12 — see AddHashBatch). The register-max merge stays
  // scalar in lane order, so state is bit-identical to the scalar loop.
  if (value_bits <= 52) {
    const simd::U64x4 voffset = simd::Set1(offset);
    const simd::U64x4 value_mask = simd::Set1((uint64_t{1} << value_bits) - 1);
    const simd::U64x4 vbits = simd::Set1(static_cast<uint64_t>(value_bits));
    const simd::U64x4 vbits1 =
        simd::Set1(static_cast<uint64_t>(value_bits) + 1);
    const simd::U64x4 zero = simd::Set1(0);
    alignas(32) uint64_t idx[2 * simd::kLanes];
    alignas(32) uint64_t rnk[2 * simd::kLanes];
    for (; i + 2 * simd::kLanes <= n; i += 2 * simd::kLanes) {
      const simd::U64x4 h0 =
          simd::Mix64x4(simd::Add64(simd::Load4(keys + i), voffset));
      const simd::U64x4 h1 = simd::Mix64x4(
          simd::Add64(simd::Load4(keys + i + simd::kLanes), voffset));
      const simd::U64x4 v0 = simd::And(h0, value_mask);
      const simd::U64x4 v1 = simd::And(h1, value_mask);
      simd::Store4(idx, simd::ShiftRightVar(h0, value_bits));
      simd::Store4(idx + simd::kLanes, simd::ShiftRightVar(h1, value_bits));
      simd::Store4(rnk, simd::Select(
                            simd::Sub64(vbits, simd::FloorLog2Below52(v0)),
                            vbits1, simd::CmpEq64(v0, zero)));
      simd::Store4(rnk + simd::kLanes,
                   simd::Select(
                       simd::Sub64(vbits, simd::FloorLog2Below52(v1)),
                       vbits1, simd::CmpEq64(v1, zero)));
      for (size_t lane = 0; lane < 2 * simd::kLanes; lane++) {
        const uint8_t r = static_cast<uint8_t>(rnk[lane]);
        if (r > regs[idx[lane]]) regs[idx[lane]] = r;
      }
    }
  }
#endif
  for (; i < n; i++) {
    const hll::RegisterProbe probe =
        hll::ProbeHash(Mix64(keys[i] + offset), precision_);
    if (probe.rank > regs[probe.index]) regs[probe.index] = probe.rank;
  }
}

void HyperLogLog::Densify() {
  registers_.assign(size_t{1} << precision_, 0);
  sparse_ = false;
  for (uint64_t h : sparse_hashes_) AddHashDense(h);
  sparse_hashes_.clear();
  sparse_hashes_.shrink_to_fit();
}

double HyperLogLog::Estimate() const {
  if (sparse_) {
    // The sparse set is exact up to 64-bit hash collisions (negligible).
    return static_cast<double>(sparse_hashes_.size());
  }
  return EstimateDense();
}

double HyperLogLog::EstimateDense() const {
  const uint32_t m = num_registers();
  double inverse_sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) zeros++;
  }
  return hll::EstimateFromRegisterSum(m, inverse_sum, zeros);
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL merge: precision mismatch");
  }
  if (other.sparse_) {
    for (uint64_t h : other.sparse_hashes_) AddHash(h);
    return Status::OK();
  }
  if (sparse_) Densify();
  for (size_t i = 0; i < registers_.size(); i++) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

size_t HyperLogLog::MemoryBytes() const {
  if (sparse_) return sparse_hashes_.size() * sizeof(uint64_t);
  return registers_.size();
}

void HyperLogLog::SerializeTo(ByteWriter& w) const {
  HyperLogLog dense = *this;
  if (dense.sparse_) dense.Densify();
  w.PutU8(static_cast<uint8_t>(dense.precision_));
  w.PutBytes(dense.registers_.data(), dense.registers_.size());
}

Result<HyperLogLog> HyperLogLog::Deserialize(ByteReader& r) {
  uint8_t precision = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&precision));
  if (precision < 4 || precision > 18) {
    return Status::Corruption("HLL: precision out of range");
  }
  HyperLogLog hll(precision, /*sparse=*/false);
  if (r.remaining() < hll.registers_.size()) {
    return Status::Corruption("HLL: register payload truncated");
  }
  STREAMLIB_RETURN_NOT_OK(
      r.GetBytes(hll.registers_.data(), hll.registers_.size()));
  return hll;
}

std::vector<uint8_t> HyperLogLog::Serialize() const {
  ByteWriter w;
  SerializeTo(w);
  return w.TakeBytes();
}

Result<HyperLogLog> HyperLogLog::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  Result<HyperLogLog> hll = Deserialize(r);
  STREAMLIB_RETURN_NOT_OK(hll.status());
  if (!r.AtEnd()) {
    return Status::Corruption("HLL: register payload size mismatch");
  }
  return hll;
}

}  // namespace streamlib
