#include "core/cardinality/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"
#include "common/serde.h"
#include "core/cardinality/hll_register.h"

namespace streamlib {

HyperLogLog::HyperLogLog(int precision, bool sparse)
    : precision_(precision), sparse_(sparse) {
  STREAMLIB_CHECK_MSG(precision >= 4 && precision <= 18,
                      "precision must be in [4, 18]");
  if (!sparse_) registers_.assign(size_t{1} << precision_, 0);
}

double HyperLogLog::Alpha(uint32_t m) { return hll::Alpha(m); }

void HyperLogLog::AddHash(uint64_t hash) {
  if (sparse_) {
    // Exact hash set while small: sorted insert with dedup.
    auto it = std::lower_bound(sparse_hashes_.begin(), sparse_hashes_.end(),
                               hash);
    if (it == sparse_hashes_.end() || *it != hash) {
      sparse_hashes_.insert(it, hash);
    }
    if (sparse_hashes_.size() > SparseLimit()) Densify();
    return;
  }
  AddHashDense(hash);
}

void HyperLogLog::AddHashDense(uint64_t hash) {
  const hll::RegisterProbe probe = hll::ProbeHash(hash, precision_);
  if (probe.rank > registers_[probe.index]) {
    registers_[probe.index] = probe.rank;
  }
}

void HyperLogLog::Densify() {
  registers_.assign(size_t{1} << precision_, 0);
  sparse_ = false;
  for (uint64_t h : sparse_hashes_) AddHashDense(h);
  sparse_hashes_.clear();
  sparse_hashes_.shrink_to_fit();
}

double HyperLogLog::Estimate() const {
  if (sparse_) {
    // The sparse set is exact up to 64-bit hash collisions (negligible).
    return static_cast<double>(sparse_hashes_.size());
  }
  return EstimateDense();
}

double HyperLogLog::EstimateDense() const {
  const uint32_t m = num_registers();
  double inverse_sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) zeros++;
  }
  return hll::EstimateFromRegisterSum(m, inverse_sum, zeros);
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL merge: precision mismatch");
  }
  if (other.sparse_) {
    for (uint64_t h : other.sparse_hashes_) AddHash(h);
    return Status::OK();
  }
  if (sparse_) Densify();
  for (size_t i = 0; i < registers_.size(); i++) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

size_t HyperLogLog::MemoryBytes() const {
  if (sparse_) return sparse_hashes_.size() * sizeof(uint64_t);
  return registers_.size();
}

void HyperLogLog::SerializeTo(ByteWriter& w) const {
  HyperLogLog dense = *this;
  if (dense.sparse_) dense.Densify();
  w.PutU8(static_cast<uint8_t>(dense.precision_));
  w.PutBytes(dense.registers_.data(), dense.registers_.size());
}

Result<HyperLogLog> HyperLogLog::Deserialize(ByteReader& r) {
  uint8_t precision;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&precision));
  if (precision < 4 || precision > 18) {
    return Status::Corruption("HLL: precision out of range");
  }
  HyperLogLog hll(precision, /*sparse=*/false);
  if (r.remaining() < hll.registers_.size()) {
    return Status::Corruption("HLL: register payload truncated");
  }
  STREAMLIB_RETURN_NOT_OK(
      r.GetBytes(hll.registers_.data(), hll.registers_.size()));
  return hll;
}

std::vector<uint8_t> HyperLogLog::Serialize() const {
  ByteWriter w;
  SerializeTo(w);
  return w.TakeBytes();
}

Result<HyperLogLog> HyperLogLog::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  Result<HyperLogLog> hll = Deserialize(r);
  STREAMLIB_RETURN_NOT_OK(hll.status());
  if (!r.AtEnd()) {
    return Status::Corruption("HLL: register payload size mismatch");
  }
  return hll;
}

}  // namespace streamlib
