#ifndef STREAMLIB_CORE_MOMENTS_AMS_SKETCH_H_
#define STREAMLIB_CORE_MOMENTS_AMS_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// AMS "tug-of-war" sketch for the second frequency moment F2 (Alon, Matias
/// & Szegedy, STOC 1996 — the paper credits this work with introducing
/// randomized sketching, cited as [39]). Each atomic counter accumulates
/// sum_i sign(i) * f_i; its square is an unbiased F2 estimate. Variance is
/// tamed by median-of-means: `groups` groups of `group_size` counters,
/// mean within a group, median across groups.
///
/// Application (Table 1): self-join size estimation in databases.
class AmsSketch {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kAmsSketch;
  static constexpr uint16_t kStateVersion = 1;

  /// \param groups      number of independent groups (median dimension);
  ///                    failure probability ~ exp(-groups/...).
  /// \param group_size  counters averaged per group (variance dimension);
  ///                    relative error ~ 1/sqrt(group_size).
  AmsSketch(uint32_t groups, uint32_t group_size);

  template <typename T>
  void Add(const T& key, int64_t count = 1) {
    AddHash(HashValue(key, kHashSeed), count);
  }

  void AddHash(uint64_t hash, int64_t count);

  /// Median-of-means estimate of F2 = sum_i f_i^2.
  double EstimateF2() const;

  /// In-place merge (the sketch is linear).
  Status Merge(const AmsSketch& other);

  /// state::MergeableSketch payload: geometry then the signed counters.
  void SerializeTo(ByteWriter& w) const;
  static Result<AmsSketch> Deserialize(ByteReader& r);

  uint32_t groups() const { return groups_; }
  uint32_t group_size() const { return group_size_; }
  size_t MemoryBytes() const { return counters_.size() * sizeof(int64_t); }

 private:
  static constexpr uint64_t kHashSeed = 0x6a09e667f3bcc908ULL;

  uint32_t groups_;
  uint32_t group_size_;
  std::vector<int64_t> counters_;  // groups_ * group_size_.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_MOMENTS_AMS_SKETCH_H_
