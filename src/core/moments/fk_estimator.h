#ifndef STREAMLIB_CORE_MOMENTS_FK_ESTIMATOR_H_
#define STREAMLIB_CORE_MOMENTS_FK_ESTIMATOR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/random.h"

namespace streamlib {

/// The AMS *sampling* estimator for arbitrary frequency moments F_k =
/// sum_i f_i^k (Alon, Matias & Szegedy [39]; improved bounds in
/// Coppersmith–Kumar [63] and Indyk–Woodruff [109], all cited). Each sample
/// picks a uniformly random stream position (by reservoir), then counts the
/// occurrences r of that element in the suffix; X = n*(r^k - (r-1)^k) is an
/// unbiased F_k estimate. Median-of-means over the samples controls
/// variance.
class FkEstimator {
 public:
  /// \param k           moment order (k >= 1; k = 2 cross-checks AmsSketch).
  /// \param groups      median dimension.
  /// \param group_size  mean dimension (samples per group).
  /// \param seed        RNG seed.
  FkEstimator(int k, uint32_t groups, uint32_t group_size, uint64_t seed)
      : k_(k), groups_(groups), group_size_(group_size), rng_(seed) {
    STREAMLIB_CHECK_MSG(k >= 1, "moment order must be >= 1");
    STREAMLIB_CHECK_MSG(groups >= 1 && group_size >= 1, "need samples");
    samples_.assign(static_cast<size_t>(groups) * group_size, Sample{});
  }

  /// Processes one stream element (keys compared by 64-bit hash).
  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash) {
    count_++;
    for (Sample& s : samples_) {
      // Reservoir over positions: the current position is the sample's
      // anchor with probability 1/count.
      if (rng_.NextBounded(count_) == 0) {
        s.key_hash = hash;
        s.suffix_count = 1;
      } else if (s.key_hash == hash && s.suffix_count > 0) {
        s.suffix_count++;
      }
    }
  }

  /// Median-of-means estimate of F_k.
  double Estimate() const {
    STREAMLIB_CHECK_MSG(count_ > 0, "estimate of empty stream");
    std::vector<double> means;
    means.reserve(groups_);
    const double n = static_cast<double>(count_);
    for (uint32_t g = 0; g < groups_; g++) {
      double sum = 0.0;
      for (uint32_t j = 0; j < group_size_; j++) {
        const Sample& s =
            samples_[static_cast<size_t>(g) * group_size_ + j];
        const double r = static_cast<double>(s.suffix_count);
        sum += n * (std::pow(r, k_) - std::pow(r - 1.0, k_));
      }
      means.push_back(sum / static_cast<double>(group_size_));
    }
    std::nth_element(means.begin(), means.begin() + means.size() / 2,
                     means.end());
    return means[means.size() / 2];
  }

  uint64_t count() const { return count_; }
  int k() const { return k_; }

 private:
  static constexpr uint64_t kHashSeed = 0xbb67ae8584caa73bULL;

  struct Sample {
    uint64_t key_hash = 0;
    uint64_t suffix_count = 0;
  };

  int k_;
  uint32_t groups_;
  uint32_t group_size_;
  Rng rng_;
  std::vector<Sample> samples_;
  uint64_t count_ = 0;
};

/// Streaming empirical-entropy estimator built on the same suffix-counting
/// samples: X = f(r) - f(r-1) with f(x) = x log2(n/x) is an unbiased
/// estimate of H = sum_i (f_i/n) log2(n/f_i) (the Chakrabarti–Cormode–
/// McGregor construction in its basic form).
class EntropyEstimator {
 public:
  EntropyEstimator(uint32_t groups, uint32_t group_size, uint64_t seed)
      : groups_(groups), group_size_(group_size), rng_(seed) {
    STREAMLIB_CHECK_MSG(groups >= 1 && group_size >= 1, "need samples");
    samples_.assign(static_cast<size_t>(groups) * group_size, Sample{});
  }

  template <typename T>
  void Add(const T& key) {
    AddHash(HashValue(key, kHashSeed));
  }

  void AddHash(uint64_t hash) {
    count_++;
    for (Sample& s : samples_) {
      if (rng_.NextBounded(count_) == 0) {
        s.key_hash = hash;
        s.suffix_count = 1;
      } else if (s.key_hash == hash && s.suffix_count > 0) {
        s.suffix_count++;
      }
    }
  }

  /// Median-of-means estimate of the empirical entropy in bits.
  double Estimate() const {
    STREAMLIB_CHECK_MSG(count_ > 0, "estimate of empty stream");
    const double n = static_cast<double>(count_);
    auto f = [n](double x) {
      return x <= 0.0 ? 0.0 : x * std::log2(n / x);
    };
    std::vector<double> means;
    means.reserve(groups_);
    for (uint32_t g = 0; g < groups_; g++) {
      double sum = 0.0;
      for (uint32_t j = 0; j < group_size_; j++) {
        const Sample& s =
            samples_[static_cast<size_t>(g) * group_size_ + j];
        const double r = static_cast<double>(s.suffix_count);
        sum += f(r) - f(r - 1.0);
      }
      means.push_back(sum / static_cast<double>(group_size_));
    }
    std::nth_element(means.begin(), means.begin() + means.size() / 2,
                     means.end());
    return means[means.size() / 2];
  }

  uint64_t count() const { return count_; }

 private:
  static constexpr uint64_t kHashSeed = 0x3c6ef372fe94f82bULL;

  struct Sample {
    uint64_t key_hash = 0;
    uint64_t suffix_count = 0;
  };

  uint32_t groups_;
  uint32_t group_size_;
  Rng rng_;
  std::vector<Sample> samples_;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_MOMENTS_FK_ESTIMATOR_H_
