#include "core/moments/ams_sketch.h"

#include <algorithm>

#include "common/check.h"

namespace streamlib {

AmsSketch::AmsSketch(uint32_t groups, uint32_t group_size)
    : groups_(groups), group_size_(group_size) {
  STREAMLIB_CHECK_MSG(groups >= 1, "groups must be >= 1");
  STREAMLIB_CHECK_MSG(group_size >= 1, "group_size must be >= 1");
  counters_.assign(static_cast<size_t>(groups_) * group_size_, 0);
}

void AmsSketch::AddHash(uint64_t hash, int64_t count) {
  for (size_t c = 0; c < counters_.size(); c++) {
    // Counter-specific +-1 hash of the key. Mix64 gives strong (empirically
    // 4-wise-like) independence, the standard engineering substitute for the
    // paper's explicit 4-wise family.
    const uint64_t h = HashInt64(hash, c + 1);
    counters_[c] += (h & 1) != 0 ? count : -count;
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> means;
  means.reserve(groups_);
  for (uint32_t g = 0; g < groups_; g++) {
    double sum = 0.0;
    for (uint32_t j = 0; j < group_size_; j++) {
      const double x =
          static_cast<double>(counters_[static_cast<size_t>(g) * group_size_ + j]);
      sum += x * x;
    }
    means.push_back(sum / static_cast<double>(group_size_));
  }
  std::nth_element(means.begin(), means.begin() + means.size() / 2,
                   means.end());
  return means[means.size() / 2];
}

Status AmsSketch::Merge(const AmsSketch& other) {
  if (other.groups_ != groups_ || other.group_size_ != group_size_) {
    return Status::InvalidArgument("AMS merge: geometry mismatch");
  }
  for (size_t i = 0; i < counters_.size(); i++) {
    counters_[i] += other.counters_[i];
  }
  return Status::OK();
}

void AmsSketch::SerializeTo(ByteWriter& w) const {
  w.PutU32(groups_);
  w.PutU32(group_size_);
  for (int64_t c : counters_) w.PutVarintSigned(c);
}

Result<AmsSketch> AmsSketch::Deserialize(ByteReader& r) {
  uint32_t groups = 0;
  uint32_t group_size = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&groups));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&group_size));
  if (groups < 1 || group_size < 1) {
    return Status::Corruption("AMS: geometry out of range");
  }
  const uint64_t n = static_cast<uint64_t>(groups) * group_size;
  if (n > r.remaining()) {
    return Status::Corruption("AMS: counter payload truncated");
  }
  AmsSketch sketch(groups, group_size);
  for (uint64_t i = 0; i < n; i++) {
    STREAMLIB_RETURN_NOT_OK(r.GetVarintSigned(&sketch.counters_[i]));
  }
  return sketch;
}

}  // namespace streamlib
