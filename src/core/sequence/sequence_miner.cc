#include "core/sequence/sequence_miner.h"

namespace streamlib {

SequenceMiner::SequenceMiner(size_t max_length, size_t capacity,
                             size_t max_sessions)
    : max_length_(max_length),
      max_sessions_(max_sessions),
      patterns_(capacity) {
  STREAMLIB_CHECK_MSG(max_length >= 2, "patterns need length >= 2");
  STREAMLIB_CHECK_MSG(max_sessions >= 1, "need at least one session slot");
}

void SequenceMiner::EvictStalest() {
  auto stalest = sessions_.begin();
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->second.last_touch < stalest->second.last_touch) stalest = it;
  }
  sessions_.erase(stalest);
}

void SequenceMiner::Visit(uint64_t session, const std::string& item) {
  events_++;
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    if (sessions_.size() >= max_sessions_) EvictStalest();
    it = sessions_.emplace(session, Session{}).first;
  }
  Session& state = it->second;
  state.last_touch = events_;
  state.recent.push_back(item);
  if (state.recent.size() > max_length_) state.recent.pop_front();

  // Emit every suffix n-gram ending at the new item (lengths 2..L):
  // "prev>item", "prevprev>prev>item", ... — each contiguous traversal
  // through the new click counted exactly once.
  std::string pattern = item;
  for (size_t len = 2; len <= state.recent.size(); len++) {
    const std::string& earlier =
        state.recent[state.recent.size() - len];
    std::string next(earlier);
    next += '>';
    next += pattern;
    pattern = std::move(next);
    patterns_.Add(pattern);
  }
}

}  // namespace streamlib
