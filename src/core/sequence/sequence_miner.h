#ifndef STREAMLIB_CORE_SEQUENCE_SEQUENCE_MINER_H_
#define STREAMLIB_CORE_SEQUENCE_SEQUENCE_MINER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "core/frequency/misra_gries.h"
#include "core/frequency/space_saving.h"

namespace streamlib {

/// Streaming sequential-pattern mining — the paper's use case (c):
/// "determining top-K traversal sequences in streaming clicks" (the
/// sequence-mining line it cites as [139, 121, 117]). Events arrive as
/// (session, item) pairs interleaved across sessions; the miner extracts
/// every contiguous subsequence (n-gram) of lengths 2..max_length within
/// each session and feeds them to a SpaceSaving summary, so the globally
/// frequent traversal paths surface with the usual counter-based
/// guarantees. Idle sessions are evicted LRU-style to bound memory.
class SequenceMiner {
 public:
  /// \param max_length    longest pattern tracked (>= 2).
  /// \param capacity      SpaceSaving entries for pattern counts.
  /// \param max_sessions  concurrently tracked sessions (LRU bound).
  SequenceMiner(size_t max_length, size_t capacity, size_t max_sessions);

  /// Records that `session` visited `item` next.
  void Visit(uint64_t session, const std::string& item);

  /// The k most frequent traversal sequences (rendered "a>b>c"),
  /// estimate-descending, with SpaceSaving error bounds.
  std::vector<FrequentItem<std::string>> TopSequences(size_t k) const {
    return patterns_.TopK(k);
  }

  /// Estimated occurrences of an exact pattern (">"-joined).
  uint64_t Estimate(const std::string& pattern) const {
    return patterns_.Estimate(pattern);
  }

  uint64_t events() const { return events_; }
  size_t active_sessions() const { return sessions_.size(); }

 private:
  struct Session {
    std::deque<std::string> recent;  // Last max_length items.
    uint64_t last_touch = 0;
  };

  void EvictStalest();

  size_t max_length_;
  size_t max_sessions_;
  uint64_t events_ = 0;
  std::unordered_map<uint64_t, Session> sessions_;
  SpaceSaving<std::string> patterns_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_SEQUENCE_SEQUENCE_MINER_H_
