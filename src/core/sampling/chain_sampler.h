#ifndef STREAMLIB_CORE_SAMPLING_CHAIN_SAMPLER_H_
#define STREAMLIB_CORE_SAMPLING_CHAIN_SAMPLER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace streamlib {

/// Chain sampling over a sequence-based sliding window — Babcock, Datar &
/// Motwani, SODA 2002 (cited as [45]): maintains one uniformly random element
/// of the last `window` stream elements in expected O(1) memory.
///
/// When an element is selected as the sample, the index of its *replacement*
/// (uniform among the `window` elements that follow it) is pre-drawn; when
/// that element arrives it is chained, and when the head of the chain expires
/// the next link becomes the sample. Expired prefixes never invalidate the
/// sample, unlike naive reservoir sampling over a window.
template <typename T>
class ChainSampler {
 public:
  ChainSampler(uint64_t window, uint64_t seed) : window_(window), rng_(seed) {
    STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
  }

  /// Offers the next stream element.
  void Add(const T& value) {
    const uint64_t i = count_++;
    // Expire the head if it has fallen out of the window [i-window+1, i].
    while (!chain_.empty() && chain_.front().index + window_ <= i) {
      chain_.pop_front();
      // The pre-drawn successor is always within `window_` of its
      // predecessor, so once the stream has warmed up the chain stays
      // non-empty; during warm-up reservoir selection below refills it.
    }
    // Every arrival becomes the sample with probability 1/min(i+1, window):
    // reservoir behaviour during warm-up, and steady-state refresh with
    // probability 1/window afterwards — this is what keeps the sample
    // uniform over the window rather than frozen to chain succession.
    const uint64_t denom = i + 1 < window_ ? i + 1 : window_;
    if (rng_.NextBounded(denom) == 0) {
      chain_.clear();
      chain_.push_back(Link{i, value});
      DrawSuccessor(i);
      return;
    }
    // Capture a pre-drawn successor. This may also refill a transiently
    // empty chain: when the head expires at exactly the step its successor
    // arrives, the expiry above runs first.
    if (i == next_pick_ && i > 0) {
      chain_.push_back(Link{i, value});
      DrawSuccessor(i);
    }
  }

  /// True once at least one element has been offered.
  bool HasSample() const { return !chain_.empty(); }

  /// The current sample: a uniform random element of the last
  /// min(window, count) elements.
  const T& Sample() const {
    STREAMLIB_CHECK_MSG(!chain_.empty(), "no sample yet");
    return chain_.front().value;
  }

  /// Current chain length (memory diagnostic; expected O(1)).
  size_t chain_length() const { return chain_.size(); }

  uint64_t count() const { return count_; }
  uint64_t window() const { return window_; }

 private:
  struct Link {
    uint64_t index;
    T value;
  };

  void DrawSuccessor(uint64_t index) {
    next_pick_ = index + 1 + rng_.NextBounded(window_);
  }

  uint64_t window_;
  Rng rng_;
  std::deque<Link> chain_;
  uint64_t count_ = 0;
  uint64_t next_pick_ = 0;
};

/// k independent chain samplers = a with-replacement sample of size k from
/// the sliding window, the composition suggested in Babcock et al.
template <typename T>
class WindowSampler {
 public:
  WindowSampler(size_t k, uint64_t window, uint64_t seed) {
    STREAMLIB_CHECK_MSG(k >= 1, "sample size must be >= 1");
    chains_.reserve(k);
    for (size_t i = 0; i < k; i++) {
      chains_.emplace_back(window, seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    }
  }

  void Add(const T& value) {
    for (auto& chain : chains_) chain.Add(value);
  }

  /// The current with-replacement window sample.
  std::vector<T> Sample() const {
    std::vector<T> out;
    out.reserve(chains_.size());
    for (const auto& chain : chains_) {
      if (chain.HasSample()) out.push_back(chain.Sample());
    }
    return out;
  }

  /// Total chain links held (memory diagnostic).
  size_t TotalChainLength() const {
    size_t total = 0;
    for (const auto& chain : chains_) total += chain.chain_length();
    return total;
  }

 private:
  std::vector<ChainSampler<T>> chains_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_SAMPLING_CHAIN_SAMPLER_H_
