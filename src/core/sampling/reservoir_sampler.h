#ifndef STREAMLIB_CORE_SAMPLING_RESERVOIR_SAMPLER_H_
#define STREAMLIB_CORE_SAMPLING_RESERVOIR_SAMPLER_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace streamlib {

/// Classic reservoir sampling — Vitter's Algorithm R (Vitter 1985, cited as
/// [161] in the paper): maintains a uniform random sample of size k over an
/// unbounded stream using O(k) memory, one RNG draw per element.
///
/// Application (Table 1): obtaining a representative subset of a stream for
/// A/B testing and exploratory analysis.
template <typename T>
class ReservoirSampler {
 public:
  /// \param capacity  sample size k (>= 1)
  /// \param seed      RNG seed
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    STREAMLIB_CHECK_MSG(capacity >= 1, "reservoir capacity must be >= 1");
    sample_.reserve(capacity);
  }

  /// Offers one stream element to the sampler.
  void Add(const T& value) {
    count_++;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    // Element `count_` (1-based) survives with probability k / count_.
    const uint64_t j = rng_.NextBounded(count_);
    if (j < capacity_) sample_[j] = value;
  }

  /// The current sample (uniform without replacement over elements seen).
  const std::vector<T>& sample() const { return sample_; }

  /// Total number of elements offered.
  uint64_t count() const { return count_; }

  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<T> sample_;
  uint64_t count_ = 0;
};

/// Reservoir sampling with geometric skipping — Vitter-style "Algorithm L"
/// (Li 1994). Identical output distribution to Algorithm R but draws O(k log
/// (n/k)) random numbers total instead of O(n): the sampler computes how many
/// elements to *skip* before the next replacement. Use when the per-element
/// cost of the stream is dominated by sampling.
template <typename T>
class SkipReservoirSampler {
 public:
  SkipReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    STREAMLIB_CHECK_MSG(capacity >= 1, "reservoir capacity must be >= 1");
    sample_.reserve(capacity);
    w_ = std::exp(std::log(rng_.NextDoublePositive()) /
                  static_cast<double>(capacity_));
  }

  void Add(const T& value) {
    count_++;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      if (sample_.size() == capacity_) ScheduleNextReplacement();
      return;
    }
    if (count_ >= next_index_) {
      sample_[rng_.NextBounded(capacity_)] = value;
      w_ *= std::exp(std::log(rng_.NextDoublePositive()) /
                     static_cast<double>(capacity_));
      ScheduleNextReplacement();
    }
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t count() const { return count_; }
  size_t capacity() const { return capacity_; }

 private:
  void ScheduleNextReplacement() {
    const double skip =
        std::floor(std::log(rng_.NextDoublePositive()) / std::log(1.0 - w_));
    next_index_ = count_ + static_cast<uint64_t>(skip) + 1;
  }

  size_t capacity_;
  Rng rng_;
  std::vector<T> sample_;
  uint64_t count_ = 0;
  uint64_t next_index_ = 0;
  double w_ = 0.0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_SAMPLING_RESERVOIR_SAMPLER_H_
