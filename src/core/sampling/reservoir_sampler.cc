#include "core/sampling/reservoir_sampler.h"

// The sampling module is template-based and header-only; this translation
// unit anchors the module in the core library.
