#ifndef STREAMLIB_CORE_SAMPLING_DISTRIBUTED_SAMPLER_H_
#define STREAMLIB_CORE_SAMPLING_DISTRIBUTED_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace streamlib {

/// Continuous random sampling from distributed streams — Cormode,
/// Muthukrishnan, Yi & Zhang (PODS 2010 / JACM 2012, cited as [69, 70]):
/// k sites observe local streams; a coordinator maintains a uniform sample
/// of the *union* while exchanging only O(k log n + s log n) messages
/// instead of forwarding every item.
///
/// Protocol (binary Bernoulli sampling): every item draws a geometric
/// "level" (number of consecutive fair-coin heads). Sites forward only
/// items with level >= the coordinator's current level j; when the
/// coordinator's buffer outgrows its capacity it increments j, discards
/// buffered items below the new level, and broadcasts j to all sites.
/// Conditioned on the final level, retained items are a uniform sample.
///
/// This class simulates all parties in-process and meters the messages the
/// real deployment would send — the communication table in the sampling
/// bench ("the algorithms should intrinsically distribute computation",
/// paper §2).
template <typename T>
class DistributedSampler {
 public:
  /// \param num_sites         k.
  /// \param sample_capacity   coordinator buffer bound s (> 8).
  DistributedSampler(uint32_t num_sites, size_t sample_capacity,
                     uint64_t seed)
      : num_sites_(num_sites), capacity_(sample_capacity), rng_(seed) {
    STREAMLIB_CHECK_MSG(num_sites >= 1, "need at least one site");
    STREAMLIB_CHECK_MSG(sample_capacity > 8, "capacity must exceed 8");
  }

  /// An item arrives at `site`'s local stream.
  void AddAtSite(uint32_t site, const T& item) {
    STREAMLIB_CHECK_MSG(site < num_sites_, "unknown site");
    count_++;
    // Geometric level: number of consecutive heads.
    uint32_t level = 0;
    while (rng_.NextBool(0.5)) level++;
    if (level < level_) return;  // Site-local drop: no message.
    // Site -> coordinator.
    messages_to_coordinator_++;
    buffer_.push_back(Entry{item, level});
    if (buffer_.size() > capacity_) {
      // Level increment + broadcast to all sites.
      level_++;
      broadcasts_++;
      std::vector<Entry> kept;
      kept.reserve(buffer_.size() / 2 + 1);
      for (auto& e : buffer_) {
        if (e.level >= level_) kept.push_back(std::move(e));
      }
      buffer_ = std::move(kept);
    }
  }

  /// Current uniform sample of the union of all site streams.
  std::vector<T> Sample() const {
    std::vector<T> out;
    out.reserve(buffer_.size());
    for (const auto& e : buffer_) out.push_back(e.item);
    return out;
  }

  /// Communication metering.
  uint64_t messages_to_coordinator() const {
    return messages_to_coordinator_;
  }
  uint64_t broadcast_messages() const { return broadcasts_ * num_sites_; }
  uint64_t total_messages() const {
    return messages_to_coordinator() + broadcast_messages();
  }

  uint64_t count() const { return count_; }
  uint32_t level() const { return level_; }
  size_t sample_size() const { return buffer_.size(); }

 private:
  struct Entry {
    T item;
    uint32_t level;
  };

  uint32_t num_sites_;
  size_t capacity_;
  Rng rng_;
  uint32_t level_ = 0;
  uint64_t count_ = 0;
  uint64_t messages_to_coordinator_ = 0;
  uint64_t broadcasts_ = 0;
  std::vector<Entry> buffer_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_SAMPLING_DISTRIBUTED_SAMPLER_H_
