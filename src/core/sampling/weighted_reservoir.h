#ifndef STREAMLIB_CORE_SAMPLING_WEIGHTED_RESERVOIR_H_
#define STREAMLIB_CORE_SAMPLING_WEIGHTED_RESERVOIR_H_

#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace streamlib {

/// Weighted reservoir sampling — Efraimidis & Spirakis A-Res (cited via the
/// paper's "weighted sampling [58]" discussion). Each element with weight w
/// draws key u^(1/w); the k elements with the largest keys form a weighted
/// sample without replacement: P(element first) = w_i / sum w_j.
template <typename T>
class WeightedReservoirSampler {
 public:
  WeightedReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    STREAMLIB_CHECK_MSG(capacity >= 1, "reservoir capacity must be >= 1");
  }

  /// Offers an element with strictly positive weight.
  void Add(const T& value, double weight) {
    STREAMLIB_CHECK_MSG(weight > 0.0, "weights must be positive");
    count_++;
    // key = u^{1/w}  <=>  log(key) = log(u)/w; we compare in log space for
    // numerical stability with tiny weights.
    const double log_key = std::log(rng_.NextDoublePositive()) / weight;
    if (heap_.size() < capacity_) {
      heap_.push(Entry{log_key, value});
      return;
    }
    if (log_key > heap_.top().log_key) {
      heap_.pop();
      heap_.push(Entry{log_key, value});
    }
  }

  /// Extracts the current sample (order unspecified).
  std::vector<T> Sample() const {
    std::vector<T> out;
    out.reserve(heap_.size());
    auto copy = heap_;
    while (!copy.empty()) {
      out.push_back(copy.top().value);
      copy.pop();
    }
    return out;
  }

  uint64_t count() const { return count_; }
  size_t size() const { return heap_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    double log_key;
    T value;
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.log_key > b.log_key;  // Min-heap on key.
    }
  };

  size_t capacity_;
  Rng rng_;
  std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_SAMPLING_WEIGHTED_RESERVOIR_H_
