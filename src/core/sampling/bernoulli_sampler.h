#ifndef STREAMLIB_CORE_SAMPLING_BERNOULLI_SAMPLER_H_
#define STREAMLIB_CORE_SAMPLING_BERNOULLI_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace streamlib {

/// Bernoulli (coin-flip) sampling: every element is kept independently with
/// probability p. The simplest baseline sampler — unbounded memory growth
/// (expected p·n), but exactly independent inclusions, which downstream
/// estimators sometimes require.
template <typename T>
class BernoulliSampler {
 public:
  BernoulliSampler(double probability, uint64_t seed)
      : p_(probability), rng_(seed) {
    STREAMLIB_CHECK_MSG(probability > 0.0 && probability <= 1.0,
                        "probability must be in (0, 1]");
  }

  void Add(const T& value) {
    count_++;
    if (rng_.NextBool(p_)) sample_.push_back(value);
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t count() const { return count_; }
  double probability() const { return p_; }

  /// Horvitz–Thompson estimate of the stream length from the sample size.
  double EstimatedStreamLength() const {
    return static_cast<double>(sample_.size()) / p_;
  }

 private:
  double p_;
  Rng rng_;
  std::vector<T> sample_;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_SAMPLING_BERNOULLI_SAMPLER_H_
