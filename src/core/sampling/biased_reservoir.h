#ifndef STREAMLIB_CORE_SAMPLING_BIASED_RESERVOIR_H_
#define STREAMLIB_CORE_SAMPLING_BIASED_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace streamlib {

/// Biased reservoir sampling in the presence of stream evolution —
/// Aggarwal, VLDB 2006 (cited as [33]). The sample is exponentially biased
/// toward recent elements with bias rate lambda = 1/capacity: every arriving
/// element enters the reservoir; with probability fill-fraction it replaces a
/// uniformly random resident, otherwise the reservoir grows. Recency bias
/// makes the sample track concept drift, at the cost of uniformity.
template <typename T>
class BiasedReservoirSampler {
 public:
  BiasedReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    STREAMLIB_CHECK_MSG(capacity >= 1, "reservoir capacity must be >= 1");
    sample_.reserve(capacity);
  }

  /// Every element is admitted (p_in = 1 for lambda = 1/capacity).
  void Add(const T& value) {
    count_++;
    const double fill =
        static_cast<double>(sample_.size()) / static_cast<double>(capacity_);
    if (rng_.NextDouble() < fill) {
      sample_[rng_.NextBounded(sample_.size())] = value;
    } else {
      sample_.push_back(value);
    }
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t count() const { return count_; }
  size_t capacity() const { return capacity_; }

  /// The exponential bias rate lambda = 1 / capacity: the inclusion
  /// probability of the element seen r steps ago decays as exp(-lambda r).
  double bias_rate() const { return 1.0 / static_cast<double>(capacity_); }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<T> sample_;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_SAMPLING_BIASED_RESERVOIR_H_
