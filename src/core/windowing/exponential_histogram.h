#ifndef STREAMLIB_CORE_WINDOWING_EXPONENTIAL_HISTOGRAM_H_
#define STREAMLIB_CORE_WINDOWING_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <deque>

#include "common/check.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// DGIM exponential histogram (Datar, Gionis, Indyk & Motwani — the "Basic
/// Counting" row of Table 1, cited as [72]): estimates the number of 1-bits
/// among the last W stream bits with relative error <= 1/k using
/// O(k log^2 W) bits of state. Buckets hold power-of-two counts of 1s; at
/// most k+1 buckets of each size are kept, merging the two oldest on
/// overflow; the oldest bucket contributes half its size to the estimate.
///
/// Application (Table 1): popularity analysis — "how many of the last N
/// impressions clicked".
class ExponentialHistogram {
 public:
  static constexpr state::TypeId kTypeId =
      state::TypeId::kExponentialHistogram;
  static constexpr uint16_t kStateVersion = 1;

  /// \param window  window size W in stream positions.
  /// \param k       buckets per size class; relative error <= 1/k... with
  ///                the guarantee |m_hat - m| <= m/k (set k = ceil(1/eps)).
  ExponentialHistogram(uint64_t window, uint32_t k);

  /// Processes the next bit of the stream.
  void Add(bool bit);

  /// Estimated count of 1s among the last `window` bits:
  /// total bucket mass minus half the oldest bucket.
  uint64_t Estimate() const;

  /// Upper/lower bounds bracketing the true count.
  uint64_t UpperBound() const { return total_; }
  uint64_t LowerBound() const {
    return buckets_.empty() ? 0 : total_ - buckets_.front().size + 1;
  }

  uint64_t window() const { return window_; }
  uint64_t position() const { return position_; }
  uint32_t k() const { return k_; }

  /// Merges a histogram over the *same global position timeline* (the
  /// sharded pattern where each shard sees a subset of a shared stream and
  /// positions are event indices, as in SlidingHyperLogLog). Buckets are
  /// interleaved by position, expired against the later of the two
  /// positions, and the k+1-per-size-class invariant is re-established.
  Status Merge(const ExponentialHistogram& other);

  /// state::MergeableSketch payload: parameters, position, then the buckets
  /// oldest-first.
  void SerializeTo(ByteWriter& w) const;
  static Result<ExponentialHistogram> Deserialize(ByteReader& r);

  /// Number of buckets currently held (space diagnostic, O(k log W)).
  size_t NumBuckets() const { return buckets_.size(); }
  size_t MemoryBytes() const { return buckets_.size() * sizeof(Bucket); }

 private:
  struct Bucket {
    uint64_t newest_position;  // Arrival index of the newest 1 in the bucket.
    uint64_t size;             // Number of 1s (a power of two).
  };

  void ExpireOld();
  void MergeOverflow();
  void Canonicalize();

  uint64_t window_;
  uint32_t k_;
  uint64_t position_ = 0;  // Bits consumed so far.
  uint64_t total_ = 0;     // Sum of bucket sizes.
  std::deque<Bucket> buckets_;  // Front = oldest (largest sizes).
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_WINDOWING_EXPONENTIAL_HISTOGRAM_H_
