#include "core/windowing/exponential_histogram.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <vector>

#include "common/bitutil.h"

namespace streamlib {

ExponentialHistogram::ExponentialHistogram(uint64_t window, uint32_t k)
    : window_(window), k_(k) {
  STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
  STREAMLIB_CHECK_MSG(k >= 1, "k must be >= 1");
}

void ExponentialHistogram::Add(bool bit) {
  position_++;
  ExpireOld();
  if (!bit) return;
  buckets_.push_back(Bucket{position_, 1});
  total_ += 1;
  MergeOverflow();
}

void ExponentialHistogram::ExpireOld() {
  // A bucket expires when its newest 1 falls outside the window.
  while (!buckets_.empty() &&
         buckets_.front().newest_position + window_ <= position_) {
    total_ -= buckets_.front().size;
    buckets_.pop_front();
  }
}

void ExponentialHistogram::MergeOverflow() {
  // Walk size classes from the newest end; when a class has k+2 buckets,
  // merge its two oldest into one bucket of twice the size (which may
  // cascade into the next class).
  uint64_t size = 1;
  size_t end = buckets_.size();  // Exclusive end of the current class scan.
  while (true) {
    // Count buckets of `size` scanning backward from `end`.
    size_t count = 0;
    size_t i = end;
    while (i > 0 && buckets_[i - 1].size == size) {
      count++;
      i--;
    }
    if (count < k_ + 2) break;
    // Merge the two oldest of this class: positions i and i+1.
    buckets_[i].size *= 2;
    // Keep the newest position of the merged pair (bucket i+1 is newer).
    buckets_[i].newest_position = buckets_[i + 1].newest_position;
    buckets_.erase(buckets_.begin() + static_cast<long>(i) + 1);
    end = i + 1;  // The merged bucket belongs to the next class.
    size *= 2;
  }
}

uint64_t ExponentialHistogram::Estimate() const {
  if (buckets_.empty()) return 0;
  // All of every bucket except the oldest, plus half the oldest.
  return total_ - buckets_.front().size / 2;
}

void ExponentialHistogram::Canonicalize() {
  // Re-establish the <= k+1 buckets-per-size-class invariant after a merge,
  // which may have left any class over-full. Classes are processed smallest
  // first so merges cascade upward, exactly like MergeOverflow.
  std::map<uint64_t, std::vector<Bucket>> classes;  // size -> oldest-first.
  for (const Bucket& b : buckets_) classes[b.size].push_back(b);
  for (auto it = classes.begin(); it != classes.end(); ++it) {
    std::vector<Bucket>& vec = it->second;
    while (vec.size() >= k_ + 2) {
      Bucket merged{vec[1].newest_position, it->first * 2};
      vec.erase(vec.begin(), vec.begin() + 2);
      std::vector<Bucket>& up = classes[it->first * 2];
      up.insert(std::upper_bound(up.begin(), up.end(), merged,
                                 [](const Bucket& a, const Bucket& b) {
                                   return a.newest_position <
                                          b.newest_position;
                                 }),
                merged);
    }
  }
  std::vector<Bucket> all;
  all.reserve(buckets_.size());
  for (const auto& [size, vec] : classes) {
    all.insert(all.end(), vec.begin(), vec.end());
  }
  std::sort(all.begin(), all.end(), [](const Bucket& a, const Bucket& b) {
    return a.newest_position < b.newest_position;
  });
  buckets_.assign(all.begin(), all.end());
}

Status ExponentialHistogram::Merge(const ExponentialHistogram& other) {
  if (other.window_ != window_ || other.k_ != k_) {
    return Status::InvalidArgument("EH merge: parameter mismatch");
  }
  std::deque<Bucket> merged;
  std::merge(buckets_.begin(), buckets_.end(), other.buckets_.begin(),
             other.buckets_.end(), std::back_inserter(merged),
             [](const Bucket& a, const Bucket& b) {
               return a.newest_position < b.newest_position;
             });
  buckets_ = std::move(merged);
  position_ = std::max(position_, other.position_);
  total_ += other.total_;
  ExpireOld();
  Canonicalize();
  return Status::OK();
}

void ExponentialHistogram::SerializeTo(ByteWriter& w) const {
  w.PutVarint(window_);
  w.PutU32(k_);
  w.PutVarint(position_);
  w.PutVarint(buckets_.size());
  for (const Bucket& b : buckets_) {
    w.PutVarint(b.newest_position);
    w.PutVarint(b.size);
  }
}

Result<ExponentialHistogram> ExponentialHistogram::Deserialize(
    ByteReader& r) {
  uint64_t window = 0;
  uint32_t k = 0;
  uint64_t position = 0;
  uint64_t num_buckets = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&window));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&k));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&position));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_buckets));
  if (window < 1 || k < 1) {
    return Status::Corruption("EH: parameters out of range");
  }
  if (num_buckets * 2 > r.remaining()) {
    return Status::Corruption("EH: bucket count exceeds payload");
  }
  ExponentialHistogram hist(window, k);
  hist.position_ = position;
  uint64_t prev_position = 0;
  for (uint64_t i = 0; i < num_buckets; i++) {
    Bucket b{};
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&b.newest_position));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&b.size));
    if (b.size == 0 || !IsPowerOfTwo(b.size) ||
        b.newest_position > position ||
        b.newest_position + window <= position ||
        (i > 0 && b.newest_position < prev_position)) {
      return Status::Corruption("EH: malformed bucket");
    }
    prev_position = b.newest_position;
    hist.buckets_.push_back(b);
    hist.total_ += b.size;
  }
  return hist;
}

}  // namespace streamlib
