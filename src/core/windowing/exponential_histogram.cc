#include "core/windowing/exponential_histogram.h"

namespace streamlib {

ExponentialHistogram::ExponentialHistogram(uint64_t window, uint32_t k)
    : window_(window), k_(k) {
  STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
  STREAMLIB_CHECK_MSG(k >= 1, "k must be >= 1");
}

void ExponentialHistogram::Add(bool bit) {
  position_++;
  ExpireOld();
  if (!bit) return;
  buckets_.push_back(Bucket{position_, 1});
  total_ += 1;
  MergeOverflow();
}

void ExponentialHistogram::ExpireOld() {
  // A bucket expires when its newest 1 falls outside the window.
  while (!buckets_.empty() &&
         buckets_.front().newest_position + window_ <= position_) {
    total_ -= buckets_.front().size;
    buckets_.pop_front();
  }
}

void ExponentialHistogram::MergeOverflow() {
  // Walk size classes from the newest end; when a class has k+2 buckets,
  // merge its two oldest into one bucket of twice the size (which may
  // cascade into the next class).
  uint64_t size = 1;
  size_t end = buckets_.size();  // Exclusive end of the current class scan.
  while (true) {
    // Count buckets of `size` scanning backward from `end`.
    size_t count = 0;
    size_t i = end;
    while (i > 0 && buckets_[i - 1].size == size) {
      count++;
      i--;
    }
    if (count < k_ + 2) break;
    // Merge the two oldest of this class: positions i and i+1.
    buckets_[i].size *= 2;
    // Keep the newest position of the merged pair (bucket i+1 is newer).
    buckets_[i].newest_position = buckets_[i + 1].newest_position;
    buckets_.erase(buckets_.begin() + static_cast<long>(i) + 1);
    end = i + 1;  // The merged bucket belongs to the next class.
    size *= 2;
  }
}

uint64_t ExponentialHistogram::Estimate() const {
  if (buckets_.empty()) return 0;
  // All of every bucket except the oldest, plus half the oldest.
  return total_ - buckets_.front().size / 2;
}

}  // namespace streamlib
