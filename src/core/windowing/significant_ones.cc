#include "core/windowing/significant_ones.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamlib {
namespace {

// Coarsening granularity: each "super one" fed to the inner histogram
// represents `g` true ones. Half the absolute error budget eps*theta*W goes
// to this truncation (2g slack: boundary distortion + pending remainder),
// half to the histogram's own relative error.
uint64_t Granularity(uint64_t window, double theta, double eps) {
  const double budget = eps * theta * static_cast<double>(window) / 4.0;
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::floor(budget)));
}

uint32_t InnerK(double eps) {
  return static_cast<uint32_t>(std::ceil(1.0 / eps)) + 1;
}

}  // namespace

SignificantOneCounter::SignificantOneCounter(uint64_t window, double theta,
                                             double eps)
    : window_(window),
      theta_(theta),
      eps_(eps),
      granularity_(Granularity(window, theta, eps)),
      histogram_(window, InnerK(eps)) {
  STREAMLIB_CHECK_MSG(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
  STREAMLIB_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
}

void SignificantOneCounter::Add(bool bit) {
  bool super_one = false;
  if (bit) {
    pending_++;
    if (pending_ >= granularity_) {
      pending_ = 0;
      super_one = true;
    }
  }
  histogram_.Add(super_one);
}

uint64_t SignificantOneCounter::Estimate() const {
  return histogram_.Estimate() * granularity_ + pending_;
}

bool SignificantOneCounter::IsSignificant() const {
  return static_cast<double>(Estimate()) >=
         theta_ * static_cast<double>(window_);
}

}  // namespace streamlib
