#ifndef STREAMLIB_CORE_WINDOWING_SLIDING_AGGREGATOR_H_
#define STREAMLIB_CORE_WINDOWING_SLIDING_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// Exact sliding-window aggregation for any associative combine operation —
/// the "two stacks" algorithm (the FIFO-queue generalization of the classic
/// min-stack; the research lineage runs to DABA). Amortized O(1) per element
/// and O(W) memory, no invertibility required, which is why it handles max,
/// min and variance alike. The paper lists "maintaining statistics like
/// variance over sliding windows" as an actively researched primitive.
///
/// Monoid must provide:
///   static Monoid Identity();
///   static Monoid Combine(const Monoid&, const Monoid&);  // associative
template <typename Monoid>
class SlidingAggregator {
 public:
  /// \param window  window size W in elements.
  explicit SlidingAggregator(size_t window) : window_(window) {
    STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
  }

  /// Pushes the next element's monoid value, evicting beyond the window.
  void Add(const Monoid& value) {
    if (Size() == window_) Evict();
    back_stack_.push_back(value);
    back_aggregate_ = Monoid::Combine(back_aggregate_, value);
  }

  /// Aggregate of the current window contents.
  Monoid Query() const {
    const Monoid front = front_stack_.empty()
                             ? Monoid::Identity()
                             : front_stack_.back().aggregate;
    return Monoid::Combine(front, back_aggregate_);
  }

  size_t Size() const { return front_stack_.size() + back_stack_.size(); }
  size_t window() const { return window_; }

 private:
  struct FrontEntry {
    Monoid value;
    Monoid aggregate;  // Combine of this value and everything newer-in-front.
  };

  void Evict() {
    if (front_stack_.empty()) Flip();
    if (!front_stack_.empty()) front_stack_.pop_back();
  }

  /// Moves the back stack into the front stack, computing suffix aggregates
  /// so that front_stack_.back().aggregate is the combine of all window
  /// elements currently in front order.
  void Flip() {
    Monoid agg = Monoid::Identity();
    for (auto it = back_stack_.rbegin(); it != back_stack_.rend(); ++it) {
      agg = Monoid::Combine(*it, agg);
      front_stack_.push_back(FrontEntry{*it, agg});
    }
    back_stack_.clear();
    back_aggregate_ = Monoid::Identity();
  }

  size_t window_;
  std::vector<Monoid> back_stack_;
  std::vector<FrontEntry> front_stack_;
  Monoid back_aggregate_ = Monoid::Identity();
};

/// Sum monoid over doubles.
struct SumMonoid {
  double sum = 0.0;

  static SumMonoid Identity() { return SumMonoid{0.0}; }
  static SumMonoid Combine(const SumMonoid& a, const SumMonoid& b) {
    return SumMonoid{a.sum + b.sum};
  }
  static SumMonoid Of(double v) { return SumMonoid{v}; }
};

/// Max monoid over doubles.
struct MaxMonoid {
  double max = -1.7976931348623157e308;  // -DBL_MAX as identity.

  static MaxMonoid Identity() { return MaxMonoid{}; }
  static MaxMonoid Combine(const MaxMonoid& a, const MaxMonoid& b) {
    return MaxMonoid{a.max > b.max ? a.max : b.max};
  }
  static MaxMonoid Of(double v) { return MaxMonoid{v}; }
};

/// Min monoid over doubles.
struct MinMonoid {
  double min = 1.7976931348623157e308;

  static MinMonoid Identity() { return MinMonoid{}; }
  static MinMonoid Combine(const MinMonoid& a, const MinMonoid& b) {
    return MinMonoid{a.min < b.min ? a.min : b.min};
  }
  static MinMonoid Of(double v) { return MinMonoid{v}; }
};

/// Mean/variance monoid (count, mean, M2) using Chan's parallel combination
/// formula — exact sliding-window variance without subtraction, immune to
/// the catastrophic cancellation of the naive sum-of-squares approach.
struct VarianceMonoid {
  double count = 0.0;
  double mean = 0.0;
  double m2 = 0.0;

  static VarianceMonoid Identity() { return VarianceMonoid{}; }

  static VarianceMonoid Combine(const VarianceMonoid& a,
                                const VarianceMonoid& b) {
    if (a.count == 0.0) return b;
    if (b.count == 0.0) return a;
    VarianceMonoid out;
    out.count = a.count + b.count;
    const double delta = b.mean - a.mean;
    out.mean = a.mean + delta * b.count / out.count;
    out.m2 = a.m2 + b.m2 + delta * delta * a.count * b.count / out.count;
    return out;
  }

  static VarianceMonoid Of(double v) { return VarianceMonoid{1.0, v, 0.0}; }

  /// Population variance of the combined elements.
  double Variance() const { return count > 0.0 ? m2 / count : 0.0; }
  /// Sample variance (n-1 denominator).
  double SampleVariance() const {
    return count > 1.0 ? m2 / (count - 1.0) : 0.0;
  }
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_WINDOWING_SLIDING_AGGREGATOR_H_
