#ifndef STREAMLIB_CORE_WINDOWING_SLIDING_TOPK_H_
#define STREAMLIB_CORE_WINDOWING_SLIDING_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// Continuous top-k monitoring over a sliding window — the problem of
/// Pripužić, Žarko & Aberer (cited as [138]) and Yang et al.'s MinTopK
/// (cited as [166]). The structure keeps only the *k-skyband*: an element
/// is discarded forever once k higher-scoring elements that outlive it
/// exist, because it can never re-enter the top-k while they are alive.
/// Since arrivals are newest (and so outlive everything resident), each
/// arrival simply bumps the dominance count of every lower-scoring
/// resident — giving expected O(k log(W/k)) retained entries instead of W.
///
/// Application (Table 1): "time- and space-efficient sliding window top-k
/// query processing" — dashboards showing the current top scored events.
template <typename T>
class SlidingTopK {
 public:
  /// \param k       result size.
  /// \param window  sliding window length in arrivals.
  SlidingTopK(size_t k, uint64_t window) : k_(k), window_(window) {
    STREAMLIB_CHECK_MSG(k >= 1, "k must be >= 1");
    STREAMLIB_CHECK_MSG(window >= k, "window must be >= k");
  }

  /// Feeds the next element.
  void Add(double score, T payload) {
    const uint64_t now = count_++;
    // Expire elements that left the window.
    while (!entries_.empty() && entries_.front().expiry <= now) {
      entries_.pop_front();
    }
    // The newcomer outlives every resident: it dominates all residents with
    // score <= its own. Residents collecting k dominators can never return.
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->score <= score && ++it->dominated >= k_) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    entries_.push_back(Entry{now + window_, score, 0, std::move(payload)});
  }

  /// The current top-k (score descending) among the last `window` arrivals.
  std::vector<std::pair<double, T>> TopK() const {
    std::vector<std::pair<double, T>> live;
    live.reserve(entries_.size());
    // The newest arrival has index count_ - 1; an entry is in the window
    // while expiry (= arrival + window) exceeds that index.
    for (const Entry& e : entries_) {
      if (count_ == 0 || e.expiry > count_ - 1) {
        live.emplace_back(e.score, e.payload);
      }
    }
    std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });
    if (live.size() > k_) live.resize(k_);
    return live;
  }

  /// Candidates retained (the k-skyband size; the space win vs W).
  size_t CandidateCount() const { return entries_.size(); }

  uint64_t count() const { return count_; }

 private:
  struct Entry {
    uint64_t expiry;     // Arrival index at which this element leaves.
    double score;
    uint64_t dominated;  // Number of fresher, higher-scoring elements.
    T payload;
  };

  size_t k_;
  uint64_t window_;
  uint64_t count_ = 0;
  std::deque<Entry> entries_;  // Arrival order (so expiry is monotone).
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_WINDOWING_SLIDING_TOPK_H_
