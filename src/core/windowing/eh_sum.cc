#include "core/windowing/eh_sum.h"

#include "common/check.h"

namespace streamlib {

EhSum::EhSum(uint64_t window, uint32_t k, uint32_t value_bits)
    : window_(window), value_bits_(value_bits) {
  STREAMLIB_CHECK_MSG(value_bits >= 1 && value_bits <= 32,
                      "value_bits must be in [1, 32]");
  bit_histograms_.reserve(value_bits);
  for (uint32_t b = 0; b < value_bits; b++) {
    bit_histograms_.emplace_back(window, k);
  }
}

void EhSum::Add(uint32_t value) {
  STREAMLIB_CHECK_MSG(
      value_bits_ == 32 || value < (uint32_t{1} << value_bits_),
      "value exceeds configured bit width");
  for (uint32_t b = 0; b < value_bits_; b++) {
    bit_histograms_[b].Add((value >> b) & 1);
  }
}

uint64_t EhSum::Estimate() const {
  uint64_t total = 0;
  for (uint32_t b = 0; b < value_bits_; b++) {
    total += bit_histograms_[b].Estimate() << b;
  }
  return total;
}

size_t EhSum::NumBuckets() const {
  size_t total = 0;
  for (const auto& h : bit_histograms_) total += h.NumBuckets();
  return total;
}

size_t EhSum::MemoryBytes() const {
  size_t total = 0;
  for (const auto& h : bit_histograms_) total += h.MemoryBytes();
  return total;
}

}  // namespace streamlib
