#include "core/windowing/eh_sum.h"

#include <utility>

#include "common/check.h"

namespace streamlib {

EhSum::EhSum(uint64_t window, uint32_t k, uint32_t value_bits)
    : window_(window), value_bits_(value_bits) {
  STREAMLIB_CHECK_MSG(value_bits >= 1 && value_bits <= 32,
                      "value_bits must be in [1, 32]");
  bit_histograms_.reserve(value_bits);
  for (uint32_t b = 0; b < value_bits; b++) {
    bit_histograms_.emplace_back(window, k);
  }
}

void EhSum::Add(uint32_t value) {
  STREAMLIB_CHECK_MSG(
      value_bits_ == 32 || value < (uint32_t{1} << value_bits_),
      "value exceeds configured bit width");
  for (uint32_t b = 0; b < value_bits_; b++) {
    bit_histograms_[b].Add((value >> b) & 1);
  }
}

uint64_t EhSum::Estimate() const {
  uint64_t total = 0;
  for (uint32_t b = 0; b < value_bits_; b++) {
    total += bit_histograms_[b].Estimate() << b;
  }
  return total;
}

size_t EhSum::NumBuckets() const {
  size_t total = 0;
  for (const auto& h : bit_histograms_) total += h.NumBuckets();
  return total;
}

size_t EhSum::MemoryBytes() const {
  size_t total = 0;
  for (const auto& h : bit_histograms_) total += h.MemoryBytes();
  return total;
}

Status EhSum::Merge(const EhSum& other) {
  if (other.window_ != window_ || other.value_bits_ != value_bits_ ||
      other.bit_histograms_[0].k() != bit_histograms_[0].k()) {
    return Status::InvalidArgument("EH-sum merge: parameter mismatch");
  }
  for (uint32_t b = 0; b < value_bits_; b++) {
    STREAMLIB_RETURN_NOT_OK(bit_histograms_[b].Merge(other.bit_histograms_[b]));
  }
  return Status::OK();
}

void EhSum::SerializeTo(ByteWriter& w) const {
  w.PutVarint(window_);
  w.PutU32(bit_histograms_[0].k());
  w.PutU32(value_bits_);
  for (const auto& h : bit_histograms_) h.SerializeTo(w);
}

Result<EhSum> EhSum::Deserialize(ByteReader& r) {
  uint64_t window = 0;
  uint32_t k = 0;
  uint32_t value_bits = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&window));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&k));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&value_bits));
  if (window < 1 || k < 1 || value_bits < 1 || value_bits > 32) {
    return Status::Corruption("EH-sum: parameters out of range");
  }
  EhSum sum(window, k, value_bits);
  for (uint32_t b = 0; b < value_bits; b++) {
    Result<ExponentialHistogram> hist = ExponentialHistogram::Deserialize(r);
    STREAMLIB_RETURN_NOT_OK(hist.status());
    if (hist.value().window() != window || hist.value().k() != k) {
      return Status::Corruption("EH-sum: bit histogram parameter mismatch");
    }
    sum.bit_histograms_[b] = std::move(hist).value();
  }
  return sum;
}

}  // namespace streamlib
