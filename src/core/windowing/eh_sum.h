#ifndef STREAMLIB_CORE_WINDOWING_EH_SUM_H_
#define STREAMLIB_CORE_WINDOWING_EH_SUM_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"
#include "core/windowing/exponential_histogram.h"

namespace streamlib {

/// Sliding-window *sum* of bounded nonnegative integers via the bit-sliced
/// composition of DGIM histograms (the extension sketched in Datar et al.):
/// one ExponentialHistogram per bit of the value; bit b of each arriving
/// value feeds histogram b and the estimate recombines sum_b 2^b * est_b.
/// Relative error matches the underlying DGIM bound while memory stays
/// O(bits * k * log W) buckets — constant in the window contents.
class EhSum {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kEhSum;
  static constexpr uint16_t kStateVersion = 1;

  /// \param window      window size W in elements.
  /// \param k           DGIM buckets per size class (error ~ 1/k).
  /// \param value_bits  values must fit in this many bits (<= 32).
  EhSum(uint64_t window, uint32_t k, uint32_t value_bits);

  /// Processes the next value (must be < 2^value_bits).
  void Add(uint32_t value);

  /// Estimated sum of the last `window` values.
  uint64_t Estimate() const;

  uint64_t window() const { return window_; }
  size_t NumBuckets() const;
  size_t MemoryBytes() const;

  /// Merges bit-slice by bit-slice; same timeline caveat as
  /// ExponentialHistogram::Merge. Parameters must match.
  Status Merge(const EhSum& other);

  /// state::MergeableSketch payload: parameters then each bit histogram's
  /// own payload (delegated, like DyadicCountMin's per-level sketches).
  void SerializeTo(ByteWriter& w) const;
  static Result<EhSum> Deserialize(ByteReader& r);

 private:
  uint64_t window_;
  uint32_t value_bits_;
  std::vector<ExponentialHistogram> bit_histograms_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_WINDOWING_EH_SUM_H_
