#ifndef STREAMLIB_CORE_WINDOWING_SIGNIFICANT_ONES_H_
#define STREAMLIB_CORE_WINDOWING_SIGNIFICANT_ONES_H_

#include <cstdint>

#include "core/windowing/exponential_histogram.h"

namespace streamlib {

/// Significant-one counting (Lee & Ting, SODA 2006, cited as [119]; the
/// traffic-accounting application is Estan & Varghese [81]): estimate the
/// number m of 1s in the sliding window with |m_hat - m| <= eps*m, but the
/// guarantee is only required when the window is *significant*, i.e.
/// m >= theta * window. Relaxing the always-accurate requirement converts
/// part of the error budget into the absolute slack eps*theta*W, which this
/// implementation spends by *coarsening*: ones are grouped into "super ones"
/// of g = Theta(eps*theta*W) before entering a DGIM histogram, shrinking the
/// number of buckets from O(k log^2 W) bits to O(k log(W/(g k))) buckets —
/// the space ratio the windowing bench reports against plain DGIM.
class SignificantOneCounter {
 public:
  /// \param window  window size W.
  /// \param theta   significance threshold in (0, 1).
  /// \param eps     relative error bound required when m >= theta*W.
  SignificantOneCounter(uint64_t window, double theta, double eps);

  /// Processes the next bit.
  void Add(bool bit);

  /// Estimated 1-count. Accurate to eps*m whenever m >= theta*window.
  uint64_t Estimate() const;

  /// True iff the estimate clears the significance threshold (callers use
  /// this before trusting the relative-error guarantee).
  bool IsSignificant() const;

  double theta() const { return theta_; }
  double eps() const { return eps_; }
  uint64_t window() const { return window_; }
  uint64_t granularity() const { return granularity_; }
  size_t NumBuckets() const { return histogram_.NumBuckets(); }
  size_t MemoryBytes() const { return histogram_.MemoryBytes(); }

 private:
  uint64_t window_;
  double theta_;
  double eps_;
  uint64_t granularity_;
  ExponentialHistogram histogram_;
  uint64_t pending_ = 0;  // Ones not yet grouped into a super one.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_WINDOWING_SIGNIFICANT_ONES_H_
