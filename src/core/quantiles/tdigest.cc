#include "core/quantiles/tdigest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamlib {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  STREAMLIB_CHECK_MSG(compression >= 10.0, "compression must be >= 10");
  buffer_.reserve(static_cast<size_t>(compression_) * 5);
}

double TDigest::ScaleK(double q) const {
  return compression_ / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

double TDigest::ScaleQ(double k) const {
  return (std::sin(k * 2.0 * kPi / compression_) + 1.0) / 2.0;
}

void TDigest::Add(double value, double weight) {
  STREAMLIB_CHECK_MSG(weight > 0.0, "weight must be positive");
  STREAMLIB_CHECK_MSG(std::isfinite(value), "value must be finite");
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  buffer_.push_back(Centroid{value, weight});
  buffered_weight_ += weight;
  if (buffer_.size() >= buffer_.capacity()) Flush();
}

void TDigest::Flush() {
  if (buffer_.empty()) return;
  buffer_.insert(buffer_.end(), centroids_.begin(), centroids_.end());
  std::sort(buffer_.begin(), buffer_.end(),
            [](const Centroid& a, const Centroid& b) {
              return a.mean < b.mean;
            });
  const double total = total_weight_ + buffered_weight_;

  std::vector<Centroid> merged;
  merged.reserve(static_cast<size_t>(2.0 * compression_) + 8);
  Centroid cur = buffer_[0];
  double w_so_far = 0.0;               // Weight fully emitted.
  double k_limit = ScaleK(0.0) + 1.0;  // Next k boundary.
  for (size_t i = 1; i < buffer_.size(); i++) {
    const Centroid& next = buffer_[i];
    const double q_if_merged = (w_so_far + cur.weight + next.weight) / total;
    if (ScaleK(q_if_merged) <= k_limit) {
      // Merge next into cur (weighted mean).
      const double w = cur.weight + next.weight;
      cur.mean += (next.mean - cur.mean) * next.weight / w;
      cur.weight = w;
    } else {
      w_so_far += cur.weight;
      k_limit = ScaleK(w_so_far / total) + 1.0;
      merged.push_back(cur);
      cur = next;
    }
  }
  merged.push_back(cur);

  centroids_ = std::move(merged);
  total_weight_ = total;
  buffered_weight_ = 0.0;
  buffer_.clear();
}

double TDigest::Quantile(double q) {
  STREAMLIB_CHECK_MSG(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
  Flush();
  STREAMLIB_CHECK_MSG(!centroids_.empty(), "quantile of empty digest");
  if (centroids_.size() == 1) return centroids_[0].mean;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;

  const double target = q * total_weight_;
  double cum = 0.0;  // Weight strictly before the current centroid.
  for (size_t i = 0; i < centroids_.size(); i++) {
    const Centroid& c = centroids_[i];
    const double c_mid = cum + c.weight / 2.0;
    if (target <= c_mid) {
      // Interpolate between previous centroid midpoint and this one.
      if (i == 0) {
        const double frac = target / c_mid;
        return min_ + frac * (c.mean - min_);
      }
      const Centroid& prev = centroids_[i - 1];
      const double prev_mid = cum - prev.weight / 2.0;
      const double frac = (target - prev_mid) / (c_mid - prev_mid);
      return prev.mean + frac * (c.mean - prev.mean);
    }
    cum += c.weight;
  }
  // Above the last centroid midpoint: interpolate toward max.
  const Centroid& last = centroids_.back();
  const double last_mid = total_weight_ - last.weight / 2.0;
  const double frac =
      (target - last_mid) / (total_weight_ - last_mid);
  return last.mean + frac * (max_ - last.mean);
}

double TDigest::Cdf(double value) {
  Flush();
  STREAMLIB_CHECK_MSG(!centroids_.empty(), "cdf of empty digest");
  if (value <= min_) return value < min_ ? 0.0 : 0.5 / total_weight_;
  if (value >= max_) return 1.0;

  double cum = 0.0;
  for (size_t i = 0; i < centroids_.size(); i++) {
    const Centroid& c = centroids_[i];
    if (value < c.mean) {
      const double prev_mean = i == 0 ? min_ : centroids_[i - 1].mean;
      const double prev_cum =
          i == 0 ? 0.0 : cum - centroids_[i - 1].weight / 2.0;
      const double cur_cum = cum + c.weight / 2.0;
      if (c.mean == prev_mean) return cur_cum / total_weight_;
      const double frac = (value - prev_mean) / (c.mean - prev_mean);
      return (prev_cum + frac * (cur_cum - prev_cum)) / total_weight_;
    }
    cum += c.weight;
  }
  return 1.0;
}

Status TDigest::Merge(const TDigest& other) {
  TDigest copy = other;
  copy.Flush();
  const uint64_t count_before = count_;
  for (const Centroid& c : copy.centroids_) {
    Add(c.mean, c.weight);
  }
  // Add() counted one observation per centroid; restore the true count and
  // the exact extrema of the merged stream.
  count_ = count_before + copy.count_;
  if (copy.count_ > 0) {
    min_ = count_before > 0 ? std::min(min_, copy.min_) : copy.min_;
    max_ = count_before > 0 ? std::max(max_, copy.max_) : copy.max_;
  }
  return Status::OK();
}

void TDigest::SerializeTo(ByteWriter& w) const {
  TDigest flushed = *this;
  flushed.Flush();
  w.PutDouble(flushed.compression_);
  w.PutVarint(flushed.count_);
  w.PutDouble(flushed.min_);
  w.PutDouble(flushed.max_);
  w.PutVarint(flushed.centroids_.size());
  for (const Centroid& c : flushed.centroids_) {
    w.PutDouble(c.mean);
    w.PutDouble(c.weight);
  }
}

Result<TDigest> TDigest::Deserialize(ByteReader& r) {
  double compression = 0.0;
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  uint64_t num_centroids = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&compression));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&min));
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&max));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_centroids));
  if (!std::isfinite(compression) || compression < 10.0) {
    return Status::Corruption("t-digest: compression out of range");
  }
  if (!std::isfinite(min) || !std::isfinite(max) || min > max) {
    return Status::Corruption("t-digest: invalid extrema");
  }
  if ((count == 0) != (num_centroids == 0)) {
    return Status::Corruption("t-digest: count/centroid mismatch");
  }
  if (num_centroids * 2 * sizeof(double) > r.remaining()) {
    return Status::Corruption("t-digest: centroid count exceeds payload");
  }
  TDigest digest(compression);
  digest.centroids_.reserve(num_centroids);
  double total_weight = 0.0;
  double prev_mean = min;
  for (uint64_t i = 0; i < num_centroids; i++) {
    Centroid c{};
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&c.mean));
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&c.weight));
    if (!std::isfinite(c.mean) || !std::isfinite(c.weight) ||
        c.weight <= 0.0 || c.mean < prev_mean || c.mean > max) {
      return Status::Corruption("t-digest: malformed centroid");
    }
    total_weight += c.weight;
    prev_mean = c.mean;
    digest.centroids_.push_back(c);
  }
  digest.count_ = count;
  digest.total_weight_ = total_weight;
  digest.min_ = min;
  digest.max_ = max;
  return digest;
}

size_t TDigest::NumCentroids() {
  Flush();
  return centroids_.size();
}

}  // namespace streamlib
