#ifndef STREAMLIB_CORE_QUANTILES_CKMS_QUANTILE_H_
#define STREAMLIB_CORE_QUANTILES_CKMS_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// A quantile the summary must answer with a given rank error.
struct QuantileTarget {
  double quantile;  ///< phi in (0, 1)
  double error;     ///< allowed rank error as a fraction of n
};

/// CKMS targeted-quantile summary (Cormode, Korn, Muthukrishnan &
/// Srivastava; the "biased quantiles" line cited as [170] builds on it):
/// like Greenwald–Khanna, but the error budget is *non-uniform* — the
/// summary spends space only near the pre-declared target quantiles, so
/// tracking {p50@1%, p99@0.1%, p999@0.05%} concentrates space near those
/// quantiles. The standard choice for latency monitoring.
///
/// Space note: on uniform streams the targeted summary can hold *more*
/// tuples than a uniform-eps GK summary — newborn tuples carry delta at the
/// invariant cap and only become mergeable once n grows past their birth
/// size. This matches the reference implementations (perks, stream-lib) and
/// is quantified in the quantile bench.
class CkmsQuantile {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kCkmsQuantile;
  static constexpr uint16_t kStateVersion = 1;

  /// \param targets  quantiles of interest with per-quantile error budgets.
  explicit CkmsQuantile(std::vector<QuantileTarget> targets);

  /// Inserts one observation. Insertions are buffered and folded into the
  /// summary in small sorted batches (the standard implementation strategy).
  void Add(double value);

  /// Approximate value of quantile phi. Most accurate at the targets.
  /// Requires at least one insertion.
  double Query(double phi);

  uint64_t count() const { return count_ + buffer_.size(); }

  /// Mergeable-summaries combine (same rank composition as GkQuantile):
  /// rank error over the merged stream is bounded by the sum of both sides'
  /// target budgets. Requires identical target lists.
  Status Merge(const CkmsQuantile& other);

  /// state::MergeableSketch payload: targets, count, then the flushed
  /// (value, g, delta) tuples in value order.
  void SerializeTo(ByteWriter& w) const;
  static Result<CkmsQuantile> Deserialize(ByteReader& r);

  /// Summary tuples held after the pending buffer is flushed.
  size_t SummarySize();

 private:
  static constexpr size_t kBufferSize = 512;

  struct Tuple {
    double value;
    uint64_t g;
    uint64_t delta;
  };

  /// The CKMS invariant f(r, n): allowed uncertainty for a tuple at rank r.
  double Invariant(double rank, uint64_t n) const;

  void Flush();
  void Compress();

  std::vector<QuantileTarget> targets_;
  std::vector<Tuple> tuples_;  // Sorted by value.
  std::vector<double> buffer_;
  uint64_t count_ = 0;  // Observations already folded into tuples_.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_QUANTILES_CKMS_QUANTILE_H_
