#ifndef STREAMLIB_CORE_QUANTILES_FRUGAL_H_
#define STREAMLIB_CORE_QUANTILES_FRUGAL_H_

#include <cstdint>

#include "common/check.h"
#include "common/random.h"

namespace streamlib {

/// Frugal-1U streaming quantile estimator (Ma, Muthukrishnan & Sandler,
/// cited as [123]): tracks one quantile using *one unit of memory* — a single
/// running value nudged up with probability phi and down with probability
/// 1-phi. Converges to the true quantile for stationary streams; accuracy is
/// workload-dependent (no worst-case guarantee), which is exactly the
/// trade-off the frugal-streaming paper explores and the quantile bench
/// quantifies against GK/CKMS/t-digest.
class Frugal1U {
 public:
  /// \param phi   quantile to track, in (0, 1).
  /// \param seed  RNG seed.
  Frugal1U(double phi, uint64_t seed) : phi_(phi), rng_(seed) {
    STREAMLIB_CHECK_MSG(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
  }

  void Add(double value) {
    if (!initialized_) {
      estimate_ = value;
      initialized_ = true;
      return;
    }
    if (value > estimate_ && rng_.NextBool(phi_)) {
      estimate_ += 1.0;
    } else if (value < estimate_ && rng_.NextBool(1.0 - phi_)) {
      estimate_ -= 1.0;
    }
  }

  double Estimate() const { return estimate_; }
  double phi() const { return phi_; }

 private:
  double phi_;
  Rng rng_;
  double estimate_ = 0.0;
  bool initialized_ = false;
};

/// Frugal-2U: the two-variables refinement from the same paper — an adaptive
/// step size grows while updates keep pushing in one direction and shrinks on
/// direction reversals, giving much faster convergence when the estimate is
/// far from the quantile while keeping O(1) memory.
class Frugal2U {
 public:
  Frugal2U(double phi, uint64_t seed) : phi_(phi), rng_(seed) {
    STREAMLIB_CHECK_MSG(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
  }

  void Add(double value) {
    if (!initialized_) {
      estimate_ = value;
      initialized_ = true;
      return;
    }
    if (value > estimate_ && rng_.NextBool(phi_)) {
      step_ += sign_ > 0 ? 1.0 : -1.0;
      estimate_ += step_ > 0 ? step_ : 1.0;
      if (estimate_ > value) {  // Overshoot: take back the excess.
        step_ += value - estimate_;
        estimate_ = value;
      }
      if (sign_ < 0 && step_ > 1.0) step_ = 1.0;
      sign_ = 1;
    } else if (value < estimate_ && rng_.NextBool(1.0 - phi_)) {
      step_ += sign_ < 0 ? 1.0 : -1.0;
      estimate_ -= step_ > 0 ? step_ : 1.0;
      if (estimate_ < value) {
        step_ += estimate_ - value;
        estimate_ = value;
      }
      if (sign_ > 0 && step_ > 1.0) step_ = 1.0;
      sign_ = -1;
    }
  }

  double Estimate() const { return estimate_; }
  double phi() const { return phi_; }

 private:
  double phi_;
  Rng rng_;
  double estimate_ = 0.0;
  double step_ = 1.0;
  int sign_ = 1;
  bool initialized_ = false;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_QUANTILES_FRUGAL_H_
