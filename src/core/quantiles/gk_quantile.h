#ifndef STREAMLIB_CORE_QUANTILES_GK_QUANTILE_H_
#define STREAMLIB_CORE_QUANTILES_GK_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Greenwald–Khanna quantile summary (SIGMOD 2001, cited as [93]):
/// eps-approximate quantiles of an unbounded stream in O((1/eps) log(eps n))
/// space. A query for quantile phi returns an element whose rank is within
/// eps*n of ceil(phi*n), deterministically (no randomness, no assumptions on
/// value distribution or arrival order).
///
/// Application (Table 1): network latency analysis — p50/p99/p999 tracking.
class GkQuantile {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kGkQuantile;
  static constexpr uint16_t kStateVersion = 1;

  /// \param eps  rank-error bound, in (0, 1); e.g. 0.001 for p99 tracking.
  explicit GkQuantile(double eps);

  /// Inserts one observation.
  void Add(double value);

  /// Value with rank within eps*n of ceil(phi*n). phi in [0, 1].
  /// Requires at least one insertion.
  double Query(double phi) const;

  /// Mergeable-summaries combine: the merged summary covers both streams
  /// with rank error bounded by the *sum* of the two sides' eps*n budgets
  /// (GK is one-way mergeable, not eps-preserving — widen query tolerance
  /// accordingly after S-way shard merges). Requires equal eps.
  Status Merge(const GkQuantile& other);

  /// state::MergeableSketch payload: eps, count, then the (value, g, delta)
  /// tuples in value order.
  void SerializeTo(ByteWriter& w) const;
  static Result<GkQuantile> Deserialize(ByteReader& r);

  uint64_t count() const { return count_; }
  double eps() const { return eps_; }

  /// Number of summary tuples held (space diagnostic; the GK guarantee is
  /// O((1/eps) log(eps n))).
  size_t SummarySize() const { return tuples_.size(); }
  size_t MemoryBytes() const { return tuples_.size() * sizeof(Tuple); }

 private:
  struct Tuple {
    double value;     // Sampled value v_i.
    uint64_t g;       // rmin(v_i) - rmin(v_{i-1}).
    uint64_t delta;   // rmax(v_i) - rmin(v_i).
  };

  void Compress();

  double eps_;
  uint64_t count_ = 0;
  uint64_t compress_every_;  // Compress period: floor(1/(2 eps)).
  std::vector<Tuple> tuples_;  // Sorted by value.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_QUANTILES_GK_QUANTILE_H_
