#ifndef STREAMLIB_CORE_QUANTILES_TDIGEST_H_
#define STREAMLIB_CORE_QUANTILES_TDIGEST_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// t-digest (Dunning & Ertl), merging variant — the practical successor to
/// the GK-family summaries for heavy production use (adopted by most of the
/// monitoring systems the paper's platform survey feeds into). Centroids are
/// size-limited by the k1 scale function, which concentrates resolution at
/// the distribution tails: relative accuracy at q near 0/1 is far better
/// than the uniform-eps guarantee of GK.
class TDigest {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kTDigest;
  static constexpr uint16_t kStateVersion = 1;

  /// \param compression  delta; centroid count is bounded by ~2*compression.
  explicit TDigest(double compression = 100.0);

  /// Inserts one observation with weight 1.
  void Add(double value) { Add(value, 1.0); }

  /// Inserts a weighted observation.
  void Add(double value, double weight);

  /// Approximate value of quantile q in [0, 1]. Requires data.
  double Quantile(double q);

  /// Approximate CDF: fraction of observations <= value. Requires data.
  double Cdf(double value);

  /// Merges another digest into this one. Digests of different compression
  /// merge fine (centroids re-compact under this digest's scale), so this
  /// never fails — the Status return is the uniform contract spelling.
  Status Merge(const TDigest& other);

  /// state::MergeableSketch payload: compression, count, extrema, then the
  /// flushed centroid list.
  void SerializeTo(ByteWriter& w) const;
  static Result<TDigest> Deserialize(ByteReader& r);

  double TotalWeight() {
    Flush();
    return total_weight_;
  }
  uint64_t count() const { return count_; }

  /// Centroid count after compaction (space diagnostic).
  size_t NumCentroids();

  double Min() {
    Flush();
    return min_;
  }
  double Max() {
    Flush();
    return max_;
  }

 private:
  struct Centroid {
    double mean;
    double weight;
  };

  /// Folds the buffer into the centroid list (sort + scale-bounded merge).
  void Flush();

  /// k1 scale function: k(q) = (delta / 2pi) * asin(2q - 1).
  double ScaleK(double q) const;
  /// Inverse: q(k).
  double ScaleQ(double k) const;

  double compression_;
  std::vector<Centroid> centroids_;  // Sorted by mean after Flush().
  std::vector<Centroid> buffer_;
  double total_weight_ = 0.0;   // Weight folded into centroids_.
  double buffered_weight_ = 0.0;
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_QUANTILES_TDIGEST_H_
