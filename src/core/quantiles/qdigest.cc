#include "core/quantiles/qdigest.h"

#include <algorithm>
#include <vector>

#include "common/bitutil.h"
#include "common/check.h"

namespace streamlib {

QDigest::QDigest(uint32_t universe_bits, uint32_t compression)
    : universe_bits_(universe_bits), compression_(compression) {
  STREAMLIB_CHECK_MSG(universe_bits >= 1 && universe_bits <= 32,
                      "universe_bits must be in [1, 32]");
  STREAMLIB_CHECK_MSG(compression >= 1, "compression must be >= 1");
}

uint64_t QDigest::RangeMax(uint64_t node) const {
  // Descend to the rightmost leaf of the subtree.
  const uint32_t node_level = static_cast<uint32_t>(Log2Floor(node));
  const uint32_t depth = universe_bits_ - node_level;
  const uint64_t rightmost = ((node + 1) << depth) - 1;
  return rightmost - (uint64_t{1} << universe_bits_);
}

void QDigest::Add(uint32_t value, uint64_t weight) {
  STREAMLIB_CHECK_MSG(
      universe_bits_ == 32 || value < (uint32_t{1} << universe_bits_),
      "value outside the universe");
  nodes_[LeafOf(value)] += weight;
  count_ += weight;
  since_compress_ += weight;
  if (since_compress_ * compression_ >= count_ &&
      nodes_.size() > 4 * compression_) {
    Compress();
    since_compress_ = 0;
  }
}

void QDigest::Compress() {
  const uint64_t threshold = count_ / compression_;
  if (threshold == 0) return;
  // Bottom-up sweep, strictly level by level so merges created at level d
  // cascade into the level d-1 pass of the same Compress call.
  for (uint32_t level = universe_bits_; level >= 1; level--) {
    std::vector<uint64_t> ids;
    const uint64_t level_begin = uint64_t{1} << level;
    const uint64_t level_end = uint64_t{1} << (level + 1);
    ids.reserve(nodes_.size());
    for (const auto& [id, cnt] : nodes_) {
      if (id >= level_begin && id < level_end) ids.push_back(id);
    }
    for (uint64_t id : ids) {
      auto it = nodes_.find(id);
      if (it == nodes_.end()) continue;  // Consumed as a sibling already.
      const uint64_t sibling = id ^ 1;
      const uint64_t parent = id / 2;
      auto sib_it = nodes_.find(sibling);
      auto par_it = nodes_.find(parent);
      const uint64_t sib_count = sib_it == nodes_.end() ? 0 : sib_it->second;
      const uint64_t par_count = par_it == nodes_.end() ? 0 : par_it->second;
      if (it->second + sib_count + par_count < threshold) {
        nodes_[parent] = par_count + it->second + sib_count;
        nodes_.erase(id);
        if (sib_it != nodes_.end()) nodes_.erase(sibling);
      }
    }
  }
}

uint32_t QDigest::Quantile(double phi) const {
  STREAMLIB_CHECK_MSG(phi >= 0.0 && phi <= 1.0, "phi must be in [0, 1]");
  STREAMLIB_CHECK_MSG(count_ > 0, "quantile of empty digest");
  // Post-order by range max, smaller ranges first on ties: accumulating in
  // this order yields conservative ranks (the q-digest query rule).
  std::vector<std::pair<uint64_t, uint64_t>> entries(nodes_.begin(),
                                                     nodes_.end());
  std::sort(entries.begin(), entries.end(),
            [this](const auto& a, const auto& b) {
              const uint64_t max_a = RangeMax(a.first);
              const uint64_t max_b = RangeMax(b.first);
              if (max_a != max_b) return max_a < max_b;
              return a.first > b.first;  // Deeper (smaller range) first.
            });
  const double target = phi * static_cast<double>(count_);
  double cum = 0.0;
  for (const auto& [id, cnt] : entries) {
    cum += static_cast<double>(cnt);
    if (cum >= target) return static_cast<uint32_t>(RangeMax(id));
  }
  return static_cast<uint32_t>(RangeMax(entries.back().first));
}

Status QDigest::Merge(const QDigest& other) {
  if (other.universe_bits_ != universe_bits_ ||
      other.compression_ != compression_) {
    return Status::InvalidArgument("QDigest merge: parameter mismatch");
  }
  for (const auto& [id, cnt] : other.nodes_) nodes_[id] += cnt;
  count_ += other.count_;
  Compress();
  return Status::OK();
}

void QDigest::SerializeTo(ByteWriter& w) const {
  w.PutU32(universe_bits_);
  w.PutU32(compression_);
  w.PutVarint(count_);
  w.PutVarint(nodes_.size());
  for (const auto& [id, cnt] : nodes_) {
    w.PutVarint(id);
    w.PutVarint(cnt);
  }
}

Result<QDigest> QDigest::Deserialize(ByteReader& r) {
  uint32_t universe_bits = 0;
  uint32_t compression = 0;
  uint64_t count = 0;
  uint64_t num_nodes = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&universe_bits));
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&compression));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_nodes));
  if (universe_bits < 1 || universe_bits > 32 || compression < 1) {
    return Status::Corruption("QDigest: parameters out of range");
  }
  if (num_nodes * 2 > r.remaining()) {
    return Status::Corruption("QDigest: node count exceeds payload");
  }
  QDigest digest(universe_bits, compression);
  uint64_t weight_sum = 0;
  const uint64_t max_node = uint64_t{1} << (universe_bits + 1);
  for (uint64_t i = 0; i < num_nodes; i++) {
    uint64_t id = 0;
    uint64_t cnt = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&id));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&cnt));
    if (id < 1 || id >= max_node || cnt == 0) {
      return Status::Corruption("QDigest: malformed node");
    }
    if (!digest.nodes_.emplace(id, cnt).second) {
      return Status::Corruption("QDigest: duplicate node id");
    }
    weight_sum += cnt;
  }
  if (weight_sum != count) {
    return Status::Corruption("QDigest: node weights do not sum to count");
  }
  digest.count_ = count;
  return digest;
}

}  // namespace streamlib
