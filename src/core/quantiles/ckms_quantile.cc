#include "core/quantiles/ckms_quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "core/quantiles/rank_merge.h"

namespace streamlib {

CkmsQuantile::CkmsQuantile(std::vector<QuantileTarget> targets)
    : targets_(std::move(targets)) {
  STREAMLIB_CHECK_MSG(!targets_.empty(), "need at least one target");
  for (const QuantileTarget& t : targets_) {
    STREAMLIB_CHECK_MSG(t.quantile > 0.0 && t.quantile < 1.0,
                        "target quantile must be in (0, 1)");
    STREAMLIB_CHECK_MSG(t.error > 0.0 && t.error < 1.0,
                        "target error must be in (0, 1)");
  }
  buffer_.reserve(kBufferSize);
}

double CkmsQuantile::Invariant(double rank, uint64_t n) const {
  double min_f = std::numeric_limits<double>::max();
  const double nd = static_cast<double>(n);
  for (const QuantileTarget& t : targets_) {
    double f;
    if (rank <= t.quantile * nd) {
      f = 2.0 * t.error * (nd - rank) / (1.0 - t.quantile);
    } else {
      f = 2.0 * t.error * rank / t.quantile;
    }
    min_f = std::min(min_f, f);
  }
  return std::max(min_f, 1.0);
}

void CkmsQuantile::Add(double value) {
  buffer_.push_back(value);
  if (buffer_.size() >= kBufferSize) Flush();
}

void CkmsQuantile::Flush() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // Merge the sorted buffer into the tuple list in one pass.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  size_t ti = 0;
  double rank = 0.0;  // rmin of the last emitted tuple.
  for (double v : buffer_) {
    while (ti < tuples_.size() && tuples_[ti].value <= v) {
      rank += static_cast<double>(tuples_[ti].g);
      merged.push_back(tuples_[ti++]);
    }
    uint64_t delta;
    if (merged.empty() || ti >= tuples_.size()) {
      delta = 0;  // New min or max.
    } else {
      delta = static_cast<uint64_t>(
                  std::floor(Invariant(rank, count_))) -
              1;
    }
    merged.push_back(Tuple{v, 1, delta});
    count_++;
  }
  while (ti < tuples_.size()) merged.push_back(tuples_[ti++]);
  tuples_ = std::move(merged);
  buffer_.clear();
  Compress();
}

void CkmsQuantile::Compress() {
  if (tuples_.size() < 3) return;
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_[0]);
  // Track rmin of the *next* tuple for the invariant evaluation.
  double rank = static_cast<double>(tuples_[0].g);
  for (size_t i = 1; i + 1 < tuples_.size(); i++) {
    const Tuple& cur = tuples_[i];
    Tuple& next = tuples_[i + 1];
    if (static_cast<double>(cur.g + next.g + next.delta) <=
        Invariant(rank, count_)) {
      next.g += cur.g;  // Merge cur into next.
    } else {
      out.push_back(cur);
    }
    rank += static_cast<double>(cur.g);
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double CkmsQuantile::Query(double phi) {
  Flush();
  STREAMLIB_CHECK_MSG(!tuples_.empty(), "query on empty summary");
  STREAMLIB_CHECK_MSG(phi >= 0.0 && phi <= 1.0, "phi must be in [0, 1]");

  const double n = static_cast<double>(count_);
  const double rank = phi * n;
  const double allowed = Invariant(rank, count_) / 2.0;

  uint64_t rmin = 0;
  for (size_t i = 0; i + 1 < tuples_.size(); i++) {
    rmin += tuples_[i].g;
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(rmin + next.g + next.delta) > rank + allowed) {
      return tuples_[i].value;
    }
  }
  return tuples_.back().value;
}

size_t CkmsQuantile::SummarySize() {
  Flush();
  return tuples_.size();
}

Status CkmsQuantile::Merge(const CkmsQuantile& other) {
  if (other.targets_.size() != targets_.size()) {
    return Status::InvalidArgument("CKMS merge: target list mismatch");
  }
  for (size_t i = 0; i < targets_.size(); i++) {
    if (other.targets_[i].quantile != targets_[i].quantile ||
        other.targets_[i].error != targets_[i].error) {
      return Status::InvalidArgument("CKMS merge: target list mismatch");
    }
  }
  Flush();
  CkmsQuantile copy = other;
  copy.Flush();
  tuples_ = rank_merge::MergeRankSummaries(tuples_, copy.tuples_);
  count_ += copy.count_;
  return Status::OK();
}

void CkmsQuantile::SerializeTo(ByteWriter& w) const {
  CkmsQuantile flushed = *this;
  flushed.Flush();
  w.PutVarint(flushed.targets_.size());
  for (const QuantileTarget& t : flushed.targets_) {
    w.PutDouble(t.quantile);
    w.PutDouble(t.error);
  }
  w.PutVarint(flushed.count_);
  w.PutVarint(flushed.tuples_.size());
  for (const Tuple& t : flushed.tuples_) {
    w.PutDouble(t.value);
    w.PutVarint(t.g);
    w.PutVarint(t.delta);
  }
}

Result<CkmsQuantile> CkmsQuantile::Deserialize(ByteReader& r) {
  uint64_t num_targets = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_targets));
  if (num_targets < 1 ||
      num_targets * 2 * sizeof(double) > r.remaining()) {
    return Status::Corruption("CKMS: bad target count");
  }
  std::vector<QuantileTarget> targets;
  targets.reserve(num_targets);
  for (uint64_t i = 0; i < num_targets; i++) {
    QuantileTarget t{};
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&t.quantile));
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&t.error));
    if (!(t.quantile > 0.0 && t.quantile < 1.0) ||
        !(t.error > 0.0 && t.error < 1.0)) {
      return Status::Corruption("CKMS: target out of range");
    }
    targets.push_back(t);
  }
  uint64_t count = 0;
  uint64_t num_tuples = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_tuples));
  if (num_tuples > count) {
    return Status::Corruption("CKMS: more tuples than observations");
  }
  if (num_tuples * (sizeof(double) + 2) > r.remaining()) {
    return Status::Corruption("CKMS: tuple count exceeds payload");
  }
  CkmsQuantile summary(std::move(targets));
  summary.tuples_.reserve(num_tuples);
  uint64_t g_sum = 0;
  double prev_value = 0.0;
  for (uint64_t i = 0; i < num_tuples; i++) {
    Tuple t{};
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&t.value));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.g));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.delta));
    if (!std::isfinite(t.value) || t.g < 1 ||
        (i > 0 && t.value < prev_value)) {
      return Status::Corruption("CKMS: malformed tuple");
    }
    g_sum += t.g;
    prev_value = t.value;
    summary.tuples_.push_back(t);
  }
  if (g_sum != count) {
    return Status::Corruption("CKMS: tuple weights do not sum to count");
  }
  summary.count_ = count;
  return summary;
}

}  // namespace streamlib
