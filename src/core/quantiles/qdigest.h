#ifndef STREAMLIB_CORE_QUANTILES_QDIGEST_H_
#define STREAMLIB_CORE_QUANTILES_QDIGEST_H_

#include <cstdint>
#include <unordered_map>

#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib {

/// Q-digest (Shrivastava, Buragohain, Agrawal & Suri, "Medians and Beyond",
/// SenSys 2004, cited as [148]): quantile summaries over a *fixed integer
/// universe* [0, 2^bits) built on a conceptual complete binary tree of
/// ranges. Rank error is at most log2(U)/compression * n and — unlike GK —
/// two q-digests over the same universe merge losslessly, which is why the
/// paper's sensor-network application (in-network aggregation of medians)
/// uses them.
class QDigest {
 public:
  static constexpr state::TypeId kTypeId = state::TypeId::kQDigest;
  static constexpr uint16_t kStateVersion = 1;

  /// \param universe_bits  values live in [0, 2^universe_bits), <= 32.
  /// \param compression    k; rank error <= universe_bits/k * n, size
  ///                       O(k * universe_bits).
  QDigest(uint32_t universe_bits, uint32_t compression);

  /// Inserts `weight` occurrences of `value`.
  void Add(uint32_t value, uint64_t weight = 1);

  /// Value whose rank is within (universe_bits/compression)*n of phi*n.
  uint32_t Quantile(double phi) const;

  /// Merges another digest over the same universe/compression.
  Status Merge(const QDigest& other);

  /// state::MergeableSketch payload: parameters, count, then the
  /// (node id, weight) pairs.
  void SerializeTo(ByteWriter& w) const;
  static Result<QDigest> Deserialize(ByteReader& r);

  uint64_t count() const { return count_; }
  size_t NumNodes() const { return nodes_.size(); }
  uint32_t universe_bits() const { return universe_bits_; }

 private:
  // Heap-style node ids over ranges: root = 1 covers [0, U); node v has
  // children 2v, 2v+1; leaves are [U, 2U).
  uint64_t LeafOf(uint32_t value) const {
    return (uint64_t{1} << universe_bits_) + value;
  }
  uint64_t RangeMax(uint64_t node) const;

  void Compress();

  uint32_t universe_bits_;
  uint32_t compression_;
  uint64_t count_ = 0;
  uint64_t since_compress_ = 0;
  std::unordered_map<uint64_t, uint64_t> nodes_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_QUANTILES_QDIGEST_H_
