#ifndef STREAMLIB_CORE_QUANTILES_SLIDING_QUANTILE_H_
#define STREAMLIB_CORE_QUANTILES_SLIDING_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/check.h"
#include "core/quantiles/tdigest.h"

namespace streamlib {

/// Quantiles over a sliding window — the problem of Arasu & Manku (cited
/// as [42], "approximate counts and quantiles over sliding windows").
/// Engineering substitution for their dyadic-level GK construction: the
/// window is decomposed into B panes, each summarized by a *mergeable*
/// t-digest; a query merges the live panes (plus the partial current one)
/// in O(B * compression). Window coverage is pane-granular — the last
/// (B-1..B)/B * W elements — and rank accuracy is the digest's, since
/// t-digest merging loses no more than a constant factor of resolution.
class SlidingWindowQuantile {
 public:
  /// \param window       window size W in elements.
  /// \param num_panes    decomposition granularity B.
  /// \param compression  per-pane t-digest compression.
  SlidingWindowQuantile(uint64_t window, size_t num_panes,
                        double compression);

  /// Feeds one observation.
  void Add(double value);

  /// Approximate quantile of (roughly) the last `window` observations.
  double Quantile(double q);

  /// Observations currently covered by the panes.
  uint64_t CoveredCount() const;

  /// Total centroids retained (space diagnostic).
  size_t TotalCentroids();

 private:
  uint64_t pane_size_;
  size_t num_panes_;
  double compression_;
  uint64_t in_current_pane_ = 0;
  std::deque<TDigest> panes_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_QUANTILES_SLIDING_QUANTILE_H_
