#include "core/quantiles/gk_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/quantiles/rank_merge.h"

namespace streamlib {

GkQuantile::GkQuantile(double eps) : eps_(eps) {
  STREAMLIB_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  compress_every_ = std::max<uint64_t>(1, static_cast<uint64_t>(1.0 / (2.0 * eps_)));
}

void GkQuantile::Add(double value) {
  // Locate insertion point (first tuple with value > v).
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });

  uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    delta = 0;  // New min or max is exact.
  } else {
    delta = static_cast<uint64_t>(
        std::floor(2.0 * eps_ * static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  count_++;

  if (count_ % compress_every_ == 0) Compress();
}

void GkQuantile::Compress() {
  if (tuples_.size() < 3) return;
  const uint64_t threshold = static_cast<uint64_t>(
      std::floor(2.0 * eps_ * static_cast<double>(count_)));
  // Merge tuple i into i+1 when combined uncertainty stays within threshold.
  // Single right-to-left pass, writing survivors in place.
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  // Iterate left to right, accumulating merges into the next tuple.
  size_t i = 0;
  out.push_back(tuples_[0]);  // Minimum is always kept exact.
  for (i = 1; i + 1 < tuples_.size(); i++) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (cur.g + next.g + next.delta <= threshold) {
      // Merge cur into next (defer: fold cur.g into next when emitted).
      tuples_[i + 1].g += cur.g;
    } else {
      out.push_back(cur);
    }
  }
  if (tuples_.size() > 1) out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

Status GkQuantile::Merge(const GkQuantile& other) {
  if (other.eps_ != eps_) {
    return Status::InvalidArgument("GK merge: eps mismatch");
  }
  tuples_ = rank_merge::MergeRankSummaries(tuples_, other.tuples_);
  count_ += other.count_;
  // No re-compression: compressing against the uniform 2*eps*n threshold
  // would assume the single-stream budget the merged summary no longer has.
  return Status::OK();
}

void GkQuantile::SerializeTo(ByteWriter& w) const {
  w.PutDouble(eps_);
  w.PutVarint(count_);
  w.PutVarint(tuples_.size());
  for (const Tuple& t : tuples_) {
    w.PutDouble(t.value);
    w.PutVarint(t.g);
    w.PutVarint(t.delta);
  }
}

Result<GkQuantile> GkQuantile::Deserialize(ByteReader& r) {
  double eps = 0.0;
  uint64_t count = 0;
  uint64_t num_tuples = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&eps));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_tuples));
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::Corruption("GK: eps out of range");
  }
  if (num_tuples > count) {
    return Status::Corruption("GK: more tuples than observations");
  }
  if (num_tuples * (sizeof(double) + 2) > r.remaining()) {
    return Status::Corruption("GK: tuple count exceeds payload");
  }
  GkQuantile summary(eps);
  summary.tuples_.reserve(num_tuples);
  uint64_t g_sum = 0;
  double prev_value = 0.0;
  for (uint64_t i = 0; i < num_tuples; i++) {
    Tuple t{};
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&t.value));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.g));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.delta));
    if (!std::isfinite(t.value) || t.g < 1 ||
        (i > 0 && t.value < prev_value)) {
      return Status::Corruption("GK: malformed tuple");
    }
    g_sum += t.g;
    prev_value = t.value;
    summary.tuples_.push_back(t);
  }
  if (g_sum != count) {
    return Status::Corruption("GK: tuple weights do not sum to count");
  }
  summary.count_ = count;
  return summary;
}

double GkQuantile::Query(double phi) const {
  STREAMLIB_CHECK_MSG(!tuples_.empty(), "query on empty summary");
  STREAMLIB_CHECK_MSG(phi >= 0.0 && phi <= 1.0, "phi must be in [0, 1]");
  const double n = static_cast<double>(count_);
  const double rank = std::ceil(phi * n);
  const double margin = eps_ * n;

  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const double lo = static_cast<double>(rmin);
    const double hi = static_cast<double>(rmin + t.delta);
    if (rank - lo <= margin && hi - rank <= margin) return t.value;
  }
  return tuples_.back().value;
}

}  // namespace streamlib
