#include "core/quantiles/gk_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamlib {

GkQuantile::GkQuantile(double eps) : eps_(eps) {
  STREAMLIB_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  compress_every_ = std::max<uint64_t>(1, static_cast<uint64_t>(1.0 / (2.0 * eps_)));
}

void GkQuantile::Add(double value) {
  // Locate insertion point (first tuple with value > v).
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });

  uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    delta = 0;  // New min or max is exact.
  } else {
    delta = static_cast<uint64_t>(
        std::floor(2.0 * eps_ * static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  count_++;

  if (count_ % compress_every_ == 0) Compress();
}

void GkQuantile::Compress() {
  if (tuples_.size() < 3) return;
  const uint64_t threshold = static_cast<uint64_t>(
      std::floor(2.0 * eps_ * static_cast<double>(count_)));
  // Merge tuple i into i+1 when combined uncertainty stays within threshold.
  // Single right-to-left pass, writing survivors in place.
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  // Iterate left to right, accumulating merges into the next tuple.
  size_t i = 0;
  out.push_back(tuples_[0]);  // Minimum is always kept exact.
  for (i = 1; i + 1 < tuples_.size(); i++) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (cur.g + next.g + next.delta <= threshold) {
      // Merge cur into next (defer: fold cur.g into next when emitted).
      tuples_[i + 1].g += cur.g;
    } else {
      out.push_back(cur);
    }
  }
  if (tuples_.size() > 1) out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double GkQuantile::Query(double phi) const {
  STREAMLIB_CHECK_MSG(!tuples_.empty(), "query on empty summary");
  STREAMLIB_CHECK_MSG(phi >= 0.0 && phi <= 1.0, "phi must be in [0, 1]");
  const double n = static_cast<double>(count_);
  const double rank = std::ceil(phi * n);
  const double margin = eps_ * n;

  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const double lo = static_cast<double>(rmin);
    const double hi = static_cast<double>(rmin + t.delta);
    if (rank - lo <= margin && hi - rank <= margin) return t.value;
  }
  return tuples_.back().value;
}

}  // namespace streamlib
