#include "core/quantiles/sliding_quantile.h"

namespace streamlib {

SlidingWindowQuantile::SlidingWindowQuantile(uint64_t window,
                                             size_t num_panes,
                                             double compression)
    : pane_size_(window / num_panes),
      num_panes_(num_panes),
      compression_(compression) {
  STREAMLIB_CHECK_MSG(num_panes >= 1, "need at least one pane");
  STREAMLIB_CHECK_MSG(window >= num_panes, "window smaller than pane count");
  panes_.emplace_back(compression_);
}

void SlidingWindowQuantile::Add(double value) {
  panes_.back().Add(value);
  in_current_pane_++;
  if (in_current_pane_ >= pane_size_) {
    in_current_pane_ = 0;
    panes_.emplace_back(compression_);
    if (panes_.size() > num_panes_) panes_.pop_front();
  }
}

double SlidingWindowQuantile::Quantile(double q) {
  TDigest merged(compression_);
  for (TDigest& pane : panes_) merged.Merge(pane);
  return merged.Quantile(q);
}

uint64_t SlidingWindowQuantile::CoveredCount() const {
  return (panes_.size() - 1) * pane_size_ + in_current_pane_;
}

size_t SlidingWindowQuantile::TotalCentroids() {
  size_t total = 0;
  for (TDigest& pane : panes_) total += pane.NumCentroids();
  return total;
}

}  // namespace streamlib
