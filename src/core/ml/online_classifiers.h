#ifndef STREAMLIB_CORE_ML_ONLINE_CLASSIFIERS_H_
#define STREAMLIB_CORE_ML_ONLINE_CLASSIFIERS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// \file online_classifiers.h
/// Incremental machine learning — the paper (§2) singles out the emergence
/// of "incremental machine learning ... designed to work with incomplete
/// data" for streaming analytics, and lists online ML among the Heron use
/// cases. These are the standard one-pass learners: each example is used
/// for prediction *before* its label updates the model (prequential /
/// test-then-train protocol, evaluated by PrequentialEvaluator).

/// Online logistic regression by stochastic gradient descent with L2
/// regularization. O(d) per example; handles binary labels {0, 1}.
class OnlineLogisticRegression {
 public:
  /// \param dimensions     feature count (a bias term is added internally).
  /// \param learning_rate  SGD step size.
  /// \param l2             L2 regularization strength (0 disables).
  OnlineLogisticRegression(size_t dimensions, double learning_rate,
                           double l2 = 0.0);

  /// P(label = 1 | features).
  double PredictProbability(const std::vector<double>& features) const;

  /// Hard prediction at the 0.5 boundary.
  bool Predict(const std::vector<double>& features) const {
    return PredictProbability(features) >= 0.5;
  }

  /// One SGD step on (features, label).
  void Update(const std::vector<double>& features, bool label);

  const std::vector<double>& weights() const { return weights_; }
  uint64_t updates() const { return updates_; }

 private:
  size_t dims_;
  double lr_;
  double l2_;
  std::vector<double> weights_;  // dims_ + 1 (bias last).
  uint64_t updates_ = 0;
};

/// The classic online perceptron: mistake-driven additive updates. Kept as
/// the simplest baseline (and the one with the classic mistake bound).
class OnlinePerceptron {
 public:
  explicit OnlinePerceptron(size_t dimensions);

  bool Predict(const std::vector<double>& features) const;

  /// Updates only on mistakes; returns true if a mistake occurred.
  bool Update(const std::vector<double>& features, bool label);

  uint64_t mistakes() const { return mistakes_; }

 private:
  size_t dims_;
  std::vector<double> weights_;  // dims_ + 1 (bias last).
  uint64_t mistakes_ = 0;
};

/// Streaming Gaussian naive Bayes: per-class, per-feature running mean and
/// variance by Welford's method. Probabilistic, no tuning, adapts as
/// moments accumulate — the "works with incomplete data" end of the
/// spectrum (features can be missing per example).
class StreamingNaiveBayes {
 public:
  explicit StreamingNaiveBayes(size_t dimensions);

  /// Log-odds of class 1 vs class 0; missing features are NaN and skipped.
  double LogOdds(const std::vector<double>& features) const;

  bool Predict(const std::vector<double>& features) const {
    return LogOdds(features) >= 0.0;
  }

  void Update(const std::vector<double>& features, bool label);

  uint64_t count(bool label) const { return counts_[label ? 1 : 0]; }

 private:
  struct Moments {
    uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };

  size_t dims_;
  uint64_t counts_[2] = {0, 0};
  std::vector<Moments> moments_[2];  // Per class, per feature.
};

/// Prequential (test-then-train) evaluation: the standard protocol for
/// streaming learners — every example is first scored against the current
/// model, then used to update it; accuracy is tracked overall and over a
/// sliding window so concept-drift recovery is visible.
class PrequentialEvaluator {
 public:
  explicit PrequentialEvaluator(size_t window = 1000);

  /// Records one (prediction, truth) pair.
  void Record(bool predicted, bool truth);

  double OverallAccuracy() const;
  double WindowAccuracy() const;
  uint64_t count() const { return total_; }

 private:
  size_t window_;
  uint64_t total_ = 0;
  uint64_t correct_ = 0;
  std::deque<bool> recent_;
  uint64_t recent_correct_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ML_ONLINE_CLASSIFIERS_H_
