#include "core/ml/online_classifiers.h"

#include <cmath>

namespace streamlib {

OnlineLogisticRegression::OnlineLogisticRegression(size_t dimensions,
                                                   double learning_rate,
                                                   double l2)
    : dims_(dimensions), lr_(learning_rate), l2_(l2) {
  STREAMLIB_CHECK_MSG(dimensions >= 1, "need at least one feature");
  STREAMLIB_CHECK_MSG(learning_rate > 0.0, "learning rate must be positive");
  STREAMLIB_CHECK_MSG(l2 >= 0.0, "l2 must be nonnegative");
  weights_.assign(dimensions + 1, 0.0);
}

double OnlineLogisticRegression::PredictProbability(
    const std::vector<double>& features) const {
  STREAMLIB_DCHECK(features.size() == dims_);
  double z = weights_[dims_];  // Bias.
  for (size_t i = 0; i < dims_; i++) z += weights_[i] * features[i];
  return 1.0 / (1.0 + std::exp(-z));
}

void OnlineLogisticRegression::Update(const std::vector<double>& features,
                                      bool label) {
  const double error =
      (label ? 1.0 : 0.0) - PredictProbability(features);
  for (size_t i = 0; i < dims_; i++) {
    weights_[i] += lr_ * (error * features[i] - l2_ * weights_[i]);
  }
  weights_[dims_] += lr_ * error;  // Bias is not regularized.
  updates_++;
}

OnlinePerceptron::OnlinePerceptron(size_t dimensions) : dims_(dimensions) {
  STREAMLIB_CHECK_MSG(dimensions >= 1, "need at least one feature");
  weights_.assign(dimensions + 1, 0.0);
}

bool OnlinePerceptron::Predict(const std::vector<double>& features) const {
  STREAMLIB_DCHECK(features.size() == dims_);
  double z = weights_[dims_];
  for (size_t i = 0; i < dims_; i++) z += weights_[i] * features[i];
  return z >= 0.0;
}

bool OnlinePerceptron::Update(const std::vector<double>& features,
                              bool label) {
  const bool predicted = Predict(features);
  if (predicted == label) return false;
  const double direction = label ? 1.0 : -1.0;
  for (size_t i = 0; i < dims_; i++) {
    weights_[i] += direction * features[i];
  }
  weights_[dims_] += direction;
  mistakes_++;
  return true;
}

StreamingNaiveBayes::StreamingNaiveBayes(size_t dimensions)
    : dims_(dimensions) {
  STREAMLIB_CHECK_MSG(dimensions >= 1, "need at least one feature");
  moments_[0].assign(dimensions, Moments{});
  moments_[1].assign(dimensions, Moments{});
}

void StreamingNaiveBayes::Update(const std::vector<double>& features,
                                 bool label) {
  STREAMLIB_DCHECK(features.size() == dims_);
  const int cls = label ? 1 : 0;
  counts_[cls]++;
  for (size_t i = 0; i < dims_; i++) {
    const double x = features[i];
    if (std::isnan(x)) continue;  // Missing feature: skip.
    Moments& m = moments_[cls][i];
    m.n++;
    const double delta = x - m.mean;
    m.mean += delta / static_cast<double>(m.n);
    m.m2 += delta * (x - m.mean);
  }
}

double StreamingNaiveBayes::LogOdds(
    const std::vector<double>& features) const {
  if (counts_[0] == 0 || counts_[1] == 0) return 0.0;
  const double total =
      static_cast<double>(counts_[0]) + static_cast<double>(counts_[1]);
  double log_odds = std::log(static_cast<double>(counts_[1]) / total) -
                    std::log(static_cast<double>(counts_[0]) / total);
  for (size_t i = 0; i < dims_; i++) {
    const double x = features[i];
    if (std::isnan(x)) continue;
    double ll[2];
    for (int cls = 0; cls < 2; cls++) {
      const Moments& m = moments_[cls][i];
      if (m.n < 2) return 0.0;  // Not enough evidence yet.
      const double var =
          std::max(m.m2 / static_cast<double>(m.n - 1), 1e-9);
      const double d = x - m.mean;
      ll[cls] = -0.5 * std::log(2.0 * 3.14159265358979 * var) -
                d * d / (2.0 * var);
    }
    log_odds += ll[1] - ll[0];
  }
  return log_odds;
}

PrequentialEvaluator::PrequentialEvaluator(size_t window) : window_(window) {
  STREAMLIB_CHECK_MSG(window >= 1, "window must be >= 1");
}

void PrequentialEvaluator::Record(bool predicted, bool truth) {
  total_++;
  const bool correct = predicted == truth;
  if (correct) correct_++;
  recent_.push_back(correct);
  if (correct) recent_correct_++;
  if (recent_.size() > window_) {
    if (recent_.front()) recent_correct_--;
    recent_.pop_front();
  }
}

double PrequentialEvaluator::OverallAccuracy() const {
  return total_ == 0
             ? 0.0
             : static_cast<double>(correct_) / static_cast<double>(total_);
}

double PrequentialEvaluator::WindowAccuracy() const {
  return recent_.empty() ? 0.0
                         : static_cast<double>(recent_correct_) /
                               static_cast<double>(recent_.size());
}

}  // namespace streamlib
