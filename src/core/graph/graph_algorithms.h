#ifndef STREAMLIB_CORE_GRAPH_GRAPH_ALGORITHMS_H_
#define STREAMLIB_CORE_GRAPH_GRAPH_ALGORITHMS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace streamlib {

/// Greedy maximal matching over an edge stream (the one-pass 2-approximation
/// of maximum matching from the semi-streaming literature the paper cites —
/// Feigenbaum et al. [83]; size-estimation refinements are [113, 80, 61]):
/// accept an edge iff both endpoints are currently unmatched. O(1) per edge,
/// O(V) memory.
class GreedyMatching {
 public:
  GreedyMatching() = default;

  /// Processes one edge; returns true if it joined the matching.
  bool AddEdge(uint32_t u, uint32_t v);

  /// Matching size (>= half the maximum matching).
  size_t Size() const { return matching_.size(); }

  const std::vector<std::pair<uint32_t, uint32_t>>& matching() const {
    return matching_;
  }

  /// The matched vertices double as a 2-approximate vertex cover — the
  /// classic duality, and the "vertex cover" entry of Table 1's graph row.
  std::vector<uint32_t> VertexCover() const;

  bool IsMatched(uint32_t v) const { return matched_.count(v) != 0; }

 private:
  std::unordered_set<uint32_t> matched_;
  std::vector<std::pair<uint32_t, uint32_t>> matching_;
};

/// Incremental connected components over an edge stream via union-find with
/// path compression + union by size. O(alpha(V)) per edge.
class IncrementalComponents {
 public:
  IncrementalComponents() = default;

  /// Processes one edge; returns true if it merged two components.
  bool AddEdge(uint32_t u, uint32_t v);

  /// Component representative of v (v itself if unseen).
  uint32_t Find(uint32_t v);

  bool Connected(uint32_t u, uint32_t v) { return Find(u) == Find(v); }

  /// Number of components among vertices seen so far.
  size_t NumComponents() const { return components_; }
  size_t NumVertices() const { return parent_.size(); }

 private:
  void Ensure(uint32_t v);

  std::unordered_map<uint32_t, uint32_t> parent_;
  std::unordered_map<uint32_t, uint32_t> size_;
  size_t components_ = 0;
};

/// Bounded-length path queries on a dynamic (insert-only) graph — Table 1
/// row "Path Analysis" (cited as [79]): does a path of length <= ell exist
/// between two nodes right now? Edges insert in O(1); queries run a
/// depth-bounded bidirectional BFS over the current adjacency.
class DynamicPathOracle {
 public:
  DynamicPathOracle() = default;

  void AddEdge(uint32_t u, uint32_t v);

  /// True iff a path of length <= max_hops connects u and v.
  bool HasPathWithin(uint32_t u, uint32_t v, uint32_t max_hops) const;

  /// Shortest hop distance, or UINT32_MAX if beyond max_hops/disconnected.
  uint32_t BoundedDistance(uint32_t u, uint32_t v, uint32_t max_hops) const;

  size_t NumEdges() const { return num_edges_; }

 private:
  std::unordered_map<uint32_t, std::vector<uint32_t>> adjacency_;
  size_t num_edges_ = 0;
};

/// Greedy multiplicative t-spanner over an edge stream — the "spanners"
/// entry of Table 1's graph row (semi-streaming model of Feigenbaum et al.
/// [83]; sketch-based successors in [35]): keep an arriving edge iff the
/// spanner built so far has no path of length <= t between its endpoints.
/// Every pairwise distance is then preserved within factor t, while the
/// kept-edge count stays far below the stream (girth argument).
class GreedySpanner {
 public:
  /// \param stretch  t >= 1; larger stretch keeps fewer edges.
  explicit GreedySpanner(uint32_t stretch);

  /// Processes one edge; returns true if it joined the spanner.
  bool AddEdge(uint32_t u, uint32_t v);

  /// Spanner distance between two vertices, capped at `max_hops`
  /// (UINT32_MAX when farther/disconnected).
  uint32_t SpannerDistance(uint32_t u, uint32_t v, uint32_t max_hops) const {
    return oracle_.BoundedDistance(u, v, max_hops);
  }

  size_t SpannerEdges() const { return kept_; }
  uint64_t StreamEdges() const { return seen_; }
  uint32_t stretch() const { return stretch_; }

 private:
  uint32_t stretch_;
  uint64_t seen_ = 0;
  size_t kept_ = 0;
  DynamicPathOracle oracle_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_GRAPH_GRAPH_ALGORITHMS_H_
