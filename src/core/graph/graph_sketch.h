#ifndef STREAMLIB_CORE_GRAPH_GRAPH_SKETCH_H_
#define STREAMLIB_CORE_GRAPH_GRAPH_SKETCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/status.h"

namespace streamlib {

/// L0 sampler over a high-dimensional +-1 update vector: returns a uniform
/// (whp) nonzero coordinate of the current vector, even after deletions —
/// the primitive underneath dynamic graph sketching. Standard construction:
/// log(D) levels, each subsampling coordinates at rate 2^-level, with
/// 1-sparse recovery (count, index-weighted sum, fingerprint) per level.
/// Linear: samplers with the same seed add coordinate-wise via Merge.
class L0Sampler {
 public:
  /// \param domain  coordinate space size D.
  /// \param seed    hash seed; merges require equal seeds.
  L0Sampler(uint64_t domain, uint64_t seed);

  /// Adds `delta` (typically +-1) to coordinate `index`.
  void Update(uint64_t index, int64_t delta);

  /// A nonzero coordinate of the vector, or nullopt when the vector is
  /// (apparently) zero or every level is too crowded to decode.
  std::optional<uint64_t> Sample() const;

  /// Coordinate-wise addition; requires identical domain and seed.
  Status Merge(const L0Sampler& other);

  uint64_t domain() const { return domain_; }
  size_t MemoryBytes() const { return levels_.size() * sizeof(Level); }

 private:
  struct Level {
    int64_t count = 0;        // sum of c_i
    __int128 index_sum = 0;   // sum of c_i * i
    uint64_t fingerprint = 0; // sum of c_i * h(i) mod p
  };

  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

  /// Highest level this coordinate participates in (geometric via hash).
  int LevelOf(uint64_t index) const;
  uint64_t FingerprintOf(uint64_t index) const;

  uint64_t domain_;
  uint64_t seed_;
  std::vector<Level> levels_;
};

/// Dynamic graph connectivity in sketch space — Ahn, Guha & McGregor
/// (PODS 2012, cited as [35]): each vertex sketches its signed edge-
/// incidence vector with O(log^3 n) space; because the sketches are
/// *linear*, summing the sketches of a vertex set S yields a sketch of the
/// edges crossing the cut (S, V-S) — internal edges cancel. Boruvka over
/// the summed sketches then answers connectivity, spanning forest and
/// component counts on a stream WITH edge deletions, which none of the
/// combinatorial one-pass structures (union-find etc.) can handle.
class AgmConnectivitySketch {
 public:
  /// \param num_vertices  n; space is O(n log^3 n).
  /// \param seed          randomness for the samplers.
  AgmConnectivitySketch(uint32_t num_vertices, uint64_t seed);

  /// Inserts an undirected edge (u != v).
  void AddEdge(uint32_t u, uint32_t v) { UpdateEdge(u, v, +1); }

  /// Deletes a previously inserted edge — the operation that motivates
  /// sketch-based graph streaming.
  void RemoveEdge(uint32_t u, uint32_t v) { UpdateEdge(u, v, -1); }

  /// Number of connected components among the n vertices (isolated
  /// vertices count individually). Runs Boruvka over sketch sums; correct
  /// with high probability.
  size_t NumComponents() const;

  /// Whether u and v are connected (whp).
  bool Connected(uint32_t u, uint32_t v) const;

  uint32_t num_vertices() const { return n_; }
  size_t MemoryBytes() const;

 private:
  void UpdateEdge(uint32_t u, uint32_t v, int64_t delta);
  uint64_t EdgeId(uint32_t a, uint32_t b) const;  // a < b required.

  /// Runs Boruvka; returns the final parent array (component labels).
  std::vector<uint32_t> ComputeComponents() const;

  uint32_t n_;
  uint32_t rounds_;
  // sketches_[round][vertex]: independent sampler per Boruvka round.
  std::vector<std::vector<L0Sampler>> sketches_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_GRAPH_GRAPH_SKETCH_H_
