#include "core/graph/triangle_counter.h"

#include <algorithm>

#include "common/check.h"

namespace streamlib {

TriangleCounter::TriangleCounter(size_t edge_budget, uint64_t seed)
    : budget_(edge_budget), rng_(seed) {
  STREAMLIB_CHECK_MSG(edge_budget >= 6, "edge budget must be >= 6");
  edges_.reserve(edge_budget);
}

bool TriangleCounter::SampleContains(uint32_t u, uint32_t v) const {
  auto it = adjacency_.find(u);
  return it != adjacency_.end() && it->second.count(v) != 0;
}

void TriangleCounter::SampleInsert(uint32_t u, uint32_t v) {
  adjacency_[u].insert(v);
  adjacency_[v].insert(u);
  sample_count_++;
}

void TriangleCounter::SampleRemove(uint32_t u, uint32_t v) {
  adjacency_[u].erase(v);
  adjacency_[v].erase(u);
  if (adjacency_[u].empty()) adjacency_.erase(u);
  if (adjacency_[v].empty()) adjacency_.erase(v);
  sample_count_--;
}

void TriangleCounter::AddEdge(uint32_t u, uint32_t v) {
  STREAMLIB_CHECK_MSG(u != v, "self-loops not allowed");
  edges_seen_++;
  if (SampleContains(u, v)) return;  // Duplicate of a sampled edge.

  // TRIÈST-IMPR: count triangles this edge closes in the sample, weighted
  // by eta(t) = max(1, (t-1)(t-2) / (M(M-1))) — the inverse probability
  // that both wedge edges survived in the reservoir.
  const double t = static_cast<double>(edges_seen_);
  const double m = static_cast<double>(budget_);
  const double eta = std::max(1.0, (t - 1.0) * (t - 2.0) / (m * (m - 1.0)));
  auto iu = adjacency_.find(u);
  auto iv = adjacency_.find(v);
  if (iu != adjacency_.end() && iv != adjacency_.end()) {
    const auto& small =
        iu->second.size() <= iv->second.size() ? iu->second : iv->second;
    const auto& large =
        iu->second.size() <= iv->second.size() ? iv->second : iu->second;
    for (uint32_t w : small) {
      if (large.count(w) != 0) estimate_ += eta;
    }
  }

  // Reservoir step over edges.
  if (sample_count_ < budget_) {
    SampleInsert(u, v);
    edges_.emplace_back(u, v);
    return;
  }
  if (rng_.NextDouble() < m / t) {
    const size_t victim = rng_.NextBounded(edges_.size());
    SampleRemove(edges_[victim].first, edges_[victim].second);
    edges_[victim] = {u, v};
    SampleInsert(u, v);
  }
}

void ExactTriangleCounter::AddEdge(uint32_t u, uint32_t v) {
  STREAMLIB_CHECK_MSG(u != v, "self-loops not allowed");
  edges_seen_++;
  auto& nu = adjacency_[u];
  auto& nv = adjacency_[v];
  if (nu.count(v) != 0) return;  // Duplicate edge.
  const auto& small = nu.size() <= nv.size() ? nu : nv;
  const auto& large = nu.size() <= nv.size() ? nv : nu;
  for (uint32_t w : small) {
    if (large.count(w) != 0) triangles_++;
  }
  nu.insert(v);
  nv.insert(u);
}

}  // namespace streamlib
