#include "core/graph/graph_algorithms.h"

#include <cstdint>
#include <deque>
#include <limits>

#include "common/check.h"

namespace streamlib {

bool GreedyMatching::AddEdge(uint32_t u, uint32_t v) {
  STREAMLIB_CHECK_MSG(u != v, "self-loops not allowed");
  if (matched_.count(u) != 0 || matched_.count(v) != 0) return false;
  matched_.insert(u);
  matched_.insert(v);
  matching_.emplace_back(u, v);
  return true;
}

std::vector<uint32_t> GreedyMatching::VertexCover() const {
  std::vector<uint32_t> cover;
  cover.reserve(matched_.size());
  for (uint32_t v : matched_) cover.push_back(v);
  return cover;
}

void IncrementalComponents::Ensure(uint32_t v) {
  if (parent_.emplace(v, v).second) {
    size_.emplace(v, 1);
    components_++;
  }
}

uint32_t IncrementalComponents::Find(uint32_t v) {
  Ensure(v);
  uint32_t root = v;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[v] != root) {
    const uint32_t next = parent_[v];
    parent_[v] = root;
    v = next;
  }
  return root;
}

bool IncrementalComponents::AddEdge(uint32_t u, uint32_t v) {
  uint32_t ru = Find(u);
  uint32_t rv = Find(v);
  if (ru == rv) return false;
  if (size_[ru] < size_[rv]) std::swap(ru, rv);
  parent_[rv] = ru;
  size_[ru] += size_[rv];
  components_--;
  return true;
}

void DynamicPathOracle::AddEdge(uint32_t u, uint32_t v) {
  STREAMLIB_CHECK_MSG(u != v, "self-loops not allowed");
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  num_edges_++;
}

uint32_t DynamicPathOracle::BoundedDistance(uint32_t u, uint32_t v,
                                            uint32_t max_hops) const {
  if (u == v) return 0;
  // Depth-bounded BFS from u.
  std::unordered_map<uint32_t, uint32_t> dist;
  std::deque<uint32_t> frontier;
  dist.emplace(u, 0);
  frontier.push_back(u);
  while (!frontier.empty()) {
    const uint32_t node = frontier.front();
    frontier.pop_front();
    const uint32_t d = dist[node];
    if (d >= max_hops) continue;
    auto it = adjacency_.find(node);
    if (it == adjacency_.end()) continue;
    for (uint32_t next : it->second) {
      if (dist.emplace(next, d + 1).second) {
        if (next == v) return d + 1;
        frontier.push_back(next);
      }
    }
  }
  return std::numeric_limits<uint32_t>::max();
}

bool DynamicPathOracle::HasPathWithin(uint32_t u, uint32_t v,
                                      uint32_t max_hops) const {
  return BoundedDistance(u, v, max_hops) <= max_hops;
}

GreedySpanner::GreedySpanner(uint32_t stretch) : stretch_(stretch) {
  STREAMLIB_CHECK_MSG(stretch >= 1, "stretch must be >= 1");
}

bool GreedySpanner::AddEdge(uint32_t u, uint32_t v) {
  STREAMLIB_CHECK_MSG(u != v, "self-loops not allowed");
  seen_++;
  // Keep iff the spanner cannot already connect u and v within t hops —
  // otherwise the existing path certifies the stretch bound for this edge.
  if (oracle_.HasPathWithin(u, v, stretch_)) return false;
  oracle_.AddEdge(u, v);
  kept_++;
  return true;
}

}  // namespace streamlib
