#ifndef STREAMLIB_CORE_GRAPH_TRIANGLE_COUNTER_H_
#define STREAMLIB_CORE_GRAPH_TRIANGLE_COUNTER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"

namespace streamlib {

/// Streaming triangle counting over an edge stream with a fixed edge-sample
/// budget — the TRIÈST-IMPR estimator (De Stefani et al.), the modern
/// representative of the reservoir-based graph-sketching line the paper
/// surveys ([35, 127]). Every arriving edge contributes the number of
/// triangles it closes *within the sample*, weighted by the inverse
/// probability that both wedge edges are in the sample; the running sum is
/// an unbiased estimate of the global triangle count.
class TriangleCounter {
 public:
  /// \param edge_budget  reservoir capacity M (memory O(M)).
  TriangleCounter(size_t edge_budget, uint64_t seed);

  /// Processes one undirected edge (u != v).
  void AddEdge(uint32_t u, uint32_t v);

  /// Unbiased estimate of the number of triangles in the stream so far.
  double Estimate() const { return estimate_; }

  uint64_t edges_seen() const { return edges_seen_; }
  size_t sample_size() const { return sample_count_; }

 private:
  bool SampleContains(uint32_t u, uint32_t v) const;
  void SampleInsert(uint32_t u, uint32_t v);
  void SampleRemove(uint32_t u, uint32_t v);

  size_t budget_;
  Rng rng_;
  uint64_t edges_seen_ = 0;
  size_t sample_count_ = 0;
  double estimate_ = 0.0;
  // Adjacency sets of the sampled subgraph.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> adjacency_;
  // Flat list of sampled edges for reservoir eviction.
  std::vector<std::pair<uint32_t, uint32_t>> edges_;
};

/// Exact triangle counter (adjacency-set intersection per edge): the ground
/// truth for the graph bench. O(sum degree) time, O(E) memory.
class ExactTriangleCounter {
 public:
  ExactTriangleCounter() = default;

  void AddEdge(uint32_t u, uint32_t v);

  uint64_t Triangles() const { return triangles_; }
  uint64_t edges_seen() const { return edges_seen_; }

 private:
  uint64_t edges_seen_ = 0;
  uint64_t triangles_ = 0;
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> adjacency_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_GRAPH_TRIANGLE_COUNTER_H_
