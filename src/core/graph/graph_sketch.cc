#include "core/graph/graph_sketch.h"

#include <numeric>

#include "common/bitutil.h"

namespace streamlib {

L0Sampler::L0Sampler(uint64_t domain, uint64_t seed)
    : domain_(domain), seed_(seed) {
  STREAMLIB_CHECK_MSG(domain >= 1, "domain must be nonempty");
  levels_.resize(static_cast<size_t>(Log2Ceil(domain) + 2));
}

int L0Sampler::LevelOf(uint64_t index) const {
  // Geometric level: number of leading zeros of the index hash, capped.
  const uint64_t h = HashInt64(index, seed_);
  int level = CountLeadingZeros64(h);
  const int max_level = static_cast<int>(levels_.size()) - 1;
  return level > max_level ? max_level : level;
}

uint64_t L0Sampler::FingerprintOf(uint64_t index) const {
  return HashInt64(index, seed_ ^ 0xf00dfeedULL) % kPrime;
}

void L0Sampler::Update(uint64_t index, int64_t delta) {
  STREAMLIB_DCHECK(index < domain_);
  // Coordinate `index` lives in levels 0..LevelOf(index): subsampling at
  // rate 2^-l keeps it while l <= its geometric level.
  const int top = LevelOf(index);
  const uint64_t fp = FingerprintOf(index);
  for (int l = 0; l <= top; l++) {
    Level& level = levels_[l];
    level.count += delta;
    level.index_sum += static_cast<__int128>(delta) *
                       static_cast<__int128>(index);
    // Fingerprint arithmetic mod p with signed delta.
    const uint64_t term = fp % kPrime;
    if (delta >= 0) {
      level.fingerprint =
          (level.fingerprint + static_cast<uint64_t>(delta) % kPrime * term) %
          kPrime;
    } else {
      const uint64_t sub =
          (static_cast<uint64_t>(-delta) % kPrime) * term % kPrime;
      level.fingerprint = (level.fingerprint + kPrime - sub) % kPrime;
    }
  }
}

std::optional<uint64_t> L0Sampler::Sample() const {
  // Scan from the sparsest level down: the first level passing the
  // 1-sparse test yields a valid coordinate.
  for (size_t l = levels_.size(); l-- > 0;) {
    const Level& level = levels_[l];
    if (level.count == 0) continue;
    // Candidate index = index_sum / count; must divide exactly.
    const __int128 count = level.count;
    if (level.index_sum % count != 0) continue;
    const __int128 candidate = level.index_sum / count;
    if (candidate < 0 ||
        candidate >= static_cast<__int128>(domain_)) {
      continue;
    }
    const uint64_t index = static_cast<uint64_t>(candidate);
    // Verify: the level actually contains this coordinate and the
    // fingerprint matches count * h(index).
    if (LevelOf(index) < static_cast<int>(l)) continue;
    const uint64_t magnitude =
        level.count > 0 ? static_cast<uint64_t>(level.count)
                        : static_cast<uint64_t>(-level.count);
    uint64_t expected =
        (magnitude % kPrime) * (FingerprintOf(index) % kPrime) % kPrime;
    if (level.count < 0) expected = (kPrime - expected) % kPrime;
    if (expected != level.fingerprint) continue;
    return index;
  }
  return std::nullopt;
}

Status L0Sampler::Merge(const L0Sampler& other) {
  if (other.domain_ != domain_ || other.seed_ != seed_) {
    return Status::InvalidArgument("L0 merge: domain/seed mismatch");
  }
  for (size_t l = 0; l < levels_.size(); l++) {
    levels_[l].count += other.levels_[l].count;
    levels_[l].index_sum += other.levels_[l].index_sum;
    levels_[l].fingerprint =
        (levels_[l].fingerprint + other.levels_[l].fingerprint) % kPrime;
  }
  return Status::OK();
}

AgmConnectivitySketch::AgmConnectivitySketch(uint32_t num_vertices,
                                             uint64_t seed)
    : n_(num_vertices) {
  STREAMLIB_CHECK_MSG(num_vertices >= 2, "need at least two vertices");
  rounds_ = static_cast<uint32_t>(Log2Ceil(num_vertices)) + 1;
  const uint64_t edge_domain =
      static_cast<uint64_t>(n_) * static_cast<uint64_t>(n_);
  sketches_.reserve(rounds_);
  for (uint32_t r = 0; r < rounds_; r++) {
    std::vector<L0Sampler> row;
    row.reserve(n_);
    for (uint32_t v = 0; v < n_; v++) {
      // One seed per round: all vertices in a round share it so their
      // sketches are mergeable; rounds are independent.
      row.emplace_back(edge_domain, seed ^ (0x9e3779b97f4a7c15ULL * (r + 1)));
    }
    sketches_.push_back(std::move(row));
  }
}

uint64_t AgmConnectivitySketch::EdgeId(uint32_t a, uint32_t b) const {
  STREAMLIB_DCHECK(a < b);
  return static_cast<uint64_t>(a) * n_ + b;
}

void AgmConnectivitySketch::UpdateEdge(uint32_t u, uint32_t v, int64_t delta) {
  STREAMLIB_CHECK_MSG(u != v && u < n_ && v < n_, "invalid edge");
  const uint32_t a = std::min(u, v);
  const uint32_t b = std::max(u, v);
  const uint64_t id = EdgeId(a, b);
  // Signed incidence: +1 at the lower endpoint, -1 at the higher one, so
  // edges internal to a merged vertex set cancel in the summed sketch.
  for (uint32_t r = 0; r < rounds_; r++) {
    sketches_[r][a].Update(id, delta);
    sketches_[r][b].Update(id, -delta);
  }
}

std::vector<uint32_t> AgmConnectivitySketch::ComputeComponents() const {
  // Union-find over vertices.
  std::vector<uint32_t> parent(n_);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  const uint64_t edge_domain =
      static_cast<uint64_t>(n_) * static_cast<uint64_t>(n_);
  for (uint32_t r = 0; r < rounds_; r++) {
    // Sum each component's sketches for this round (linearity!), then
    // sample one crossing edge per component and contract.
    std::vector<std::optional<L0Sampler>> component_sum(n_);
    for (uint32_t v = 0; v < n_; v++) {
      const uint32_t root = find(v);
      if (!component_sum[root].has_value()) {
        component_sum[root] = sketches_[r][v];  // Copy seeds the sum.
      } else {
        STREAMLIB_CHECK(component_sum[root]->Merge(sketches_[r][v]).ok());
      }
    }
    (void)edge_domain;
    bool progressed = false;
    for (uint32_t root = 0; root < n_; root++) {
      if (!component_sum[root].has_value() || find(root) != root) continue;
      const auto edge = component_sum[root]->Sample();
      if (!edge.has_value()) continue;  // Isolated or fully merged.
      const uint32_t a = static_cast<uint32_t>(*edge / n_);
      const uint32_t b = static_cast<uint32_t>(*edge % n_);
      const uint32_t ra = find(a);
      const uint32_t rb = find(b);
      if (ra != rb) {
        parent[ra] = rb;
        progressed = true;
      }
    }
    if (!progressed) break;
  }
  for (uint32_t v = 0; v < n_; v++) find(v);
  return parent;
}

size_t AgmConnectivitySketch::NumComponents() const {
  std::vector<uint32_t> parent = ComputeComponents();
  size_t roots = 0;
  for (uint32_t v = 0; v < n_; v++) {
    if (parent[v] == v) roots++;
  }
  return roots;
}

bool AgmConnectivitySketch::Connected(uint32_t u, uint32_t v) const {
  STREAMLIB_CHECK(u < n_ && v < n_);
  std::vector<uint32_t> parent = ComputeComponents();
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) x = parent[x];
    return x;
  };
  return find(u) == find(v);
}

size_t AgmConnectivitySketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& row : sketches_) {
    for (const auto& sampler : row) total += sampler.MemoryBytes();
  }
  return total;
}

}  // namespace streamlib
