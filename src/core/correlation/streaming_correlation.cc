#include "core/correlation/streaming_correlation.h"

#include <cmath>

namespace streamlib {

WindowedCorrelation::WindowedCorrelation(size_t window) : window_(window) {
  STREAMLIB_CHECK_MSG(window >= 2, "window must be >= 2");
}

void WindowedCorrelation::Add(double x, double y) {
  xs_.push_back(x);
  ys_.push_back(y);
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_yy_ += y * y;
  sum_xy_ += x * y;
  if (xs_.size() > window_) {
    const double ox = xs_.front();
    const double oy = ys_.front();
    xs_.pop_front();
    ys_.pop_front();
    sum_x_ -= ox;
    sum_y_ -= oy;
    sum_xx_ -= ox * ox;
    sum_yy_ -= oy * oy;
    sum_xy_ -= ox * oy;
  }
}

double WindowedCorrelation::MeanX() const {
  return xs_.empty() ? 0.0 : sum_x_ / static_cast<double>(xs_.size());
}

double WindowedCorrelation::MeanY() const {
  return ys_.empty() ? 0.0 : sum_y_ / static_cast<double>(ys_.size());
}

double WindowedCorrelation::Correlation() const {
  const double n = static_cast<double>(xs_.size());
  if (n < 2.0) return 0.0;
  const double cov = sum_xy_ - sum_x_ * sum_y_ / n;
  const double var_x = sum_xx_ - sum_x_ * sum_x_ / n;
  const double var_y = sum_yy_ - sum_y_ * sum_y_ / n;
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

CrossCorrelator::CrossCorrelator(size_t window, size_t max_lag) {
  STREAMLIB_CHECK_MSG(window >= 2, "window must be >= 2");
  correlators_.reserve(max_lag + 1);
  for (size_t lag = 0; lag <= max_lag; lag++) {
    correlators_.emplace_back(window);
  }
}

void CrossCorrelator::Add(double x, double y) {
  y_history_.push_back(y);
  for (size_t lag = 0; lag < correlators_.size(); lag++) {
    if (y_history_.size() > lag) {
      const double delayed =
          y_history_[y_history_.size() - 1 - lag];
      correlators_[lag].Add(x, delayed);
    }
  }
  if (y_history_.size() > correlators_.size()) y_history_.pop_front();
}

double CrossCorrelator::CorrelationAtLag(size_t lag) const {
  STREAMLIB_CHECK(lag < correlators_.size());
  return correlators_[lag].Correlation();
}

size_t CrossCorrelator::BestLag() const {
  size_t best = 0;
  double best_corr = correlators_[0].Correlation();
  for (size_t lag = 1; lag < correlators_.size(); lag++) {
    const double c = correlators_[lag].Correlation();
    if (c > best_corr) {
      best_corr = c;
      best = lag;
    }
  }
  return best;
}

CorrelationMatrix::CorrelationMatrix(size_t num_streams, size_t window)
    : m_(num_streams) {
  STREAMLIB_CHECK_MSG(num_streams >= 2, "need at least two streams");
  pairs_.reserve(m_ * (m_ - 1) / 2);
  for (size_t i = 0; i < m_ * (m_ - 1) / 2; i++) {
    pairs_.emplace_back(window);
  }
}

void CorrelationMatrix::Add(const std::vector<double>& values) {
  STREAMLIB_CHECK_MSG(values.size() == m_, "stream count mismatch");
  for (size_t i = 0; i < m_; i++) {
    for (size_t j = i + 1; j < m_; j++) {
      pairs_[IndexOf(i, j)].Add(values[i], values[j]);
    }
  }
}

double CorrelationMatrix::Correlation(size_t i, size_t j) const {
  STREAMLIB_CHECK(i != j && i < m_ && j < m_);
  if (i > j) std::swap(i, j);
  return pairs_[IndexOf(i, j)].Correlation();
}

std::vector<std::pair<size_t, size_t>> CorrelationMatrix::CorrelatedPairs(
    double threshold) const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < m_; i++) {
    for (size_t j = i + 1; j < m_; j++) {
      if (std::fabs(pairs_[IndexOf(i, j)].Correlation()) >= threshold) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

}  // namespace streamlib
