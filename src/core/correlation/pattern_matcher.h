#ifndef STREAMLIB_CORE_CORRELATION_PATTERN_MATCHER_H_
#define STREAMLIB_CORE_CORRELATION_PATTERN_MATCHER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace streamlib {

/// A detected occurrence of the template pattern.
struct PatternMatch {
  uint64_t end_position = 0;  ///< stream position of the match's last point
  double distance = 0.0;      ///< z-normalized Euclidean distance
};

/// Streaming temporal-pattern detection (Table 1 row "Temporal Pattern
/// Analysis"; the shape-matching lineage is SpADe [60] and the
/// time-warping work of Toyoda et al. [159]): slide a z-normalized template
/// over the stream and report windows whose normalized Euclidean distance
/// falls below a threshold. Z-normalization makes detection invariant to
/// the window's offset and scale — the core trick of shape-based pattern
/// queries — at O(|pattern|) per arrival.
class PatternMatcher {
 public:
  /// \param pattern    the template shape (length >= 4).
  /// \param threshold  max z-normalized distance (per-point RMS) to match.
  PatternMatcher(std::vector<double> pattern, double threshold);

  /// Feeds one observation; returns true if the window ending here matches.
  bool AddAndMatch(double value);

  /// All matches so far.
  const std::vector<PatternMatch>& matches() const { return matches_; }

  /// Distance of the current window to the template (infinity until full).
  double CurrentDistance() const;

  uint64_t position() const { return position_; }

 private:
  static std::vector<double> ZNormalize(const std::vector<double>& v);

  std::vector<double> pattern_;  // Z-normalized template.
  double threshold_;
  std::deque<double> window_;
  uint64_t position_ = 0;
  std::vector<PatternMatch> matches_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CORRELATION_PATTERN_MATCHER_H_
