#ifndef STREAMLIB_CORE_CORRELATION_STREAMING_CORRELATION_H_
#define STREAMLIB_CORE_CORRELATION_STREAMING_CORRELATION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// Exact Pearson correlation of two synchronized streams over a sliding
/// window, maintained incrementally from running co-moments (add/subtract
/// of window edges, with the count anchored so cancellation stays benign at
/// window scale). The primitive behind the correlated-pairs screens in the
/// StatStream lineage the paper cites ([163, 99, 165]).
class WindowedCorrelation {
 public:
  explicit WindowedCorrelation(size_t window);

  /// Feeds one synchronized observation pair.
  void Add(double x, double y);

  /// Pearson correlation of the current window (0 if degenerate).
  double Correlation() const;

  double MeanX() const;
  double MeanY() const;
  size_t Size() const { return xs_.size(); }

 private:
  size_t window_;
  std::deque<double> xs_;
  std::deque<double> ys_;
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double sum_xx_ = 0.0;
  double sum_yy_ = 0.0;
  double sum_xy_ = 0.0;
};

/// Lagged cross-correlation over a sliding window: correlation of x(t)
/// against y(t - lag) for each lag in [0, max_lag]. Finds lead/lag
/// relationships between streams (the "time correlations in time-series
/// data streams" problem of Sayal, cited as [146]).
class CrossCorrelator {
 public:
  CrossCorrelator(size_t window, size_t max_lag);

  void Add(double x, double y);

  /// Correlation at a given lag (y delayed by `lag`).
  double CorrelationAtLag(size_t lag) const;

  /// The lag in [0, max_lag] with the highest correlation.
  size_t BestLag() const;

  size_t max_lag() const { return correlators_.size() - 1; }

 private:
  std::deque<double> y_history_;
  std::vector<WindowedCorrelation> correlators_;  // One per lag.
};

/// All-pairs correlation screen over m streams: maintains exact windowed
/// co-moments for every pair (m <= a few hundred) and reports pairs whose
/// correlation exceeds a threshold. The exact baseline for the correlated-
/// pairs bench.
class CorrelationMatrix {
 public:
  CorrelationMatrix(size_t num_streams, size_t window);

  /// Feeds one synchronized observation vector (size = num_streams).
  void Add(const std::vector<double>& values);

  /// Correlation between streams i and j.
  double Correlation(size_t i, size_t j) const;

  /// Pairs (i, j), i < j, with |correlation| >= threshold.
  std::vector<std::pair<size_t, size_t>> CorrelatedPairs(
      double threshold) const;

  size_t num_streams() const { return m_; }

 private:
  size_t IndexOf(size_t i, size_t j) const {
    STREAMLIB_DCHECK(i < j);
    return i * m_ - i * (i + 1) / 2 + (j - i - 1);
  }

  size_t m_;
  std::vector<WindowedCorrelation> pairs_;  // Upper triangle, row-major.
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CORRELATION_STREAMING_CORRELATION_H_
