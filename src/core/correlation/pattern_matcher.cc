#include "core/correlation/pattern_matcher.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace streamlib {

std::vector<double> PatternMatcher::ZNormalize(const std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  const double sigma = var > 0.0 ? std::sqrt(var) : 1.0;
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); i++) out[i] = (v[i] - mean) / sigma;
  return out;
}

PatternMatcher::PatternMatcher(std::vector<double> pattern, double threshold)
    : threshold_(threshold) {
  STREAMLIB_CHECK_MSG(pattern.size() >= 4, "pattern must have >= 4 points");
  STREAMLIB_CHECK_MSG(threshold > 0.0, "threshold must be positive");
  pattern_ = ZNormalize(pattern);
}

double PatternMatcher::CurrentDistance() const {
  if (window_.size() < pattern_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  const std::vector<double> normalized =
      ZNormalize(std::vector<double>(window_.begin(), window_.end()));
  double sum = 0.0;
  for (size_t i = 0; i < pattern_.size(); i++) {
    const double d = normalized[i] - pattern_[i];
    sum += d * d;
  }
  // Per-point RMS so the threshold is length-independent.
  return std::sqrt(sum / static_cast<double>(pattern_.size()));
}

bool PatternMatcher::AddAndMatch(double value) {
  position_++;
  window_.push_back(value);
  if (window_.size() > pattern_.size()) window_.pop_front();
  if (window_.size() < pattern_.size()) return false;
  const double dist = CurrentDistance();
  if (dist <= threshold_) {
    matches_.push_back(PatternMatch{position_, dist});
    return true;
  }
  return false;
}

}  // namespace streamlib
