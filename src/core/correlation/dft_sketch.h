#ifndef STREAMLIB_CORE_CORRELATION_DFT_SKETCH_H_
#define STREAMLIB_CORE_CORRELATION_DFT_SKETCH_H_

#include <complex>
#include <cstddef>
#include <deque>
#include <vector>

#include "common/check.h"

namespace streamlib {

/// StatStream-style sliding DFT synopsis (Zhu & Shasha's technique, the
/// engine behind the "fast correlation discovery for large-scale streaming
/// time-series" line the paper cites as [99] and the composite-correlation
/// work [163]): maintain the first m DFT coefficients of the current
/// window incrementally (O(m) per arrival); the Pearson correlation of two
/// streams is then approximated from 2m numbers per stream instead of W —
/// turning an O(W) pair comparison into O(m), the trick that makes
/// all-pairs screens over thousands of streams feasible.
///
/// Accuracy: exact when the windows' energy lies entirely in the first m
/// frequencies; for smooth (low-frequency-dominated) series a handful of
/// coefficients capture nearly all correlation — quantified in the
/// correlation bench against the exact screen.
class DftCorrelationSketch {
 public:
  /// \param window            sliding window length W.
  /// \param num_coefficients  m retained (positive-frequency) coefficients.
  DftCorrelationSketch(size_t window, size_t num_coefficients);

  /// Feeds the next observation.
  void Add(double value);

  /// True once the window is full (correlations become meaningful).
  bool Ready() const { return window_.size() == w_; }

  /// Approximate Pearson correlation of two synchronized sketches with the
  /// same geometry. Both must be Ready().
  static double ApproxCorrelation(const DftCorrelationSketch& a,
                                  const DftCorrelationSketch& b);

  double Mean() const;
  double StdDev() const;
  size_t window() const { return w_; }
  size_t num_coefficients() const { return coeffs_.size(); }

  /// Synopsis size actually compared per pair (vs W for the exact screen).
  size_t ComparisonDoubles() const { return 2 * coeffs_.size() + 2; }

 private:
  size_t w_;
  std::deque<double> window_;             // Needed to retire old samples.
  std::vector<std::complex<double>> coeffs_;  // X_1 .. X_m (X_0 = W*mean).
  std::vector<std::complex<double>> omega_;   // Per-k rotation factors.
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CORRELATION_DFT_SKETCH_H_
