#include "core/correlation/dft_sketch.h"

#include <cmath>

namespace streamlib {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

DftCorrelationSketch::DftCorrelationSketch(size_t window,
                                           size_t num_coefficients)
    : w_(window) {
  STREAMLIB_CHECK_MSG(window >= 4, "window must be >= 4");
  STREAMLIB_CHECK_MSG(num_coefficients >= 1 && num_coefficients < window / 2,
                      "coefficients must be in [1, window/2)");
  coeffs_.assign(num_coefficients, {0.0, 0.0});
  omega_.reserve(num_coefficients);
  for (size_t k = 1; k <= num_coefficients; k++) {
    const double angle = kTwoPi * static_cast<double>(k) /
                         static_cast<double>(window);
    omega_.emplace_back(std::cos(angle), std::sin(angle));
  }
}

void DftCorrelationSketch::Add(double value) {
  double retired = 0.0;
  if (window_.size() == w_) {
    retired = window_.front();
    window_.pop_front();
    sum_ -= retired;
    sum_sq_ -= retired * retired;
  }
  window_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
  // Sliding DFT: X_k' = omega^k * (X_k - retired + value). While filling,
  // the recurrence with retired = 0 grows the same coefficients as a batch
  // DFT of the zero-padded window rotated per step; once full it matches
  // the true window DFT up to accumulated floating-point drift.
  const std::complex<double> delta(value - retired, 0.0);
  for (size_t k = 0; k < coeffs_.size(); k++) {
    coeffs_[k] = omega_[k] * (coeffs_[k] + delta);
  }
}

double DftCorrelationSketch::Mean() const {
  return window_.empty() ? 0.0
                         : sum_ / static_cast<double>(window_.size());
}

double DftCorrelationSketch::StdDev() const {
  if (window_.empty()) return 0.0;
  const double n = static_cast<double>(window_.size());
  const double var = sum_sq_ / n - (sum_ / n) * (sum_ / n);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double DftCorrelationSketch::ApproxCorrelation(
    const DftCorrelationSketch& a, const DftCorrelationSketch& b) {
  STREAMLIB_CHECK_MSG(a.w_ == b.w_ &&
                          a.coeffs_.size() == b.coeffs_.size(),
                      "sketch geometry mismatch");
  STREAMLIB_CHECK_MSG(a.Ready() && b.Ready(), "windows not full");
  const double w = static_cast<double>(a.w_);
  const double sigma = a.StdDev() * b.StdDev();
  if (sigma <= 0.0) return 0.0;
  // Parseval: sum_i x_i y_i = (1/W) sum_k X_k conj(Y_k). The k=0 term is
  // W^2 * mean_a * mean_b, which the covariance subtracts; negative
  // frequencies mirror the retained positive ones (real inputs), hence the
  // factor 2.
  double cross = 0.0;
  for (size_t k = 0; k < a.coeffs_.size(); k++) {
    cross += (a.coeffs_[k] * std::conj(b.coeffs_[k])).real();
  }
  const double covariance = 2.0 * cross / w;
  return covariance / (w * sigma);
}

}  // namespace streamlib
