#include "core/clustering/stream_kmedian.h"

#include "common/check.h"

namespace streamlib {

StreamKMedian::StreamKMedian(size_t k, size_t chunk_size, uint64_t seed)
    : k_(k), chunk_size_(chunk_size), rng_(seed) {
  STREAMLIB_CHECK_MSG(k >= 1, "k must be >= 1");
  STREAMLIB_CHECK_MSG(chunk_size >= 2 * k, "chunk_size should be >= 2k");
}

void StreamKMedian::Add(const Point& point) {
  count_++;
  buffer_.push_back(WeightedPoint{point, 1.0});
  if (buffer_.size() >= chunk_size_) {
    // Collapse the raw chunk to k weighted centers at level 0.
    std::vector<WeightedPoint> centers =
        WeightedKMeans(buffer_, k_, /*iterations=*/10, &rng_);
    buffer_.clear();
    if (levels_.empty()) levels_.emplace_back();
    auto& level0 = levels_[0];
    level0.insert(level0.end(), centers.begin(), centers.end());
    if (level0.size() >= chunk_size_) CollapseLevel(0);
  }
}

void StreamKMedian::CollapseLevel(size_t level) {
  std::vector<WeightedPoint> centers =
      WeightedKMeans(levels_[level], k_, /*iterations=*/10, &rng_);
  levels_[level].clear();
  if (levels_.size() <= level + 1) levels_.emplace_back();
  auto& next = levels_[level + 1];
  next.insert(next.end(), centers.begin(), centers.end());
  if (next.size() >= chunk_size_) CollapseLevel(level + 1);
}

std::vector<WeightedPoint> StreamKMedian::Centers() {
  std::vector<WeightedPoint> all = buffer_;
  for (const auto& level : levels_) {
    all.insert(all.end(), level.begin(), level.end());
  }
  STREAMLIB_CHECK_MSG(!all.empty(), "no data");
  return WeightedKMeans(all, k_, /*iterations=*/20, &rng_);
}

size_t StreamKMedian::RetainedPoints() const {
  size_t total = buffer_.size();
  for (const auto& level : levels_) total += level.size();
  return total;
}

}  // namespace streamlib
