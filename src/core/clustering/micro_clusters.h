#ifndef STREAMLIB_CORE_CLUSTERING_MICRO_CLUSTERS_H_
#define STREAMLIB_CORE_CLUSTERING_MICRO_CLUSTERS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "common/state.h"
#include "common/status.h"
#include "core/clustering/kmeans_util.h"

namespace streamlib {

/// A cluster-feature (CF) vector — the additive sufficient statistics of
/// BIRCH / CluStream micro-clusters: count, linear sum, squared sum, plus
/// the temporal sums CluStream adds for recency-based eviction. Carries the
/// sorted id list CluStream uses so historical snapshots can be
/// *subtracted* (ids only ever merge, so an old cluster's ids are a subset
/// of exactly one current cluster's).
struct MicroCluster {
  static constexpr state::TypeId kTypeId = state::TypeId::kMicroCluster;
  static constexpr uint16_t kStateVersion = 1;

  uint64_t n = 0;
  Point linear_sum;           ///< per-dimension sum of points
  Point squared_sum;          ///< per-dimension sum of squares
  double timestamp_sum = 0.0; ///< sum of arrival timestamps
  double timestamp_sq = 0.0;  ///< sum of squared timestamps
  std::vector<uint32_t> ids;  ///< sorted identity set (CluStream id lists)

  /// Centroid of the absorbed points.
  Point Centroid() const;

  /// RMS deviation of absorbed points from the centroid (cluster radius).
  double Radius() const;

  /// Mean arrival time (recency signal for eviction).
  double MeanTimestamp() const;

  void Absorb(const Point& p, double timestamp);

  /// Adds another CF vector (additivity). Dimension mismatch between two
  /// non-empty clusters is InvalidArgument.
  Status Merge(const MicroCluster& other);

  /// state::MergeableSketch payload: CF statistics then the sorted id list.
  void SerializeTo(ByteWriter& w) const;
  static Result<MicroCluster> Deserialize(ByteReader& r);

  /// Subtracts another CF (must describe a subset of this one's points —
  /// the pyramidal-time-frame subtraction of CluStream).
  void Subtract(const MicroCluster& other);

  /// True iff other's id list is a subset of this one's.
  bool ContainsIds(const MicroCluster& other) const;
};

/// CluStream-style online micro-clustering (Aggarwal et al.; the paper cites
/// the stream-clustering surveys [34, 149]): maintain q >> k micro-clusters
/// online; each point is absorbed by its nearest micro-cluster if within its
/// boundary (radius_factor * radius), otherwise it seeds a new micro-cluster
/// and the stalest (or two closest) existing ones are merged to stay within
/// budget. Macro-clusters for any k are produced offline by weighted k-means
/// over the micro-cluster centroids.
class CluStream {
 public:
  /// \param max_micro_clusters  q, the online budget.
  /// \param dim                 point dimensionality.
  /// \param radius_factor       boundary multiplier t (paper default 2).
  /// \param seed                RNG for the offline macro stage.
  CluStream(size_t max_micro_clusters, size_t dim, double radius_factor,
            uint64_t seed);

  /// Absorbs one point arriving at `timestamp`.
  void Add(const Point& point, double timestamp);

  /// Offline macro-clustering: weighted k-means over micro-centroids.
  std::vector<WeightedPoint> MacroClusters(size_t k);

  /// Macro-clusters of only the points arriving in (now - horizon, now] —
  /// CluStream's pyramidal-time-frame query: the micro-cluster snapshot
  /// closest before the horizon is *subtracted* from the current state (CF
  /// additivity + id-list matching), then macro-clustered. Accuracy is
  /// snapshot-granular: the effective horizon is the distance to the
  /// nearest retained snapshot.
  std::vector<WeightedPoint> MacroClustersOverHorizon(size_t k,
                                                      double horizon);

  const std::vector<MicroCluster>& micro_clusters() const { return micro_; }
  uint64_t count() const { return count_; }
  size_t SnapshotCount() const { return snapshots_.size(); }

 private:
  size_t FindNearest(const Point& p) const;
  void MergeClosestPair();
  void MaybeSnapshot(double timestamp);

  struct Snapshot {
    double timestamp;
    std::vector<MicroCluster> clusters;
  };

  size_t budget_;
  size_t dim_;
  double radius_factor_;
  Rng rng_;
  std::vector<MicroCluster> micro_;
  uint64_t count_ = 0;
  uint32_t next_id_ = 0;
  double last_timestamp_ = 0.0;
  // Pyramidal time frame: snapshots at times divisible by 2^order, at most
  // 3 retained per order (alpha = 2, the paper's smallest setting).
  std::vector<Snapshot> snapshots_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CLUSTERING_MICRO_CLUSTERS_H_
