#include "core/clustering/online_kmeans.h"

#include <limits>

#include "common/check.h"

namespace streamlib {

OnlineKMeans::OnlineKMeans(size_t k, size_t dim, uint64_t seed,
                           size_t seed_buffer)
    : k_(k), dim_(dim), seed_buffer_(seed_buffer), rng_(seed) {
  STREAMLIB_CHECK_MSG(k >= 1, "k must be >= 1");
  STREAMLIB_CHECK_MSG(dim >= 1, "dim must be >= 1");
  if (seed_buffer_ == 0) seed_buffer_ = 32 * k;
  if (seed_buffer_ < k) seed_buffer_ = k;
}

size_t OnlineKMeans::Classify(const Point& point) const {
  STREAMLIB_CHECK_MSG(!centers_.empty(), "no centers yet");
  size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centers_.size(); c++) {
    const double d = SquaredDistance(point, centers_[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

void OnlineKMeans::SeedFromBuffer() {
  std::vector<WeightedPoint> weighted;
  weighted.reserve(buffer_.size());
  for (auto& p : buffer_) weighted.push_back(WeightedPoint{std::move(p), 1.0});
  std::vector<WeightedPoint> seeded =
      WeightedKMeans(weighted, k_, /*iterations=*/5, &rng_);
  centers_.clear();
  counts_.clear();
  for (auto& c : seeded) {
    centers_.push_back(std::move(c.point));
    counts_.push_back(static_cast<uint64_t>(c.weight));
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  seeded_ = true;
}

size_t OnlineKMeans::Add(const Point& point) {
  STREAMLIB_CHECK_MSG(point.size() == dim_, "dimension mismatch");
  count_++;
  if (!seeded_) {
    buffer_.push_back(point);
    // Interim centers: the buffered prefix (so Classify works pre-seed).
    if (centers_.size() < k_) {
      centers_.push_back(point);
      counts_.push_back(1);
    }
    if (buffer_.size() >= seed_buffer_) SeedFromBuffer();
    return buffer_.empty() ? Classify(point) : buffer_.size() - 1;
  }
  const size_t c = Classify(point);
  counts_[c]++;
  const double rate = 1.0 / static_cast<double>(counts_[c]);
  for (size_t j = 0; j < dim_; j++) {
    centers_[c][j] += rate * (point[j] - centers_[c][j]);
  }
  return c;
}

}  // namespace streamlib
