#include "core/clustering/micro_clusters.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace streamlib {

Point MicroCluster::Centroid() const {
  STREAMLIB_CHECK(n > 0);
  Point c(linear_sum.size());
  for (size_t j = 0; j < c.size(); j++) {
    c[j] = linear_sum[j] / static_cast<double>(n);
  }
  return c;
}

double MicroCluster::Radius() const {
  if (n <= 1) return 0.0;
  double sum = 0.0;
  const double nd = static_cast<double>(n);
  for (size_t j = 0; j < linear_sum.size(); j++) {
    const double mean = linear_sum[j] / nd;
    const double var = squared_sum[j] / nd - mean * mean;
    sum += std::max(var, 0.0);
  }
  return std::sqrt(sum);
}

double MicroCluster::MeanTimestamp() const {
  return n == 0 ? 0.0 : timestamp_sum / static_cast<double>(n);
}

void MicroCluster::Absorb(const Point& p, double timestamp) {
  if (n == 0) {
    linear_sum.assign(p.size(), 0.0);
    squared_sum.assign(p.size(), 0.0);
  }
  n++;
  for (size_t j = 0; j < p.size(); j++) {
    linear_sum[j] += p[j];
    squared_sum[j] += p[j] * p[j];
  }
  timestamp_sum += timestamp;
  timestamp_sq += timestamp * timestamp;
}

Status MicroCluster::Merge(const MicroCluster& other) {
  if (other.n == 0) return Status::OK();
  if (n == 0) {
    *this = other;
    return Status::OK();
  }
  if (other.linear_sum.size() != linear_sum.size()) {
    return Status::InvalidArgument("micro-cluster merge: dimension mismatch");
  }
  n += other.n;
  for (size_t j = 0; j < linear_sum.size(); j++) {
    linear_sum[j] += other.linear_sum[j];
    squared_sum[j] += other.squared_sum[j];
  }
  timestamp_sum += other.timestamp_sum;
  timestamp_sq += other.timestamp_sq;
  // Union the sorted id lists.
  std::vector<uint32_t> merged;
  merged.reserve(ids.size() + other.ids.size());
  std::merge(ids.begin(), ids.end(), other.ids.begin(), other.ids.end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  ids = std::move(merged);
  return Status::OK();
}

void MicroCluster::SerializeTo(ByteWriter& w) const {
  w.PutVarint(n);
  w.PutVarint(linear_sum.size());
  for (double v : linear_sum) w.PutDouble(v);
  for (double v : squared_sum) w.PutDouble(v);
  w.PutDouble(timestamp_sum);
  w.PutDouble(timestamp_sq);
  w.PutVarint(ids.size());
  for (uint32_t id : ids) w.PutU32(id);
}

Result<MicroCluster> MicroCluster::Deserialize(ByteReader& r) {
  MicroCluster mc;
  uint64_t dims = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&mc.n));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&dims));
  if (mc.n == 0 && dims != 0) {
    return Status::Corruption("micro-cluster: empty cluster with dimensions");
  }
  if (dims * 2 * sizeof(double) > r.remaining()) {
    return Status::Corruption("micro-cluster: dimension count exceeds payload");
  }
  mc.linear_sum.resize(dims);
  mc.squared_sum.resize(dims);
  for (uint64_t j = 0; j < dims; j++) {
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&mc.linear_sum[j]));
  }
  for (uint64_t j = 0; j < dims; j++) {
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&mc.squared_sum[j]));
    if (!std::isfinite(mc.linear_sum[j]) ||
        !std::isfinite(mc.squared_sum[j]) || mc.squared_sum[j] < 0.0) {
      return Status::Corruption("micro-cluster: malformed CF statistics");
    }
  }
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&mc.timestamp_sum));
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&mc.timestamp_sq));
  if (!std::isfinite(mc.timestamp_sum) || !std::isfinite(mc.timestamp_sq)) {
    return Status::Corruption("micro-cluster: malformed timestamp sums");
  }
  uint64_t num_ids = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_ids));
  if (num_ids * sizeof(uint32_t) > r.remaining()) {
    return Status::Corruption("micro-cluster: id count exceeds payload");
  }
  mc.ids.reserve(num_ids);
  for (uint64_t i = 0; i < num_ids; i++) {
    uint32_t id = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetU32(&id));
    if (!mc.ids.empty() && id <= mc.ids.back()) {
      return Status::Corruption("micro-cluster: id list not sorted");
    }
    mc.ids.push_back(id);
  }
  return mc;
}

void MicroCluster::Subtract(const MicroCluster& other) {
  STREAMLIB_CHECK_MSG(other.n <= n, "subtracting a larger cluster");
  n -= other.n;
  for (size_t j = 0; j < linear_sum.size(); j++) {
    linear_sum[j] -= other.linear_sum[j];
    squared_sum[j] -= other.squared_sum[j];
  }
  timestamp_sum -= other.timestamp_sum;
  timestamp_sq -= other.timestamp_sq;
}

bool MicroCluster::ContainsIds(const MicroCluster& other) const {
  return std::includes(ids.begin(), ids.end(), other.ids.begin(),
                       other.ids.end());
}

CluStream::CluStream(size_t max_micro_clusters, size_t dim,
                     double radius_factor, uint64_t seed)
    : budget_(max_micro_clusters),
      dim_(dim),
      radius_factor_(radius_factor),
      rng_(seed) {
  STREAMLIB_CHECK_MSG(max_micro_clusters >= 2, "budget must be >= 2");
  STREAMLIB_CHECK_MSG(radius_factor > 0.0, "radius factor must be positive");
}

size_t CluStream::FindNearest(const Point& p) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t i = 0; i < micro_.size(); i++) {
    const double d = SquaredDistance(p, micro_[i].Centroid());
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

void CluStream::MergeClosestPair() {
  size_t best_a = 0;
  size_t best_b = 1;
  double best_d = std::numeric_limits<double>::max();
  for (size_t i = 0; i < micro_.size(); i++) {
    const Point ci = micro_[i].Centroid();
    for (size_t j = i + 1; j < micro_.size(); j++) {
      const double d = SquaredDistance(ci, micro_[j].Centroid());
      if (d < best_d) {
        best_d = d;
        best_a = i;
        best_b = j;
      }
    }
  }
  micro_[best_a].Merge(micro_[best_b]);
  micro_.erase(micro_.begin() + static_cast<long>(best_b));
}

void CluStream::MaybeSnapshot(double timestamp) {
  // Snapshot on integer-time boundaries only (fractional times attach to
  // the preceding boundary having been taken already).
  const int64_t tick = static_cast<int64_t>(timestamp);
  if (tick <= 0 ||
      static_cast<double>(tick) <= last_timestamp_) {
    return;
  }
  // Pyramidal retention with alpha = 2: a snapshot at time t belongs to
  // order i = largest power of two dividing t; keep the 3 newest per order.
  snapshots_.push_back(Snapshot{static_cast<double>(tick), micro_});
  auto order_of = [](int64_t t) {
    int order = 0;
    while (t % 2 == 0 && order < 62) {
      t /= 2;
      order++;
    }
    return order;
  };
  const int new_order = order_of(tick);
  int same_order = 0;
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (order_of(static_cast<int64_t>(it->timestamp)) == new_order) {
      same_order++;
      if (same_order > 3) {
        snapshots_.erase(std::next(it).base());
        break;
      }
    }
  }
}

void CluStream::Add(const Point& point, double timestamp) {
  STREAMLIB_CHECK_MSG(point.size() == dim_, "dimension mismatch");
  count_++;
  MaybeSnapshot(timestamp);
  last_timestamp_ = timestamp;
  if (micro_.size() < budget_) {
    MicroCluster mc;
    mc.Absorb(point, timestamp);
    mc.ids.push_back(next_id_++);
    micro_.push_back(std::move(mc));
    return;
  }
  const size_t nearest = FindNearest(point);
  MicroCluster& mc = micro_[nearest];
  // Boundary: radius_factor * RMS radius; singleton clusters use the
  // distance to the next-closest micro-cluster (CluStream's heuristic).
  double boundary = radius_factor_ * mc.Radius();
  if (mc.n == 1) {
    double next_d = std::numeric_limits<double>::max();
    const Point c = mc.Centroid();
    for (size_t i = 0; i < micro_.size(); i++) {
      if (i == nearest) continue;
      next_d = std::min(next_d, SquaredDistance(c, micro_[i].Centroid()));
    }
    boundary = std::sqrt(next_d);
  }
  // Robustification: cap every boundary at radius_factor times the median
  // mature-cluster radius. Without it, the first point of an abrupt global
  // shift spawns a singleton whose nearest-cluster distance spans the whole
  // new region, and one mega-cluster swallows every new mode.
  {
    std::vector<double> radii;
    radii.reserve(micro_.size());
    for (const MicroCluster& m : micro_) {
      if (m.n >= 2) radii.push_back(m.Radius());
    }
    if (radii.size() >= micro_.size() / 2 && !radii.empty()) {
      std::nth_element(radii.begin(), radii.begin() + radii.size() / 2,
                       radii.end());
      const double median = radii[radii.size() / 2];
      if (median > 0.0) {
        boundary = std::min(boundary, radius_factor_ * 2.0 * median);
      }
    }
  }
  const double dist =
      std::sqrt(SquaredDistance(point, mc.Centroid()));
  if (dist <= boundary) {
    mc.Absorb(point, timestamp);
    return;
  }
  // Outside every boundary: new micro-cluster; merge two closest to stay in
  // budget.
  MergeClosestPair();
  MicroCluster fresh;
  fresh.Absorb(point, timestamp);
  fresh.ids.push_back(next_id_++);
  micro_.push_back(std::move(fresh));
}

std::vector<WeightedPoint> CluStream::MacroClustersOverHorizon(
    size_t k, double horizon) {
  STREAMLIB_CHECK_MSG(!micro_.empty(), "no data");
  // Closest snapshot at or before now - horizon.
  const double cutoff = last_timestamp_ - horizon;
  const Snapshot* base = nullptr;
  for (const Snapshot& snap : snapshots_) {
    if (snap.timestamp <= cutoff &&
        (base == nullptr || snap.timestamp > base->timestamp)) {
      base = &snap;
    }
  }
  std::vector<WeightedPoint> inputs;
  if (base == nullptr) {
    // Horizon covers everything we have: fall back to the full state.
    return MacroClusters(k);
  }
  for (const MicroCluster& current : micro_) {
    MicroCluster windowed = current;
    for (const MicroCluster& old : base->clusters) {
      if (windowed.ContainsIds(old) && old.n <= windowed.n) {
        windowed.Subtract(old);
      }
    }
    if (windowed.n > 0) {
      inputs.push_back(WeightedPoint{windowed.Centroid(),
                                     static_cast<double>(windowed.n)});
    }
  }
  if (inputs.empty()) return MacroClusters(k);
  return WeightedKMeans(inputs, k, /*iterations=*/20, &rng_);
}

std::vector<WeightedPoint> CluStream::MacroClusters(size_t k) {
  STREAMLIB_CHECK_MSG(!micro_.empty(), "no data");
  std::vector<WeightedPoint> inputs;
  inputs.reserve(micro_.size());
  for (const MicroCluster& mc : micro_) {
    inputs.push_back(
        WeightedPoint{mc.Centroid(), static_cast<double>(mc.n)});
  }
  return WeightedKMeans(inputs, k, /*iterations=*/20, &rng_);
}

}  // namespace streamlib
