#include "core/clustering/kmeans_util.h"

#include <limits>

#include "common/check.h"

namespace streamlib {

double SquaredDistance(const Point& a, const Point& b) {
  STREAMLIB_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); i++) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

namespace {

size_t NearestCenter(const Point& p,
                     const std::vector<WeightedPoint>& centers) {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centers.size(); c++) {
    const double d = SquaredDistance(p, centers[c].point);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

std::vector<WeightedPoint> WeightedKMeans(
    const std::vector<WeightedPoint>& points, size_t k, int iterations,
    Rng* rng) {
  STREAMLIB_CHECK_MSG(!points.empty(), "empty input");
  STREAMLIB_CHECK_MSG(k >= 1, "k must be >= 1");
  k = std::min(k, points.size());

  // k-means++ seeding on weighted points.
  std::vector<WeightedPoint> centers;
  centers.reserve(k);
  double total_weight = 0.0;
  for (const auto& p : points) total_weight += p.weight;
  // First center: weight-proportional draw.
  {
    double target = rng->NextDouble() * total_weight;
    size_t pick = 0;
    for (size_t i = 0; i < points.size(); i++) {
      target -= points[i].weight;
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back(WeightedPoint{points[pick].point, 0.0});
  }
  std::vector<double> d2(points.size());
  while (centers.size() < k) {
    double sum = 0.0;
    for (size_t i = 0; i < points.size(); i++) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centers) {
        best = std::min(best, SquaredDistance(points[i].point, c.point));
      }
      d2[i] = best * points[i].weight;
      sum += d2[i];
    }
    if (sum <= 0.0) break;  // All mass already on centers.
    double target = rng->NextDouble() * sum;
    size_t pick = points.size() - 1;
    for (size_t i = 0; i < points.size(); i++) {
      target -= d2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back(WeightedPoint{points[pick].point, 0.0});
  }

  // Lloyd iterations.
  const size_t dim = points[0].point.size();
  for (int iter = 0; iter < iterations; iter++) {
    std::vector<Point> sums(centers.size(), Point(dim, 0.0));
    std::vector<double> weights(centers.size(), 0.0);
    for (const auto& p : points) {
      const size_t c = NearestCenter(p.point, centers);
      for (size_t j = 0; j < dim; j++) sums[c][j] += p.point[j] * p.weight;
      weights[c] += p.weight;
    }
    for (size_t c = 0; c < centers.size(); c++) {
      if (weights[c] > 0.0) {
        for (size_t j = 0; j < dim; j++) {
          centers[c].point[j] = sums[c][j] / weights[c];
        }
      }
      centers[c].weight = weights[c];
    }
  }
  // Final assignment weights (covers the iterations == 0 case).
  if (iterations == 0) {
    std::vector<double> weights(centers.size(), 0.0);
    for (const auto& p : points) {
      weights[NearestCenter(p.point, centers)] += p.weight;
    }
    for (size_t c = 0; c < centers.size(); c++) centers[c].weight = weights[c];
  }
  return centers;
}

double WeightedSse(const std::vector<WeightedPoint>& points,
                   const std::vector<WeightedPoint>& centers) {
  STREAMLIB_CHECK_MSG(!centers.empty(), "no centers");
  double sse = 0.0;
  for (const auto& p : points) {
    double best = std::numeric_limits<double>::max();
    for (const auto& c : centers) {
      best = std::min(best, SquaredDistance(p.point, c.point));
    }
    sse += best * p.weight;
  }
  return sse;
}

}  // namespace streamlib
