#ifndef STREAMLIB_CORE_CLUSTERING_ONLINE_KMEANS_H_
#define STREAMLIB_CORE_CLUSTERING_ONLINE_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/clustering/kmeans_util.h"

namespace streamlib {

/// Sequential (online) k-means — MacQueen's algorithm with a k-means++ warm
/// start: the first `seed_buffer` points are buffered and seeded/Lloyd-
/// refined once (naive first-k seeding folds mixture components whenever two
/// seeds land in one cluster); every later point moves its nearest center by
/// 1/n_c toward itself. O(kd) per point after warm-up, O(kd + buffer)
/// memory; the fastest streaming clusterer and the baseline the clustering
/// bench compares CluStream/STREAM against.
class OnlineKMeans {
 public:
  /// \param k            number of clusters.
  /// \param dim          point dimensionality.
  /// \param seed         RNG seed for the warm start.
  /// \param seed_buffer  points buffered for seeding (default 32k points,
  ///                     min k).
  OnlineKMeans(size_t k, size_t dim, uint64_t seed, size_t seed_buffer = 0);

  /// Feeds one point; returns the index of the assigned cluster (the
  /// buffer index during warm-up).
  size_t Add(const Point& point);

  /// Index of the nearest center (no update). Valid after >= k points.
  size_t Classify(const Point& point) const;

  /// Current centers (after warm-up: k centers; before: buffered prefix).
  const std::vector<Point>& centers() const { return centers_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t count() const { return count_; }
  bool seeded() const { return seeded_; }

 private:
  void SeedFromBuffer();

  size_t k_;
  size_t dim_;
  size_t seed_buffer_;
  Rng rng_;
  bool seeded_ = false;
  std::vector<Point> buffer_;
  std::vector<Point> centers_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CLUSTERING_ONLINE_KMEANS_H_
