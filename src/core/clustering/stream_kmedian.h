#ifndef STREAMLIB_CORE_CLUSTERING_STREAM_KMEDIAN_H_
#define STREAMLIB_CORE_CLUSTERING_STREAM_KMEDIAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/clustering/kmeans_util.h"

namespace streamlib {

/// STREAM-style divide-and-conquer k-median/k-means clustering (Guha,
/// Mishra, Motwani & O'Callaghan, FOCS 2000, cited as [98]; the engineering
/// follow-up is O'Callaghan et al. [132]): buffer the stream in chunks of m
/// points, collapse each chunk to k weighted centers, and when a level
/// accumulates m centers collapse *those* recursively — a constant-memory
/// hierarchy whose final clustering provably approximates the batch optimum
/// within a constant factor per level.
class StreamKMedian {
 public:
  /// \param k           number of clusters.
  /// \param chunk_size  m, points buffered per collapse (>= 2k sensible).
  /// \param seed        RNG seed for the k-means++ stages.
  StreamKMedian(size_t k, size_t chunk_size, uint64_t seed);

  /// Feeds one point.
  void Add(const Point& point);

  /// Final clustering: collapse everything retained to k weighted centers.
  std::vector<WeightedPoint> Centers();

  /// Number of weighted points currently retained across all levels.
  size_t RetainedPoints() const;

  uint64_t count() const { return count_; }

 private:
  void CollapseLevel(size_t level);

  size_t k_;
  size_t chunk_size_;
  Rng rng_;
  std::vector<WeightedPoint> buffer_;                 // Level 0 raw points.
  std::vector<std::vector<WeightedPoint>> levels_;    // Collapsed centers.
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CLUSTERING_STREAM_KMEDIAN_H_
