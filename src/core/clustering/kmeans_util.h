#ifndef STREAMLIB_CORE_CLUSTERING_KMEANS_UTIL_H_
#define STREAMLIB_CORE_CLUSTERING_KMEANS_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamlib {

/// A point in R^d. All clustering code shares this representation.
using Point = std::vector<double>;

/// Squared Euclidean distance.
double SquaredDistance(const Point& a, const Point& b);

/// A point with a weight (coreset element / collapsed cluster).
struct WeightedPoint {
  Point point;
  double weight = 1.0;
};

/// Weighted k-means++ seeding followed by Lloyd iterations. The building
/// block for the STREAM k-median hierarchy and the batch baseline in the
/// clustering bench.
///
/// \param points      weighted input points (weights > 0).
/// \param k           number of centers (k <= points.size() effective).
/// \param iterations  Lloyd iterations after seeding.
/// \param rng         randomness for seeding.
/// \returns k centers with weights = total assigned weight.
std::vector<WeightedPoint> WeightedKMeans(
    const std::vector<WeightedPoint>& points, size_t k, int iterations,
    Rng* rng);

/// Weighted sum of squared distances from each point to its nearest center.
double WeightedSse(const std::vector<WeightedPoint>& points,
                   const std::vector<WeightedPoint>& centers);

}  // namespace streamlib

#endif  // STREAMLIB_CORE_CLUSTERING_KMEANS_UTIL_H_
