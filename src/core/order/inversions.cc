#include "core/order/inversions.h"

#include "common/check.h"

namespace streamlib {

ExactInversionCounter::ExactInversionCounter(uint32_t domain_size)
    : domain_(domain_size) {
  STREAMLIB_CHECK_MSG(domain_size >= 1, "domain must be nonempty");
  tree_.assign(domain_size + 1, 0);
}

uint64_t ExactInversionCounter::PrefixCount(uint32_t value) const {
  // Sum of counts for values in [0, value] (Fenwick is 1-based).
  uint64_t sum = 0;
  for (uint32_t i = value + 1; i > 0; i -= i & (~i + 1)) {
    sum += tree_[i];
  }
  return sum;
}

uint64_t ExactInversionCounter::Add(uint32_t value) {
  STREAMLIB_CHECK_MSG(value < domain_, "value out of domain");
  // Inversions contributed: previously seen elements strictly greater.
  const uint64_t greater = count_ - PrefixCount(value);
  inversions_ += greater;
  count_++;
  for (uint32_t i = value + 1; i <= domain_; i += i & (~i + 1)) {
    tree_[i] += 1;
  }
  return greater;
}

double ExactInversionCounter::Sortedness() const {
  if (count_ < 2) return 1.0;
  const double max_inv =
      static_cast<double>(count_) * static_cast<double>(count_ - 1) / 2.0;
  return 1.0 - static_cast<double>(inversions_) / max_inv;
}

SampledInversionEstimator::SampledInversionEstimator(size_t sample_size,
                                                     uint64_t seed)
    : capacity_(sample_size), rng_(seed) {
  STREAMLIB_CHECK_MSG(sample_size >= 2, "need at least two samples");
  reservoir_.reserve(sample_size);
}

void SampledInversionEstimator::Add(uint32_t value) {
  const uint64_t position = count_++;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(Sample{position, value});
    return;
  }
  const uint64_t j = rng_.NextBounded(count_);
  if (j < capacity_) reservoir_[j] = Sample{position, value};
}

double SampledInversionEstimator::Estimate() const {
  if (count_ < 2 || reservoir_.size() < 2) return 0.0;
  uint64_t inverted = 0;
  uint64_t pairs = 0;
  for (size_t i = 0; i < reservoir_.size(); i++) {
    for (size_t j = i + 1; j < reservoir_.size(); j++) {
      const Sample& a = reservoir_[i];
      const Sample& b = reservoir_[j];
      if (a.position == b.position) continue;
      pairs++;
      const Sample& earlier = a.position < b.position ? a : b;
      const Sample& later = a.position < b.position ? b : a;
      if (earlier.value > later.value) inverted++;
    }
  }
  if (pairs == 0) return 0.0;
  const double total_pairs =
      static_cast<double>(count_) * static_cast<double>(count_ - 1) / 2.0;
  return static_cast<double>(inverted) / static_cast<double>(pairs) *
         total_pairs;
}

}  // namespace streamlib
