#ifndef STREAMLIB_CORE_ORDER_INVERSIONS_H_
#define STREAMLIB_CORE_ORDER_INVERSIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamlib {

/// Exact online inversion counting over a bounded integer domain via a
/// Fenwick (binary indexed) tree: each arrival adds the number of previously
/// seen *larger* values. O(log U) per element, O(U) memory — the ground
/// truth the approximate estimator (and the Ajtai et al. lower-bound
/// discussion, cited as [36]) is measured against.
class ExactInversionCounter {
 public:
  /// \param domain_size  values must be in [0, domain_size).
  explicit ExactInversionCounter(uint32_t domain_size);

  /// Processes one value; returns inversions contributed by this element.
  uint64_t Add(uint32_t value);

  uint64_t Inversions() const { return inversions_; }
  uint64_t count() const { return count_; }

  /// Normalized sortedness in [0, 1]: 1 - inversions / max_inversions.
  double Sortedness() const;

 private:
  uint64_t PrefixCount(uint32_t value) const;  // # seen values <= value.

  uint32_t domain_;
  std::vector<uint64_t> tree_;  // Fenwick tree over value counts.
  uint64_t count_ = 0;
  uint64_t inversions_ = 0;
};

/// Sampling-based streaming inversion estimator: maintains a uniform
/// reservoir of (position, value) pairs and estimates the inversion count
/// from the inverted fraction of sampled pairs, scaled to n(n-1)/2.
/// Unbiased, O(k) memory, with the usual 1/sqrt(#pairs) concentration —
/// the practical counterpoint to the polylog-space deterministic algorithm
/// of Ajtai et al. [36], whose guarantee targets the same eps*n^2 additive
/// regime the bench sweeps.
class SampledInversionEstimator {
 public:
  /// \param sample_size  reservoir size k; ~k^2/2 pairs drive the accuracy.
  SampledInversionEstimator(size_t sample_size, uint64_t seed);

  void Add(uint32_t value);

  /// Estimated total inversions.
  double Estimate() const;

  uint64_t count() const { return count_; }

 private:
  struct Sample {
    uint64_t position;
    uint32_t value;
  };

  size_t capacity_;
  Rng rng_;
  std::vector<Sample> reservoir_;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ORDER_INVERSIONS_H_
