#ifndef STREAMLIB_CORE_ORDER_LIS_H_
#define STREAMLIB_CORE_ORDER_LIS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamlib {

/// Exact longest-increasing-subsequence *length* tracking via patience
/// sorting: `tails_[l]` is the smallest possible tail of an increasing
/// subsequence of length l+1; each arrival binary-searches and replaces.
/// O(log L) per element, O(L) memory where L is the current LIS length —
/// already sublinear for most streams, and the baseline for the
/// bounded-memory estimator below (the streaming-LIS problem of
/// Liben-Nowell et al. [122] and the lower bounds of Gál–Gopalan [87] /
/// Sun–Woodruff [152], all cited).
class LisTracker {
 public:
  LisTracker() = default;

  /// Processes one value (strictly increasing subsequences).
  void Add(double value);

  /// Current LIS length of the stream seen so far.
  size_t Length() const { return tails_.size(); }

  uint64_t count() const { return count_; }

  /// Memory held, in values (equals the LIS length).
  size_t MemoryValues() const { return tails_.size(); }

 private:
  std::vector<double> tails_;
  uint64_t count_ = 0;
};

/// Bounded-memory LIS length estimator: runs patience sorting but keeps at
/// most `budget` tails by periodically dropping every second one (the
/// maximum tail is always retained), while an exact counter records every
/// length extension. The estimate is exact while the LIS fits the budget
/// and exact on monotone streams; after thinning it *never underestimates*
/// (the retained maximum is <= the true patience maximum, so extensions are
/// only over-detected), with overestimate governed by the inter-tail gaps —
/// the eps-additive space/accuracy trade-off the streaming-LIS lower bounds
/// show is unavoidable (deterministic exact LIS needs Omega(n) space).
class BoundedLisEstimator {
 public:
  explicit BoundedLisEstimator(size_t budget);

  void Add(double value);

  /// Estimated LIS length (exact while within budget; an upper bound after).
  size_t Estimate() const { return length_; }

  /// True once thinning has happened (estimate no longer exact).
  bool IsApproximate() const { return thinned_; }

  size_t MemoryValues() const { return tails_.size(); }

 private:
  void Thin();

  size_t budget_;
  bool thinned_ = false;
  size_t length_ = 0;  // Number of length extensions (the estimate).
  std::vector<double> tails_;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ORDER_LIS_H_
