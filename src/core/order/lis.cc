#include "core/order/lis.h"

#include <algorithm>

#include "common/check.h"

namespace streamlib {

void LisTracker::Add(double value) {
  count_++;
  auto it = std::lower_bound(tails_.begin(), tails_.end(), value);
  if (it == tails_.end()) {
    tails_.push_back(value);
  } else {
    *it = value;
  }
}

BoundedLisEstimator::BoundedLisEstimator(size_t budget) : budget_(budget) {
  STREAMLIB_CHECK_MSG(budget >= 4, "budget must be >= 4");
  tails_.reserve(budget + 1);
}

void BoundedLisEstimator::Add(double value) {
  count_++;
  if (tails_.empty() || value > tails_.back()) {
    tails_.push_back(value);
    length_++;  // A genuine (or over-detected, post-thinning) extension.
    if (tails_.size() > budget_) Thin();
    return;
  }
  *std::lower_bound(tails_.begin(), tails_.end(), value) = value;
}

void BoundedLisEstimator::Thin() {
  // Drop every second tail but always retain the maximum (back), so the
  // extension test `value > tails_.back()` stays anchored to the best
  // available lower bound on the true patience maximum.
  std::vector<double> kept;
  kept.reserve(tails_.size() / 2 + 1);
  for (size_t i = 1; i < tails_.size(); i += 2) {
    kept.push_back(tails_[i]);
  }
  if (kept.empty() || kept.back() != tails_.back()) {
    kept.push_back(tails_.back());
  }
  tails_ = std::move(kept);
  thinned_ = true;
}

}  // namespace streamlib
