#include "core/wavelet/haar_wavelet.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/check.h"

namespace streamlib {
namespace {

constexpr double kSqrt2 = 1.4142135623730950488;

}  // namespace

std::vector<double> HaarWavelet::Transform(const std::vector<double>& signal) {
  STREAMLIB_CHECK_MSG(!signal.empty() && IsPowerOfTwo(signal.size()),
                      "signal length must be a power of two");
  std::vector<double> work = signal;
  std::vector<double> out(signal.size());
  size_t len = signal.size();
  // Cascade: averages go left, normalized differences are emitted.
  while (len > 1) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; i++) {
      const double a = work[2 * i];
      const double b = work[2 * i + 1];
      out[half + i] = (a - b) / kSqrt2;  // Detail coefficient.
      work[i] = (a + b) / kSqrt2;        // Scaled average.
    }
    len = half;
  }
  out[0] = work[0];  // Overall (scaled) average.
  return out;
}

std::vector<double> HaarWavelet::Inverse(
    const std::vector<double>& coefficients) {
  STREAMLIB_CHECK_MSG(
      !coefficients.empty() && IsPowerOfTwo(coefficients.size()),
      "coefficient length must be a power of two");
  std::vector<double> work = coefficients;
  size_t len = 1;
  while (len < coefficients.size()) {
    // Invert one cascade level: averages in work[0,len), details in
    // work[len, 2*len).
    std::vector<double> merged(2 * len);
    for (size_t i = 0; i < len; i++) {
      const double avg = work[i];
      const double det = work[len + i];
      merged[2 * i] = (avg + det) / kSqrt2;
      merged[2 * i + 1] = (avg - det) / kSqrt2;
    }
    std::copy(merged.begin(), merged.end(), work.begin());
    len *= 2;
  }
  return work;
}

std::vector<WaveletCoefficient> HaarWavelet::TopK(
    const std::vector<double>& coefficients, size_t k) {
  std::vector<WaveletCoefficient> all;
  all.reserve(coefficients.size());
  for (size_t i = 0; i < coefficients.size(); i++) {
    all.push_back(WaveletCoefficient{i, coefficients[i]});
  }
  std::sort(all.begin(), all.end(),
            [](const WaveletCoefficient& a, const WaveletCoefficient& b) {
              const double fa = std::fabs(a.value);
              const double fb = std::fabs(b.value);
              return fa != fb ? fa > fb : a.index < b.index;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<double> HaarWavelet::Reconstruct(
    const std::vector<WaveletCoefficient>& coefficients, size_t length) {
  STREAMLIB_CHECK_MSG(length > 0 && IsPowerOfTwo(length),
                      "length must be a power of two");
  std::vector<double> full(length, 0.0);
  for (const auto& c : coefficients) {
    STREAMLIB_CHECK(c.index < length);
    full[c.index] = c.value;
  }
  return Inverse(full);
}

double HaarWavelet::RangeSum(const std::vector<WaveletCoefficient>& synopsis,
                             size_t length, size_t begin, size_t end) {
  STREAMLIB_CHECK_MSG(IsPowerOfTwo(length), "length must be a power of two");
  STREAMLIB_CHECK_MSG(begin <= end && end <= length, "invalid range");
  auto overlap = [](size_t a_lo, size_t a_hi, size_t b_lo, size_t b_hi) {
    const size_t lo = std::max(a_lo, b_lo);
    const size_t hi = std::min(a_hi, b_hi);
    return hi > lo ? static_cast<double>(hi - lo) : 0.0;
  };
  double sum = 0.0;
  for (const WaveletCoefficient& c : synopsis) {
    if (c.index == 0) {
      // Scaling function: constant 1/sqrt(n) everywhere.
      sum += c.value * static_cast<double>(end - begin) /
             std::sqrt(static_cast<double>(length));
      continue;
    }
    // Index j in [p, 2p): support n/p starting at (j-p)*(n/p); amplitude
    // sqrt(p/n); +1 on the first half of the support, -1 on the second.
    const size_t p = size_t{1} << Log2Floor(c.index);
    const size_t support = length / p;
    const size_t offset = (c.index - p) * support;
    const double amplitude =
        std::sqrt(static_cast<double>(p) / static_cast<double>(length));
    const double pos = overlap(begin, end, offset, offset + support / 2);
    const double neg =
        overlap(begin, end, offset + support / 2, offset + support);
    sum += c.value * amplitude * (pos - neg);
  }
  return sum;
}

double HaarWavelet::SynopsisError(const std::vector<double>& signal,
                                  size_t k) {
  const std::vector<double> coeffs = Transform(signal);
  const std::vector<double> approx =
      Reconstruct(TopK(coeffs, k), signal.size());
  double err = 0.0;
  for (size_t i = 0; i < signal.size(); i++) {
    const double d = signal[i] - approx[i];
    err += d * d;
  }
  return std::sqrt(err);
}

}  // namespace streamlib
