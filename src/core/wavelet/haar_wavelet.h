#ifndef STREAMLIB_CORE_WAVELET_HAAR_WAVELET_H_
#define STREAMLIB_CORE_WAVELET_HAAR_WAVELET_H_

#include <cstddef>
#include <vector>

namespace streamlib {

/// A retained wavelet coefficient.
struct WaveletCoefficient {
  size_t index = 0;    ///< position in the Haar coefficient vector
  double value = 0.0;  ///< normalized coefficient value
};

/// Haar wavelet synopsis (the paper's "Wavelets" synopsis family, with the
/// L2-optimality property of retaining the largest normalized coefficients
/// [91]): transform a signal of power-of-two length, keep the top-k
/// coefficients by absolute value, reconstruct approximately.
class HaarWavelet {
 public:
  /// Forward normalized Haar transform. Length must be a power of two.
  static std::vector<double> Transform(const std::vector<double>& signal);

  /// Inverse of Transform.
  static std::vector<double> Inverse(const std::vector<double>& coefficients);

  /// The k coefficients with the largest |value| (ties by lower index),
  /// which minimize L2 reconstruction error among all k-subsets.
  static std::vector<WaveletCoefficient> TopK(
      const std::vector<double>& coefficients, size_t k);

  /// Reconstruction from a sparse coefficient set.
  static std::vector<double> Reconstruct(
      const std::vector<WaveletCoefficient>& coefficients, size_t length);

  /// L2 error of approximating `signal` with its top-k synopsis.
  static double SynopsisError(const std::vector<double>& signal, size_t k);

  /// Approximate sum of signal[a, b) directly from a sparse synopsis in
  /// O(|synopsis|) — each Haar basis function's overlap with a range is
  /// closed-form, so range aggregates never need reconstruction. This is
  /// the query pattern that makes wavelet synopses usable as histogram
  /// replacements in the paper's synopsis section.
  static double RangeSum(const std::vector<WaveletCoefficient>& synopsis,
                         size_t length, size_t begin, size_t end);
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_WAVELET_HAAR_WAVELET_H_
