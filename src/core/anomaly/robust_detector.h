#ifndef STREAMLIB_CORE_ANOMALY_ROBUST_DETECTOR_H_
#define STREAMLIB_CORE_ANOMALY_ROBUST_DETECTOR_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "core/anomaly/detectors.h"

namespace streamlib {

/// Robust sliding-window detector: flags a point when its deviation from the
/// window *median* exceeds `threshold` times the window MAD (median absolute
/// deviation, scaled by 1.4826 to estimate sigma under normality). Median and
/// MAD resist masking by outliers — the property moment-based detectors
/// (EWMA) lack, quantified in the anomaly bench under contaminated streams.
/// Each update recomputes order statistics over the window: O(W) per point,
/// appropriate for the short baselines (W <= a few hundred) this detector
/// is used with.
class RobustMadDetector : public AnomalyDetector {
 public:
  /// \param window     number of trailing points forming the baseline.
  /// \param threshold  flag when |x - median| > threshold * 1.4826 * MAD.
  RobustMadDetector(size_t window, double threshold);

  bool AddAndDetect(double value) override;
  const char* Name() const override { return "robust-mad"; }

  double Median() const;
  double MadSigma() const;

 private:
  size_t window_;
  double threshold_;
  std::deque<double> values_;
  mutable std::vector<double> scratch_;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ANOMALY_ROBUST_DETECTOR_H_
