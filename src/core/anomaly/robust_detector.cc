#include "core/anomaly/robust_detector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamlib {
namespace {

// Consistency constant: MAD * 1.4826 estimates sigma for gaussian data.
constexpr double kMadToSigma = 1.4826;

double MedianOf(std::vector<double>* v) {
  STREAMLIB_CHECK(!v->empty());
  const size_t mid = v->size() / 2;
  std::nth_element(v->begin(), v->begin() + mid, v->end());
  double m = (*v)[mid];
  if (v->size() % 2 == 0) {
    // Lower-mid is the max of the left partition.
    const double lower = *std::max_element(v->begin(), v->begin() + mid);
    m = (m + lower) / 2.0;
  }
  return m;
}

}  // namespace

RobustMadDetector::RobustMadDetector(size_t window, double threshold)
    : window_(window), threshold_(threshold) {
  STREAMLIB_CHECK_MSG(window >= 5, "window must be >= 5");
  STREAMLIB_CHECK_MSG(threshold > 0.0, "threshold must be positive");
}

double RobustMadDetector::Median() const {
  scratch_.assign(values_.begin(), values_.end());
  return MedianOf(&scratch_);
}

double RobustMadDetector::MadSigma() const {
  const double median = Median();
  scratch_.assign(values_.begin(), values_.end());
  for (double& x : scratch_) x = std::fabs(x - median);
  return MedianOf(&scratch_) * kMadToSigma;
}

bool RobustMadDetector::AddAndDetect(double value) {
  bool anomalous = false;
  if (values_.size() >= window_ / 2) {
    const double median = Median();
    const double sigma = MadSigma();
    if (sigma > 0.0 &&
        std::fabs(value - median) > threshold_ * sigma) {
      anomalous = true;
    }
  }
  // Anomalous points are excluded from the baseline window.
  if (!anomalous) {
    values_.push_back(value);
    if (values_.size() > window_) values_.pop_front();
  }
  return anomalous;
}

}  // namespace streamlib
