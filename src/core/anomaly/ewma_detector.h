#ifndef STREAMLIB_CORE_ANOMALY_EWMA_DETECTOR_H_
#define STREAMLIB_CORE_ANOMALY_EWMA_DETECTOR_H_

#include <cstdint>

#include "core/anomaly/detectors.h"

namespace streamlib {

/// EWMA control chart: exponentially weighted moving estimates of mean and
/// variance; a point is anomalous when its deviation from the EWMA mean
/// exceeds `threshold_sigmas` EWMA standard deviations. O(1) state — the
/// baseline online detector for the sensor-stream application in Table 1.
class EwmaDetector : public AnomalyDetector {
 public:
  /// \param alpha             smoothing factor in (0, 1]; smaller = smoother.
  /// \param threshold_sigmas  flag when |x - mean| > this many sigmas.
  /// \param warmup            observations consumed before flagging starts.
  EwmaDetector(double alpha, double threshold_sigmas, uint64_t warmup = 30);

  bool AddAndDetect(double value) override;
  const char* Name() const override { return "ewma"; }

  double mean() const { return mean_; }
  double Sigma() const;

 private:
  double alpha_;
  double threshold_;
  uint64_t warmup_;
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// CUSUM (cumulative sum) change detector: accumulates one-sided deviations
/// beyond a slack `drift`; fires when either accumulator exceeds
/// `threshold`. Detects small persistent shifts (level changes) that
/// point-wise detectors miss — complementary to EwmaDetector, as the anomaly
/// bench shows on level-shift workloads.
class CusumDetector : public AnomalyDetector {
 public:
  /// \param drift      slack per step in sigmas (insensitivity to noise).
  /// \param threshold  alarm level in sigmas.
  /// \param warmup     observations used to learn the baseline mean/sigma.
  CusumDetector(double drift, double threshold, uint64_t warmup = 100);

  bool AddAndDetect(double value) override;
  const char* Name() const override { return "cusum"; }

  double PositiveSum() const { return pos_; }
  double NegativeSum() const { return neg_; }

 private:
  double drift_;
  double threshold_;
  uint64_t warmup_;
  uint64_t count_ = 0;
  // Baseline statistics learned during warmup (then frozen; CUSUM resets
  // re-learn after each alarm).
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sigma_ = 1.0;
  double pos_ = 0.0;
  double neg_ = 0.0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ANOMALY_EWMA_DETECTOR_H_
