#ifndef STREAMLIB_CORE_ANOMALY_HALF_SPACE_TREES_H_
#define STREAMLIB_CORE_ANOMALY_HALF_SPACE_TREES_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/anomaly/detectors.h"

namespace streamlib {

/// Streaming Half-Space Trees (Tan, Ting & Liu, IJCAI 2011, cited as [153]):
/// an ensemble of random binary space-partitioning trees over [0,1]^d.
/// Each node halves a random dimension of a randomly perturbed workspace;
/// leaves record *mass* (point counts) over a reference window. A point's
/// anomaly score is the mass of the nodes it falls into (weighted 2^depth):
/// low mass = sparsely populated region = anomalous. Mass profiles come from
/// the previous window while the current window fills — the one-pass,
/// constant-memory design that makes HS-Trees "fast anomaly detection for
/// streaming data".
class HalfSpaceTrees {
 public:
  /// \param num_trees    ensemble size t (paper default 25).
  /// \param depth        tree depth h (paper default 15; memory is 2^h nodes
  ///                     per tree, so keep h moderate).
  /// \param window_size  points per mass window psi (paper default 250).
  /// \param dimensions   input dimensionality d.
  /// \param seed         RNG seed for workspace/split randomization.
  HalfSpaceTrees(uint32_t num_trees, uint32_t depth, uint32_t window_size,
                 uint32_t dimensions, uint64_t seed);

  /// Scores `point` (each coordinate in [0,1]) against the reference mass,
  /// then records it in the current window. Higher score = more normal.
  double ScoreAndUpdate(const std::vector<double>& point);

  /// Score only (no update) — for inspecting without perturbing the model.
  double Score(const std::vector<double>& point) const;

  uint64_t count() const { return count_; }
  uint32_t num_trees() const { return static_cast<uint32_t>(trees_.size()); }

 private:
  struct Node {
    uint32_t split_dimension = 0;
    double split_value = 0.0;
    uint64_t mass_reference = 0;
    uint64_t mass_latest = 0;
  };

  struct Tree {
    // Perfect binary tree in heap layout: node i has children 2i+1, 2i+2.
    std::vector<Node> nodes;
    std::vector<double> workspace_min;
    std::vector<double> workspace_max;
  };

  void BuildTree(Tree* tree, Rng* rng);
  void BuildNode(Tree* tree, size_t index, std::vector<double>* mins,
                 std::vector<double>* maxs, uint32_t depth, Rng* rng);

  uint32_t depth_;
  uint32_t window_size_;
  uint32_t dimensions_;
  std::vector<Tree> trees_;
  uint64_t count_ = 0;
  uint64_t in_window_ = 0;
};

/// Univariate adaptor: shingles the last `dimensions` observations into a
/// point (normalized by running min/max), scores with HalfSpaceTrees, and
/// flags observations whose score falls below `ratio` times the EWMA of
/// recent scores.
class HstDetector : public AnomalyDetector {
 public:
  HstDetector(uint32_t num_trees, uint32_t depth, uint32_t window_size,
              uint32_t dimensions, double ratio, uint64_t seed);

  bool AddAndDetect(double value) override;
  const char* Name() const override { return "half-space-trees"; }

  double last_score() const { return last_score_; }

 private:
  HalfSpaceTrees trees_;
  uint32_t dimensions_;
  double ratio_;
  std::vector<double> shingle_;
  double running_min_ = 0.0;
  double running_max_ = 0.0;
  double score_ewma_ = 0.0;
  double last_score_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ANOMALY_HALF_SPACE_TREES_H_
