#include "core/anomaly/adwin.h"

#include <cmath>

#include "common/check.h"

namespace streamlib {

AdwinDetector::AdwinDetector(double delta, uint32_t max_buckets_per_row)
    : delta_(delta), max_per_row_(max_buckets_per_row) {
  STREAMLIB_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  STREAMLIB_CHECK_MSG(max_buckets_per_row >= 2, "need >= 2 buckets per row");
}

double AdwinDetector::Mean() const {
  return total_count_ == 0 ? 0.0
                           : total_sum_ / static_cast<double>(total_count_);
}

bool AdwinDetector::AddAndDetect(double value) {
  buckets_.push_front(Bucket{value, 0.0, 1});
  total_sum_ += value;
  total_count_ += 1;
  Compress();
  return DetectAndShrink();
}

void AdwinDetector::Compress() {
  // Merge the two oldest buckets of any row exceeding max_per_row_.
  // Rows are contiguous runs of equal count, newest first.
  size_t row_start = 0;
  while (row_start < buckets_.size()) {
    const uint64_t row_count = buckets_[row_start].count;
    size_t row_end = row_start;
    while (row_end < buckets_.size() && buckets_[row_end].count == row_count) {
      row_end++;
    }
    const size_t row_size = row_end - row_start;
    if (row_size <= max_per_row_) {
      row_start = row_end;
      continue;
    }
    // Merge the two oldest buckets of this row (indices row_end-2, row_end-1)
    // into one bucket of the next row; Chan's parallel variance combine.
    Bucket& a = buckets_[row_end - 2];
    Bucket& b = buckets_[row_end - 1];
    const double na = static_cast<double>(a.count);
    const double nb = static_cast<double>(b.count);
    const double delta_mean = b.sum / nb - a.sum / na;
    Bucket merged;
    merged.count = a.count + b.count;
    merged.sum = a.sum + b.sum;
    merged.variance_sum = a.variance_sum + b.variance_sum +
                          delta_mean * delta_mean * na * nb / (na + nb);
    buckets_[row_end - 2] = merged;
    buckets_.erase(buckets_.begin() + static_cast<long>(row_end) - 1);
    // The merged bucket joined the next row; continue scanning from it.
    row_start = row_end - 1;
  }
}

bool AdwinDetector::DetectAndShrink() {
  if (total_count_ < 4) return false;
  bool change = false;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    // Scan cuts from oldest to newest: W0 = suffix (old), W1 = prefix (new).
    double sum0 = 0.0;
    uint64_t n0 = 0;
    const double total_mean = Mean();
    // Window variance for the normal-regime bound.
    double variance_sum = 0.0;
    for (const Bucket& b : buckets_) {
      const double mean_b = b.sum / static_cast<double>(b.count);
      variance_sum += b.variance_sum +
                      static_cast<double>(b.count) * (mean_b - total_mean) *
                          (mean_b - total_mean);
    }
    const double variance =
        variance_sum / static_cast<double>(total_count_);

    for (size_t i = buckets_.size(); i-- > 1;) {
      sum0 += buckets_[i].sum;
      n0 += buckets_[i].count;
      const uint64_t n1 = total_count_ - n0;
      if (n0 < 2 || n1 < 2) continue;
      const double mean0 = sum0 / static_cast<double>(n0);
      const double mean1 =
          (total_sum_ - sum0) / static_cast<double>(n1);
      // ADWIN2 bound: eps = sqrt(2/m * V * ln(2/d')) + 2/(3m) * ln(2/d'),
      // m = harmonic mean of n0, n1; d' = delta / ln(n).
      const double m =
          1.0 / (1.0 / static_cast<double>(n0) + 1.0 / static_cast<double>(n1));
      const double dprime =
          delta_ / std::log(static_cast<double>(total_count_));
      const double ln_term = std::log(2.0 / dprime);
      const double eps = std::sqrt(2.0 / m * variance * ln_term) +
                         2.0 / (3.0 * m) * ln_term;
      if (std::fabs(mean0 - mean1) > eps) {
        // Drop the oldest bucket and re-scan.
        const Bucket& oldest = buckets_.back();
        total_sum_ -= oldest.sum;
        total_count_ -= oldest.count;
        buckets_.pop_back();
        change = true;
        shrunk = true;
        break;
      }
    }
  }
  return change;
}

}  // namespace streamlib
