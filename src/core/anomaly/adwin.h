#ifndef STREAMLIB_CORE_ANOMALY_ADWIN_H_
#define STREAMLIB_CORE_ANOMALY_ADWIN_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "core/anomaly/detectors.h"

namespace streamlib {

/// ADWIN adaptive-windowing change detector (Bifet & Gavaldà) — the
/// incremental-learning "identify change between states of the model"
/// capability the paper's streaming-ML discussion calls for. The window of
/// recent values grows while the data is stationary and *shrinks itself*
/// when two sub-windows have statistically different means (a Hoeffding-
/// style bound with confidence 1 - delta). Memory is O(M log(W/M)) via
/// exponentially growing bucket rows, exactly as in the reference ADWIN2.
class AdwinDetector : public AnomalyDetector {
 public:
  /// \param delta            false-alarm confidence parameter (e.g. 0.002).
  /// \param max_buckets_per_row  M; reference implementation uses 5.
  explicit AdwinDetector(double delta, uint32_t max_buckets_per_row = 5);

  /// Returns true when a distribution change was detected at this element
  /// (the window has been shrunk to the post-change suffix).
  bool AddAndDetect(double value) override;
  const char* Name() const override { return "adwin"; }

  /// Mean of the current (adaptive) window.
  double Mean() const;

  /// Current adaptive window length.
  uint64_t WindowLength() const { return total_count_; }

  /// Buckets currently held (space diagnostic).
  size_t NumBuckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    double sum = 0.0;
    double variance_sum = 0.0;  // Sum of squared deviations (M2).
    uint64_t count = 0;         // 2^row elements.
  };

  void Compress();
  bool DetectAndShrink();

  double delta_;
  uint32_t max_per_row_;
  // Front = newest (row 0), back = oldest (largest rows). Each bucket's
  // `count` is a power of two; counts are nondecreasing toward the back.
  std::deque<Bucket> buckets_;
  double total_sum_ = 0.0;
  uint64_t total_count_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ANOMALY_ADWIN_H_
