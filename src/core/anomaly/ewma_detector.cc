#include "core/anomaly/ewma_detector.h"

#include <cmath>

#include "common/check.h"

namespace streamlib {

EwmaDetector::EwmaDetector(double alpha, double threshold_sigmas,
                           uint64_t warmup)
    : alpha_(alpha), threshold_(threshold_sigmas), warmup_(warmup) {
  STREAMLIB_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  STREAMLIB_CHECK_MSG(threshold_sigmas > 0.0, "threshold must be positive");
}

double EwmaDetector::Sigma() const { return std::sqrt(variance_); }

bool EwmaDetector::AddAndDetect(double value) {
  count_++;
  if (count_ == 1) {
    mean_ = value;
    variance_ = 0.0;
    return false;
  }
  const double deviation = value - mean_;
  const double sigma = Sigma();
  const bool anomalous =
      count_ > warmup_ && sigma > 0.0 &&
      std::fabs(deviation) > threshold_ * sigma;
  // Anomalous points do not update the baseline (standard robustification:
  // a spike must not poison the mean it is judged against).
  if (!anomalous) {
    mean_ += alpha_ * deviation;
    variance_ = (1.0 - alpha_) * (variance_ + alpha_ * deviation * deviation);
  }
  return anomalous;
}

CusumDetector::CusumDetector(double drift, double threshold, uint64_t warmup)
    : drift_(drift), threshold_(threshold), warmup_(warmup) {
  STREAMLIB_CHECK_MSG(drift >= 0.0, "drift must be nonnegative");
  STREAMLIB_CHECK_MSG(threshold > 0.0, "threshold must be positive");
  STREAMLIB_CHECK_MSG(warmup >= 2, "warmup must be >= 2");
}

bool CusumDetector::AddAndDetect(double value) {
  count_++;
  if (count_ <= warmup_) {
    // Welford baseline accumulation.
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == warmup_) {
      sigma_ = std::sqrt(m2_ / static_cast<double>(warmup_ - 1));
      if (sigma_ <= 0.0) sigma_ = 1e-9;
    }
    return false;
  }
  const double z = (value - mean_) / sigma_;
  pos_ = std::max(0.0, pos_ + z - drift_);
  neg_ = std::max(0.0, neg_ - z - drift_);
  if (pos_ > threshold_ || neg_ > threshold_) {
    // Alarm: reset accumulators and re-learn the baseline from scratch so
    // repeated alarms are not raised for the same (now persistent) level.
    pos_ = 0.0;
    neg_ = 0.0;
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    return true;
  }
  return false;
}

}  // namespace streamlib
