#ifndef STREAMLIB_CORE_ANOMALY_DETECTORS_H_
#define STREAMLIB_CORE_ANOMALY_DETECTORS_H_

#include <cstdint>

namespace streamlib {

/// Common interface of the streaming anomaly detectors, so the bench can
/// drive every detector through the same precision/recall harness.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Consumes the next observation; returns true if it is flagged anomalous.
  virtual bool AddAndDetect(double value) = 0;

  /// Human-readable detector name for reports.
  virtual const char* Name() const = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ANOMALY_DETECTORS_H_
