#include "core/anomaly/kl_change_detector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamlib {

KlChangeDetector::KlChangeDetector(size_t window_size, size_t num_bins,
                                   double significance, uint64_t seed)
    : window_size_(window_size),
      num_bins_(num_bins),
      significance_(significance),
      rng_(seed) {
  STREAMLIB_CHECK_MSG(window_size >= 50, "window must be >= 50");
  STREAMLIB_CHECK_MSG(num_bins >= 2, "need at least 2 bins");
  STREAMLIB_CHECK_MSG(significance > 0.0 && significance < 0.5,
                      "significance in (0, 0.5)");
}

std::vector<double> KlChangeDetector::BinEdges() const {
  // Equi-width bins spanning the reference window's range, padded so the
  // current window's excursions land in the edge bins rather than outside.
  double lo = reference_.front();
  double hi = reference_.front();
  for (double v : reference_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double pad = (hi - lo + 1e-12) * 0.1;
  lo -= pad;
  hi += pad;
  std::vector<double> edges(num_bins_ + 1);
  for (size_t b = 0; b <= num_bins_; b++) {
    edges[b] = lo + (hi - lo) * static_cast<double>(b) /
                        static_cast<double>(num_bins_);
  }
  return edges;
}

std::vector<double> KlChangeDetector::HistogramOf(
    const std::deque<double>& window, const std::vector<double>& edges) const {
  // Laplace-smoothed relative frequencies (KL needs q > 0 everywhere).
  std::vector<double> counts(num_bins_, 1.0);
  for (double v : window) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    size_t bin = it == edges.begin()
                     ? 0
                     : static_cast<size_t>(it - edges.begin()) - 1;
    if (bin >= num_bins_) bin = num_bins_ - 1;
    counts[bin] += 1.0;
  }
  double total = 0.0;
  for (double c : counts) total += c;
  for (double& c : counts) c /= total;
  return counts;
}

double KlChangeDetector::KlDivergence(const std::vector<double>& p,
                                      const std::vector<double>& q) {
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); i++) {
    if (p[i] > 0.0) kl += p[i] * std::log(p[i] / q[i]);
  }
  return kl;
}

void KlChangeDetector::Rebaseline() {
  reference_ = current_;
  current_.clear();
  // Bootstrap the alarm threshold: at detection time BOTH windows are
  // independent samples of the underlying distribution, so the null
  // distribution of the statistic is the divergence between two
  // *independent* resamples of the reference (resampling only one side
  // would systematically underestimate the noise and double the false
  // alarms).
  const std::vector<double> edges = BinEdges();
  const int kResamples = 200;
  std::vector<double> divergences;
  divergences.reserve(kResamples);
  std::deque<double> resample_p;
  std::deque<double> resample_q;
  for (int r = 0; r < kResamples; r++) {
    resample_p.clear();
    resample_q.clear();
    for (size_t i = 0; i < window_size_; i++) {
      resample_p.push_back(reference_[rng_.NextBounded(reference_.size())]);
      resample_q.push_back(reference_[rng_.NextBounded(reference_.size())]);
    }
    divergences.push_back(KlDivergence(HistogramOf(resample_p, edges),
                                       HistogramOf(resample_q, edges)));
  }
  std::sort(divergences.begin(), divergences.end());
  const size_t idx = std::min<size_t>(
      divergences.size() - 1,
      static_cast<size_t>((1.0 - significance_) * divergences.size()));
  threshold_ = divergences[idx];
}

bool KlChangeDetector::AddAndDetect(double value) {
  if (reference_.size() < window_size_) {
    reference_.push_back(value);
    if (reference_.size() == window_size_) {
      // Initial threshold calibration.
      current_ = reference_;
      Rebaseline();
      current_.clear();
    }
    return false;
  }
  current_.push_back(value);
  if (current_.size() > window_size_) current_.pop_front();
  if (current_.size() < window_size_) return false;

  // Check periodically (every window_size/8 points), not per point — the
  // divergence moves slowly and the histogram pass is O(window).
  if (++since_check_ < window_size_ / 8) return false;
  since_check_ = 0;

  const std::vector<double> edges = BinEdges();
  last_divergence_ = KlDivergence(HistogramOf(current_, edges),
                                  HistogramOf(reference_, edges));
  if (last_divergence_ > threshold_) {
    Rebaseline();
    return true;
  }
  return false;
}

}  // namespace streamlib
