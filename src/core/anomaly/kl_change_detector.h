#ifndef STREAMLIB_CORE_ANOMALY_KL_CHANGE_DETECTOR_H_
#define STREAMLIB_CORE_ANOMALY_KL_CHANGE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.h"
#include "core/anomaly/detectors.h"

namespace streamlib {

/// Distributional change detection via windowed KL divergence — the
/// "change (detection) you can believe in" approach of Dasu, Krishnan,
/// Venkatasubramanian & Yi (cited as [71]): compare the empirical
/// distribution of a sliding *current* window against a *reference* window
/// with Kullback–Leibler divergence over a fixed binning; flag change when
/// the divergence exceeds a threshold calibrated by bootstrap resampling
/// from the reference (so the alarm level adapts to the reference's own
/// sampling noise rather than using a fixed magic constant).
///
/// Detects *shape* changes (variance, bimodality, skew) that mean-based
/// detectors (CUSUM/ADWIN) are blind to — the property its test exercises.
class KlChangeDetector : public AnomalyDetector {
 public:
  /// \param window_size    points per window (reference and current).
  /// \param num_bins       histogram bins over the reference's range.
  /// \param significance   bootstrap quantile for the alarm threshold,
  ///                       e.g. 0.001 => alarm if divergence exceeds the
  ///                       99.9th percentile of same-distribution noise.
  /// \param seed           bootstrap RNG seed.
  KlChangeDetector(size_t window_size, size_t num_bins, double significance,
                   uint64_t seed);

  /// Consumes one observation; returns true when the current window's
  /// distribution has drifted from the reference (the reference then
  /// re-anchors to the current window).
  bool AddAndDetect(double value) override;
  const char* Name() const override { return "kl-divergence"; }

  /// Last computed divergence (diagnostic).
  double last_divergence() const { return last_divergence_; }
  double threshold() const { return threshold_; }

 private:
  std::vector<double> BinEdges() const;
  std::vector<double> HistogramOf(const std::deque<double>& window,
                                  const std::vector<double>& edges) const;
  static double KlDivergence(const std::vector<double>& p,
                             const std::vector<double>& q);
  void Rebaseline();

  size_t window_size_;
  size_t num_bins_;
  double significance_;
  Rng rng_;
  std::deque<double> reference_;
  std::deque<double> current_;
  double threshold_ = 0.0;
  double last_divergence_ = 0.0;
  uint64_t since_check_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_CORE_ANOMALY_KL_CHANGE_DETECTOR_H_
