#include "core/anomaly/half_space_trees.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamlib {

HalfSpaceTrees::HalfSpaceTrees(uint32_t num_trees, uint32_t depth,
                               uint32_t window_size, uint32_t dimensions,
                               uint64_t seed)
    : depth_(depth), window_size_(window_size), dimensions_(dimensions) {
  STREAMLIB_CHECK_MSG(num_trees >= 1, "need at least one tree");
  STREAMLIB_CHECK_MSG(depth >= 1 && depth <= 20, "depth must be in [1, 20]");
  STREAMLIB_CHECK_MSG(window_size >= 1, "window_size must be >= 1");
  STREAMLIB_CHECK_MSG(dimensions >= 1, "dimensions must be >= 1");
  Rng rng(seed);
  trees_.resize(num_trees);
  for (Tree& tree : trees_) BuildTree(&tree, &rng);
}

void HalfSpaceTrees::BuildTree(Tree* tree, Rng* rng) {
  // Randomly perturbed workspace per the paper: for each dimension draw
  // s ~ U(0,1); the workspace is [s - 2*max(s, 1-s), s + 2*max(s, 1-s)],
  // which always covers [0,1] but randomizes the split structure.
  tree->workspace_min.resize(dimensions_);
  tree->workspace_max.resize(dimensions_);
  for (uint32_t d = 0; d < dimensions_; d++) {
    const double s = rng->NextDouble();
    const double span = 2.0 * std::max(s, 1.0 - s);
    tree->workspace_min[d] = s - span;
    tree->workspace_max[d] = s + span;
  }
  tree->nodes.assign((size_t{1} << (depth_ + 1)) - 1, Node{});
  std::vector<double> mins = tree->workspace_min;
  std::vector<double> maxs = tree->workspace_max;
  BuildNode(tree, 0, &mins, &maxs, 0, rng);
}

void HalfSpaceTrees::BuildNode(Tree* tree, size_t index,
                               std::vector<double>* mins,
                               std::vector<double>* maxs, uint32_t depth,
                               Rng* rng) {
  if (depth == depth_) return;  // Leaf.
  Node& node = tree->nodes[index];
  node.split_dimension =
      static_cast<uint32_t>(rng->NextBounded(dimensions_));
  const uint32_t d = node.split_dimension;
  node.split_value = ((*mins)[d] + (*maxs)[d]) / 2.0;

  const double saved_max = (*maxs)[d];
  (*maxs)[d] = node.split_value;
  BuildNode(tree, 2 * index + 1, mins, maxs, depth + 1, rng);
  (*maxs)[d] = saved_max;

  const double saved_min = (*mins)[d];
  (*mins)[d] = node.split_value;
  BuildNode(tree, 2 * index + 2, mins, maxs, depth + 1, rng);
  (*mins)[d] = saved_min;
}

double HalfSpaceTrees::Score(const std::vector<double>& point) const {
  STREAMLIB_CHECK_MSG(point.size() == dimensions_, "dimension mismatch");
  double score = 0.0;
  for (const Tree& tree : trees_) {
    size_t index = 0;
    for (uint32_t depth = 0; depth < depth_; depth++) {
      const Node& node = tree.nodes[index];
      const uint64_t mass = node.mass_reference;
      // Early termination on sparse nodes (paper's sizeLimit optimization
      // folded into scoring): a region this empty scores by what it has.
      if (mass <= 1) {
        score += static_cast<double>(mass) * std::ldexp(1.0, depth);
        break;
      }
      if (depth + 1 == depth_) {
        score += static_cast<double>(mass) * std::ldexp(1.0, depth);
        break;
      }
      index = point[node.split_dimension] < node.split_value
                  ? 2 * index + 1
                  : 2 * index + 2;
    }
  }
  return score;
}

double HalfSpaceTrees::ScoreAndUpdate(const std::vector<double>& point) {
  const double score = Score(point);
  // Record mass along each tree path in the latest window.
  for (Tree& tree : trees_) {
    size_t index = 0;
    for (uint32_t depth = 0; depth <= depth_; depth++) {
      tree.nodes[index].mass_latest++;
      if (depth == depth_) break;
      const Node& node = tree.nodes[index];
      index = point[node.split_dimension] < node.split_value
                  ? 2 * index + 1
                  : 2 * index + 2;
    }
  }
  count_++;
  in_window_++;
  if (in_window_ >= window_size_) {
    in_window_ = 0;
    for (Tree& tree : trees_) {
      for (Node& node : tree.nodes) {
        node.mass_reference = node.mass_latest;
        node.mass_latest = 0;
      }
    }
  }
  return score;
}

HstDetector::HstDetector(uint32_t num_trees, uint32_t depth,
                         uint32_t window_size, uint32_t dimensions,
                         double ratio, uint64_t seed)
    : trees_(num_trees, depth, window_size, dimensions, seed),
      dimensions_(dimensions),
      ratio_(ratio) {
  STREAMLIB_CHECK_MSG(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1)");
}

bool HstDetector::AddAndDetect(double value) {
  count_++;
  if (count_ == 1) {
    running_min_ = value;
    running_max_ = value;
  } else {
    running_min_ = std::min(running_min_, value);
    running_max_ = std::max(running_max_, value);
  }
  const double span = std::max(running_max_ - running_min_, 1e-12);
  const double normalized =
      std::clamp((value - running_min_) / span, 0.0, 1.0);
  shingle_.push_back(normalized);
  if (shingle_.size() > dimensions_) {
    shingle_.erase(shingle_.begin());
  }
  if (shingle_.size() < dimensions_) return false;

  last_score_ = trees_.ScoreAndUpdate(shingle_);
  // Warm-up: two full windows before trusting the reference mass.
  const uint64_t warmup = 2ULL * 250ULL;
  if (count_ < warmup) {
    score_ewma_ = score_ewma_ == 0.0
                      ? last_score_
                      : 0.98 * score_ewma_ + 0.02 * last_score_;
    return false;
  }
  const bool anomalous = last_score_ < ratio_ * score_ewma_;
  if (!anomalous) {
    score_ewma_ = 0.98 * score_ewma_ + 0.02 * last_score_;
  }
  return anomalous;
}

}  // namespace streamlib
