#ifndef STREAMLIB_COMMON_TIMER_H_
#define STREAMLIB_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace streamlib {

/// Monotonic wall-clock stopwatch for the bench harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_TIMER_H_
