#include "common/serde.h"

// ByteWriter / ByteReader are header-only; see serde.h.
