#ifndef STREAMLIB_COMMON_STATUS_H_
#define STREAMLIB_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace streamlib {

/// Machine-readable error category, modeled on the usual database-library
/// status vocabulary (Arrow / RocksDB style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"…).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. streamlib never throws; fallible
/// operations (deserialization, merges of incompatible sketches, …) return
/// `Status` or `Result<T>`.
///
/// The OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder. On success holds a `T`; on failure holds the
/// error `Status`. Accessing the value of an error result aborts.
/// T need not be default-constructible.
template <typename T>
class Result {
 public:
  /// Implicit from value: lets functions `return value;`.
  Result(T value) : status_(), value_(std::move(value)) {}

  /// Implicit from error status: lets functions `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {
    STREAMLIB_CHECK_MSG(!status_.ok(),
                        "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    STREAMLIB_CHECK_MSG(ok(), "Result::value() on error: %s",
                        status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    STREAMLIB_CHECK_MSG(ok(), "Result::value() on error: %s",
                        status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    STREAMLIB_CHECK_MSG(ok(), "Result::value() on error: %s",
                        status_.ToString().c_str());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define STREAMLIB_RETURN_NOT_OK(expr)            \
  do {                                           \
    ::streamlib::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_STATUS_H_
