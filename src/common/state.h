#ifndef STREAMLIB_COMMON_STATE_H_
#define STREAMLIB_COMMON_STATE_H_

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "common/status.h"

namespace streamlib::state {

/// \file state.h
/// The mergeable sketch-state contract: every summary in the Table 1
/// catalog that supports distributed aggregation exposes the same three
/// verbs —
///
///   Status Merge(const T& other);            // combine two partial states
///   void SerializeTo(ByteWriter& w) const;   // payload bytes, no framing
///   static Result<T> Deserialize(ByteReader& r);
///
/// — plus two static tags identifying the on-wire format:
///
///   static constexpr TypeId  T::kTypeId;
///   static constexpr uint16_t T::kStateVersion;
///
/// Snapshots travel between layers as a *SketchBlob*: a self-describing
/// envelope (magic, type id, version, payload) produced by ToBlob() and
/// validated by FromBlob(). The envelope is what checkpoint stores, shard
/// combiners, and the Lambda serving layer exchange; nothing above src/core
/// needs to know a sketch's payload layout.

/// Identifies the concrete sketch type inside a SketchBlob. Values are part
/// of the persisted format: never renumber, only append.
enum class TypeId : uint16_t {
  kHyperLogLog = 1,
  kSlidingHyperLogLog = 2,
  kKmvSketch = 3,
  kPcsa = 4,
  kLinearCounter = 5,
  kLogLog = 6,
  kCountMinSketch = 7,
  kCountSketch = 8,
  kDyadicCountMin = 9,
  kSpaceSavingString = 10,
  kSpaceSavingU64 = 11,
  kMisraGriesString = 12,
  kMisraGriesU64 = 13,
  kTDigest = 14,
  kGkQuantile = 15,
  kCkmsQuantile = 16,
  kQDigest = 17,
  kAmsSketch = 18,
  kExponentialHistogram = 19,
  kEhSum = 20,
  kMicroCluster = 21,
};

/// First four bytes of every SketchBlob ("SKB1" little-endian).
inline constexpr uint32_t kBlobMagic = 0x31424b53u;

/// The C++20 contract. `MergeableSketch<T>` is the constraint SketchBolt,
/// the shard combiner, and the blob helpers are written against.
template <typename T>
concept MergeableSketch = requires(T t, const T& other, ByteWriter& w,
                                   ByteReader& r) {
  { T::kTypeId } -> std::convertible_to<TypeId>;
  { T::kStateVersion } -> std::convertible_to<uint16_t>;
  { t.Merge(other) } -> std::same_as<Status>;
  { std::as_const(t).SerializeTo(w) } -> std::same_as<void>;
  { T::Deserialize(r) } -> std::same_as<Result<T>>;
};

/// A sketch whose hot path accepts whole batches of pre-hashed digests —
/// the contract the batched bolt path (SketchBolt's ExecuteBatch) and the
/// kernel benches key on. `kHashSeed` is required so feeders can produce
/// digests identical to the sketch's own scalar Add path.
template <typename T>
concept BatchUpdatable = requires(T t, std::span<const uint64_t> hashes) {
  { t.AddHashBatch(hashes) } -> std::same_as<void>;
  { T::kHashSeed } -> std::convertible_to<uint64_t>;
};

/// Key encoding for key-templated sketches (SpaceSaving<K>, MisraGries<K>).
/// Specialized per supported key type; an unsupported key type fails to
/// compile at the SerializeTo/Deserialize instantiation site.
template <typename Key>
struct KeyCodec;

template <>
struct KeyCodec<std::string> {
  static void Write(ByteWriter& w, const std::string& key) {
    w.PutString(key);
  }
  static Status Read(ByteReader& r, std::string* out) {
    return r.GetString(out);
  }
};

template <>
struct KeyCodec<uint64_t> {
  static void Write(ByteWriter& w, uint64_t key) { w.PutVarint(key); }
  static Status Read(ByteReader& r, uint64_t* out) {
    return r.GetVarint(out);
  }
};

/// Envelope header as read back by PeekBlobHeader / FromBlob.
struct BlobHeader {
  TypeId type_id = static_cast<TypeId>(0);  // 0 is reserved / never issued
  uint16_t version = 0;
};

/// Wraps a sketch's payload in the versioned envelope.
template <MergeableSketch T>
std::vector<uint8_t> ToBlob(const T& sketch) {
  ByteWriter w;
  w.Reserve(64);
  w.PutU32(kBlobMagic);
  w.PutU16(static_cast<uint16_t>(T::kTypeId));
  w.PutU16(T::kStateVersion);
  sketch.SerializeTo(w);
  return w.TakeBytes();
}

/// Reads and validates the envelope header, leaving `r` positioned at the
/// payload. Rejects wrong magic with Corruption; type/version checks are
/// the caller's (FromBlob's) job since only it knows what it expects.
inline Status ReadBlobHeader(ByteReader& r, BlobHeader* out) {
  uint32_t magic = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&magic));
  if (magic != kBlobMagic) {
    return Status::Corruption("sketch blob: bad magic");
  }
  uint16_t type_id = 0;
  uint16_t version = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU16(&type_id));
  STREAMLIB_RETURN_NOT_OK(r.GetU16(&version));
  out->type_id = static_cast<TypeId>(type_id);
  out->version = version;
  return Status::OK();
}

/// Header peek for dispatch without deserializing the payload.
inline Result<BlobHeader> PeekBlobHeader(const std::vector<uint8_t>& blob) {
  ByteReader r(blob);
  BlobHeader header;
  STREAMLIB_RETURN_NOT_OK(ReadBlobHeader(r, &header));
  return header;
}

/// Unwraps a SketchBlob into a `T`. Every malformed input maps to a typed
/// error, never UB: wrong magic / truncated header -> Corruption, a blob of
/// a different sketch type -> InvalidArgument, an envelope version this
/// build doesn't understand -> Corruption, payload bytes left over after a
/// successful decode -> Corruption (a torn or concatenated blob).
template <MergeableSketch T>
Result<T> FromBlob(const std::vector<uint8_t>& blob) {
  ByteReader r(blob);
  BlobHeader header;
  STREAMLIB_RETURN_NOT_OK(ReadBlobHeader(r, &header));
  if (header.type_id != T::kTypeId) {
    return Status::InvalidArgument(
        "sketch blob: type id " +
        std::to_string(static_cast<uint16_t>(header.type_id)) +
        " does not match expected " +
        std::to_string(static_cast<uint16_t>(T::kTypeId)));
  }
  if (header.version != T::kStateVersion) {
    return Status::Corruption(
        "sketch blob: unsupported state version " +
        std::to_string(header.version));
  }
  Result<T> decoded = T::Deserialize(r);
  STREAMLIB_RETURN_NOT_OK(decoded.status());
  if (!r.AtEnd()) {
    return Status::Corruption("sketch blob: trailing bytes after payload");
  }
  return decoded;
}

/// Merges a serialized partial state into a live accumulator — the inner
/// loop of both the shard combiner and the Lambda serving layer.
template <MergeableSketch T>
Status MergeBlob(T& into, const std::vector<uint8_t>& blob) {
  Result<T> other = FromBlob<T>(blob);
  STREAMLIB_RETURN_NOT_OK(other.status());
  return into.Merge(other.value());
}

}  // namespace streamlib::state

#endif  // STREAMLIB_COMMON_STATE_H_
