#ifndef STREAMLIB_COMMON_CHECK_H_
#define STREAMLIB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Precondition / invariant checking macros.
///
/// streamlib does not use exceptions. Violated preconditions are programming
/// errors and abort the process with a diagnostic; recoverable failures are
/// reported through `Status` / `Result<T>` (see status.h).

/// Aborts the process with a diagnostic if `condition` is false. Always
/// enabled (including release builds): the cost is a predictable branch, and
/// the streaming structures in this library are cheap enough that correctness
/// checks dominate debugging time, not CPU time.
#define STREAMLIB_CHECK(condition)                                          \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "STREAMLIB_CHECK failed: %s at %s:%d\n",         \
                   #condition, __FILE__, __LINE__);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Like STREAMLIB_CHECK but with a custom printf-style message.
#define STREAMLIB_CHECK_MSG(condition, ...)                                 \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "STREAMLIB_CHECK failed: %s at %s:%d: ",         \
                   #condition, __FILE__, __LINE__);                         \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define STREAMLIB_DCHECK(condition) \
  do {                              \
  } while (0)
#else
#define STREAMLIB_DCHECK(condition) STREAMLIB_CHECK(condition)
#endif

#endif  // STREAMLIB_COMMON_CHECK_H_
