#ifndef STREAMLIB_COMMON_RANDOM_H_
#define STREAMLIB_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace streamlib {

/// Deterministic, fast pseudo-random generator (xoshiro256**). Every
/// randomized structure in streamlib takes an explicit seed and owns one of
/// these, so runs are exactly reproducible. Satisfies the C++
/// UniformRandomBitGenerator requirements so it plugs into <random>
/// distributions if callers want them.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; different seeds give independent-looking streams
  /// (SplitMix64 expansion of the seed, per the xoshiro authors' guidance).
  explicit Rng(uint64_t seed = 0xdeadbeefcafef00dULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 to expand the 64-bit seed into 256 bits of state.
    uint64_t x = seed;
    for (int i = 0; i < 4; i++) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    STREAMLIB_DCHECK(bound != 0);
    unsigned __int128 m =
        static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(Next()) *
            static_cast<unsigned __int128>(bound);
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in (0, 1] — safe for log().
  double NextDoublePositive() {
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (polar form discarded spare).
  double NextGaussian() {
    // Marsaglia polar method.
    double u;
    double v;
    double s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Exponential with rate `lambda` (> 0).
  double NextExponential(double lambda) {
    STREAMLIB_DCHECK(lambda > 0);
    return -std::log(NextDoublePositive()) / lambda;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_RANDOM_H_
