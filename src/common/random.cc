#include "common/random.h"

// Rng is header-only; this translation unit exists so the common library has
// a home for future out-of-line randomness helpers and to keep one .cc per
// header as a rule.
