#ifndef STREAMLIB_COMMON_HASH_H_
#define STREAMLIB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/simd.h"

namespace streamlib {

/// \file hash.h
/// Hash functions used by every sketch in the library.
///
/// All sketches hash their input once to a 64-bit (or 128-bit) value and then
/// derive whatever index/fingerprint bits they need. Two independent families
/// are provided:
///   * MurmurHash3 x64 (the de-facto standard for sketch libraries such as
///     DataSketches and stream-lib, which the paper cites), and
///   * a 64-bit finalizer-based hash (SplitMix64 finalizer) for integer keys
///     on hot paths.
/// Seeds make the families usable as pairwise-independent-ish hash function
/// collections for Count-Min / Count-Sketch style structures.

/// 128-bit hash output.
struct Hash128 {
  uint64_t low;
  uint64_t high;
};

/// MurmurHash3 x64 128-bit over an arbitrary byte buffer.
Hash128 Murmur3_128(const void* data, size_t len, uint64_t seed);

/// MurmurHash3 x64, truncated to the low 64 bits.
inline uint64_t Murmur3_64(const void* data, size_t len, uint64_t seed) {
  return Murmur3_128(data, len, seed).low;
}

/// Strong 64-bit mix of a 64-bit key (SplitMix64 / Murmur3 fmix64 finalizer).
/// Bijective for seed-free use; seeded variant XORs the seed in first.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Seeded 64-bit integer hash.
inline uint64_t HashInt64(uint64_t x, uint64_t seed = 0) {
  return Mix64(x + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// Hashes an arbitrary trivially-copyable value or a string-like value to a
/// seeded 64-bit digest. This is the single entry point sketches use, so that
/// every sketch accepts the same key types.
template <typename T>
inline uint64_t HashValue(const T& value, uint64_t seed = 0) {
  if constexpr (std::is_convertible_v<const T&, std::string_view>) {
    std::string_view sv(value);
    return Murmur3_64(sv.data(), sv.size(), seed);
  } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    return HashInt64(static_cast<uint64_t>(value), seed);
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "HashValue requires string-like or trivially copyable T");
    return Murmur3_64(&value, sizeof(T), seed);
  }
}

/// Kirsch–Mitzenmacher double hashing: derives the i-th hash from two base
/// hashes, g_i(x) = h1 + i * h2. Used by the Bloom-filter family; the paper
/// cites Kirsch & Mitzenmacher ("Less hashing, same performance").
inline uint64_t DoubleHash(uint64_t h1, uint64_t h2, uint32_t i) {
  return h1 + static_cast<uint64_t>(i) * h2;
}

/// The KM step hash h2 for a base digest: an independent re-mix of the
/// digest, forced odd so g_i = h1 + i*h2 walks the full power-of-two index
/// space without short cycles. Count-min / count-sketch derive all row
/// indices from (h1, h2) instead of re-hashing per row.
inline uint64_t KmStepHash(uint64_t hash, uint64_t salt) {
  return Mix64(hash ^ salt) | 1;
}

/// Batched seeded integer hash: out[i] = HashInt64(keys[i], seed) for all i,
/// bit-identical to the scalar loop in either backend. The AVX2 path runs
/// four Mix64 lanes per iteration; the portable path is the same loop
/// unrolled, so estimate-identical semantics hold by construction.
inline void HashBatch64(const uint64_t* keys, size_t n, uint64_t seed,
                        uint64_t* out) {
  const uint64_t offset = 0x9e3779b97f4a7c15ULL * (seed + 1);
  size_t i = 0;
#if STREAMLIB_SIMD_AVX2
  const simd::U64x4 voffset = simd::Set1(offset);
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    simd::U64x4 v = simd::Add64(simd::Load4(keys + i), voffset);
    simd::Store4(out + i, simd::Mix64x4(v));
  }
#else
  for (; i + 4 <= n; i += 4) {
    out[i] = Mix64(keys[i] + offset);
    out[i + 1] = Mix64(keys[i + 1] + offset);
    out[i + 2] = Mix64(keys[i + 2] + offset);
    out[i + 3] = Mix64(keys[i + 3] + offset);
  }
#endif
  for (; i < n; i++) out[i] = Mix64(keys[i] + offset);
}

/// Batched KmStepHash: out[i] = Mix64(hashes[i] ^ salt) | 1, bit-identical
/// across backends (same contract as HashBatch64).
inline void KmStepHashBatch(const uint64_t* hashes, size_t n, uint64_t salt,
                            uint64_t* out) {
  size_t i = 0;
#if STREAMLIB_SIMD_AVX2
  const simd::U64x4 vsalt = simd::Set1(salt);
  const simd::U64x4 vone = simd::Set1(1);
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    simd::U64x4 v = simd::Xor(simd::Load4(hashes + i), vsalt);
    simd::Store4(out + i, simd::Or(simd::Mix64x4(v), vone));
  }
#else
  for (; i + 4 <= n; i += 4) {
    out[i] = Mix64(hashes[i] ^ salt) | 1;
    out[i + 1] = Mix64(hashes[i + 1] ^ salt) | 1;
    out[i + 2] = Mix64(hashes[i + 2] ^ salt) | 1;
    out[i + 3] = Mix64(hashes[i + 3] ^ salt) | 1;
  }
#endif
  for (; i < n; i++) out[i] = Mix64(hashes[i] ^ salt) | 1;
}

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_HASH_H_
