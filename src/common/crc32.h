#ifndef STREAMLIB_COMMON_CRC32_H_
#define STREAMLIB_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace streamlib {

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
/// Used as the per-segment integrity check of the flight-recorder file
/// format (recorder.h) and the SketchBlob envelope: cheap enough for the
/// record hot path, strong enough to catch torn writes and bit rot on
/// read-back.
///
/// The bulk loop is slice-by-8 — eight table lookups fold eight input
/// bytes per iteration instead of one, which measurably matters when the
/// flight recorder checksums every 256 KiB records segment on a machine
/// the topology is also running on. The checksum value is identical to
/// the classic one-byte-at-a-time form (the extra tables are just the
/// CRC of a byte shifted further into the window), so persisted formats
/// are unaffected.

namespace internal {

inline constexpr std::array<std::array<uint32_t, 256>, 8> MakeCrc32Tables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  // tables[k][b] = CRC of byte b followed by k zero bytes: one step of
  // the bytewise recurrence applied to the previous slice's entry.
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xffu] ^ (prev >> 8);
    }
  }
  return tables;
}

inline constexpr std::array<std::array<uint32_t, 256>, 8> kCrc32Tables =
    MakeCrc32Tables();

}  // namespace internal

/// Incremental form: pass the previous return value as `seed` to extend a
/// checksum over discontiguous buffers. The default seed starts a fresh
/// checksum.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto& t = internal::kCrc32Tables;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  while (len >= 8) {
    // Byte loads (not a type-punned u64) keep this endian-agnostic and
    // strict-aliasing clean; compilers fuse them into one wide load.
    const uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        static_cast<uint32_t>(p[5]) << 8 |
                        static_cast<uint32_t>(p[6]) << 16 |
                        static_cast<uint32_t>(p[7]) << 24;
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
        t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
        t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (; len > 0; --len) {
    c = t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_CRC32_H_
