#ifndef STREAMLIB_COMMON_SERDE_H_
#define STREAMLIB_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace streamlib {

/// \file serde.h
/// Minimal binary serialization used for sketch snapshots (Lambda batch
/// views), checkpointing in the platform layer, and tuple payloads.
/// Little-endian fixed-width integers plus LEB128 varints.

/// Appends binary fields to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Pre-sizes the buffer (also keeps GCC 12's stringop-overflow analysis
  /// from flagging the first small fixed-width append as an overflow).
  void Reserve(size_t n) { buf_.reserve(n); }

  /// Drops the contents but keeps the capacity — lets a thread-local
  /// scratch writer serve a hot path without per-call allocation.
  void Clear() { buf_.clear(); }

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU16(uint16_t v) { PutFixed(&v, sizeof(v)); }

  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }

  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }

  /// Unsigned LEB128 varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Zigzag-mapped signed varint (small magnitudes stay short).
  void PutVarintSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutBytes(s.data(), s.size());
  }

  /// Raw bytes (caller provides length framing).
  void PutBytes(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* v, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(v);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> buf_;
};

/// Reads binary fields back; every getter reports truncation via Status.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}

  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  Status GetU8(uint8_t* out) { return GetFixed(out, sizeof(*out)); }
  Status GetU16(uint16_t* out) { return GetFixed(out, sizeof(*out)); }
  Status GetU32(uint32_t* out) { return GetFixed(out, sizeof(*out)); }
  Status GetU64(uint64_t* out) { return GetFixed(out, sizeof(*out)); }
  Status GetI64(int64_t* out) {
    uint64_t u = 0;  // GCC -O1 can't see GetU64's success path assigns it.
    STREAMLIB_RETURN_NOT_OK(GetU64(&u));
    *out = static_cast<int64_t>(u);
    return Status::OK();
  }
  Status GetDouble(double* out) { return GetFixed(out, sizeof(*out)); }

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= len_) return Status::Corruption("varint: truncated buffer");
      if (shift >= 64) return Status::Corruption("varint: overlong encoding");
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    *out = v;
    return Status::OK();
  }

  Status GetVarintSigned(int64_t* out) {
    uint64_t z = 0;
    STREAMLIB_RETURN_NOT_OK(GetVarint(&z));
    *out = static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t n = 0;  // see GetI64: GCC can't see GetVarint's success path

    STREAMLIB_RETURN_NOT_OK(GetVarint(&n));
    if (pos_ + n > len_) return Status::Corruption("string: truncated buffer");
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  Status GetBytes(void* out, size_t n) { return GetFixed(out, n); }

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  Status GetFixed(void* out, size_t n) {
    if (pos_ + n > len_) return Status::Corruption("fixed: truncated buffer");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_SERDE_H_
