#ifndef STREAMLIB_COMMON_SIMD_H_
#define STREAMLIB_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

/// \file simd.h
/// Portable SIMD wrapper for the batched sketch kernels.
///
/// Backend selection is purely compile-time:
///   * `STREAMLIB_SIMD_ENABLED` — defined by CMake when the STREAMLIB_SIMD
///     option is ON and the build host both compiles and *runs* AVX2
///     (check_cxx_source_runs), so a binary never executes illegal
///     instructions on its own build machine.
///   * `STREAMLIB_FORCE_SCALAR` — overrides everything; the
///     simd_fallback_test / streamlib_kernels_scalar targets define it so
///     the scalar path keeps compiling and passing tests even on AVX2
///     hosts (the fallback cannot rot).
///
/// Every operation here is exact integer arithmetic, so the AVX2 and
/// scalar paths are bit-identical by construction — the property the
/// `simd`-labeled test suite asserts kernel by kernel.

#if defined(STREAMLIB_SIMD_ENABLED) && defined(__AVX2__) && \
    !defined(STREAMLIB_FORCE_SCALAR)
#define STREAMLIB_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace streamlib::simd {

/// Lane count of the batched kernels. Fixed at 4 (one AVX2 register of
/// u64) in both backends so batch-size edge cases behave identically.
inline constexpr size_t kLanes = 4;

/// Name of the compiled backend, for bench JSON and logs.
inline constexpr const char* BackendName() {
#if STREAMLIB_SIMD_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

inline constexpr bool Enabled() {
#if STREAMLIB_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

/// Read-prefetch into all cache levels. A hint only — correctness never
/// depends on it (and it compiles to nothing where unsupported).
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

#if STREAMLIB_SIMD_AVX2

/// Four u64 lanes. Thin typedef — helpers below are the whole contract the
/// kernels use, so the scalar build simply never mentions the type.
using U64x4 = __m256i;

inline U64x4 Load4(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void Store4(uint64_t* p, U64x4 v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline U64x4 Set1(uint64_t x) {
  return _mm256_set1_epi64x(static_cast<long long>(x));
}
inline U64x4 Add64(U64x4 a, U64x4 b) { return _mm256_add_epi64(a, b); }
inline U64x4 Xor(U64x4 a, U64x4 b) { return _mm256_xor_si256(a, b); }
inline U64x4 And(U64x4 a, U64x4 b) { return _mm256_and_si256(a, b); }
inline U64x4 Or(U64x4 a, U64x4 b) { return _mm256_or_si256(a, b); }
template <int kShift>
inline U64x4 ShiftRight(U64x4 v) {
  return _mm256_srli_epi64(v, kShift);
}
template <int kShift>
inline U64x4 ShiftLeft(U64x4 v) {
  return _mm256_slli_epi64(v, kShift);
}

/// Lane-wise 64x64 -> low-64 multiply. AVX2 has no 64-bit mullo
/// (_mm256_mullo_epi64 is AVX-512DQ), so build it from 32-bit partial
/// products: ab mod 2^64 = al*bl + ((al*bh + ah*bl) << 32).
inline U64x4 Mul64(U64x4 a, U64x4 b) {
  const U64x4 ah = _mm256_srli_epi64(a, 32);
  const U64x4 bh = _mm256_srli_epi64(b, 32);
  const U64x4 al_bl = _mm256_mul_epu32(a, b);
  const U64x4 al_bh = _mm256_mul_epu32(a, bh);
  const U64x4 ah_bl = _mm256_mul_epu32(ah, b);
  const U64x4 cross = _mm256_add_epi64(al_bh, ah_bl);
  return _mm256_add_epi64(al_bl, _mm256_slli_epi64(cross, 32));
}

/// Four-lane Murmur3 fmix64 / Mix64 finalizer — bit-identical to
/// streamlib::Mix64 per lane.
inline U64x4 Mix64x4(U64x4 x) {
  x = Xor(x, ShiftRight<33>(x));
  x = Mul64(x, Set1(0xff51afd7ed558ccdULL));
  x = Xor(x, ShiftRight<33>(x));
  x = Mul64(x, Set1(0xc4ceb9fe1a85ec53ULL));
  x = Xor(x, ShiftRight<33>(x));
  return x;
}

/// Lane-wise shifts by a runtime count (vpsrlq/vpsllq with an xmm count).
inline U64x4 ShiftRightVar(U64x4 v, int count) {
  return _mm256_srl_epi64(v, _mm_cvtsi32_si128(count));
}
inline U64x4 ShiftLeftVar(U64x4 v, int count) {
  return _mm256_sll_epi64(v, _mm_cvtsi32_si128(count));
}

inline U64x4 Sub64(U64x4 a, U64x4 b) { return _mm256_sub_epi64(a, b); }

/// Lane-wise all-ones mask where a == b, else all-zeros.
inline U64x4 CmpEq64(U64x4 a, U64x4 b) { return _mm256_cmpeq_epi64(a, b); }

/// Lane-wise all-ones mask where a > b (signed compare — fine for small
/// non-negative lane values like HLL ranks), else all-zeros.
inline U64x4 CmpGt64(U64x4 a, U64x4 b) { return _mm256_cmpgt_epi64(a, b); }

/// One bit per u64 lane (bit i = lane i's sign bit — set for all-ones
/// compare masks), packed into the low 4 bits.
inline int MoveMask64(U64x4 v) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(v));
}

/// Lane-wise select: mask lanes (all-ones) take `when_set`, others `v`.
inline U64x4 Select(U64x4 v, U64x4 when_set, U64x4 mask) {
  return _mm256_blendv_epi8(v, when_set, mask);
}

/// Lane-wise floor(log2(x)) for 1 <= x < 2^52, exact via the u64->double
/// conversion trick: OR-ing the bits of 2^52 makes the lane read, as a
/// double, exactly 2^52 + x; subtracting 2^52 then yields x converted
/// exactly (x fits the 52-bit mantissa), so the exponent field is
/// 1023 + floor(log2 x). Lanes with x == 0 return garbage — callers must
/// mask them (see the HLL rank kernel).
inline U64x4 FloorLog2Below52(U64x4 x) {
  const __m256d magic = _mm256_set1_pd(0x1.0p52);
  const U64x4 magic_bits = _mm256_castpd_si256(magic);
  const __m256d d =
      _mm256_sub_pd(_mm256_castsi256_pd(Or(x, magic_bits)), magic);
  return Sub64(ShiftRight<52>(_mm256_castpd_si256(d)), Set1(1023));
}

#endif  // STREAMLIB_SIMD_AVX2

}  // namespace streamlib::simd

#endif  // STREAMLIB_COMMON_SIMD_H_
