#ifndef STREAMLIB_COMMON_RCU_PTR_H_
#define STREAMLIB_COMMON_RCU_PTR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

/// \file rcu_ptr.h
/// RCU-style publication pointer: writers swap in whole immutable objects,
/// readers take one lock-free acquire-load and hold the object alive through
/// shared ownership. This is the publication primitive behind the
/// snapshot-isolated Lambda read path (DESIGN.md §14).
///
/// Under ThreadSanitizer the implementation switches to a mutex-guarded
/// shared_ptr. libstdc++'s `std::atomic<std::shared_ptr>` guards its raw
/// pointer with an embedded spinlock whose reader-side unlock is relaxed
/// (`_Sp_atomic::load` ends with `unlock(memory_order_relaxed)`), so there is
/// no release edge from a reader's critical section to the next writer's
/// acquire and TSan reports the plain pointer accesses as a race. Mutual
/// exclusion makes it benign on real hardware; the fallback exists purely so
/// the sanitizer can see the synchronization, and production builds keep the
/// lock-free path.

#if defined(__SANITIZE_THREAD__)
#define STREAMLIB_RCU_PTR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STREAMLIB_RCU_PTR_TSAN 1
#endif
#endif

namespace streamlib {

/// Publication point for immutable, shared-ownership snapshots of T.
/// `load()` is wait-free for readers (one atomic acquire-load + refcount);
/// `store()` release-publishes a replacement. Writers are expected to
/// serialize externally (publication order is the caller's contract).
template <typename T>
class RcuPtr {
 public:
  RcuPtr() = default;
  RcuPtr(const RcuPtr&) = delete;
  RcuPtr& operator=(const RcuPtr&) = delete;

#ifdef STREAMLIB_RCU_PTR_TSAN
  std::shared_ptr<const T> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }

  void store(std::shared_ptr<const T> next) {
    std::lock_guard<std::mutex> lock(mu_);
    ptr_ = std::move(next);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const T> ptr_;
#else
  std::shared_ptr<const T> load() const {
    return ptr_.load(std::memory_order_acquire);
  }

  void store(std::shared_ptr<const T> next) {
    ptr_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const T>> ptr_;
#endif
};

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_RCU_PTR_H_
