#ifndef STREAMLIB_COMMON_STATE_DEBUG_H_
#define STREAMLIB_COMMON_STATE_DEBUG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/state.h"
#include "common/status.h"

namespace streamlib::state {

/// \file state_debug.h
/// Human-facing views of the SketchBlob envelope, for the time-travel
/// debugger's `dump-state` command and test diagnostics. Pure inspection:
/// nothing here deserializes a payload, so these helpers work on any blob
/// regardless of which sketch types the caller links in.

/// Stable lowercase name of a TypeId ("hyper_log_log", ...); "unknown"
/// for ids this build does not know (a blob from a newer format).
inline const char* TypeIdName(TypeId id) {
  switch (id) {
    case TypeId::kHyperLogLog: return "hyper_log_log";
    case TypeId::kSlidingHyperLogLog: return "sliding_hyper_log_log";
    case TypeId::kKmvSketch: return "kmv_sketch";
    case TypeId::kPcsa: return "pcsa";
    case TypeId::kLinearCounter: return "linear_counter";
    case TypeId::kLogLog: return "log_log";
    case TypeId::kCountMinSketch: return "count_min_sketch";
    case TypeId::kCountSketch: return "count_sketch";
    case TypeId::kDyadicCountMin: return "dyadic_count_min";
    case TypeId::kSpaceSavingString: return "space_saving_string";
    case TypeId::kSpaceSavingU64: return "space_saving_u64";
    case TypeId::kMisraGriesString: return "misra_gries_string";
    case TypeId::kMisraGriesU64: return "misra_gries_u64";
    case TypeId::kTDigest: return "t_digest";
    case TypeId::kGkQuantile: return "gk_quantile";
    case TypeId::kCkmsQuantile: return "ckms_quantile";
    case TypeId::kQDigest: return "q_digest";
    case TypeId::kAmsSketch: return "ams_sketch";
    case TypeId::kExponentialHistogram: return "exponential_histogram";
    case TypeId::kEhSum: return "eh_sum";
    case TypeId::kMicroCluster: return "micro_cluster";
  }
  return "unknown";
}

/// One-line description of a blob: type, version, payload size, and a
/// CRC32 fingerprint of the whole envelope (two blobs describe identical
/// state iff their bytes — and hence fingerprints — match). Malformed
/// envelopes return the typed error from PeekBlobHeader.
inline Result<std::string> DescribeBlob(const std::vector<uint8_t>& blob) {
  Result<BlobHeader> header = PeekBlobHeader(blob);
  STREAMLIB_RETURN_NOT_OK(header.status());
  const size_t payload = blob.size() - 8;  // magic u32 + type u16 + ver u16
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s v%u payload=%zuB crc32=%08x",
                TypeIdName(header.value().type_id), header.value().version,
                payload, Crc32(blob.data(), blob.size()));
  return std::string(buf);
}

}  // namespace streamlib::state

#endif  // STREAMLIB_COMMON_STATE_DEBUG_H_
