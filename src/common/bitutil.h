#ifndef STREAMLIB_COMMON_BITUTIL_H_
#define STREAMLIB_COMMON_BITUTIL_H_

#include <bit>
#include <cstdint>

namespace streamlib {

/// Bit-twiddling helpers shared by the sketch implementations. All are thin
/// wrappers over C++20 <bit> with the edge cases the sketches rely on pinned
/// down explicitly.

/// Number of leading zero bits in `x`; 64 when x == 0.
inline int CountLeadingZeros64(uint64_t x) { return std::countl_zero(x); }

/// Number of trailing zero bits in `x`; 64 when x == 0.
inline int CountTrailingZeros64(uint64_t x) { return std::countr_zero(x); }

/// Number of set bits.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

/// True iff `x` is a power of two (and nonzero).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x must be >= 1 and <= 2^63).
inline uint64_t NextPowerOfTwo(uint64_t x) { return std::bit_ceil(x); }

/// floor(log2(x)); x must be nonzero.
inline int Log2Floor(uint64_t x) { return 63 - CountLeadingZeros64(x); }

/// ceil(log2(x)); x must be nonzero.
inline int Log2Ceil(uint64_t x) {
  return IsPowerOfTwo(x) ? Log2Floor(x) : Log2Floor(x) + 1;
}

/// Position (1-based) of the leftmost 1-bit in the low `bits` bits of `x`,
/// i.e. the HyperLogLog rho function: rho(0...0) == bits + 1.
inline int RankOfLeadingOne(uint64_t x, int bits) {
  if (x == 0) return bits + 1;
  int lz = CountLeadingZeros64(x) - (64 - bits);
  return lz + 1;
}

}  // namespace streamlib

#endif  // STREAMLIB_COMMON_BITUTIL_H_
