#include "lambda/batch_layer.h"

#include <algorithm>

namespace streamlib::lambda {

double BatchView::TotalOf(const std::string& key) const {
  auto it = key_totals.find(key);
  return it == key_totals.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> BatchView::TopK(size_t k) const {
  std::vector<std::pair<std::string, double>> all(key_totals.begin(),
                                                  key_totals.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

BatchView BatchLayer::Recompute(const MasterLog& log) const {
  return RecomputePrefix(log, log.size());
}

BatchView BatchLayer::RecomputePrefix(const MasterLog& log,
                                      uint64_t through_offset) const {
  BatchView view;
  view.through_offset = std::min<uint64_t>(through_offset, log.size());
  std::vector<LogRecord> records;
  log.Read(0, view.through_offset, &records);
  for (const LogRecord& r : records) {
    view.key_totals[r.key] += r.value;
    view.distinct_keys.Add(r.key);
  }
  return view;
}

}  // namespace streamlib::lambda
