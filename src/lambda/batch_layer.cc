#include "lambda/batch_layer.h"

#include <algorithm>
#include <cmath>

#include "common/serde.h"
#include "common/state.h"
#include "core/cardinality/hyperloglog.h"

namespace streamlib::lambda {

namespace {
// Store keys used by SnapshotTo/RestoreFrom.
std::string DistinctKey(const std::string& prefix) {
  return prefix + "/distinct_keys";
}
std::string MetaKey(const std::string& prefix) { return prefix + "/meta"; }
}  // namespace

double BatchView::TotalOf(const std::string& key) const {
  auto it = key_totals.find(key);
  return it == key_totals.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> BatchView::TopK(size_t k) const {
  std::vector<std::pair<std::string, double>> all(key_totals.begin(),
                                                  key_totals.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void BatchView::SnapshotTo(platform::KvCheckpointStore* store,
                           const std::string& prefix) const {
  store->Put(DistinctKey(prefix), distinct_keys_blob);
  ByteWriter w;
  w.PutVarint(through_offset);
  w.PutVarint(key_totals.size());
  for (const auto& [key, total] : key_totals) {
    w.PutString(key);
    w.PutDouble(total);
  }
  store->Put(MetaKey(prefix), w.TakeBytes());
}

Result<BatchView> BatchView::RestoreFrom(
    const platform::KvCheckpointStore& store, const std::string& prefix) {
  BatchView view;
  Result<std::vector<uint8_t>> blob = store.Fetch(DistinctKey(prefix));
  STREAMLIB_RETURN_NOT_OK(blob.status());
  // Validate through the envelope before accepting the bytes verbatim.
  Result<HyperLogLog> distinct =
      state::FromBlob<HyperLogLog>(blob.value());
  STREAMLIB_RETURN_NOT_OK(distinct.status());
  view.distinct_keys_blob = std::move(blob).value();

  Result<std::vector<uint8_t>> meta = store.Fetch(MetaKey(prefix));
  STREAMLIB_RETURN_NOT_OK(meta.status());
  ByteReader r(meta.value());
  uint64_t num_keys = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&view.through_offset));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_keys));
  if (num_keys > r.remaining()) {
    return Status::Corruption("batch view: key count exceeds payload");
  }
  for (uint64_t i = 0; i < num_keys; i++) {
    std::string key;
    double total = 0.0;
    STREAMLIB_RETURN_NOT_OK(r.GetString(&key));
    STREAMLIB_RETURN_NOT_OK(r.GetDouble(&total));
    if (!std::isfinite(total)) {
      return Status::Corruption("batch view: malformed total");
    }
    view.key_totals[key] = total;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("batch view: trailing bytes");
  }
  return view;
}

BatchView BatchLayer::Recompute(const MasterLog& log) const {
  return RecomputePrefix(log, log.size());
}

BatchView BatchLayer::RecomputePrefix(const MasterLog& log,
                                      uint64_t through_offset) const {
  BatchView view;
  view.through_offset = std::min<uint64_t>(through_offset, log.size());
  std::vector<LogRecord> records;
  log.Read(0, view.through_offset, &records);
  HyperLogLog distinct(12);
  for (const LogRecord& r : records) {
    view.key_totals[r.key] += r.value;
    distinct.Add(r.key);
  }
  view.distinct_keys_blob = state::ToBlob(distinct);
  return view;
}

}  // namespace streamlib::lambda
