#ifndef STREAMLIB_LAMBDA_SERVING_LAYER_H_
#define STREAMLIB_LAMBDA_SERVING_LAYER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lambda/batch_layer.h"
#include "lambda/speed_layer.h"

namespace streamlib::lambda {

/// The serving layer (Figure 1, steps 3 & 5): holds the latest batch view
/// and answers queries by *merging* it with the speed layer's real-time
/// view — "incoming queries are answered by merging results from batch
/// views and real-time views". Thread-safe; the batch view is swapped in
/// atomically when a recompute lands.
class ServingLayer {
 public:
  /// \param speed  the real-time view to merge against (not owned).
  explicit ServingLayer(const SpeedLayer* speed);

  /// Installs a freshly recomputed batch view.
  void InstallBatchView(BatchView view);

  /// Merged total for a key: exact batch prefix + approximate suffix.
  double TotalOf(const std::string& key) const;

  /// Merged top-k: candidate keys from both views, ranked by merged total.
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;

  /// Merged distinct-key estimate (HLL union of batch and speed sketches).
  double DistinctKeys() const;

  /// Offset through which results are exact (batch coverage).
  uint64_t BatchThroughOffset() const;

  /// The currently installed batch view (never null).
  std::shared_ptr<const BatchView> CurrentBatchView() const;

 private:
  const SpeedLayer* speed_;
  mutable std::mutex mu_;
  std::shared_ptr<const BatchView> batch_;  // Swapped atomically under mu_.
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_SERVING_LAYER_H_
