#ifndef STREAMLIB_LAMBDA_SERVING_LAYER_H_
#define STREAMLIB_LAMBDA_SERVING_LAYER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rcu_ptr.h"
#include "lambda/batch_layer.h"
#include "lambda/speed_layer.h"

namespace streamlib::lambda {

/// One consistent (BatchView, SpeedView) pair — the unit of snapshot
/// isolation for the whole read path. Immutable once composed: every query
/// a reader makes against the same ServingSnapshot sees one frozen state of
/// the world, no matter how much ingest or how many batch recomputes race
/// with it. Invariant: batch->through_offset == speed->from_offset (the
/// speed view covers exactly the suffix the batch view does not).
struct ServingSnapshot {
  uint64_t version = 0;  ///< monotone composition counter
  std::shared_ptr<const BatchView> batch;
  std::shared_ptr<const SpeedView> speed;
  /// HLL union of both views, folded at composition time so the per-query
  /// cost is a load instead of a sketch merge.
  double distinct_estimate = 0;

  /// Exclusive end of the log range this snapshot covers.
  uint64_t through_offset() const { return speed->through_offset(); }
  uint64_t batch_through_offset() const { return batch->through_offset; }

  /// Merged total for a key: exact batch prefix + approximate suffix.
  double TotalOf(const std::string& key) const;

  /// Merged top-k: candidate keys from both views, ranked by merged total.
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;

  /// Merged distinct-key estimate (precomputed at composition).
  double DistinctKeys() const { return distinct_estimate; }
};

/// The serving layer (Figure 1, steps 3 & 5): holds the latest batch view
/// and answers queries by *merging* it with the speed layer's real-time
/// view — "incoming queries are answered by merging results from batch
/// views and real-time views".
///
/// Read path (DESIGN.md §14): every query runs against an immutable
/// ServingSnapshot obtained by one atomic shared_ptr load — no mutex is
/// ever acquired while serving TotalOf/TopK/DistinctKeys, so readers never
/// contend with ingest or with each other. Writers (batch installs and
/// speed-view refreshes) serialize on a small composition mutex and swap
/// in whole snapshots RCU-style.
class ServingLayer {
 public:
  /// \param speed  the real-time view source to compose against (not owned).
  explicit ServingLayer(const SpeedLayer* speed);

  /// Installs a freshly recomputed batch view, paired atomically with the
  /// speed layer's *current* published view. The caller (LambdaPipeline)
  /// resets the speed layer to the batch boundary first, so the composed
  /// pair satisfies batch.through_offset == speed.from_offset; readers
  /// never observe the new batch view with the old suffix (double counts)
  /// or the old batch view with the reset suffix (lost records).
  void InstallBatchView(BatchView view);

  /// Re-composes the current snapshot against the speed layer's latest
  /// published view (called after every speed-view publication). Stale
  /// refreshes — a racing refresh that loses the composition lock to a
  /// newer one — are dropped, so the published pair never goes backward.
  void RefreshSpeedView();

  /// The current consistent snapshot (never null; lock-free load).
  std::shared_ptr<const ServingSnapshot> Snapshot() const {
    return snap_.load();
  }

  /// Merged total for a key: exact batch prefix + approximate suffix.
  double TotalOf(const std::string& key) const { return Snapshot()->TotalOf(key); }

  /// Merged top-k: candidate keys from both views, ranked by merged total.
  std::vector<std::pair<std::string, double>> TopK(size_t k) const {
    return Snapshot()->TopK(k);
  }

  /// Merged distinct-key estimate (HLL union of batch and speed sketches).
  double DistinctKeys() const { return Snapshot()->DistinctKeys(); }

  /// Offset through which results are exact (batch coverage).
  uint64_t BatchThroughOffset() const {
    return Snapshot()->batch->through_offset;
  }

  /// The currently installed batch view (never null).
  std::shared_ptr<const BatchView> CurrentBatchView() const {
    return Snapshot()->batch;
  }

 private:
  /// Composes + publishes a snapshot. Caller holds compose_mu_.
  void PublishLocked(std::shared_ptr<const BatchView> batch,
                     std::shared_ptr<const SpeedView> speed);

  const SpeedLayer* speed_;
  std::mutex compose_mu_;  ///< writers only; the read path never takes it
  uint64_t next_version_ = 0;
  RcuPtr<ServingSnapshot> snap_;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_SERVING_LAYER_H_
