#include "lambda/serving_layer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/state.h"
#include "core/cardinality/hyperloglog.h"

namespace streamlib::lambda {

ServingLayer::ServingLayer(const SpeedLayer* speed)
    : speed_(speed), batch_(std::make_shared<BatchView>()) {
  STREAMLIB_CHECK(speed != nullptr);
}

void ServingLayer::InstallBatchView(BatchView view) {
  auto shared = std::make_shared<const BatchView>(std::move(view));
  std::lock_guard<std::mutex> lock(mu_);
  batch_ = std::move(shared);
}

double ServingLayer::TotalOf(const std::string& key) const {
  std::shared_ptr<const BatchView> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch = batch_;
  }
  return batch->TotalOf(key) + speed_->TotalOf(key);
}

std::vector<std::pair<std::string, double>> ServingLayer::TopK(
    size_t k) const {
  std::shared_ptr<const BatchView> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch = batch_;
  }
  // Candidates: top keys of either view (taking 2k from each side bounds
  // the merge error the same way distributed top-k merges do).
  std::set<std::string> candidates;
  for (const auto& [key, total] : batch->TopK(2 * k)) candidates.insert(key);
  for (const auto& [key, total] : speed_->TopK(2 * k)) candidates.insert(key);

  std::vector<std::pair<std::string, double>> merged;
  merged.reserve(candidates.size());
  for (const std::string& key : candidates) {
    merged.emplace_back(key, batch->TotalOf(key) + speed_->TotalOf(key));
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

double ServingLayer::DistinctKeys() const {
  std::shared_ptr<const BatchView> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch = batch_;
  }
  // Both layers hand over SketchBlobs; the merge goes through the state
  // contract rather than any sketch-specific API, so swapping the distinct
  // sketch (e.g. HLL -> KMV) is a TypeId change, not a serving-layer change.
  Result<HyperLogLog> merged =
      state::FromBlob<HyperLogLog>(speed_->DistinctKeysBlob());
  STREAMLIB_CHECK_MSG(merged.ok(), "speed distinct blob: %s",
                      merged.status().ToString().c_str());
  HyperLogLog sketch = std::move(merged).value();
  if (!batch->distinct_keys_blob.empty()) {
    const Status status =
        state::MergeBlob(sketch, batch->distinct_keys_blob);
    STREAMLIB_CHECK_MSG(status.ok(), "batch distinct blob: %s",
                        status.ToString().c_str());
  }
  return sketch.Estimate();
}

std::shared_ptr<const BatchView> ServingLayer::CurrentBatchView() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_;
}

uint64_t ServingLayer::BatchThroughOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_->through_offset;
}

}  // namespace streamlib::lambda
