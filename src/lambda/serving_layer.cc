#include "lambda/serving_layer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/state.h"
#include "core/cardinality/hyperloglog.h"

namespace streamlib::lambda {

double ServingSnapshot::TotalOf(const std::string& key) const {
  return batch->TotalOf(key) + speed->TotalOf(key);
}

std::vector<std::pair<std::string, double>> ServingSnapshot::TopK(
    size_t k) const {
  // Candidates: top keys of either view (taking 2k from each side bounds
  // the merge error the same way distributed top-k merges do).
  std::set<std::string> candidates;
  for (const auto& [key, total] : batch->TopK(2 * k)) candidates.insert(key);
  for (const auto& [key, total] : speed->TopK(2 * k)) candidates.insert(key);

  std::vector<std::pair<std::string, double>> merged;
  merged.reserve(candidates.size());
  for (const std::string& key : candidates) {
    merged.emplace_back(key, TotalOf(key));
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

ServingLayer::ServingLayer(const SpeedLayer* speed) : speed_(speed) {
  STREAMLIB_CHECK(speed != nullptr);
  std::lock_guard<std::mutex> lock(compose_mu_);
  PublishLocked(std::make_shared<const BatchView>(), speed_->View());
}

void ServingLayer::PublishLocked(std::shared_ptr<const BatchView> batch,
                                 std::shared_ptr<const SpeedView> speed) {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->version = ++next_version_;
  snap->batch = std::move(batch);
  snap->speed = std::move(speed);
  // Fold the distinct-key union once per snapshot. Both layers hand over
  // their sketch through the state contract, so swapping the distinct
  // sketch type (e.g. HLL -> KMV) is a TypeId change, not a serving change.
  HyperLogLog merged = snap->speed->distinct;
  if (!snap->batch->distinct_keys_blob.empty()) {
    const Status status =
        state::MergeBlob(merged, snap->batch->distinct_keys_blob);
    STREAMLIB_CHECK_MSG(status.ok(), "batch distinct blob: %s",
                        status.ToString().c_str());
  }
  snap->distinct_estimate = merged.Estimate();
  snap_.store(std::shared_ptr<const ServingSnapshot>(std::move(snap)));
}

void ServingLayer::InstallBatchView(BatchView view) {
  auto shared = std::make_shared<const BatchView>(std::move(view));
  std::lock_guard<std::mutex> lock(compose_mu_);
  PublishLocked(std::move(shared), speed_->View());
}

void ServingLayer::RefreshSpeedView() {
  std::lock_guard<std::mutex> lock(compose_mu_);
  std::shared_ptr<const SpeedView> speed = speed_->View();
  const std::shared_ptr<const ServingSnapshot> current = snap_.load();
  // Two refreshes can race to the composition lock; whichever loses must
  // not regress the pair to an older speed view.
  if (speed->version <= current->speed->version) return;
  PublishLocked(current->batch, std::move(speed));
}

}  // namespace streamlib::lambda
