#ifndef STREAMLIB_LAMBDA_SPEED_LAYER_H_
#define STREAMLIB_LAMBDA_SPEED_LAYER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rcu_ptr.h"
#include "common/status.h"
#include "core/cardinality/hyperloglog.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/space_saving.h"
#include "lambda/master_log.h"
#include "platform/checkpoint.h"

namespace streamlib::lambda {

/// An immutable, versioned snapshot of the speed layer's sketches. Published
/// RCU-style: once a SpeedView is handed out it never changes, so any number
/// of reader threads can query it concurrently without synchronization while
/// ingest keeps mutating the live sketches behind it. Readers obtain the
/// latest view through SpeedLayer::View() (a lock-free atomic load).
struct SpeedView {
  uint64_t version = 0;      ///< monotone publication counter
  uint64_t from_offset = 0;  ///< first log offset this view covers
  uint64_t ingested = 0;     ///< records folded into the sketches

  CountMinSketch totals;
  SpaceSaving<std::string> topk;
  HyperLogLog distinct;

  SpeedView(uint32_t cms_width, uint32_t cms_depth, size_t topk_capacity,
            int hll_precision)
      : totals(cms_width, cms_depth, /*conservative=*/true),
        topk(topk_capacity),
        distinct(hll_precision) {}

  /// Exclusive end of the log range the view covers.
  uint64_t through_offset() const { return from_offset + ingested; }

  /// Estimated total for `key` over [from_offset, through_offset()).
  double TotalOf(const std::string& key) const {
    return static_cast<double>(totals.Estimate(key));
  }

  /// Top-k keys by estimated total over the covered suffix.
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;
};

/// The speed layer (Figure 1, step 4): compensates for batch staleness by
/// maintaining *approximate, incremental* real-time views over the log
/// suffix the latest batch view does not cover. This is where the paper's
/// two threads meet: the streaming sketches of Section 2 are exactly what
/// makes the real-time view cheap (Count-Min for per-key totals,
/// SpaceSaving for top-k, HyperLogLog for cardinality — the Summingbird
/// pattern). Thread-safe.
///
/// Concurrency model (DESIGN.md §14): writers (Ingest/Reset/RestoreFrom)
/// serialize on an internal mutex; every `snapshot_interval` ingests — and
/// on every Reset/Restore — the layer publishes an immutable SpeedView via
/// an atomic shared_ptr swap. Queries against View() never contend with
/// ingest. The live query methods (TotalOf/TopK/DistinctKeysBlob) remain
/// for single-threaded exactness and as the mutex-merge baseline the
/// serving bench compares against; the scalable read path is View().
class SpeedLayer {
 public:
  /// \param cms_width/cms_depth  Count-Min geometry for per-key totals.
  /// \param topk_capacity        SpaceSaving entries for real-time top-k.
  /// \param hll_precision        HyperLogLog precision for distinct keys.
  /// \param snapshot_interval    publish a fresh SpeedView every this many
  ///                             ingests (the staleness bound of the
  ///                             lock-free read path; >= 1).
  SpeedLayer(uint32_t cms_width, uint32_t cms_depth, size_t topk_capacity,
             int hll_precision, uint64_t snapshot_interval = 256);

  /// Ingests one record (must have offset >= from_offset()). Returns true
  /// when this ingest crossed the snapshot interval and published a fresh
  /// SpeedView (the caller — LambdaPipeline — then refreshes the serving
  /// layer's snapshot pair).
  bool Ingest(const LogRecord& record);

  /// Latest published immutable view. Never null; lock-free.
  std::shared_ptr<const SpeedView> View() const { return view_.load(); }

  /// Forces publication of a fresh view of the current live state and
  /// returns it (also swapped into View()).
  std::shared_ptr<const SpeedView> PublishSnapshot();

  /// Real-time estimate of the total for `key` over ingested records,
  /// against the *live* sketches (locks against ingest).
  double TotalOf(const std::string& key) const;

  /// Real-time top-k keys by estimated total (live, locked).
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;

  /// Real-time distinct-key sketch as a SketchBlob (live, locked).
  std::vector<uint8_t> DistinctKeysBlob() const;

  /// Persists all three sketches into `store` as SketchBlobs under
  /// `prefix`/totals, `prefix`/topk, `prefix`/distinct_keys, plus a meta
  /// entry (from_offset, ingested).
  void SnapshotTo(platform::KvCheckpointStore* store,
                  const std::string& prefix) const;

  /// Replaces this layer's state with a snapshot written by SnapshotTo and
  /// publishes a fresh SpeedView of it. Corrupt or missing entries surface
  /// as the underlying Status and leave the layer (and the published view)
  /// untouched.
  Status RestoreFrom(const platform::KvCheckpointStore& store,
                     const std::string& prefix);

  /// Resets the layer to cover the suffix starting at `from_offset` — the
  /// hand-off performed whenever a fresh batch view lands. All sketch state
  /// is discarded (its information is now in the batch view) and an empty
  /// SpeedView is published.
  void Reset(uint64_t from_offset);

  uint64_t from_offset() const;
  uint64_t ingested() const;
  uint64_t snapshot_interval() const { return snapshot_interval_; }

 private:
  /// Builds + publishes a view of the live state. Caller holds mu_.
  std::shared_ptr<const SpeedView> PublishLocked();

  uint32_t cms_width_;
  uint32_t cms_depth_;
  size_t topk_capacity_;
  int hll_precision_;
  uint64_t snapshot_interval_;

  mutable std::mutex mu_;
  uint64_t from_offset_ = 0;
  uint64_t ingested_ = 0;
  uint64_t since_publish_ = 0;  ///< ingests since the last published view
  uint64_t next_version_ = 0;
  CountMinSketch totals_;
  SpaceSaving<std::string> topk_;
  HyperLogLog distinct_;

  /// RCU publication point: readers atomic-load, writers swap whole views.
  RcuPtr<SpeedView> view_;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_SPEED_LAYER_H_
