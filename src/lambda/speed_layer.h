#ifndef STREAMLIB_LAMBDA_SPEED_LAYER_H_
#define STREAMLIB_LAMBDA_SPEED_LAYER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cardinality/hyperloglog.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/space_saving.h"
#include "lambda/master_log.h"
#include "platform/checkpoint.h"

namespace streamlib::lambda {

/// The speed layer (Figure 1, step 4): compensates for batch staleness by
/// maintaining *approximate, incremental* real-time views over the log
/// suffix the latest batch view does not cover. This is where the paper's
/// two threads meet: the streaming sketches of Section 2 are exactly what
/// makes the real-time view cheap (Count-Min for per-key totals,
/// SpaceSaving for top-k, HyperLogLog for cardinality — the Summingbird
/// pattern). Thread-safe.
class SpeedLayer {
 public:
  /// \param cms_width/cms_depth  Count-Min geometry for per-key totals.
  /// \param topk_capacity        SpaceSaving entries for real-time top-k.
  /// \param hll_precision        HyperLogLog precision for distinct keys.
  SpeedLayer(uint32_t cms_width, uint32_t cms_depth, size_t topk_capacity,
             int hll_precision);

  /// Ingests one record (must have offset >= from_offset()).
  void Ingest(const LogRecord& record);

  /// Real-time estimate of the total for `key` over ingested records.
  double TotalOf(const std::string& key) const;

  /// Real-time top-k keys by estimated total.
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;

  /// Real-time distinct-key sketch as a SketchBlob (the serving layer
  /// merges it against the batch view's blob through the state contract).
  std::vector<uint8_t> DistinctKeysBlob() const;

  /// Persists all three sketches into `store` as SketchBlobs under
  /// `prefix`/totals, `prefix`/topk, `prefix`/distinct_keys, plus a meta
  /// entry (from_offset, ingested).
  void SnapshotTo(platform::KvCheckpointStore* store,
                  const std::string& prefix) const;

  /// Replaces this layer's state with a snapshot written by SnapshotTo.
  /// Corrupt or missing entries surface as the underlying Status and leave
  /// the layer untouched.
  Status RestoreFrom(const platform::KvCheckpointStore& store,
                     const std::string& prefix);

  /// Resets the layer to cover the suffix starting at `from_offset` — the
  /// hand-off performed whenever a fresh batch view lands. All sketch state
  /// is discarded (its information is now in the batch view).
  void Reset(uint64_t from_offset);

  uint64_t from_offset() const;
  uint64_t ingested() const;

 private:
  uint32_t cms_width_;
  uint32_t cms_depth_;
  size_t topk_capacity_;
  int hll_precision_;

  mutable std::mutex mu_;
  uint64_t from_offset_ = 0;
  uint64_t ingested_ = 0;
  CountMinSketch totals_;
  SpaceSaving<std::string> topk_;
  HyperLogLog distinct_;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_SPEED_LAYER_H_
