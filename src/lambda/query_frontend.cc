#include "lambda/query_frontend.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"

namespace streamlib::lambda {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTotal: return "total";
    case QueryKind::kTopK: return "topk";
    case QueryKind::kDistinctKeys: return "distinct_keys";
  }
  return "?";
}

Status QueryFrontendConfig::Validate() const {
  if (workers == 0) {
    return Status::InvalidArgument("query front-end needs >= 1 worker");
  }
  if (max_pending == 0) {
    return Status::InvalidArgument(
        "max_pending must be >= 1 (the admission queue is bounded, not "
        "absent)");
  }
  if (!std::isfinite(default_quota.queries_per_second) ||
      default_quota.queries_per_second < 0) {
    return Status::InvalidArgument(
        "default_quota.queries_per_second must be finite and >= 0 (0 = "
        "unlimited)");
  }
  if (!std::isfinite(default_quota.burst) || default_quota.burst < 1) {
    return Status::InvalidArgument("default_quota.burst must be >= 1");
  }
  return Status::OK();
}

void QueryFrontend::TenantState::SetQuota(const TenantQuota& quota) {
  if (quota.queries_per_second <= 0) {
    emission_nanos = 0;  // Unlimited.
    tolerance_nanos = 0;
    return;
  }
  emission_nanos =
      static_cast<uint64_t>(1e9 / quota.queries_per_second);
  if (emission_nanos == 0) emission_nanos = 1;
  tolerance_nanos = static_cast<uint64_t>(
      std::max(0.0, quota.burst - 1.0) * static_cast<double>(emission_nanos));
}

bool QueryFrontend::TenantState::Admit(uint64_t now_nanos) {
  if (emission_nanos == 0) return true;  // Unlimited quota.
  // GCRA (the virtual-scheduling form of the token bucket): the bucket is
  // one u64 — the theoretical arrival time of the next conforming query.
  uint64_t old_tat = tat.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t base = std::max(old_tat, now_nanos);
    if (base - now_nanos > tolerance_nanos) return false;  // Bucket empty.
    const uint64_t new_tat = base + emission_nanos;
    if (tat.compare_exchange_weak(old_tat, new_tat,
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
      return true;
    }
  }
}

QueryFrontend::QueryFrontend(const ServingLayer* serving,
                             const QueryFrontendConfig& config)
    : serving_(serving),
      config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : platform::Clock::Steady()),
      queue_(config.max_pending) {
  STREAMLIB_CHECK(serving != nullptr);
  const Status status = config.Validate();
  STREAMLIB_CHECK_MSG(status.ok(), "invalid QueryFrontendConfig: %s",
                      status.ToString().c_str());
  shard_capacity_ = config.cache_capacity / kCacheShards;
  if (config.cache_capacity > 0 && shard_capacity_ == 0) shard_capacity_ = 1;
}

QueryFrontend::~QueryFrontend() { Stop(); }

Status QueryFrontend::RegisterTenant(const std::string& name,
                                     const TenantQuota& quota) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  if (!std::isfinite(quota.queries_per_second) ||
      quota.queries_per_second < 0) {
    return Status::InvalidArgument(
        "tenant queries_per_second must be finite and >= 0 (0 = unlimited)");
  }
  if (!std::isfinite(quota.burst) || quota.burst < 1) {
    return Status::InvalidArgument("tenant burst must be >= 1");
  }
  std::unique_lock<std::shared_mutex> lock(tenants_mu_);
  auto& slot = tenants_[name];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>();
    slot->name = name;
  }
  slot->SetQuota(quota);
  return Status::OK();
}

QueryFrontend::TenantState* QueryFrontend::FindOrCreateTenant(
    const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(tenants_mu_);
    auto it = tenants_.find(name);
    if (it != tenants_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(tenants_mu_);
  auto& slot = tenants_[name];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>();
    slot->name = name;
    slot->SetQuota(config_.default_quota);
  }
  return slot.get();
}

void QueryFrontend::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || stopped_) return;
  started_ = true;
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void QueryFrontend::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_) return;
  stopped_ = true;
  // Close admits nothing new; workers drain every already-admitted job
  // before exiting, so no accepted future is ever broken.
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Never started: fulfill whatever was queued inline so accepted futures
  // resolve instead of throwing broken_promise.
  if (!started_) {
    while (auto job = queue_.Pop()) {
      const auto snap = serving_->Snapshot();
      QueryResponse response = Execute(job->request, *snap);
      job->tenant->served.fetch_add(1, std::memory_order_relaxed);
      job->promise.set_value(std::move(response));
    }
  }
}

std::string QueryFrontend::CacheKey(const QueryRequest& request) {
  std::string key;
  key.reserve(request.tenant.size() + request.key.size() + 8);
  key += request.tenant;
  key += '\0';
  key += static_cast<char>(request.kind);
  key += '\0';
  key += request.key;
  key += '\0';
  key += std::to_string(request.k);
  return key;
}

QueryFrontend::CacheShard& QueryFrontend::ShardFor(
    const std::string& cache_key) {
  return cache_[std::hash<std::string>{}(cache_key) % kCacheShards];
}

bool QueryFrontend::CacheLookup(const std::string& cache_key,
                                uint64_t version, QueryResponse* out) {
  if (shard_capacity_ == 0) return false;
  CacheShard& shard = ShardFor(cache_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.version != version) {
    // A view swap happened since these entries were computed: every cached
    // answer is for a dead snapshot. Drop them all (lazy invalidation).
    shard.entries.clear();
    shard.version = version;
    return false;
  }
  auto it = shard.entries.find(cache_key);
  if (it == shard.entries.end()) return false;
  *out = it->second;
  out->cache_hit = true;
  return true;
}

void QueryFrontend::CacheInsert(const std::string& cache_key,
                                uint64_t version,
                                const QueryResponse& response) {
  if (shard_capacity_ == 0) return;
  CacheShard& shard = ShardFor(cache_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.version != version) {
    shard.entries.clear();
    shard.version = version;
  }
  if (shard.entries.size() >= shard_capacity_) {
    // Entries live for one snapshot epoch anyway; mass eviction is the
    // cheap, contention-free way to bound the shard.
    shard.entries.clear();
  }
  shard.entries.emplace(cache_key, response);
}

QueryResponse QueryFrontend::Execute(const QueryRequest& request,
                                     const ServingSnapshot& snap) const {
  QueryResponse response;
  response.kind = request.kind;
  response.snapshot_version = snap.version;
  response.batch_through_offset = snap.batch_through_offset();
  response.through_offset = snap.through_offset();
  switch (request.kind) {
    case QueryKind::kTotal:
      response.value = snap.TotalOf(request.key);
      break;
    case QueryKind::kTopK:
      response.topk = snap.TopK(request.k);
      break;
    case QueryKind::kDistinctKeys:
      response.value = snap.DistinctKeys();
      break;
  }
  return response;
}

Status QueryFrontend::Submit(QueryRequest request,
                             std::future<QueryResponse>* result) {
  if (request.tenant.empty()) {
    return Status::InvalidArgument("query has no tenant");
  }
  if (request.kind == QueryKind::kTopK && request.k == 0) {
    return Status::InvalidArgument("top-k query needs k >= 1");
  }
  TenantState* tenant = FindOrCreateTenant(request.tenant);

  // Admission control, stage 1: the tenant's token bucket.
  if (!tenant->Admit(clock_->NowNanos())) {
    tenant->rejected_quota.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("tenant '" + request.tenant +
                                     "' is over its query quota");
  }

  // Cache probe (inline): a hit never touches the worker pool.
  const std::string cache_key = CacheKey(request);
  const std::shared_ptr<const ServingSnapshot> snap = serving_->Snapshot();
  QueryResponse cached;
  if (CacheLookup(cache_key, snap->version, &cached)) {
    tenant->cache_hits.fetch_add(1, std::memory_order_relaxed);
    tenant->served.fetch_add(1, std::memory_order_relaxed);
    std::promise<QueryResponse> promise;
    *result = promise.get_future();
    promise.set_value(std::move(cached));
    return Status::OK();
  }
  tenant->cache_misses.fetch_add(1, std::memory_order_relaxed);

  // Admission control, stage 2: the bounded worker queue. A full queue is
  // a typed rejection, never an unbounded backlog.
  Job job;
  job.request = std::move(request);
  job.tenant = tenant;
  *result = job.promise.get_future();
  if (!queue_.TryPush(std::move(job))) {
    tenant->rejected_queue.fetch_add(1, std::memory_order_relaxed);
    *result = {};
    return Status::ResourceExhausted("query admission queue is full");
  }
  return Status::OK();
}

Result<QueryResponse> QueryFrontend::Query(const QueryRequest& request) {
  std::future<QueryResponse> future;
  STREAMLIB_RETURN_NOT_OK(Submit(request, &future));
  return future.get();
}

void QueryFrontend::WorkerLoop() {
  while (auto job = queue_.Pop()) {
    const std::shared_ptr<const ServingSnapshot> snap = serving_->Snapshot();
    const std::string cache_key = CacheKey(job->request);
    QueryResponse response;
    if (!CacheLookup(cache_key, snap->version, &response)) {
      response = Execute(job->request, *snap);
      CacheInsert(cache_key, snap->version, response);
    }
    job->tenant->served.fetch_add(1, std::memory_order_relaxed);
    job->promise.set_value(std::move(response));
  }
}

FrontendStats QueryFrontend::Stats() const {
  FrontendStats stats;
  stats.snapshot_version = serving_->Snapshot()->version;
  std::shared_lock<std::shared_mutex> lock(tenants_mu_);
  stats.tenants.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantCounters row;
    row.tenant = name;
    row.served = tenant->served.load(std::memory_order_relaxed);
    row.rejected_quota =
        tenant->rejected_quota.load(std::memory_order_relaxed);
    row.rejected_queue =
        tenant->rejected_queue.load(std::memory_order_relaxed);
    row.cache_hits = tenant->cache_hits.load(std::memory_order_relaxed);
    row.cache_misses = tenant->cache_misses.load(std::memory_order_relaxed);
    stats.served += row.served;
    stats.rejected_quota += row.rejected_quota;
    stats.rejected_queue += row.rejected_queue;
    stats.cache_hits += row.cache_hits;
    stats.cache_misses += row.cache_misses;
    stats.tenants.push_back(std::move(row));
  }
  std::sort(stats.tenants.begin(), stats.tenants.end(),
            [](const TenantCounters& a, const TenantCounters& b) {
              return a.tenant < b.tenant;
            });
  return stats;
}

void QueryFrontend::FillTelemetry(platform::TelemetryReport* report) const {
  const FrontendStats stats = Stats();
  auto& serving = report->serving;
  serving.enabled = true;
  serving.snapshot_version = stats.snapshot_version;
  serving.served = stats.served;
  serving.rejected_quota = stats.rejected_quota;
  serving.rejected_queue = stats.rejected_queue;
  serving.cache_hits = stats.cache_hits;
  serving.cache_misses = stats.cache_misses;
  serving.tenants.clear();
  serving.tenants.reserve(stats.tenants.size());
  for (const TenantCounters& row : stats.tenants) {
    platform::TelemetryReport::ServingTenantRow out;
    out.tenant = row.tenant;
    out.served = row.served;
    out.rejected_quota = row.rejected_quota;
    out.rejected_queue = row.rejected_queue;
    out.cache_hits = row.cache_hits;
    out.cache_misses = row.cache_misses;
    serving.tenants.push_back(std::move(out));
  }
}

}  // namespace streamlib::lambda
