#ifndef STREAMLIB_LAMBDA_QUERY_FRONTEND_H_
#define STREAMLIB_LAMBDA_QUERY_FRONTEND_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "lambda/serving_layer.h"
#include "platform/clock.h"
#include "platform/queue.h"
#include "platform/telemetry.h"

namespace streamlib::lambda {

/// The three typed queries the Lambda serving layer answers (Figure 1,
/// step 5), as first-class requests a multi-tenant front-end can admit,
/// rate-limit, cache, and account per tenant.
enum class QueryKind : uint8_t { kTotal = 0, kTopK = 1, kDistinctKeys = 2 };

/// "total" / "topk" / "distinct_keys".
const char* QueryKindName(QueryKind kind);

/// Per-tenant admission budget: a token bucket refilled at
/// `queries_per_second` with depth `burst`. queries_per_second == 0 means
/// unlimited (the bucket is bypassed).
struct TenantQuota {
  double queries_per_second = 0;
  double burst = 16;
};

/// Front-end tuning knobs.
struct QueryFrontendConfig {
  size_t workers = 4;        ///< worker threads serving cache misses
  size_t max_pending = 1024; ///< bounded admission queue (never unbounded)
  /// Result-cache entries across all shards; 0 disables caching. Entries
  /// are valid for exactly one serving-snapshot version — every view swap
  /// invalidates them.
  size_t cache_capacity = 4096;
  /// Quota applied to tenants that were never explicitly registered.
  TenantQuota default_quota;
  /// Injectable time source for the token buckets (tests use ManualClock);
  /// nullptr = the process steady clock.
  platform::Clock* clock = nullptr;

  /// Typed validation of every knob (mirrors EngineConfig::Validate).
  Status Validate() const;
};

/// One typed query. `key` is consulted for kTotal, `k` for kTopK.
struct QueryRequest {
  QueryKind kind = QueryKind::kTotal;
  std::string tenant;
  std::string key;
  size_t k = 10;
};

/// A served answer, stamped with the snapshot it was computed from so
/// callers (and the consistency stress test) can check isolation bounds:
/// batch_through_offset <= through_offset always, and two answers with the
/// same snapshot_version came from byte-identical state.
struct QueryResponse {
  QueryKind kind = QueryKind::kTotal;
  double value = 0;  ///< total (kTotal) or distinct estimate (kDistinctKeys)
  std::vector<std::pair<std::string, double>> topk;  ///< kTopK only
  uint64_t snapshot_version = 0;
  uint64_t batch_through_offset = 0;  ///< exact-prefix coverage
  uint64_t through_offset = 0;        ///< total coverage (batch + speed)
  bool cache_hit = false;
};

/// Per-tenant accounting, exported through the telemetry JSON schema.
struct TenantCounters {
  std::string tenant;
  uint64_t served = 0;
  uint64_t rejected_quota = 0;
  uint64_t rejected_queue = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// Aggregate + per-tenant front-end counters.
struct FrontendStats {
  uint64_t served = 0;
  uint64_t rejected_quota = 0;
  uint64_t rejected_queue = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t snapshot_version = 0;  ///< serving snapshot at stats time
  std::vector<TenantCounters> tenants;  ///< sorted by tenant name
};

/// Multi-tenant query front-end over the Lambda serving layer (DESIGN.md
/// §14): the subsystem that turns the snapshot-isolated read path into a
/// servable surface for "millions of users".
///
///   * Admission control: per-tenant token buckets (GCRA, lock-free CAS) and
///     a bounded submission queue. Over-quota and queue-full submissions are
///     rejected *synchronously* with a typed kResourceExhausted Status —
///     the front-end never queues unboundedly.
///   * A bounded worker pool executes admitted queries against one immutable
///     ServingSnapshot each; the serving calls themselves acquire no mutex.
///   * A sharded result cache keyed on (tenant, query) per snapshot version;
///     every view swap (speed publication or batch install) invalidates it.
///     Cache hits are answered inline at submission, misses go to the pool.
///   * Per-tenant served / rejected / cache-hit counters, exported through
///     the telemetry JSON schema ("serving" section).
///
/// Thread-safe: any number of threads may Submit/Query concurrently with
/// each other and with ingest into the underlying pipeline.
class QueryFrontend {
 public:
  /// \param serving  the snapshot source queries run against (not owned).
  QueryFrontend(const ServingLayer* serving, const QueryFrontendConfig& config);
  ~QueryFrontend();

  QueryFrontend(const QueryFrontend&) = delete;
  QueryFrontend& operator=(const QueryFrontend&) = delete;

  /// Registers (or re-quotas) a tenant. Unregistered tenants are admitted
  /// under config.default_quota on first use.
  Status RegisterTenant(const std::string& name, const TenantQuota& quota);

  /// Spawns the worker pool. Submissions before Start() are queued (still
  /// bounded) and drain once workers run.
  void Start();

  /// Closes the admission queue, drains every already-admitted query, and
  /// joins the workers. Idempotent; the destructor calls it.
  void Stop();

  /// Admission + dispatch. On success `*result` becomes a future that the
  /// worker pool (or the inline cache-hit path) fulfills. Typed failures:
  ///   * kInvalidArgument     — malformed request (empty tenant, k == 0);
  ///   * kResourceExhausted   — tenant over quota, or admission queue full.
  Status Submit(QueryRequest request, std::future<QueryResponse>* result);

  /// Blocking convenience: Submit + wait.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Counter snapshot (tenants sorted by name, deterministic).
  FrontendStats Stats() const;

  /// Exports the per-tenant serving section into a TelemetryReport (the
  /// "serving" object of the telemetry JSON schema).
  void FillTelemetry(platform::TelemetryReport* report) const;

 private:
  /// GCRA token bucket + counters for one tenant. The bucket state is one
  /// atomic u64 (the theoretical-arrival-time), advanced by CAS — admission
  /// never takes a lock.
  struct TenantState {
    std::string name;
    uint64_t emission_nanos = 0;   ///< 1e9 / qps; 0 = unlimited
    uint64_t tolerance_nanos = 0;  ///< (burst - 1) * emission
    std::atomic<uint64_t> tat{0};  ///< GCRA theoretical arrival time
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> rejected_quota{0};
    std::atomic<uint64_t> rejected_queue{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};

    void SetQuota(const TenantQuota& quota);
    bool Admit(uint64_t now_nanos);
  };

  struct Job {
    QueryRequest request;
    TenantState* tenant = nullptr;
    std::promise<QueryResponse> promise;
  };

  /// One cache shard: entries are valid for exactly one snapshot version;
  /// a probe under any other version clears the shard (the "invalidated by
  /// view swaps" rule, enforced lazily so swaps stay O(1)).
  struct CacheShard {
    std::mutex mu;
    uint64_t version = 0;
    std::unordered_map<std::string, QueryResponse> entries;
  };
  static constexpr size_t kCacheShards = 16;

  TenantState* FindOrCreateTenant(const std::string& name);
  /// Executes `request` against one snapshot (no locks on the serving path).
  QueryResponse Execute(const QueryRequest& request,
                        const ServingSnapshot& snap) const;
  static std::string CacheKey(const QueryRequest& request);
  CacheShard& ShardFor(const std::string& cache_key);
  bool CacheLookup(const std::string& cache_key, uint64_t version,
                   QueryResponse* out);
  void CacheInsert(const std::string& cache_key, uint64_t version,
                   const QueryResponse& response);
  void WorkerLoop();

  const ServingLayer* serving_;
  QueryFrontendConfig config_;
  platform::Clock* clock_;

  mutable std::shared_mutex tenants_mu_;
  std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_;

  std::array<CacheShard, kCacheShards> cache_;
  size_t shard_capacity_ = 0;  ///< cache_capacity / kCacheShards

  platform::BlockingQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::mutex lifecycle_mu_;  ///< guards Start/Stop transitions
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_QUERY_FRONTEND_H_
