#ifndef STREAMLIB_LAMBDA_MASTER_LOG_H_
#define STREAMLIB_LAMBDA_MASTER_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamlib::lambda {

/// One immutable event in the master dataset.
struct LogRecord {
  uint64_t offset = 0;     ///< position in the log (assigned on append)
  int64_t timestamp = 0;   ///< event time supplied by the producer
  std::string key;         ///< event key (hashtag, user id, sensor id, ...)
  double value = 0.0;      ///< event payload (count increment, reading, ...)
};

/// The Lambda Architecture's *master dataset* (Figure 1, step 2): an
/// immutable, append-only record log. Batch layer recomputations read a
/// consistent prefix snapshot; the speed layer tails new appends. Thread-safe.
///
/// Substitution note (DESIGN.md §2): stands in for the HDFS/Kafka-backed
/// master dataset of production Lambda deployments; append-only + offset
/// semantics are what the batch/speed layers rely on, and both are preserved.
class MasterLog {
 public:
  MasterLog() = default;

  MasterLog(const MasterLog&) = delete;
  MasterLog& operator=(const MasterLog&) = delete;

  /// Appends a record; returns its offset.
  uint64_t Append(int64_t timestamp, std::string key, double value);

  /// Number of records currently in the log.
  uint64_t size() const;

  /// Copies records with offsets in [from, to) into `out`. `to` may exceed
  /// size(); reads are bounded to the current end.
  void Read(uint64_t from, uint64_t to, std::vector<LogRecord>* out) const;

  /// Reads a single record.
  Result<LogRecord> Get(uint64_t offset) const;

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_MASTER_LOG_H_
