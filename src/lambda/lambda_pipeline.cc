#include "lambda/lambda_pipeline.h"

#include "common/check.h"

namespace streamlib::lambda {

LambdaPipeline::LambdaPipeline(const LambdaConfig& config)
    : config_(config),
      speed_(config.cms_width, config.cms_depth, config.topk_capacity,
             config.hll_precision),
      serving_(&speed_) {
  STREAMLIB_CHECK_MSG(config.hll_precision == 12,
                      "batch view HLL precision is fixed at 12; the speed "
                      "layer must match for merges");
  STREAMLIB_CHECK_MSG(config.batch_interval_records >= 1,
                      "batch interval must be >= 1");
}

void LambdaPipeline::Ingest(int64_t timestamp, const std::string& key,
                            double value) {
  const uint64_t offset = log_.Append(timestamp, key, value);
  LogRecord record;
  record.offset = offset;
  record.timestamp = timestamp;
  record.key = key;
  record.value = value;
  speed_.Ingest(record);

  if (log_.size() - serving_.BatchThroughOffset() >=
      config_.batch_interval_records) {
    RunBatchNow();
  }
}

void LambdaPipeline::RunBatchNow() {
  BatchView view = batch_.Recompute(log_);
  const uint64_t covered = view.through_offset;
  serving_.InstallBatchView(std::move(view));
  // Hand-off: the speed layer now only owns the (currently empty) suffix.
  speed_.Reset(covered);
  batch_recomputes_++;
}

Status LambdaPipeline::SaveViews(const std::string& path) const {
  platform::KvCheckpointStore store;
  serving_.CurrentBatchView()->SnapshotTo(&store, "batch");
  speed_.SnapshotTo(&store, "speed");
  return store.SaveToFile(path);
}

Status LambdaPipeline::LoadViews(const std::string& path) {
  platform::KvCheckpointStore store;
  STREAMLIB_RETURN_NOT_OK(store.LoadFromFile(path));
  Result<BatchView> view = BatchView::RestoreFrom(store, "batch");
  STREAMLIB_RETURN_NOT_OK(view.status());
  // RestoreFrom validates every blob before mutating, so ordering it first
  // means a corrupt file cannot leave the pipeline half-restored.
  STREAMLIB_RETURN_NOT_OK(speed_.RestoreFrom(store, "speed"));
  serving_.InstallBatchView(std::move(view).value());
  return Status::OK();
}

}  // namespace streamlib::lambda
