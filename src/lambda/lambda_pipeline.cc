#include "lambda/lambda_pipeline.h"

#include "common/check.h"

namespace streamlib::lambda {

Status LambdaConfig::Validate() const {
  if (batch_interval_records < 1) {
    return Status::InvalidArgument("batch_interval_records must be >= 1");
  }
  if (cms_width == 0 || cms_depth == 0) {
    return Status::InvalidArgument(
        "speed-layer Count-Min geometry must be non-zero (width and depth)");
  }
  if (topk_capacity == 0) {
    return Status::InvalidArgument("topk_capacity must be >= 1");
  }
  // The batch layer's distinct-key HLL is fixed at precision 12; merged
  // queries need both layers on the same register geometry.
  if (hll_precision != 12) {
    return Status::OutOfRange(
        "hll_precision must be 12 (batch view HLL precision is fixed at 12; "
        "the speed layer must match for merges)");
  }
  if (speed_snapshot_interval_records < 1) {
    return Status::InvalidArgument(
        "speed_snapshot_interval_records must be >= 1 (1 publishes on every "
        "ingest)");
  }
  return Status::OK();
}

LambdaPipeline::LambdaPipeline(const LambdaConfig& config)
    : config_(config),
      speed_(config.cms_width, config.cms_depth, config.topk_capacity,
             config.hll_precision, config.speed_snapshot_interval_records),
      serving_(&speed_) {
  const Status status = config.Validate();
  STREAMLIB_CHECK_MSG(status.ok(), "invalid LambdaConfig: %s",
                      status.ToString().c_str());
}

void LambdaPipeline::Ingest(int64_t timestamp, const std::string& key,
                            double value) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const uint64_t offset = log_.Append(timestamp, key, value);
  LogRecord record;
  record.offset = offset;
  record.timestamp = timestamp;
  record.key = key;
  record.value = value;
  if (speed_.Ingest(record)) {
    serving_.RefreshSpeedView();  // A fresh SpeedView was published.
  }

  if (log_.size() - serving_.BatchThroughOffset() >=
      config_.batch_interval_records) {
    RunBatchNowLocked();
  }
}

void LambdaPipeline::RunBatchNow() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  RunBatchNowLocked();
}

void LambdaPipeline::RunBatchNowLocked() {
  BatchView view = batch_.Recompute(log_);
  const uint64_t covered = view.through_offset;
  // Hand-off order matters: reset the speed layer to the batch boundary
  // first (publishing an empty suffix view), then install the batch view,
  // which composes the new (batch, speed) pair in ONE atomic snapshot swap.
  // Readers either see the old pair (old batch + old suffix) or the new
  // pair (new batch + empty suffix) — never a torn mix. Writers are
  // serialized on writer_mu_, so no record can be ingested between the
  // recompute and the reset (the data-loss race the unserialized hand-off
  // had).
  speed_.Reset(covered);
  serving_.InstallBatchView(std::move(view));
  batch_recomputes_++;
}

void LambdaPipeline::PublishSpeedSnapshot() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  speed_.PublishSnapshot();
  serving_.RefreshSpeedView();
}

Status LambdaPipeline::SaveViews(const std::string& path) const {
  // Writers are locked out so the (batch, speed) image is one consistent
  // pair even while ingest threads are running.
  std::lock_guard<std::mutex> lock(writer_mu_);
  platform::KvCheckpointStore store;
  serving_.CurrentBatchView()->SnapshotTo(&store, "batch");
  speed_.SnapshotTo(&store, "speed");
  return store.SaveToFile(path);
}

Status LambdaPipeline::LoadViews(const std::string& path) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  platform::KvCheckpointStore store;
  STREAMLIB_RETURN_NOT_OK(store.LoadFromFile(path));
  Result<BatchView> view = BatchView::RestoreFrom(store, "batch");
  STREAMLIB_RETURN_NOT_OK(view.status());
  // RestoreFrom validates every blob before mutating, so ordering it first
  // means a corrupt file cannot leave the pipeline half-restored. The
  // restore publishes a fresh SpeedView; InstallBatchView then pairs it
  // with the restored batch view in one snapshot swap.
  STREAMLIB_RETURN_NOT_OK(speed_.RestoreFrom(store, "speed"));
  serving_.InstallBatchView(std::move(view).value());
  return Status::OK();
}

}  // namespace streamlib::lambda
