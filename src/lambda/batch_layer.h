#ifndef STREAMLIB_LAMBDA_BATCH_LAYER_H_
#define STREAMLIB_LAMBDA_BATCH_LAYER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cardinality/hyperloglog.h"
#include "lambda/master_log.h"

namespace streamlib::lambda {

/// A batch view: exact aggregates precomputed over a master-log prefix
/// (Figure 1, steps 2-3 — the batch layer "pre-computes the batch views",
/// the serving layer "indexes them for low-latency queries"). Immutable
/// once built; `through_offset` records the prefix it covers so the speed
/// layer knows where real-time responsibility begins.
struct BatchView {
  uint64_t through_offset = 0;  ///< exclusive end of the covered prefix
  std::unordered_map<std::string, double> key_totals;  ///< exact sums
  HyperLogLog distinct_keys{12};  ///< cardinality of the key set

  /// Exact total for a key over the covered prefix (0 if absent).
  double TotalOf(const std::string& key) const;

  /// Top-k keys by total, descending.
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;
};

/// The batch layer: recomputes a BatchView from scratch over the current
/// master-log prefix. Recomputation latency is what the Lambda Architecture
/// trades against freshness — the F1 bench measures staleness by
/// controlling how often this runs.
class BatchLayer {
 public:
  BatchLayer() = default;

  /// Full recompute over log[0, log.size()). O(prefix length).
  BatchView Recompute(const MasterLog& log) const;

  /// Recompute over an explicit prefix log[0, through_offset).
  BatchView RecomputePrefix(const MasterLog& log,
                            uint64_t through_offset) const;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_BATCH_LAYER_H_
