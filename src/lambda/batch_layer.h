#ifndef STREAMLIB_LAMBDA_BATCH_LAYER_H_
#define STREAMLIB_LAMBDA_BATCH_LAYER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "lambda/master_log.h"
#include "platform/checkpoint.h"

namespace streamlib::lambda {

/// A batch view: exact aggregates precomputed over a master-log prefix
/// (Figure 1, steps 2-3 — the batch layer "pre-computes the batch views",
/// the serving layer "indexes them for low-latency queries"). Immutable
/// once built; `through_offset` records the prefix it covers so the speed
/// layer knows where real-time responsibility begins.
struct BatchView {
  uint64_t through_offset = 0;  ///< exclusive end of the covered prefix
  std::unordered_map<std::string, double> key_totals;  ///< exact sums

  /// Cardinality of the key set as a versioned SketchBlob (HyperLogLog,
  /// precision 12). Kept in envelope form so the serving layer merges it
  /// with the speed layer's blob through the state contract, and so the
  /// view persists byte-for-byte through a KvCheckpointStore.
  std::vector<uint8_t> distinct_keys_blob;

  /// Exact total for a key over the covered prefix (0 if absent).
  double TotalOf(const std::string& key) const;

  /// Top-k keys by total, descending.
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;

  /// Persists the view into `store` under `prefix` — the distinct-key
  /// sketch as its SketchBlob, the exact totals + offset as a meta entry.
  void SnapshotTo(platform::KvCheckpointStore* store,
                  const std::string& prefix) const;

  /// Rebuilds a view previously written by SnapshotTo. Corrupt or missing
  /// entries surface as the underlying Status.
  static Result<BatchView> RestoreFrom(const platform::KvCheckpointStore& store,
                                       const std::string& prefix);
};

/// The batch layer: recomputes a BatchView from scratch over the current
/// master-log prefix. Recomputation latency is what the Lambda Architecture
/// trades against freshness — the F1 bench measures staleness by
/// controlling how often this runs.
class BatchLayer {
 public:
  BatchLayer() = default;

  /// Full recompute over log[0, log.size()). O(prefix length).
  BatchView Recompute(const MasterLog& log) const;

  /// Recompute over an explicit prefix log[0, through_offset).
  BatchView RecomputePrefix(const MasterLog& log,
                            uint64_t through_offset) const;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_BATCH_LAYER_H_
