#include "lambda/master_log.h"

namespace streamlib::lambda {

uint64_t MasterLog::Append(int64_t timestamp, std::string key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t offset = records_.size();
  records_.push_back(LogRecord{offset, timestamp, std::move(key), value});
  return offset;
}

uint64_t MasterLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void MasterLog::Read(uint64_t from, uint64_t to,
                     std::vector<LogRecord>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t end = std::min<uint64_t>(to, records_.size());
  for (uint64_t i = from; i < end; i++) out->push_back(records_[i]);
}

Result<LogRecord> MasterLog::Get(uint64_t offset) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset >= records_.size()) {
    return Status::OutOfRange("offset beyond log end");
  }
  return records_[offset];
}

}  // namespace streamlib::lambda
