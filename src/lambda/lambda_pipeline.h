#ifndef STREAMLIB_LAMBDA_LAMBDA_PIPELINE_H_
#define STREAMLIB_LAMBDA_LAMBDA_PIPELINE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "lambda/batch_layer.h"
#include "lambda/master_log.h"
#include "lambda/serving_layer.h"
#include "lambda/speed_layer.h"

namespace streamlib::lambda {

/// Pipeline tuning knobs.
struct LambdaConfig {
  /// Batch recompute triggers after this many new records since the last
  /// batch view (the staleness/work trade-off the F1 bench sweeps).
  uint64_t batch_interval_records = 10000;
  uint32_t cms_width = 2048;   ///< speed-layer Count-Min width
  uint32_t cms_depth = 4;      ///< speed-layer Count-Min depth
  size_t topk_capacity = 256;  ///< speed-layer SpaceSaving entries
  int hll_precision = 12;      ///< both layers' HLL precision (must match)

  /// The speed layer publishes an immutable SpeedView every this many
  /// ingests (plus on every batch hand-off). This is the staleness bound of
  /// the lock-free read path: a query may miss at most the last
  /// `speed_snapshot_interval_records - 1` ingested records. 1 = publish on
  /// every ingest (exact freshness, full sketch copy per record).
  uint64_t speed_snapshot_interval_records = 256;

  /// Typed validation of every knob; mirrors EngineConfig::Validate. The
  /// LambdaPipeline constructor checks this and aborts on invalid configs;
  /// callers taking config from the outside validate first.
  Status Validate() const;
};

/// The full Lambda Architecture of Figure 1, wired end to end:
///   1. Ingest() dispatches each event to both the batch layer's master log
///      and the speed layer.
///   2-3. The batch layer periodically recomputes exact batch views over the
///      immutable log, which the serving layer indexes.
///   4. The speed layer covers only the records the current batch view has
///      not seen, with the Section-2 sketches.
///   5. Queries merge batch + real-time views.
///
/// Concurrency (DESIGN.md §14): writers — Ingest, RunBatchNow, LoadViews —
/// serialize on one pipeline mutex, which makes the batch hand-off atomic
/// with respect to ingest (no record can land in the speed layer while its
/// offset range is being absorbed into a batch view). Readers never take
/// that mutex: every query runs against an immutable ServingSnapshot
/// obtained by a single atomic load, so read throughput scales with reader
/// threads while ingest runs at full rate.
class LambdaPipeline {
 public:
  explicit LambdaPipeline(const LambdaConfig& config);

  /// Ingests one event into both paths (Figure 1, step 1).
  void Ingest(int64_t timestamp, const std::string& key, double value);

  /// Forces a batch recompute over the entire current log.
  void RunBatchNow();

  /// Forces publication of a fresh speed view + serving snapshot, so the
  /// very next query sees everything ingested so far (bypasses the
  /// snapshot-interval staleness bound).
  void PublishSpeedSnapshot();

  /// Persists both views (batch + speed) to `path`: every sketch travels as
  /// a versioned SketchBlob inside a KvCheckpointStore image, so a restarted
  /// process answers merged queries without replaying the log.
  Status SaveViews(const std::string& path) const;

  /// Restores views written by SaveViews. The master log itself is NOT
  /// restored (it is the immutable dataset; callers re-attach or replay it
  /// separately) — only the derived views. Corrupt files leave the pipeline
  /// untouched.
  Status LoadViews(const std::string& path);

  /// Merged query interface (Figure 1, step 5). Lock-free: each call runs
  /// against one immutable snapshot. Multi-query consistency (e.g. a total
  /// and a top-k answered from the same state) comes from holding the
  /// snapshot: serving().Snapshot().
  double QueryTotal(const std::string& key) const {
    return serving_.TotalOf(key);
  }
  std::vector<std::pair<std::string, double>> QueryTopK(size_t k) const {
    return serving_.TopK(k);
  }
  double QueryDistinctKeys() const { return serving_.DistinctKeys(); }

  const MasterLog& log() const { return log_; }
  const ServingLayer& serving() const { return serving_; }
  const SpeedLayer& speed() const { return speed_; }
  uint64_t batch_recomputes() const {
    std::lock_guard<std::mutex> lock(writer_mu_);
    return batch_recomputes_;
  }

  /// Records not yet covered by the batch view (staleness in records).
  /// Reads the batch offset *before* the log size: the log only grows, and
  /// the batch view always covers a prefix of it, so that order guarantees
  /// size >= offset; the subtraction is additionally clamped at zero so a
  /// reordered or racing read can never wrap the unsigned difference.
  uint64_t SpeedSuffixLength() const {
    const uint64_t batch_through = serving_.BatchThroughOffset();
    const uint64_t log_size = log_.size();
    return log_size > batch_through ? log_size - batch_through : 0;
  }

 private:
  void RunBatchNowLocked();

  LambdaConfig config_;
  MasterLog log_;
  BatchLayer batch_;
  SpeedLayer speed_;
  ServingLayer serving_;
  /// Serializes writers (ingest / batch hand-off / restore). Queries never
  /// take it.
  mutable std::mutex writer_mu_;
  uint64_t batch_recomputes_ = 0;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_LAMBDA_PIPELINE_H_
