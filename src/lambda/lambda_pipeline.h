#ifndef STREAMLIB_LAMBDA_LAMBDA_PIPELINE_H_
#define STREAMLIB_LAMBDA_LAMBDA_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lambda/batch_layer.h"
#include "lambda/master_log.h"
#include "lambda/serving_layer.h"
#include "lambda/speed_layer.h"

namespace streamlib::lambda {

/// Pipeline tuning knobs.
struct LambdaConfig {
  /// Batch recompute triggers after this many new records since the last
  /// batch view (the staleness/work trade-off the F1 bench sweeps).
  uint64_t batch_interval_records = 10000;
  uint32_t cms_width = 2048;   ///< speed-layer Count-Min width
  uint32_t cms_depth = 4;      ///< speed-layer Count-Min depth
  size_t topk_capacity = 256;  ///< speed-layer SpaceSaving entries
  int hll_precision = 12;      ///< both layers' HLL precision (must match)
};

/// The full Lambda Architecture of Figure 1, wired end to end:
///   1. Ingest() dispatches each event to both the batch layer's master log
///      and the speed layer.
///   2-3. The batch layer periodically recomputes exact batch views over the
///      immutable log, which the serving layer indexes.
///   4. The speed layer covers only the records the current batch view has
///      not seen, with the Section-2 sketches.
///   5. Queries merge batch + real-time views.
///
/// Recomputation runs synchronously inside Ingest when due (deterministic
/// and testable); callers wanting background batches call RunBatchNow from
/// their own thread — all layers are individually thread-safe.
class LambdaPipeline {
 public:
  explicit LambdaPipeline(const LambdaConfig& config);

  /// Ingests one event into both paths (Figure 1, step 1).
  void Ingest(int64_t timestamp, const std::string& key, double value);

  /// Forces a batch recompute over the entire current log.
  void RunBatchNow();

  /// Persists both views (batch + speed) to `path`: every sketch travels as
  /// a versioned SketchBlob inside a KvCheckpointStore image, so a restarted
  /// process answers merged queries without replaying the log.
  Status SaveViews(const std::string& path) const;

  /// Restores views written by SaveViews. The master log itself is NOT
  /// restored (it is the immutable dataset; callers re-attach or replay it
  /// separately) — only the derived views. Corrupt files leave the pipeline
  /// untouched.
  Status LoadViews(const std::string& path);

  /// Merged query interface (Figure 1, step 5).
  double QueryTotal(const std::string& key) const {
    return serving_.TotalOf(key);
  }
  std::vector<std::pair<std::string, double>> QueryTopK(size_t k) const {
    return serving_.TopK(k);
  }
  double QueryDistinctKeys() const { return serving_.DistinctKeys(); }

  const MasterLog& log() const { return log_; }
  const ServingLayer& serving() const { return serving_; }
  const SpeedLayer& speed() const { return speed_; }
  uint64_t batch_recomputes() const { return batch_recomputes_; }

  /// Records not yet covered by the batch view (staleness in records).
  uint64_t SpeedSuffixLength() const {
    return log_.size() - serving_.BatchThroughOffset();
  }

 private:
  LambdaConfig config_;
  MasterLog log_;
  BatchLayer batch_;
  SpeedLayer speed_;
  ServingLayer serving_;
  uint64_t batch_recomputes_ = 0;
};

}  // namespace streamlib::lambda

#endif  // STREAMLIB_LAMBDA_LAMBDA_PIPELINE_H_
