#include "lambda/speed_layer.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/serde.h"
#include "common/state.h"

namespace streamlib::lambda {

std::vector<std::pair<std::string, double>> SpeedView::TopK(size_t k) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& item : topk.TopK(k)) {
    out.emplace_back(item.key, static_cast<double>(item.estimate));
  }
  return out;
}

SpeedLayer::SpeedLayer(uint32_t cms_width, uint32_t cms_depth,
                       size_t topk_capacity, int hll_precision,
                       uint64_t snapshot_interval)
    : cms_width_(cms_width),
      cms_depth_(cms_depth),
      topk_capacity_(topk_capacity),
      hll_precision_(hll_precision),
      snapshot_interval_(snapshot_interval),
      totals_(cms_width, cms_depth, /*conservative=*/true),
      topk_(topk_capacity),
      distinct_(hll_precision) {
  STREAMLIB_CHECK_MSG(snapshot_interval >= 1,
                      "speed-layer snapshot interval must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();  // View() is never null, even before the first ingest.
}

std::shared_ptr<const SpeedView> SpeedLayer::PublishLocked() {
  auto view = std::make_shared<SpeedView>(cms_width_, cms_depth_,
                                          topk_capacity_, hll_precision_);
  view->version = ++next_version_;
  view->from_offset = from_offset_;
  view->ingested = ingested_;
  view->totals = totals_;
  view->topk = topk_;
  view->distinct = distinct_;
  since_publish_ = 0;
  std::shared_ptr<const SpeedView> frozen = std::move(view);
  view_.store(frozen);
  return frozen;
}

bool SpeedLayer::Ingest(const LogRecord& record) {
  // Record values are event weights (typically 1.0 for count semantics);
  // the integer sketches ingest the rounded weight.
  const uint64_t weight = static_cast<uint64_t>(
      std::llround(std::max(record.value, 0.0)));
  std::lock_guard<std::mutex> lock(mu_);
  STREAMLIB_DCHECK(record.offset >= from_offset_);
  ingested_++;
  since_publish_++;
  if (weight > 0) {
    totals_.Add(record.key, weight);
    topk_.Add(record.key, weight);
  }
  distinct_.Add(record.key);
  if (since_publish_ >= snapshot_interval_) {
    PublishLocked();
    return true;
  }
  return false;
}

std::shared_ptr<const SpeedView> SpeedLayer::PublishSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return PublishLocked();
}

double SpeedLayer::TotalOf(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(totals_.Estimate(key));
}

std::vector<std::pair<std::string, double>> SpeedLayer::TopK(size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& item : topk_.TopK(k)) {
    out.emplace_back(item.key, static_cast<double>(item.estimate));
  }
  return out;
}

std::vector<uint8_t> SpeedLayer::DistinctKeysBlob() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state::ToBlob(distinct_);
}

void SpeedLayer::SnapshotTo(platform::KvCheckpointStore* store,
                            const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  store->Put(prefix + "/totals", state::ToBlob(totals_));
  store->Put(prefix + "/topk", state::ToBlob(topk_));
  store->Put(prefix + "/distinct_keys", state::ToBlob(distinct_));
  ByteWriter w;
  w.PutVarint(from_offset_);
  w.PutVarint(ingested_);
  store->Put(prefix + "/meta", w.TakeBytes());
}

Status SpeedLayer::RestoreFrom(const platform::KvCheckpointStore& store,
                               const std::string& prefix) {
  Result<std::vector<uint8_t>> totals_blob = store.Fetch(prefix + "/totals");
  STREAMLIB_RETURN_NOT_OK(totals_blob.status());
  Result<CountMinSketch> totals =
      state::FromBlob<CountMinSketch>(totals_blob.value());
  STREAMLIB_RETURN_NOT_OK(totals.status());

  Result<std::vector<uint8_t>> topk_blob = store.Fetch(prefix + "/topk");
  STREAMLIB_RETURN_NOT_OK(topk_blob.status());
  Result<SpaceSaving<std::string>> topk =
      state::FromBlob<SpaceSaving<std::string>>(topk_blob.value());
  STREAMLIB_RETURN_NOT_OK(topk.status());

  Result<std::vector<uint8_t>> distinct_blob =
      store.Fetch(prefix + "/distinct_keys");
  STREAMLIB_RETURN_NOT_OK(distinct_blob.status());
  Result<HyperLogLog> distinct =
      state::FromBlob<HyperLogLog>(distinct_blob.value());
  STREAMLIB_RETURN_NOT_OK(distinct.status());

  Result<std::vector<uint8_t>> meta = store.Fetch(prefix + "/meta");
  STREAMLIB_RETURN_NOT_OK(meta.status());
  ByteReader r(meta.value());
  uint64_t from_offset = 0;
  uint64_t ingested = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&from_offset));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&ingested));
  if (!r.AtEnd()) {
    return Status::Corruption("speed layer: trailing meta bytes");
  }

  std::lock_guard<std::mutex> lock(mu_);
  totals_ = std::move(totals).value();
  topk_ = std::move(topk).value();
  distinct_ = std::move(distinct).value();
  from_offset_ = from_offset;
  ingested_ = ingested;
  PublishLocked();  // Readers see the restored state immediately.
  return Status::OK();
}

void SpeedLayer::Reset(uint64_t from_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  from_offset_ = from_offset;
  ingested_ = 0;
  totals_ = CountMinSketch(cms_width_, cms_depth_, /*conservative=*/true);
  topk_ = SpaceSaving<std::string>(topk_capacity_);
  distinct_ = HyperLogLog(hll_precision_);
  PublishLocked();  // The hand-off always publishes (empty suffix view).
}

uint64_t SpeedLayer::from_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return from_offset_;
}

uint64_t SpeedLayer::ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ingested_;
}

}  // namespace streamlib::lambda
