#include "lambda/speed_layer.h"

#include <cmath>

#include "common/check.h"

namespace streamlib::lambda {

SpeedLayer::SpeedLayer(uint32_t cms_width, uint32_t cms_depth,
                       size_t topk_capacity, int hll_precision)
    : cms_width_(cms_width),
      cms_depth_(cms_depth),
      topk_capacity_(topk_capacity),
      hll_precision_(hll_precision),
      totals_(cms_width, cms_depth, /*conservative=*/true),
      topk_(topk_capacity),
      distinct_(hll_precision) {}

void SpeedLayer::Ingest(const LogRecord& record) {
  // Record values are event weights (typically 1.0 for count semantics);
  // the integer sketches ingest the rounded weight.
  const uint64_t weight = static_cast<uint64_t>(
      std::llround(std::max(record.value, 0.0)));
  std::lock_guard<std::mutex> lock(mu_);
  STREAMLIB_DCHECK(record.offset >= from_offset_);
  ingested_++;
  if (weight > 0) {
    totals_.Add(record.key, weight);
    topk_.Add(record.key, weight);
  }
  distinct_.Add(record.key);
}

double SpeedLayer::TotalOf(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(totals_.Estimate(key));
}

std::vector<std::pair<std::string, double>> SpeedLayer::TopK(size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& item : topk_.TopK(k)) {
    out.emplace_back(item.key, static_cast<double>(item.estimate));
  }
  return out;
}

HyperLogLog SpeedLayer::DistinctKeysSketch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return distinct_;
}

void SpeedLayer::Reset(uint64_t from_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  from_offset_ = from_offset;
  ingested_ = 0;
  totals_ = CountMinSketch(cms_width_, cms_depth_, /*conservative=*/true);
  topk_ = SpaceSaving<std::string>(topk_capacity_);
  distinct_ = HyperLogLog(hll_precision_);
}

uint64_t SpeedLayer::from_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return from_offset_;
}

uint64_t SpeedLayer::ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ingested_;
}

}  // namespace streamlib::lambda
