#include "workload/bit_stream.h"

// Bit stream generators are header-only; see bit_stream.h.
