#ifndef STREAMLIB_WORKLOAD_TIMESERIES_H_
#define STREAMLIB_WORKLOAD_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamlib::workload {

/// Kind of anomaly injected into a synthetic series.
enum class AnomalyKind {
  kNone = 0,
  kSpike,       ///< single-point additive outlier
  kLevelShift,  ///< persistent change of the series mean
};

/// One generated observation with its ground-truth label.
struct TimeSeriesPoint {
  double value = 0.0;
  AnomalyKind label = AnomalyKind::kNone;
};

/// Configuration for TimeSeriesGenerator.
struct TimeSeriesConfig {
  double base_level = 100.0;       ///< series mean before trend/season
  double trend_per_step = 0.0;     ///< linear trend slope
  double season_amplitude = 0.0;   ///< sinusoidal seasonal amplitude
  uint32_t season_period = 96;     ///< seasonal period in steps
  double noise_sigma = 1.0;        ///< gaussian observation noise
  double spike_probability = 0.0;  ///< per-step probability of a spike
  double spike_magnitude = 10.0;   ///< spike height in noise sigmas
  double level_shift_probability = 0.0;  ///< per-step probability of a shift
  double level_shift_magnitude = 8.0;    ///< shift height in noise sigmas
  double missing_probability = 0.0;      ///< per-step probability the value is
                                         ///< dropped (for prediction benches)
};

/// Synthetic labeled time-series: trend + seasonality + gaussian noise with
/// injected spikes and level shifts.
///
/// Substitution note (DESIGN.md §2): the paper motivates anomaly detection on
/// Twitter/IoT production telemetry, which is unlabeled and unavailable.
/// Injected anomalies give ground truth so the benches can report
/// precision/recall, the standard methodology in the anomaly-detection papers
/// the tutorial cites.
class TimeSeriesGenerator {
 public:
  TimeSeriesGenerator(const TimeSeriesConfig& config, uint64_t seed);

  /// Produces the next observation (advances internal time).
  TimeSeriesPoint Next();

  /// Convenience: generate `n` points at once.
  std::vector<TimeSeriesPoint> Take(size_t n);

  /// True iff the point at the last Next() call was dropped ("missing") —
  /// the value field then holds the ground-truth value the predictor should
  /// reconstruct.
  bool last_missing() const { return last_missing_; }

  uint64_t step() const { return step_; }

 private:
  TimeSeriesConfig config_;
  Rng rng_;
  uint64_t step_ = 0;
  double level_offset_ = 0.0;  // Accumulated level shifts.
  bool last_missing_ = false;
};

}  // namespace streamlib::workload

#endif  // STREAMLIB_WORKLOAD_TIMESERIES_H_
