#include "workload/timeseries.h"

#include <cmath>

namespace streamlib::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

TimeSeriesGenerator::TimeSeriesGenerator(const TimeSeriesConfig& config,
                                         uint64_t seed)
    : config_(config), rng_(seed) {}

TimeSeriesPoint TimeSeriesGenerator::Next() {
  const double t = static_cast<double>(step_);
  double value = config_.base_level + config_.trend_per_step * t +
                 level_offset_ +
                 config_.season_amplitude *
                     std::sin(kTwoPi * t /
                              static_cast<double>(config_.season_period)) +
                 config_.noise_sigma * rng_.NextGaussian();

  AnomalyKind label = AnomalyKind::kNone;
  if (config_.level_shift_probability > 0.0 &&
      rng_.NextBool(config_.level_shift_probability)) {
    const double sign = rng_.NextBool(0.5) ? 1.0 : -1.0;
    level_offset_ +=
        sign * config_.level_shift_magnitude * config_.noise_sigma;
    value += sign * config_.level_shift_magnitude * config_.noise_sigma;
    label = AnomalyKind::kLevelShift;
  } else if (config_.spike_probability > 0.0 &&
             rng_.NextBool(config_.spike_probability)) {
    const double sign = rng_.NextBool(0.5) ? 1.0 : -1.0;
    value += sign * config_.spike_magnitude * config_.noise_sigma;
    label = AnomalyKind::kSpike;
  }

  last_missing_ = config_.missing_probability > 0.0 &&
                  rng_.NextBool(config_.missing_probability);
  step_++;
  return TimeSeriesPoint{value, label};
}

std::vector<TimeSeriesPoint> TimeSeriesGenerator::Take(size_t n) {
  std::vector<TimeSeriesPoint> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) out.push_back(Next());
  return out;
}

}  // namespace streamlib::workload
