#include "workload/text_stream.h"

#include "common/check.h"

namespace streamlib::workload {

TextStreamGenerator::TextStreamGenerator(uint64_t vocabulary_size, double skew,
                                         uint64_t seed)
    : zipf_(vocabulary_size, skew, seed) {
  vocab_.reserve(vocabulary_size);
  for (uint64_t i = 0; i < vocabulary_size; i++) {
    vocab_.push_back("tag" + std::to_string(i));
  }
}

const std::string& TextStreamGenerator::Next() {
  return vocab_[zipf_.Next()];
}

const std::string& TextStreamGenerator::TokenForRank(uint64_t rank) const {
  STREAMLIB_CHECK(rank < vocab_.size());
  return vocab_[rank];
}

}  // namespace streamlib::workload
