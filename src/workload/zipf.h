#ifndef STREAMLIB_WORKLOAD_ZIPF_H_
#define STREAMLIB_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamlib::workload {

/// Zipf-distributed item generator over the domain {0, 1, ..., n-1}, with
/// P(item i) proportional to 1 / (i+1)^s.
///
/// This is the canonical stand-in for skewed production streams (hashtags,
/// URLs, user ids): heavy-hitter, cardinality and frequency-sketch behaviour
/// is governed by the skew parameter `s`, which the benches sweep. Sampling
/// uses Hormann & Derflinger rejection-inversion, O(1) per draw for any n.
class ZipfGenerator {
 public:
  /// \param n      domain size (>= 1)
  /// \param s      skew exponent (> 0); s ~ 1.0 is "classic" Zipf.
  /// \param seed   RNG seed for reproducibility.
  ZipfGenerator(uint64_t n, double s, uint64_t seed);

  /// Next item id in [0, n).  Item 0 is the most frequent.
  uint64_t Next();

  /// Exact probability of item `i` under this distribution.
  double Probability(uint64_t i) const;

  /// Number of items whose expected frequency over a stream of length
  /// `stream_len` is at least `threshold` (used by heavy-hitter benches to
  /// compute ground-truth-expected heavy hitters).
  uint64_t CountItemsAboveFrequency(uint64_t stream_len,
                                    double threshold) const;

  uint64_t domain_size() const { return n_; }
  double skew() const { return s_; }

 private:
  double H(double x) const;     // Integral of the density.
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  Rng rng_;
  double h_x1_;
  double h_n_;
  double normalizer_;  // Harmonic-like normalization constant H_{n,s}.
};

}  // namespace streamlib::workload

#endif  // STREAMLIB_WORKLOAD_ZIPF_H_
