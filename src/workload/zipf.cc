#include "workload/zipf.h"

#include <cmath>

#include "common/check.h"

namespace streamlib::workload {
namespace {

// (exp(t) - 1) / t, stable near t == 0.
double Helper2(double t) {
  if (std::fabs(t) > 1e-8) return std::expm1(t) / t;
  return 1.0 + t / 2.0 * (1.0 + t / 3.0 * (1.0 + t / 4.0));
}

// log1p(t) / t, stable near t == 0.
double Helper1(double t) {
  if (std::fabs(t) > 1e-8) return std::log1p(t) / t;
  return 1.0 - t * (0.5 - t * (1.0 / 3.0 - t / 4.0));
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double s, uint64_t seed)
    : n_(n), s_(s), rng_(seed) {
  STREAMLIB_CHECK_MSG(n >= 1, "Zipf domain must be nonempty");
  STREAMLIB_CHECK_MSG(s > 0.0, "Zipf exponent must be positive");
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  normalizer_ = 0.0;
  for (uint64_t k = 1; k <= n_; k++) {
    normalizer_ += std::pow(static_cast<double>(k), -s_);
  }
}

double ZipfGenerator::H(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfGenerator::HInverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // Guard against numerical drift below the pole.
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfGenerator::Next() {
  // Hormann & Derflinger rejection-inversion. Expected < 2 iterations.
  const double shift = 2.0 - HInverse(H(2.5) - std::exp(-s_ * std::log(2.0)));
  while (true) {
    const double u = h_n_ + rng_.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= shift ||
        u >= H(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
      return k - 1;  // Map to 0-based item ids.
    }
  }
}

double ZipfGenerator::Probability(uint64_t i) const {
  STREAMLIB_DCHECK(i < n_);
  return std::pow(static_cast<double>(i + 1), -s_) / normalizer_;
}

uint64_t ZipfGenerator::CountItemsAboveFrequency(uint64_t stream_len,
                                                 double threshold) const {
  // Probability is decreasing in i, so binary search for the first item
  // whose expected count drops below the threshold.
  uint64_t lo = 0;
  uint64_t hi = n_;  // First index with expected count < threshold, if any.
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (static_cast<double>(stream_len) * Probability(mid) >= threshold) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace streamlib::workload
