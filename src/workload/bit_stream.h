#ifndef STREAMLIB_WORKLOAD_BIT_STREAM_H_
#define STREAMLIB_WORKLOAD_BIT_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamlib::workload {

/// Bit-stream generators for the sliding-window counting benches (Table 1
/// rows "Basic Counting" and "Significant One Counting").

/// I.I.D. Bernoulli(p) bits.
class BernoulliBitStream {
 public:
  BernoulliBitStream(double p, uint64_t seed) : p_(p), rng_(seed) {}

  bool Next() { return rng_.NextBool(p_); }

 private:
  double p_;
  Rng rng_;
};

/// Two-state Markov (Gilbert) on/off bit stream: bursts of ones interleaved
/// with quiet periods — the traffic-accounting shape that motivates
/// significant-one counting (Estan & Varghese).
class BurstyBitStream {
 public:
  /// \param p_on_in_burst    P(bit = 1) while in the burst state
  /// \param p_on_in_quiet    P(bit = 1) while in the quiet state
  /// \param p_enter_burst    per-step transition probability quiet -> burst
  /// \param p_leave_burst    per-step transition probability burst -> quiet
  BurstyBitStream(double p_on_in_burst, double p_on_in_quiet,
                  double p_enter_burst, double p_leave_burst, uint64_t seed)
      : p_on_burst_(p_on_in_burst),
        p_on_quiet_(p_on_in_quiet),
        p_enter_(p_enter_burst),
        p_leave_(p_leave_burst),
        rng_(seed) {}

  bool Next() {
    if (in_burst_) {
      if (rng_.NextBool(p_leave_)) in_burst_ = false;
    } else {
      if (rng_.NextBool(p_enter_)) in_burst_ = true;
    }
    return rng_.NextBool(in_burst_ ? p_on_burst_ : p_on_quiet_);
  }

  bool in_burst() const { return in_burst_; }

 private:
  double p_on_burst_;
  double p_on_quiet_;
  double p_enter_;
  double p_leave_;
  Rng rng_;
  bool in_burst_ = false;
};

}  // namespace streamlib::workload

#endif  // STREAMLIB_WORKLOAD_BIT_STREAM_H_
