#include "workload/graph_stream.h"

#include <algorithm>

#include "common/check.h"

namespace streamlib::workload {

GraphStreamGenerator::GraphStreamGenerator(uint32_t num_vertices,
                                           uint64_t seed)
    : n_(num_vertices), rng_(seed) {
  STREAMLIB_CHECK_MSG(num_vertices >= 3, "need at least 3 vertices");
}

Edge GraphStreamGenerator::NextRandomEdge() {
  uint32_t u = static_cast<uint32_t>(rng_.NextBounded(n_));
  uint32_t v = static_cast<uint32_t>(rng_.NextBounded(n_ - 1));
  if (v >= u) v++;  // Uniform over vertices != u.
  return Edge{u, v};
}

std::vector<Edge> GraphStreamGenerator::RandomStream(size_t m) {
  std::vector<Edge> edges;
  edges.reserve(m);
  for (size_t i = 0; i < m; i++) edges.push_back(NextRandomEdge());
  return edges;
}

std::vector<Edge> GraphStreamGenerator::StreamWithPlantedTriangles(size_t m,
                                                                   size_t t) {
  std::vector<Edge> edges = RandomStream(m);
  edges.reserve(m + 3 * t);
  for (size_t i = 0; i < t; i++) {
    uint32_t a = static_cast<uint32_t>(rng_.NextBounded(n_));
    uint32_t b = static_cast<uint32_t>(rng_.NextBounded(n_));
    uint32_t c = static_cast<uint32_t>(rng_.NextBounded(n_));
    // Retry until the triple is distinct; cheap for n >= 3.
    while (b == a) b = static_cast<uint32_t>(rng_.NextBounded(n_));
    while (c == a || c == b) c = static_cast<uint32_t>(rng_.NextBounded(n_));
    edges.push_back(Edge{a, b});
    edges.push_back(Edge{b, c});
    edges.push_back(Edge{a, c});
  }
  // Fisher–Yates shuffle so planted edges are interleaved with noise.
  for (size_t i = edges.size(); i > 1; i--) {
    const size_t j = rng_.NextBounded(i);
    std::swap(edges[i - 1], edges[j]);
  }
  return edges;
}

}  // namespace streamlib::workload
