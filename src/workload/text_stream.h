#ifndef STREAMLIB_WORKLOAD_TEXT_STREAM_H_
#define STREAMLIB_WORKLOAD_TEXT_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/zipf.h"

namespace streamlib::workload {

/// Stream of string tokens ("hashtags") with Zipfian popularity — the
/// stand-in for the tweet/hashtag streams motivating the paper's "Trending
/// Hashtags" application of frequent-element sketches.
class TextStreamGenerator {
 public:
  /// \param vocabulary_size   number of distinct tokens
  /// \param skew              Zipf exponent of token popularity
  /// \param seed              RNG seed
  TextStreamGenerator(uint64_t vocabulary_size, double skew, uint64_t seed);

  /// Next token. Token strings are "tag<rank>" so rank (popularity order)
  /// can be recovered by benches for ground-truth checks.
  const std::string& Next();

  /// The token string for popularity rank `rank` (0 = most popular).
  const std::string& TokenForRank(uint64_t rank) const;

  /// Exact popularity of rank `rank` under the generator's distribution.
  double Probability(uint64_t rank) const { return zipf_.Probability(rank); }

  uint64_t vocabulary_size() const { return vocab_.size(); }

 private:
  ZipfGenerator zipf_;
  std::vector<std::string> vocab_;
};

}  // namespace streamlib::workload

#endif  // STREAMLIB_WORKLOAD_TEXT_STREAM_H_
