#ifndef STREAMLIB_WORKLOAD_GRAPH_STREAM_H_
#define STREAMLIB_WORKLOAD_GRAPH_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace streamlib::workload {

/// An undirected edge in a graph stream.
struct Edge {
  uint32_t u = 0;
  uint32_t v = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
};

/// Random edge-stream generators for the graph-analysis benches (Table 1
/// rows "Graph analysis" and "Path Analysis"): Erdős–Rényi G(n, m) streams
/// plus optional planted triangles so the triangle-count estimator has a
/// known signal to recover.
class GraphStreamGenerator {
 public:
  /// \param num_vertices  vertex count n
  /// \param seed          RNG seed
  GraphStreamGenerator(uint32_t num_vertices, uint64_t seed);

  /// A uniformly random edge between distinct vertices (self-loops excluded;
  /// duplicates possible, as in a real edge stream).
  Edge NextRandomEdge();

  /// Generates a stream of `m` random edges.
  std::vector<Edge> RandomStream(size_t m);

  /// Generates a stream of `m` random edges plus `t` planted triangles
  /// (3 extra edges per triangle over fresh random vertex triples), shuffled.
  std::vector<Edge> StreamWithPlantedTriangles(size_t m, size_t t);

  uint32_t num_vertices() const { return n_; }

 private:
  uint32_t n_;
  Rng rng_;
};

}  // namespace streamlib::workload

#endif  // STREAMLIB_WORKLOAD_GRAPH_STREAM_H_
