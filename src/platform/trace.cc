#include "platform/trace.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace streamlib::platform {

std::vector<TraceEvent> TraceRing::Drain() const {
  std::vector<TraceEvent> out;
  const size_t n = next_ < events_.size() ? next_ : events_.size();
  out.reserve(n);
  const uint64_t first = next_ - n;
  for (uint64_t i = first; i < next_; i++) {
    out.push_back(events_[i % events_.size()]);
  }
  return out;
}

void TraceStore::Build(std::vector<TraceEvent> events,
                       const std::vector<std::string>& task_components,
                       uint64_t dropped_events) {
  trees_.clear();
  complete_trees_ = 0;
  dropped_events_ = dropped_events;
  task_components_ = task_components;

  // Group events by trace id (ordered map for deterministic output — trace
  // ids are allocated in emit order, so this sorts trees chronologically).
  std::map<uint64_t, std::vector<TraceEvent>> by_trace;
  for (TraceEvent& event : events) {
    by_trace[event.trace_id].push_back(event);
  }

  trees_.reserve(by_trace.size());
  for (auto& [trace_id, tree_events] : by_trace) {
    TraceTree tree;
    tree.trace_id = trace_id;

    // Root-first span order: the root's span id equals the trace id.
    std::stable_sort(tree_events.begin(), tree_events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if ((a.parent_span == 0) != (b.parent_span == 0)) {
                         return a.parent_span == 0;
                       }
                       return a.start_nanos < b.start_nanos;
                     });

    std::unordered_map<uint64_t, size_t> index_of_span;
    tree.spans.reserve(tree_events.size());
    for (const TraceEvent& event : tree_events) {
      TraceTree::Span span;
      span.event = event;
      if (event.task < task_components_.size()) {
        span.component = task_components_[event.task];
      }
      index_of_span[event.span_id] = tree.spans.size();
      tree.spans.push_back(std::move(span));
    }

    bool has_root = false;
    bool parents_resolved = true;
    uint64_t root_start = 0;
    for (size_t i = 0; i < tree.spans.size(); i++) {
      const TraceEvent& event = tree.spans[i].event;
      if (event.parent_span == 0) {
        has_root = true;
        root_start = event.start_nanos;
        continue;
      }
      auto parent = index_of_span.find(event.parent_span);
      if (parent == index_of_span.end()) {
        parents_resolved = false;
        continue;
      }
      tree.spans[parent->second].children.push_back(i);
    }
    tree.complete = has_root && parents_resolved;
    if (tree.complete) {
      complete_trees_++;
      for (const TraceTree::Span& span : tree.spans) {
        const uint64_t end = span.event.start_nanos + span.event.execute_nanos;
        if (end > root_start) {
          tree.end_to_end_nanos =
              std::max(tree.end_to_end_nanos, end - root_start);
        }
      }
    }
    trees_.push_back(std::move(tree));
  }
}

std::vector<TraceStore::HopStats> TraceStore::ComponentHopStats() const {
  struct Digests {
    TDigest wait{100.0};
    TDigest execute{100.0};
    uint64_t hops = 0;
  };
  std::map<std::string, Digests> by_component;
  for (const TraceTree& tree : trees_) {
    for (const TraceTree::Span& span : tree.spans) {
      if (span.event.parent_span == 0) continue;  // Roots carry no timings.
      Digests& d = by_component[span.component];
      d.wait.Add(static_cast<double>(span.event.wait_nanos));
      d.execute.Add(static_cast<double>(span.event.execute_nanos));
      d.hops++;
    }
  }
  std::vector<HopStats> stats;
  stats.reserve(by_component.size());
  for (auto& [component, d] : by_component) {
    HopStats s;
    s.component = component;
    s.hops = d.hops;
    s.wait_p50_us = d.wait.Quantile(0.5) / 1000.0;
    s.wait_p99_us = d.wait.Quantile(0.99) / 1000.0;
    s.execute_p50_us = d.execute.Quantile(0.5) / 1000.0;
    s.execute_p99_us = d.execute.Quantile(0.99) / 1000.0;
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace streamlib::platform
