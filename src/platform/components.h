#ifndef STREAMLIB_PLATFORM_COMPONENTS_H_
#define STREAMLIB_PLATFORM_COMPONENTS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "platform/topology.h"

namespace streamlib::platform {

/// Spout driven by a generator function: each call produces the next tuple
/// or nullopt at end of stream. The building block tests, benches and
/// examples use to feed synthetic workloads into topologies.
class GeneratorSpout : public Spout {
 public:
  using Generator = std::function<std::optional<Tuple>()>;

  explicit GeneratorSpout(Generator generator)
      : generator_(std::move(generator)) {}

  bool NextTuple(OutputCollector* collector) override {
    std::optional<Tuple> tuple = generator_();
    if (!tuple.has_value()) return false;
    collector->Emit(std::move(*tuple));
    return true;
  }

 private:
  Generator generator_;
};

/// Bolt wrapping a plain function — for map/filter/flat-map stages without
/// dedicated classes.
class FunctionBolt : public Bolt {
 public:
  using Fn = std::function<void(const Tuple&, OutputCollector*)>;
  using FinishFn = std::function<void(OutputCollector*)>;

  explicit FunctionBolt(Fn fn, FinishFn finish = nullptr)
      : fn_(std::move(fn)), finish_(std::move(finish)) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    fn_(input, collector);
  }

  void Finish(OutputCollector* collector) override {
    if (finish_) finish_(collector);
  }

 private:
  Fn fn_;
  FinishFn finish_;
};

/// Thread-safe terminal sink shared across sink-bolt tasks: collects every
/// tuple that reaches the end of the topology so callers can inspect
/// results after Run().
class TupleSink {
 public:
  void Append(const Tuple& tuple) {
    std::lock_guard<std::mutex> lock(mu_);
    tuples_.push_back(tuple);
  }

  std::vector<Tuple> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tuples_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tuples_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Tuple> tuples_;
};

/// Bolt that writes every input into a shared TupleSink.
class SinkBolt : public Bolt {
 public:
  explicit SinkBolt(TupleSink* sink) : sink_(sink) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    sink_->Append(input);
  }

 private:
  TupleSink* sink_;  // Not owned; must outlive the engine run.
};

/// Per-task word/key counter with fields-grouping semantics: counts string
/// keys (field 0) and emits (key, count) pairs at Finish — the canonical
/// word-count bolt of every streaming-platform tutorial, including this
/// paper's Storm/Heron exposition.
class CountingBolt : public Bolt {
 public:
  CountingBolt() = default;

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    counts_[input.Str(0)]++;
  }

  void Finish(OutputCollector* collector) override {
    for (const auto& [key, count] : counts_) {
      collector->Emit(Tuple::Of(key, static_cast<int64_t>(count)));
    }
  }

  const std::unordered_map<std::string, int64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<std::string, int64_t> counts_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_COMPONENTS_H_
