#include "platform/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "platform/recorder.h"

namespace streamlib::platform {

namespace {

/// Formats a double for JSON: finite, fixed precision, no locale surprises.
std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Escapes a string for a JSON literal (component names are identifiers,
/// but defensive escaping keeps the writer safe for any name).
std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace

TelemetryReport Telemetry::BuildReport() const {
  TelemetryReport report;
  report.sample_interval_ms = sample_interval_ms_;
  report.trace_sample_every = trace_sample_every_;
  if (registry_ != nullptr) {
    report.tasks.reserve(registry_->task_count());
    for (size_t i = 0; i < registry_->task_count(); i++) {
      const TaskMetrics& m = registry_->task(i);
      TelemetryReport::TaskRow row;
      row.component = m.component();
      row.task_index = m.task_index();
      row.emitted = m.emitted();
      row.executed = m.executed();
      row.acked = m.acked();
      row.failed = m.failed();
      row.backpressure_stalls = m.backpressure_stalls();
      row.faults_injected = m.faults_injected();
      row.bolt_exceptions = m.bolt_exceptions();
      row.flushes = m.flushes();
      row.flushed_tuples = m.flushed_tuples();
      row.max_queue_depth = m.max_queue_depth();
      row.avg_flush_size = m.AvgFlushSize();
      row.p50_latency_us = m.LatencyPercentileNanos(0.5) / 1000.0;
      row.p99_latency_us = m.LatencyPercentileNanos(0.99) / 1000.0;
      report.tasks.push_back(std::move(row));
    }
  }
  if (fault_plan_ != nullptr) {
    report.faults.enabled = true;
    report.faults.seed = fault_plan_->spec().seed;
    report.faults.by_kind = fault_plan_->Snapshot();
    report.faults.total_injected = fault_plan_->total_injected();
  }
  if (recorder_ != nullptr) {
    report.recording.enabled = true;
    report.recording.path = recorder_->path();
    report.recording.records = recorder_->records_written();
    report.recording.bytes = recorder_->bytes_written();
    report.recording.dropped = recorder_->dropped_records();
  }
  if (sampler_ != nullptr) report.time_series = sampler_->Snapshot();
  report.trace_trees = traces_.trees();
  report.hop_stats = traces_.ComponentHopStats();
  report.trace_events_dropped = traces_.dropped_events();
  report.complete_trace_trees = traces_.complete_tree_count();
  return report;
}

void TelemetryReport::WriteJson(std::ostream& out,
                                size_t max_json_trees) const {
  out << "{\n  \"schema_version\": 1,\n"
      << "  \"sample_interval_ms\": " << sample_interval_ms << ",\n"
      << "  \"trace_sample_every\": " << trace_sample_every << ",\n";

  out << "  \"fault_injection\": {\"enabled\": "
      << (faults.enabled ? "true" : "false") << ", \"seed\": " << faults.seed
      << ", \"total_injected\": " << faults.total_injected
      << ", \"by_kind\": {";
  for (size_t k = 0; k < kNumFaultKinds; k++) {
    out << JsonStr(FaultKindName(static_cast<FaultKind>(k))) << ": "
        << faults.by_kind[k] << (k + 1 < kNumFaultKinds ? ", " : "");
  }
  out << "}},\n";

  out << "  \"recording\": {\"enabled\": "
      << (recording.enabled ? "true" : "false")
      << ", \"path\": " << JsonStr(recording.path)
      << ", \"records\": " << recording.records
      << ", \"bytes\": " << recording.bytes
      << ", \"dropped\": " << recording.dropped << "},\n";

  out << "  \"serving\": ";
  WriteServingJson(out, serving, "  ");
  out << ",\n";

  out << "  \"tasks\": [\n";
  for (size_t i = 0; i < tasks.size(); i++) {
    const TaskRow& t = tasks[i];
    out << "    {\"task\": " << i << ", \"component\": "
        << JsonStr(t.component) << ", \"task_index\": " << t.task_index
        << ", \"emitted\": " << t.emitted << ", \"executed\": " << t.executed
        << ", \"acked\": " << t.acked << ", \"failed\": " << t.failed
        << ", \"backpressure_stalls\": " << t.backpressure_stalls
        << ", \"faults_injected\": " << t.faults_injected
        << ", \"bolt_exceptions\": " << t.bolt_exceptions
        << ", \"flushes\": " << t.flushes
        << ", \"flushed_tuples\": " << t.flushed_tuples
        << ", \"avg_flush_size\": " << JsonNum(t.avg_flush_size)
        << ", \"max_queue_depth\": " << t.max_queue_depth
        << ", \"p50_latency_us\": " << JsonNum(t.p50_latency_us)
        << ", \"p99_latency_us\": " << JsonNum(t.p99_latency_us) << "}"
        << (i + 1 < tasks.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"time_series\": {\n    \"samples\": [\n";
  for (size_t i = 0; i < time_series.size(); i++) {
    const TelemetrySample& s = time_series[i];
    out << "      {\"t_ms\": " << s.t_ms << ", \"interval_ms\": "
        << s.interval_ms << ", \"tasks\": [";
    for (size_t j = 0; j < s.tasks.size(); j++) {
      const TaskSampleDelta& d = s.tasks[j];
      out << "{\"task\": " << d.task << ", \"emitted\": " << d.emitted
          << ", \"executed\": " << d.executed << ", \"acked\": " << d.acked
          << ", \"failed\": " << d.failed
          << ", \"backpressure_stalls\": " << d.backpressure_stalls
          << ", \"faults_injected\": " << d.faults_injected
          << ", \"flushes\": " << d.flushes
          << ", \"flushed_tuples\": " << d.flushed_tuples
          << ", \"queue_depth\": " << d.queue_depth << "}"
          << (j + 1 < s.tasks.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < time_series.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n";

  out << "  \"traces\": {\n"
      << "    \"tree_count\": " << trace_trees.size() << ",\n"
      << "    \"complete_trees\": " << complete_trace_trees << ",\n"
      << "    \"dropped_events\": " << trace_events_dropped << ",\n"
      << "    \"hop_stats\": [\n";
  for (size_t i = 0; i < hop_stats.size(); i++) {
    const TraceStore::HopStats& h = hop_stats[i];
    out << "      {\"component\": " << JsonStr(h.component)
        << ", \"hops\": " << h.hops
        << ", \"wait_p50_us\": " << JsonNum(h.wait_p50_us)
        << ", \"wait_p99_us\": " << JsonNum(h.wait_p99_us)
        << ", \"execute_p50_us\": " << JsonNum(h.execute_p50_us)
        << ", \"execute_p99_us\": " << JsonNum(h.execute_p99_us) << "}"
        << (i + 1 < hop_stats.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"trees\": [\n";
  // Prefer complete trees for the capped example set.
  std::vector<const TraceTree*> chosen;
  for (const TraceTree& tree : trace_trees) {
    if (tree.complete && chosen.size() < max_json_trees) {
      chosen.push_back(&tree);
    }
  }
  for (const TraceTree& tree : trace_trees) {
    if (chosen.size() >= max_json_trees) break;
    if (!tree.complete) chosen.push_back(&tree);
  }
  for (size_t i = 0; i < chosen.size(); i++) {
    const TraceTree& tree = *chosen[i];
    out << "      {\"trace_id\": " << tree.trace_id << ", \"complete\": "
        << (tree.complete ? "true" : "false") << ", \"end_to_end_us\": "
        << JsonNum(static_cast<double>(tree.end_to_end_nanos) / 1000.0)
        << ", \"spans\": [";
    for (size_t j = 0; j < tree.spans.size(); j++) {
      const TraceTree::Span& span = tree.spans[j];
      out << "{\"span\": " << span.event.span_id
          << ", \"parent\": " << span.event.parent_span
          << ", \"task\": " << span.event.task << ", \"component\": "
          << JsonStr(span.component) << ", \"wait_us\": "
          << JsonNum(static_cast<double>(span.event.wait_nanos) / 1000.0)
          << ", \"execute_us\": "
          << JsonNum(static_cast<double>(span.event.execute_nanos) / 1000.0)
          << "}" << (j + 1 < tree.spans.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < chosen.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }\n}\n";
}

void TelemetryReport::WriteServingJson(std::ostream& out,
                                       const ServingSummary& serving,
                                       const char* line_indent) {
  out << "{\"enabled\": " << (serving.enabled ? "true" : "false")
      << ", \"snapshot_version\": " << serving.snapshot_version
      << ", \"served\": " << serving.served
      << ", \"rejected_quota\": " << serving.rejected_quota
      << ", \"rejected_queue\": " << serving.rejected_queue
      << ", \"cache_hits\": " << serving.cache_hits
      << ", \"cache_misses\": " << serving.cache_misses
      << ",\n" << line_indent << "  \"tenants\": [";
  for (size_t i = 0; i < serving.tenants.size(); i++) {
    const ServingTenantRow& t = serving.tenants[i];
    out << "\n" << line_indent << "    {\"tenant\": " << JsonStr(t.tenant)
        << ", \"served\": " << t.served
        << ", \"rejected_quota\": " << t.rejected_quota
        << ", \"rejected_queue\": " << t.rejected_queue
        << ", \"cache_hits\": " << t.cache_hits
        << ", \"cache_misses\": " << t.cache_misses << "}"
        << (i + 1 < serving.tenants.size() ? "," : "");
  }
  if (!serving.tenants.empty()) out << "\n" << line_indent << "  ";
  out << "]}";
}

void TelemetryReport::WriteTable(std::ostream& out) const {
  char line[256];
  if (serving.enabled) {
    std::snprintf(line, sizeof(line),
                  "== telemetry: query serving (snapshot v%llu, %llu served, "
                  "%llu rejected) ==\n",
                  static_cast<unsigned long long>(serving.snapshot_version),
                  static_cast<unsigned long long>(serving.served),
                  static_cast<unsigned long long>(serving.rejected_quota +
                                                  serving.rejected_queue));
    out << line;
    std::snprintf(line, sizeof(line), "  %-16s %10s %10s %10s %10s %10s\n",
                  "tenant", "served", "rej-quota", "rej-queue", "cache-hit",
                  "cache-miss");
    out << line;
    for (const ServingTenantRow& t : serving.tenants) {
      std::snprintf(line, sizeof(line),
                    "  %-16s %10llu %10llu %10llu %10llu %10llu\n",
                    t.tenant.c_str(),
                    static_cast<unsigned long long>(t.served),
                    static_cast<unsigned long long>(t.rejected_quota),
                    static_cast<unsigned long long>(t.rejected_queue),
                    static_cast<unsigned long long>(t.cache_hits),
                    static_cast<unsigned long long>(t.cache_misses));
      out << line;
    }
  }
  if (faults.enabled) {
    std::snprintf(line, sizeof(line),
                  "== telemetry: fault injection (seed 0x%llx, %llu "
                  "injected) ==\n",
                  static_cast<unsigned long long>(faults.seed),
                  static_cast<unsigned long long>(faults.total_injected));
    out << line;
    for (size_t k = 0; k < kNumFaultKinds; k++) {
      if (faults.by_kind[k] == 0) continue;
      std::snprintf(line, sizeof(line), "  %-16s %8llu\n",
                    FaultKindName(static_cast<FaultKind>(k)),
                    static_cast<unsigned long long>(faults.by_kind[k]));
      out << line;
    }
  }
  out << "== telemetry: per-task counters ==\n";
  std::snprintf(line, sizeof(line),
                "  %-12s %4s %10s %10s %8s %8s %9s %9s %8s %8s\n",
                "component", "task", "emitted", "executed", "stalls",
                "maxdepth", "avgflush", "p50us", "p99us", "acked");
  out << line;
  for (const TaskRow& t : tasks) {
    std::snprintf(
        line, sizeof(line),
        "  %-12s %4u %10llu %10llu %8llu %8llu %9.1f %9.1f %8.1f %8llu\n",
        t.component.c_str(), t.task_index,
        static_cast<unsigned long long>(t.emitted),
        static_cast<unsigned long long>(t.executed),
        static_cast<unsigned long long>(t.backpressure_stalls),
        static_cast<unsigned long long>(t.max_queue_depth), t.avg_flush_size,
        t.p50_latency_us, t.p99_latency_us,
        static_cast<unsigned long long>(t.acked));
    out << line;
  }

  if (!time_series.empty()) {
    std::snprintf(line, sizeof(line),
                  "== telemetry: time series (%zu samples @ %u ms) ==\n",
                  time_series.size(), sample_interval_ms);
    out << line;
    // Engine-wide per-interval roll-up; cap rows to keep logs readable.
    const size_t kMaxRows = 12;
    const size_t step =
        time_series.size() > kMaxRows ? time_series.size() / kMaxRows : 1;
    std::snprintf(line, sizeof(line), "  %8s %12s %12s %10s %8s\n", "t_ms",
                  "emitted/s", "executed/s", "max depth", "stalls");
    out << line;
    for (size_t i = 0; i < time_series.size(); i += step) {
      const TelemetrySample& s = time_series[i];
      uint64_t emitted = 0, executed = 0, stalls = 0, depth = 0;
      for (const TaskSampleDelta& d : s.tasks) {
        emitted += d.emitted;
        executed += d.executed;
        stalls += d.backpressure_stalls;
        depth = std::max(depth, d.queue_depth);
      }
      const double secs =
          s.interval_ms > 0 ? static_cast<double>(s.interval_ms) / 1000.0 : 0;
      std::snprintf(line, sizeof(line),
                    "  %8llu %12.0f %12.0f %10llu %8llu\n",
                    static_cast<unsigned long long>(s.t_ms),
                    secs > 0 ? static_cast<double>(emitted) / secs : 0.0,
                    secs > 0 ? static_cast<double>(executed) / secs : 0.0,
                    static_cast<unsigned long long>(depth),
                    static_cast<unsigned long long>(stalls));
      out << line;
    }
  }

  if (!hop_stats.empty()) {
    std::snprintf(
        line, sizeof(line),
        "== telemetry: trace hops (%zu trees, %llu complete, 1/%u roots) ==\n",
        trace_trees.size(),
        static_cast<unsigned long long>(complete_trace_trees),
        trace_sample_every);
    out << line;
    std::snprintf(line, sizeof(line), "  %-12s %8s %10s %10s %10s %10s\n",
                  "component", "hops", "wait p50", "wait p99", "exec p50",
                  "exec p99");
    out << line;
    for (const TraceStore::HopStats& h : hop_stats) {
      std::snprintf(line, sizeof(line),
                    "  %-12s %8llu %9.1fus %9.1fus %9.2fus %9.2fus\n",
                    h.component.c_str(),
                    static_cast<unsigned long long>(h.hops), h.wait_p50_us,
                    h.wait_p99_us, h.execute_p50_us, h.execute_p99_us);
      out << line;
    }
    // One example span tree, rendered as an indented hop list.
    for (const TraceTree& tree : trace_trees) {
      if (!tree.complete || tree.spans.empty()) continue;
      std::snprintf(
          line, sizeof(line),
          "  example tree (trace %llu, end-to-end %.1f us):\n",
          static_cast<unsigned long long>(tree.trace_id),
          static_cast<double>(tree.end_to_end_nanos) / 1000.0);
      out << line;
      // Depth-first from the root (span index 0).
      std::vector<std::pair<size_t, int>> stack{{0, 0}};
      while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const TraceTree::Span& span = tree.spans[idx];
        std::snprintf(line, sizeof(line),
                      "    %*s%s[%u] wait=%.1fus exec=%.2fus\n", depth * 2,
                      "", span.component.c_str(), span.event.task,
                      static_cast<double>(span.event.wait_nanos) / 1000.0,
                      static_cast<double>(span.event.execute_nanos) / 1000.0);
        out << line;
        for (auto it = span.children.rbegin(); it != span.children.rend();
             ++it) {
          stack.push_back({*it, depth + 1});
        }
      }
      break;
    }
  }
}

}  // namespace streamlib::platform
