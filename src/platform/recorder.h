#ifndef STREAMLIB_PLATFORM_RECORDER_H_
#define STREAMLIB_PLATFORM_RECORDER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "platform/engine.h"
#include "platform/fault.h"
#include "platform/topology.h"
#include "platform/tuple.h"

namespace streamlib::platform {

/// \file recorder.h
/// The flight recorder: captures one topology run — every spout emission
/// plus everything nondeterminism derives from (engine config, fault spec,
/// RNG seeds, topology shape) — into a single compact file that fully
/// describes the run. The replayer (replay.h) re-executes a recording
/// deterministically; the debugger CLI (tools/streamlib_debug.cc) steps
/// through it.
///
/// ## SLFR file format (version 1)
///
///   file   := header segment*
///   header := u32 magic 'SLFR' | u32 version
///   segment:= u8 kind | u32 payload_len | u32 crc32(payload) | payload
///
/// Segment kinds: 1 = meta (exactly one, first), 2 = records (zero or
/// more), 3 = end (exactly one, last). The meta payload serializes the
/// EngineConfig + FaultSpec and a topology fingerprint (component names,
/// spout/bolt, parallelism, subscriptions); the records payload is a
/// varint count followed by varint-framed (spout_task, tuple) records;
/// the end payload carries the total record count and an optional run
/// summary (root/fault/task counters) so replay results can be verified
/// against the original run from the file alone. Files are written to a
/// `.tmp` sibling and renamed into place on Finalize, mirroring
/// KvCheckpointStore — a crash mid-recording never leaves a torn file at
/// the target path. Every malformed input to the reader yields a typed
/// Status (Corruption / InvalidArgument), never UB, matching the
/// SketchBlob envelope discipline.

inline constexpr uint32_t kRecordingMagic = 0x52464c53u;  // "SLFR"
inline constexpr uint32_t kRecordingVersion = 1;

/// Tuple wire codec shared by the recorder and replayer. One record is
/// varint field-count then per field a u8 type tag (0 = null, 1 = bool,
/// 2 = int64 zigzag varint, 3 = double, 4 = length-prefixed string).
void EncodeTuple(ByteWriter& w, const Tuple& tuple);
Status DecodeTuple(ByteReader& r, Tuple* out);

/// Structural identity of a topology — everything routing depends on,
/// nothing about the user code inside components. A recording embeds the
/// fingerprint of the topology it was captured from; replay refuses a
/// topology whose fingerprint differs (the recording would route tuples
/// differently and silently diverge).
struct TopologyFingerprint {
  struct Input {
    std::string source;
    uint8_t grouping_kind = 0;
    uint64_t field_index = 0;
  };
  struct Component {
    std::string name;
    bool is_spout = false;
    uint32_t parallelism = 1;
    std::vector<Input> inputs;
  };
  std::vector<Component> components;
};

TopologyFingerprint FingerprintOf(const Topology& topology);

/// OK iff `topology` has exactly the recorded structure; otherwise a
/// FailedPrecondition naming the first mismatch.
Status MatchesTopology(const TopologyFingerprint& fingerprint,
                       const Topology& topology);

/// Final counters of the recorded run, embedded in the end segment.
/// Replay reproduces these exactly under the determinism contract
/// (DESIGN.md §11); tests and `streamlib_debug replay` compare against
/// them.
struct RunSummary {
  uint64_t completed_roots = 0;
  uint64_t failed_roots = 0;
  std::array<uint64_t, kNumFaultKinds> faults_by_kind{};
  struct TaskCounters {
    uint64_t emitted = 0;
    uint64_t executed = 0;
    uint64_t acked = 0;
    uint64_t failed = 0;
    uint64_t bolt_exceptions = 0;
  };
  std::vector<TaskCounters> tasks;  // Global task-index order.
};

/// One spout emission as recorded: which spout task produced it, and the
/// tuple's field values (routing metadata is reconstructed by replay).
struct RecordedEmission {
  uint32_t spout_task = 0;  // Global task index.
  Tuple tuple;
};

/// A fully parsed recording.
struct RecordedRun {
  EngineConfig config;  // `recorder` pointer is always null after read.
  TopologyFingerprint fingerprint;
  std::vector<RecordedEmission> emissions;
  bool has_summary = false;
  RunSummary summary;
};

/// Parses an SLFR file. Typed errors: NotFound (missing file), Corruption
/// (bad magic, truncated segment, CRC mismatch, record-count mismatch,
/// missing end segment, trailing bytes), InvalidArgument (unsupported
/// version).
Result<RecordedRun> ReadRecording(const std::string& path);

/// Captures a run to disk. Create() writes the header + meta segment to
/// `<path>.tmp` immediately; RecordEmission() (thread-safe — every spout
/// task calls it) frames records into an in-memory buffer flushed as a
/// records segment every ~256 KiB; Finalize() writes the end segment and
/// atomically renames the file into place.
///
/// Write errors never abort the run being recorded: the recorder latches
/// a failed state, counts subsequent records as dropped, and Finalize()
/// reports the first error (leaving no file at the target path).
class RunRecorder {
 public:
  static Result<std::unique_ptr<RunRecorder>> Create(std::string path,
                                                     const EngineConfig& config,
                                                     const Topology& topology);
  ~RunRecorder();

  RunRecorder(const RunRecorder&) = delete;
  RunRecorder& operator=(const RunRecorder&) = delete;

  /// Appends one spout emission. Calls for *different* spout tasks may
  /// run concurrently (each task owns a private buffer shard); calls for
  /// the same task must be serialized by the caller, and Finalize() must
  /// not overlap any call. The engine's lifecycle provides both: one
  /// executor thread drives each spout task, and Finalize runs after
  /// Run() has joined them. This single-writer contract is what lets the
  /// emit hot path run without a lock or interlocked op.
  void RecordEmission(uint32_t spout_task, const Tuple& tuple);

  /// Attaches the run's final counters; must precede Finalize() to be
  /// included in the end segment.
  void SetSummary(const RunSummary& summary);

  /// Flushes, writes the end segment, renames into place. Idempotent;
  /// returns the first write error if the recording failed mid-run.
  Status Finalize();

  const std::string& path() const { return path_; }
  /// Total emissions appended, summed across the per-spout-task shards.
  uint64_t records_written() const;
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_records() const {
    return dropped_records_.load(std::memory_order_relaxed);
  }
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

 private:
  /// Per-spout-task record buffer, written only by the thread driving
  /// that task (see RecordEmission's contract) — a single shared buffer
  /// + counter measurably throttled multi-spout topologies (lock and
  /// counter RMWs at every emission). A shard's records reach the file
  /// in its own append order; *cross*-shard interleaving in the file is
  /// whatever the flush timing produced, which is sound because the live
  /// cross-task interleaving was scheduler-determined nondeterminism to
  /// begin with (replay only needs per-task program order — determinism
  /// contract condition (1), replay.h).
  struct Shard;

  RunRecorder(std::string path, std::FILE* file);

  /// Writes one framed segment directly to the file; latches failure.
  /// Caller holds io_mu_ (or is pre-concurrency, in Create()).
  void WriteSegment(uint8_t kind, const std::vector<uint8_t>& payload);
  /// Frames `count` buffered records as a records segment and writes it
  /// without materializing the payload (the record span is checksummed
  /// and fwritten in place). Caller holds io_mu_.
  void WriteRecordsSegment(const ByteWriter& records, uint64_t count);

  const std::string path_;
  const std::string tmp_path_;
  std::FILE* file_;  // Null once closed.

  /// Background segment writer. Emit threads hand off full shard
  /// buffers (a swap + queue push every ~256 KiB of records) and this
  /// thread does the framing, CRC, and fwrite — running that on the
  /// emit threads measurably cost ~10% end-to-end word-count
  /// throughput, nearly the recorder's entire overhead. Drained buffers
  /// recycle through spares_, so the steady state allocates nothing (a
  /// fresh 256 KiB buffer per segment is an mmap/munmap pair plus a
  /// page fault per rewritten line). Global segment order is the queue
  /// (handoff) order; each shard's handoffs are sequential on its owner
  /// thread, preserving per-shard append order in the file.
  struct PendingSegment {
    ByteWriter records;
    uint64_t count = 0;
  };
  void WriterLoop();
  /// Queues one records segment; blocks if the writer is more than
  /// kMaxPendingSegments behind (slow-filesystem backstop that bounds
  /// memory instead of growing without limit). `refill`, when non-null,
  /// receives a recycled (or freshly reserved) empty buffer.
  void EnqueueSegment(ByteWriter&& records, uint64_t count,
                      ByteWriter* refill);

  /// Lock order: mu_, then queue_mu_, then io_mu_. The emit hot path
  /// takes no lock at all (single-writer shards); a full shard takes
  /// queue_mu_ briefly to hand its buffer off; only the writer thread
  /// and Finalize touch io_mu_.
  std::mutex mu_;  // Guards summary_/has_summary_/finalized_.
  std::vector<std::unique_ptr<Shard>> shards_;  // Indexed by spout task.
  bool has_summary_ = false;
  RunSummary summary_;
  bool finalized_ = false;
  std::mutex io_mu_;    // Guards file_ writes and first_error_.
  Status first_error_;

  std::thread writer_;
  std::mutex queue_mu_;
  std::condition_variable queue_ready_cv_;
  std::condition_variable queue_space_cv_;
  std::deque<PendingSegment> queue_;
  std::vector<ByteWriter> spares_;  // Recycled segment buffers.
  bool writer_stop_ = false;

  /// Set (before any shard is drained) by Finalize(); checked by
  /// RecordEmission under the shard mutex, so a drained shard can never
  /// absorb a late record that would miss the file.
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> dropped_records_{0};
  std::atomic<bool> failed_{false};
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_RECORDER_H_
