#include "platform/plan.h"

#include <sstream>

namespace streamlib::platform {

TopologyPlan TopologyPlan::FromTopology(const Topology& topology) {
  TopologyPlan plan;
  const auto& components = topology.components();
  plan.nodes_.reserve(components.size());
  for (size_t i = 0; i < components.size(); i++) {
    PlanNode node;
    node.component_index = i;
    node.name = components[i].name;
    node.is_spout = components[i].is_spout;
    node.parallelism = components[i].parallelism;
    plan.nodes_.push_back(std::move(node));
  }
  for (size_t i = 0; i < components.size(); i++) {
    for (const Subscription& sub : components[i].inputs) {
      PlanEdge edge;
      edge.from = topology.IndexOf(sub.source);
      edge.to = i;
      edge.grouping = sub.grouping;
      edge.shards = components[i].parallelism;
      const size_t edge_index = plan.edges_.size();
      plan.nodes_[edge.from].out_edges.push_back(edge_index);
      plan.nodes_[edge.to].in_edges.push_back(edge_index);
      plan.edges_.push_back(std::move(edge));
    }
  }
  return plan;
}

Status TopologyPlan::FusionLegality(const PlanNode& from, const PlanNode& to,
                                    const PlanEdge& edge,
                                    const FusionOptions& options) {
  // Rule 1: fusion is opt-in per engine run.
  if (!options.enable_fusion) {
    return Status::FailedPrecondition("fusion disabled");
  }
  // Rule 2: fused stages run inline on the producer task's thread, which
  // only exists as a 1:1 mapping in dedicated mode. The multiplexed worker
  // pool re-schedules tasks dynamically — fusing there would pin work to
  // the wrong worker.
  if (!options.dedicated_mode) {
    return Status::FailedPrecondition(
        "multiplexed execution: fused stages need a dedicated thread");
  }
  // Rule 3: epoch barriers align per queued edge (EpochAligner counts
  // producer arrivals); a fused edge has no barrier hop to align on.
  if (options.epochs_enabled) {
    return Status::FailedPrecondition(
        "epoch barriers align on queued edges");
  }
  // Rule 4: the flight recorder taps spout emissions in the queued Emit
  // path and replays through a queued-shape topology; a fused spout chain
  // would record a stream the replayer cannot reproduce.
  if (options.recorder_attached && from.is_spout) {
    return Status::FailedPrecondition(
        "recorder-tapped spout: recordings replay through queued edges");
  }
  // Rule 5: fields grouping exists to partition keys across consumer
  // tasks; collapsing it in-thread would silently break stateful sharding.
  if (edge.grouping.kind == GroupingKind::kFields) {
    return Status::InvalidArgument(
        "fields grouping requires hash routing across shards");
  }
  // Rule 6: broadcast needs one copy per consumer task — inherently a
  // fan-out delivery, never a 1:1 inline call.
  if (edge.grouping.kind == GroupingKind::kBroadcast) {
    return Status::InvalidArgument("broadcast fans out to every shard");
  }
  // Rule 7: parallelism compatibility. A fused shuffle pairs producer
  // task i with consumer task i — a legal refinement of "uniform random
  // task" — which needs equal parallelism. Global demands one consumer
  // task fed by everything, so fusing needs a single producer task too.
  if (edge.grouping.kind == GroupingKind::kShuffle &&
      from.parallelism != to.parallelism) {
    return Status::InvalidArgument("shuffle with mismatched parallelism (" +
                                   std::to_string(from.parallelism) + " vs " +
                                   std::to_string(to.parallelism) + ")");
  }
  if (edge.grouping.kind == GroupingKind::kGlobal &&
      (from.parallelism != 1 || to.parallelism != 1)) {
    return Status::InvalidArgument(
        "global grouping fuses only at parallelism 1");
  }
  // Rule 8: a consumer with several inputs merges streams from distinct
  // producer threads — it must stay queued so all producers can reach it.
  if (to.in_edges.size() != 1) {
    return Status::InvalidArgument("fan-in: consumer has " +
                                   std::to_string(to.in_edges.size()) +
                                   " input edges");
  }
  // Rule 9: a producer with several output subscriptions routes each emit
  // to every one of them; fusing one arm would starve the others.
  if (from.out_edges.size() != 1) {
    return Status::InvalidArgument("fan-out: producer has " +
                                   std::to_string(from.out_edges.size()) +
                                   " output edges");
  }
  return Status::OK();
}

void TopologyPlan::RunFusionPass(const FusionOptions& options) {
  for (PlanEdge& edge : edges_) {
    const Status legality =
        FusionLegality(nodes_[edge.from], nodes_[edge.to], edge, options);
    if (legality.ok()) {
      edge.channel = EdgeChannel::kFused;
      edge.veto.clear();
    } else {
      edge.channel = EdgeChannel::kQueued;
      edge.veto = legality.message();
    }
    edge.tracked = options.tracked;
    edge.barriered = options.epochs_enabled;
  }

  // Group fused edges into maximal chains. A chain head is a node with a
  // fused out-edge but no fused in-edge; rules 8/9 guarantee each node has
  // at most one fused edge on each side, so chains are simple paths.
  chains_.clear();
  auto fused_out = [&](size_t node) -> const PlanEdge* {
    for (size_t e : nodes_[node].out_edges) {
      if (edges_[e].channel == EdgeChannel::kFused) return &edges_[e];
    }
    return nullptr;
  };
  auto has_fused_in = [&](size_t node) {
    for (size_t e : nodes_[node].in_edges) {
      if (edges_[e].channel == EdgeChannel::kFused) return true;
    }
    return false;
  };
  for (size_t n = 0; n < nodes_.size(); n++) {
    if (has_fused_in(n) || fused_out(n) == nullptr) continue;
    std::vector<size_t> chain{n};
    for (const PlanEdge* e = fused_out(n); e != nullptr;
         e = fused_out(chain.back())) {
      chain.push_back(e->to);
    }
    chains_.push_back(std::move(chain));
  }
}

size_t TopologyPlan::fused_edge_count() const {
  size_t count = 0;
  for (const PlanEdge& edge : edges_) {
    if (edge.channel == EdgeChannel::kFused) count++;
  }
  return count;
}

std::string TopologyPlan::ToString() const {
  std::ostringstream out;
  out << "plan: " << nodes_.size() << " nodes, " << edges_.size()
      << " edges, " << fused_edge_count() << " fused, " << chains_.size()
      << " chains\n";
  for (const PlanEdge& edge : edges_) {
    out << "  " << nodes_[edge.from].name << " -> " << nodes_[edge.to].name
        << " [" << GroupingKindName(edge.grouping.kind) << " x" << edge.shards
        << "] "
        << (edge.channel == EdgeChannel::kFused ? "FUSED" : "queued");
    if (!edge.veto.empty()) out << " (veto: " << edge.veto << ")";
    out << "\n";
  }
  for (const std::vector<size_t>& chain : chains_) {
    out << "  chain:";
    for (size_t n : chain) out << " " << nodes_[n].name;
    out << "\n";
  }
  return out.str();
}

}  // namespace streamlib::platform
