#include "platform/replay.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "platform/fault.h"

namespace streamlib::platform {

/// One parallel instance of a component inside the replayer. Mirrors the
/// live engine's Task minus the threading surface: no queues (the
/// replayer's global FIFO preserves per-producer delivery order, which is
/// all the determinism contract needs), no spout instance (emissions come
/// from the recording).
struct ReplayEngine::RTask {
  size_t global_index = 0;
  size_t component_index = 0;
  uint32_t task_index = 0;
  bool is_spout = false;
  std::unique_ptr<Bolt> bolt;  // Null for spout tasks.
  std::unique_ptr<ReplayCollector> collector;
  TaskMetrics* metrics = nullptr;
  // Same site ids as the live engine (global_index * 4 + role), so each
  // site's PRNG stream is byte-identical to the recorded run's.
  std::unique_ptr<FaultSite> transport_faults;
  std::unique_ptr<FaultSite> executor_faults;
  std::unique_ptr<FaultSite> stall_faults;
  uint64_t inputs_seen = 0;  // Tuples delivered (kTaskTuple breakpoints).
};

struct ReplayEngine::Edge {
  Grouping grouping;
  std::vector<RTask*> targets;
};

/// One tuple in flight to a bolt task.
struct ReplayEngine::Delivery {
  RTask* target = nullptr;
  Tuple tuple;
  uint64_t root_id = 0;
  uint64_t edge_id = 0;
};

/// Mirror of the live engine's TaskCollector: identical per-task RNG
/// seeding, identical routing switch, identical transport fault-draw
/// order (delay, drop, then duplicate — and no duplicate draw after a
/// drop). Instead of staging into per-target buffers it appends to the
/// replayer's FIFO; instead of sending acker events it folds XOR values
/// into the synchronous root ledger.
class ReplayEngine::ReplayCollector : public OutputCollector {
 public:
  ReplayCollector(ReplayEngine* engine, RTask* task, uint64_t seed)
      : engine_(engine), task_(task), rng_(seed) {}

  void BeginExecute(uint64_t root_id) {
    current_root_ = root_id;
    xor_out_ = 0;
  }
  uint64_t EndExecute() { return xor_out_; }

  uint64_t LastRootId() const override { return last_spout_root_; }

  void Emit(Tuple tuple) override {
    const bool from_spout = task_->is_spout;
    const bool track =
        engine_->run_.config.semantics == DeliverySemantics::kAtLeastOnce;
    uint64_t root = current_root_;
    if (from_spout && track) {
      root = engine_->next_root_id_++;
      last_spout_root_ = root;
      xor_out_ = 0;
    }

    targets_scratch_.clear();
    for (const Edge& edge : engine_->outgoing_[task_->component_index]) {
      switch (edge.grouping.kind) {
        case GroupingKind::kBroadcast:
          for (RTask* target : edge.targets) {
            targets_scratch_.push_back(target);
          }
          break;
        case GroupingKind::kShuffle:
          targets_scratch_.push_back(
              edge.targets[rng_.NextBounded(edge.targets.size())]);
          break;
        case GroupingKind::kFields: {
          const uint64_t h =
              HashOfValue(tuple.field(edge.grouping.field_index), 77);
          targets_scratch_.push_back(edge.targets[h % edge.targets.size()]);
          break;
        }
        case GroupingKind::kGlobal:
          targets_scratch_.push_back(edge.targets[0]);
          break;
      }
    }

    uint64_t edge_xor = 0;
    for (size_t i = 0; i < targets_scratch_.size(); i++) {
      const bool last = i + 1 == targets_scratch_.size();
      edge_xor ^= Stage(targets_scratch_[i],
                        last ? std::move(tuple) : Tuple(tuple), root);
    }
    task_->metrics->IncEmitted();

    if (track) {
      if (from_spout) {
        engine_->InitRoot(root, edge_xor, task_->global_index);
      } else if (root != 0) {
        xor_out_ ^= edge_xor;
      }
    }
  }

 private:
  uint64_t Stage(RTask* target, Tuple&& tuple, uint64_t root) {
    FaultSite* faults = task_->transport_faults.get();
    if (faults != nullptr) {
      // Consult the delay draw for stream parity but never sleep: replay
      // reproduces decisions, not wall-clock.
      faults->DeliveryDelayMicros();
      if (faults->FireDropTuple()) {
        return root != 0 ? engine_->next_edge_id_++ : 0;
      }
    }
    const uint64_t edge_id = root != 0 ? engine_->next_edge_id_++ : 0;
    uint64_t edge_xor = edge_id;
    Delivery delivery{target, std::move(tuple), root, edge_id};
    if (faults != nullptr && faults->FireDuplicateTuple()) {
      const uint64_t dup_edge = root != 0 ? engine_->next_edge_id_++ : 0;
      Delivery dup{target, delivery.tuple, root, dup_edge};
      engine_->work_.push_back(std::move(delivery));
      engine_->work_.push_back(std::move(dup));
      edge_xor ^= dup_edge;
    } else {
      engine_->work_.push_back(std::move(delivery));
    }
    return edge_xor;
  }

  ReplayEngine* engine_;
  RTask* task_;
  Rng rng_;
  std::vector<RTask*> targets_scratch_;
  uint64_t current_root_ = 0;
  uint64_t xor_out_ = 0;
  uint64_t last_spout_root_ = 0;
};

/// Mirror of the live engine's FinishCollector, including the recursive
/// reseeding (downstream collectors seeded from rng_.Next()) so finish-
/// pass shuffle routing matches the original run draw for draw.
class ReplayEngine::ReplayFinishCollector : public OutputCollector {
 public:
  ReplayFinishCollector(ReplayEngine* engine, RTask* task, uint64_t seed)
      : engine_(engine), task_(task), rng_(seed) {}

  void Emit(Tuple tuple) override {
    task_->metrics->IncEmitted();
    for (const Edge& edge : engine_->outgoing_[task_->component_index]) {
      switch (edge.grouping.kind) {
        case GroupingKind::kBroadcast:
          for (RTask* target : edge.targets) Deliver(target, tuple);
          break;
        case GroupingKind::kShuffle:
          Deliver(edge.targets[rng_.NextBounded(edge.targets.size())], tuple);
          break;
        case GroupingKind::kFields: {
          const uint64_t h =
              HashOfValue(tuple.field(edge.grouping.field_index), 77);
          Deliver(edge.targets[h % edge.targets.size()], tuple);
          break;
        }
        case GroupingKind::kGlobal:
          Deliver(edge.targets[0], tuple);
          break;
      }
    }
  }

 private:
  void Deliver(RTask* target, const Tuple& tuple) {
    ReplayFinishCollector downstream(engine_, target, rng_.Next());
    target->bolt->Execute(tuple, &downstream);
    target->metrics->IncExecuted();
  }

  ReplayEngine* engine_;
  RTask* task_;
  Rng rng_;
};

ReplayEngine::ReplayEngine(Topology topology, RecordedRun run,
                           ReplayOptions options)
    : topology_(std::move(topology)),
      run_(std::move(run)),
      options_(options) {}

ReplayEngine::~ReplayEngine() = default;

Status ReplayEngine::Prepare() {
  if (prepared_) {
    return Status::FailedPrecondition("ReplayEngine::Prepare called twice");
  }
  STREAMLIB_RETURN_NOT_OK(MatchesTopology(run_.fingerprint, topology_));
  STREAMLIB_RETURN_NOT_OK(run_.config.Validate());

  if (run_.config.faults.Enabled()) {
    fault_plan_ = std::make_unique<FaultPlan>(run_.config.faults);
  }

  const auto& components = topology_.components();
  std::vector<std::vector<RTask*>> tasks_by_component(components.size());
  for (size_t ci = 0; ci < components.size(); ci++) {
    const ComponentSpec& spec = components[ci];
    for (uint32_t ti = 0; ti < spec.parallelism; ti++) {
      auto task = std::make_unique<RTask>();
      task->global_index = tasks_.size();
      task->component_index = ci;
      task->task_index = ti;
      task->is_spout = spec.is_spout;
      task->metrics = &metrics_.RegisterTask(spec.name, ti);
      if (!spec.is_spout) task->bolt = spec.bolt_factory();
      if (fault_plan_ != nullptr) {
        task->transport_faults =
            fault_plan_->MakeSite(task->global_index * 4 + 0, task->metrics);
        task->executor_faults =
            fault_plan_->MakeSite(task->global_index * 4 + 1, task->metrics);
        if (!spec.is_spout && run_.config.faults.queue_stall_prob > 0) {
          task->stall_faults =
              fault_plan_->MakeSite(task->global_index * 4 + 2, task->metrics);
        }
      }
      task->collector = std::make_unique<ReplayCollector>(
          this, task.get(),
          run_.config.seed ^
              (0x9e3779b97f4a7c15ULL * (task->global_index + 1)));
      tasks_by_component[ci].push_back(task.get());
      tasks_.push_back(std::move(task));
    }
  }

  outgoing_.assign(components.size(), {});
  for (size_t ci = 0; ci < components.size(); ci++) {
    for (const Subscription& sub : components[ci].inputs) {
      const size_t source = topology_.IndexOf(sub.source);
      Edge edge;
      edge.grouping = sub.grouping;
      edge.targets = tasks_by_component[ci];
      outgoing_[source].push_back(std::move(edge));
    }
  }

  metrics_.Freeze();

  for (auto& task : tasks_) {
    if (task->bolt != nullptr) {
      task->bolt->Prepare(task->task_index,
                          components[task->component_index].parallelism);
    }
  }

  for (const RecordedEmission& emission : run_.emissions) {
    if (emission.spout_task >= tasks_.size() ||
        !tasks_[emission.spout_task]->is_spout) {
      return Status::Corruption(
          "recording: emission references task " +
          std::to_string(emission.spout_task) + " which is not a spout task");
    }
  }

  prepared_ = true;
  return Status::OK();
}

void ReplayEngine::AddBreakpoint(const Breakpoint& breakpoint) {
  breakpoints_.push_back(breakpoint);
}

void ReplayEngine::InitRoot(uint64_t root, uint64_t edge_xor,
                            size_t spout_task) {
  STREAMLIB_CHECK_MSG(!root_active_,
                      "replay: a new root opened before the previous tree "
                      "drained");
  root_active_ = true;
  root_id_ = root;
  root_value_ = edge_xor;
  root_spout_task_ = spout_task;
}

void ReplayEngine::ApplyAck(uint64_t root, uint64_t xor_value) {
  if (root_active_ && root == root_id_) root_value_ ^= xor_value;
}

void ReplayEngine::MaybeResolveRoot() {
  if (!root_active_ || !work_.empty()) return;
  RTask* spout_task = tasks_[root_spout_task_].get();
  if (root_value_ == 0) {
    completed_roots_++;
    spout_task->metrics->IncAcked();
  } else {
    failed_roots_++;
    spout_task->metrics->IncFailed();
  }
  root_active_ = false;
}

void ReplayEngine::RestartBolt(RTask* task) {
  const ComponentSpec& spec = topology_.components()[task->component_index];
  task->bolt = spec.bolt_factory();
  task->bolt->Prepare(task->task_index, spec.parallelism);
}

void ReplayEngine::EmitNext() {
  const RecordedEmission& emission = run_.emissions[next_emission_];
  next_emission_++;
  RTask* task = tasks_[emission.spout_task].get();
  task->collector->Emit(emission.tuple);
}

void ReplayEngine::ExecuteDelivery(Delivery& delivery) {
  RTask* task = delivery.target;
  task->inputs_seen++;
  // The live engine draws one stall decision per drained message on the
  // consumer; same stream position here, no sleep.
  if (task->stall_faults != nullptr) task->stall_faults->QueueStallMicros();
  ReplayCollector* collector = task->collector.get();
  FaultSite* faults = task->executor_faults.get();
  collector->BeginExecute(delivery.root_id);
  bool ok = true;
  try {
    if (faults != nullptr && faults->FireBoltThrow()) {
      throw InjectedBoltError("injected bolt failure");
    }
    task->bolt->Execute(delivery.tuple, collector);
  } catch (...) {
    ok = false;
    task->metrics->IncBoltExceptions();
  }
  const uint64_t xor_out = collector->EndExecute();
  if (!ok) return;  // Failed tuple: no executed count, no crash/ack draws.
  task->metrics->IncExecuted();
  const bool track =
      run_.config.semantics == DeliverySemantics::kAtLeastOnce;
  const bool crash_now = faults != nullptr && faults->FireTaskCrash();
  if (track && delivery.root_id != 0 && !crash_now) {
    // StageAck mirror: the kUpdate event may be lost to the acker-loss
    // fault; a lost update leaves the ledger bit set, failing the root.
    if (!(faults != nullptr && faults->FireAckerLoss())) {
      ApplyAck(delivery.root_id, delivery.edge_id ^ xor_out);
    }
  }
  if (crash_now) RestartBolt(task);
}

void ReplayEngine::RunFinishPass() {
  for (const auto& task : tasks_) {
    if (task->bolt == nullptr) continue;
    ReplayFinishCollector collector(this, task.get(),
                                    run_.config.seed ^ task->global_index);
    task->bolt->Finish(&collector);
  }
}

void ReplayEngine::StepInternal(bool allow_finish) {
  if (!work_.empty()) {
    Delivery delivery = std::move(work_.front());
    work_.pop_front();
    ExecuteDelivery(delivery);
    MaybeResolveRoot();
  } else if (next_emission_ < run_.emissions.size()) {
    EmitNext();
    MaybeResolveRoot();  // A fully dropped tree resolves immediately.
  } else if (allow_finish && !finish_done_) {
    RunFinishPass();
    finish_done_ = true;
  }
}

bool ReplayEngine::Done() const {
  return prepared_ && next_emission_ == run_.emissions.size() &&
         work_.empty() && finish_done_;
}

bool ReplayEngine::PreStepBreakpoint() const {
  if (work_.empty()) return false;
  const Delivery& next = work_.front();
  for (const Breakpoint& bp : breakpoints_) {
    if (bp.kind != Breakpoint::Kind::kTaskTuple) continue;
    if (bp.task != next.target->global_index) continue;
    const uint64_t ordinal = std::max<uint64_t>(1, bp.count);
    if (next.target->inputs_seen + 1 == ordinal) return true;
  }
  return false;
}

bool ReplayEngine::PostStepBreakpoint() {
  for (const Breakpoint& bp : breakpoints_) {
    switch (bp.kind) {
      case Breakpoint::Kind::kFirstFault:
        if (!first_fault_fired_ && fault_plan_ != nullptr &&
            fault_plan_->total_injected() > 0) {
          first_fault_fired_ = true;
          return true;
        }
        break;
      case Breakpoint::Kind::kCheckpoint:
        if (!checkpoint_fired_ && options_.checkpoint_store != nullptr &&
            options_.checkpoint_store->TotalPuts() >= bp.count) {
          checkpoint_fired_ = true;
          return true;
        }
        break;
      case Breakpoint::Kind::kTaskTuple:
        break;  // Pre-step condition.
    }
  }
  return false;
}

ReplayStop ReplayEngine::Step() {
  STREAMLIB_CHECK_MSG(prepared_, "ReplayEngine::Prepare must succeed first");
  if (Done()) return ReplayStop::kEnd;
  StepInternal(/*allow_finish=*/true);
  // A manual step moves past a pending kTaskTuple breakpoint, gdb-style.
  skip_pre_check_once_ = false;
  return Done() ? ReplayStop::kEnd : ReplayStop::kStep;
}

ReplayStop ReplayEngine::Run() {
  STREAMLIB_CHECK_MSG(prepared_, "ReplayEngine::Prepare must succeed first");
  while (!Done()) {
    if (!skip_pre_check_once_ && PreStepBreakpoint()) {
      skip_pre_check_once_ = true;  // Resume executes the paused tuple.
      return ReplayStop::kBreakpoint;
    }
    skip_pre_check_once_ = false;
    StepInternal(/*allow_finish=*/true);
    if (PostStepBreakpoint()) return ReplayStop::kBreakpoint;
  }
  return ReplayStop::kEnd;
}

Status ReplayEngine::RunToEmission(uint64_t emission_count) {
  if (!prepared_) {
    return Status::FailedPrecondition("ReplayEngine::Prepare must run first");
  }
  const uint64_t target =
      std::min<uint64_t>(emission_count, run_.emissions.size());
  if (next_emission_ > target) {
    return Status::FailedPrecondition(
        "replay already past emission " + std::to_string(target));
  }
  while (next_emission_ < target || !work_.empty()) {
    StepInternal(/*allow_finish=*/false);
  }
  return Status::OK();
}

size_t ReplayEngine::pending_deliveries() const { return work_.size(); }

uint64_t ReplayEngine::inputs_seen(size_t global_index) const {
  STREAMLIB_CHECK(global_index < tasks_.size());
  return tasks_[global_index]->inputs_seen;
}

size_t ReplayEngine::task_count() const { return tasks_.size(); }

const TaskMetrics& ReplayEngine::task_metrics(size_t global_index) const {
  STREAMLIB_CHECK(global_index < tasks_.size());
  return *tasks_[global_index]->metrics;
}

std::optional<std::vector<uint8_t>> ReplayEngine::TaskStateBlob(
    size_t global_index) const {
  STREAMLIB_CHECK(global_index < tasks_.size());
  const RTask& task = *tasks_[global_index];
  if (task.bolt == nullptr) return std::nullopt;
  return task.bolt->StateBlob();
}

Result<std::vector<uint8_t>> ReplayEngine::BoltStateBlob(
    const std::string& component, uint32_t task_index) const {
  for (const auto& task : tasks_) {
    if (task->metrics->component() != component ||
        task->task_index != task_index) {
      continue;
    }
    if (task->bolt == nullptr) {
      return Status::InvalidArgument("component '" + component +
                                     "' is a spout (no bolt state)");
    }
    std::optional<std::vector<uint8_t>> blob = task->bolt->StateBlob();
    if (!blob.has_value()) {
      return Status::Unimplemented("bolt '" + component +
                                   "' exposes no StateBlob");
    }
    return *std::move(blob);
  }
  return Status::NotFound("no task '" + component + "[" +
                          std::to_string(task_index) + "]' in topology");
}

RunSummary ReplayEngine::Summary() const {
  RunSummary summary;
  summary.completed_roots = completed_roots_;
  summary.failed_roots = failed_roots_;
  if (fault_plan_ != nullptr) summary.faults_by_kind = fault_plan_->Snapshot();
  summary.tasks.reserve(metrics_.task_count());
  for (size_t i = 0; i < metrics_.task_count(); i++) {
    const TaskMetrics& m = metrics_.task(i);
    summary.tasks.push_back(RunSummary::TaskCounters{
        m.emitted(), m.executed(), m.acked(), m.failed(),
        m.bolt_exceptions()});
  }
  return summary;
}

Status ReplayEngine::CompareWithRecorded() const {
  if (!run_.has_summary) {
    return Status::FailedPrecondition(
        "recording carries no run summary to compare against");
  }
  const RunSummary& want = run_.summary;
  const RunSummary got = Summary();
  auto mismatch = [](const std::string& what, uint64_t got_v,
                     uint64_t want_v) {
    return Status::Internal("replay diverged from recording: " + what +
                            " = " + std::to_string(got_v) + ", recorded " +
                            std::to_string(want_v));
  };
  if (got.completed_roots != want.completed_roots) {
    return mismatch("completed_roots", got.completed_roots,
                    want.completed_roots);
  }
  if (got.failed_roots != want.failed_roots) {
    return mismatch("failed_roots", got.failed_roots, want.failed_roots);
  }
  for (size_t k = 0; k < kNumFaultKinds; k++) {
    if (got.faults_by_kind[k] != want.faults_by_kind[k]) {
      return mismatch(std::string("faults[") +
                          FaultKindName(static_cast<FaultKind>(k)) + "]",
                      got.faults_by_kind[k], want.faults_by_kind[k]);
    }
  }
  if (got.tasks.size() != want.tasks.size()) {
    return mismatch("task count", got.tasks.size(), want.tasks.size());
  }
  for (size_t i = 0; i < got.tasks.size(); i++) {
    const std::string prefix =
        metrics_.task(i).component() + "[" +
        std::to_string(metrics_.task(i).task_index()) + "].";
    if (got.tasks[i].emitted != want.tasks[i].emitted) {
      return mismatch(prefix + "emitted", got.tasks[i].emitted,
                      want.tasks[i].emitted);
    }
    if (got.tasks[i].executed != want.tasks[i].executed) {
      return mismatch(prefix + "executed", got.tasks[i].executed,
                      want.tasks[i].executed);
    }
    if (got.tasks[i].acked != want.tasks[i].acked) {
      return mismatch(prefix + "acked", got.tasks[i].acked,
                      want.tasks[i].acked);
    }
    if (got.tasks[i].failed != want.tasks[i].failed) {
      return mismatch(prefix + "failed", got.tasks[i].failed,
                      want.tasks[i].failed);
    }
    if (got.tasks[i].bolt_exceptions != want.tasks[i].bolt_exceptions) {
      return mismatch(prefix + "bolt_exceptions",
                      got.tasks[i].bolt_exceptions,
                      want.tasks[i].bolt_exceptions);
    }
  }
  return Status::OK();
}

// ----------------------------------------------------- FindFirstDivergence

namespace {

using TaskStates = std::vector<std::optional<std::vector<uint8_t>>>;

Result<TaskStates> StatesAfter(const ReplayTarget& target, uint64_t count) {
  ReplayEngine engine(target.topology(), *target.run);
  STREAMLIB_RETURN_NOT_OK(engine.Prepare());
  STREAMLIB_RETURN_NOT_OK(engine.RunToEmission(count));
  TaskStates states;
  states.reserve(engine.task_count());
  for (size_t i = 0; i < engine.task_count(); i++) {
    states.push_back(engine.TaskStateBlob(i));
  }
  return states;
}

}  // namespace

Result<std::optional<uint64_t>> FindFirstDivergence(const ReplayTarget& a,
                                                    const ReplayTarget& b) {
  if (a.run == nullptr || b.run == nullptr || !a.topology || !b.topology) {
    return Status::InvalidArgument(
        "FindFirstDivergence: both targets need a topology and a run");
  }
  const uint64_t n =
      std::min<uint64_t>(a.run->emissions.size(), b.run->emissions.size());
  auto equal_at = [&](uint64_t m) -> Result<bool> {
    Result<TaskStates> sa = StatesAfter(a, m);
    STREAMLIB_RETURN_NOT_OK(sa.status());
    Result<TaskStates> sb = StatesAfter(b, m);
    STREAMLIB_RETURN_NOT_OK(sb.status());
    return sa.value() == sb.value();
  };

  Result<bool> at_end = equal_at(n);
  STREAMLIB_RETURN_NOT_OK(at_end.status());
  if (at_end.value()) {
    if (a.run->emissions.size() != b.run->emissions.size()) {
      // Identical over the common prefix; the first extra emission of the
      // longer recording is where they part ways.
      return std::optional<uint64_t>(n);
    }
    return std::optional<uint64_t>(std::nullopt);
  }
  Result<bool> at_start = equal_at(0);
  STREAMLIB_RETURN_NOT_OK(at_start.status());
  if (!at_start.value()) {
    // Initial states already differ (different restore checkpoints or bolt
    // construction) — before any recorded tuple.
    return std::optional<uint64_t>(0);
  }
  uint64_t lo = 0;  // States equal after lo emissions.
  uint64_t hi = n;  // States differ after hi emissions.
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    Result<bool> eq = equal_at(mid);
    STREAMLIB_RETURN_NOT_OK(eq.status());
    if (eq.value()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Replaying emission hi-1 (0-based) is the first to diverge the state.
  return std::optional<uint64_t>(hi - 1);
}

}  // namespace streamlib::platform
