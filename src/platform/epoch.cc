#include "platform/epoch.h"

#include <algorithm>
#include <cstring>

#include "common/serde.h"

namespace streamlib::platform {

namespace {

/// Magic prefix of EncodeGroupedState blobs ("EPoch Grouped v1").
constexpr uint8_t kGroupedMagic[4] = {'E', 'P', 'G', '1'};

}  // namespace

std::string EpochTaskKey(uint64_t epoch, const std::string& component,
                         uint32_t task_index) {
  return "epoch:" + std::to_string(epoch) + ":task:" + component + ":" +
         std::to_string(task_index);
}

std::string EpochCompleteKey(uint64_t epoch) {
  return "epoch:" + std::to_string(epoch) + ":complete";
}

uint64_t LastCompleteEpoch(const KvCheckpointStore& store) {
  const Result<std::vector<uint8_t>> bytes = store.Fetch(kLastCompleteEpochKey);
  if (!bytes.ok()) return 0;
  ByteReader r(bytes.value());
  uint64_t epoch = 0;
  if (!r.GetVarint(&epoch).ok()) return 0;
  return epoch;
}

std::vector<uint8_t> EncodeGroupedState(
    const std::map<uint32_t, std::vector<uint8_t>>& groups) {
  ByteWriter w;
  w.PutBytes(kGroupedMagic, sizeof(kGroupedMagic));
  w.PutVarint(groups.size());
  for (const auto& [group, payload] : groups) {
    w.PutVarint(group);
    w.PutVarint(payload.size());
    w.PutBytes(payload.data(), payload.size());
  }
  return w.TakeBytes();
}

Result<std::map<uint32_t, std::vector<uint8_t>>> DecodeGroupedState(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t magic[4] = {};
  if (!r.GetBytes(magic, sizeof(magic)).ok() ||
      std::memcmp(magic, kGroupedMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "not a key-grouped state blob (missing EPG1 magic)");
  }
  uint64_t count = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
  std::map<uint32_t, std::vector<uint8_t>> groups;
  for (uint64_t i = 0; i < count; i++) {
    uint64_t group = 0;
    uint64_t len = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&group));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&len));
    if (group >= kNumKeyGroups) {
      return Status::Corruption("group id " + std::to_string(group) +
                                " out of range (kNumKeyGroups=" +
                                std::to_string(kNumKeyGroups) + ")");
    }
    if (len > r.remaining()) {
      return Status::Corruption("grouped state payload truncated");
    }
    std::vector<uint8_t> payload(len);
    STREAMLIB_RETURN_NOT_OK(r.GetBytes(payload.data(), len));
    if (!groups.emplace(static_cast<uint32_t>(group), std::move(payload))
             .second) {
      return Status::Corruption("duplicate group id " + std::to_string(group));
    }
  }
  return groups;
}

Status RescaleEpochFrames(KvCheckpointStore& store, uint64_t epoch,
                          const std::string& component, uint32_t old_tasks,
                          uint32_t new_tasks) {
  if (old_tasks == 0 || new_tasks == 0) {
    return Status::InvalidArgument("task counts must be >= 1");
  }
  if (kNumKeyGroups % old_tasks != 0 || kNumKeyGroups % new_tasks != 0) {
    return Status::InvalidArgument(
        "rescale parallelism must divide kNumKeyGroups=" +
        std::to_string(kNumKeyGroups) + " (got " + std::to_string(old_tasks) +
        " -> " + std::to_string(new_tasks) + ")");
  }
  if (!store.Fetch(EpochCompleteKey(epoch)).ok()) {
    return Status::FailedPrecondition(
        "epoch " + std::to_string(epoch) +
        " is not complete; only complete epochs can be rescaled");
  }
  // Collect every group's payload across the old shards before writing
  // anything, so a malformed frame leaves the store untouched.
  std::map<uint32_t, std::vector<uint8_t>> all_groups;
  for (uint32_t t = 0; t < old_tasks; t++) {
    const std::string key = EpochTaskKey(epoch, component, t);
    Result<std::vector<uint8_t>> frame = store.Fetch(key);
    STREAMLIB_RETURN_NOT_OK(frame.status());
    Result<std::map<uint32_t, std::vector<uint8_t>>> groups =
        DecodeGroupedState(frame.value());
    STREAMLIB_RETURN_NOT_OK(groups.status());
    for (auto& [group, payload] : groups.value()) {
      if (group % old_tasks != t) {
        return Status::Corruption(
            "group " + std::to_string(group) + " found in frame of task " +
            std::to_string(t) + " but belongs to task " +
            std::to_string(group % old_tasks));
      }
      all_groups[group] = std::move(payload);
    }
  }
  for (uint32_t t = 0; t < new_tasks; t++) {
    std::map<uint32_t, std::vector<uint8_t>> shard;
    for (const auto& [group, payload] : all_groups) {
      if (group % new_tasks == t) shard[group] = payload;
    }
    store.Put(EpochTaskKey(epoch, component, t), EncodeGroupedState(shard));
  }
  for (uint32_t t = new_tasks; t < old_tasks; t++) {
    store.Erase(EpochTaskKey(epoch, component, t));
  }
  return Status::OK();
}

CheckpointCoordinator::CheckpointCoordinator(KvCheckpointStore* store,
                                             size_t participants,
                                             uint64_t base_epoch)
    : store_(store),
      participants_(participants),
      last_complete_(base_epoch),
      fence_(UINT64_MAX) {}

bool CheckpointCoordinator::AckEpoch(uint64_t epoch, size_t participant) {
  std::lock_guard<std::mutex> lock(mu_);
  // Epochs at/below the resume base are complete by definition; epochs
  // beyond the crash fence may be missing lost effects and must never
  // complete; epochs below an already-advanced pointer are moot.
  if (epoch <= last_complete_ || epoch > fence_) return false;
  PendingEpoch& pending = pending_[epoch];
  if (pending.acked.empty()) pending.acked.assign(participants_, false);
  if (participant >= participants_ || pending.acked[participant]) return false;
  pending.acked[participant] = true;
  if (++pending.count < participants_) return false;
  pending_.erase(epoch);
  epochs_completed_++;
  ByteWriter manifest;
  manifest.PutVarint(epoch);
  manifest.PutVarint(participants_);
  store_->Put(EpochCompleteKey(epoch), manifest.TakeBytes());
  last_complete_ = epoch;
  ByteWriter pointer;
  pointer.PutVarint(epoch);
  store_->Put(kLastCompleteEpochKey, pointer.TakeBytes());
  return true;
}

void CheckpointCoordinator::FenceEpochsAfter(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  fence_ = std::min(fence_, epoch);
  // Drop gathered acks for epochs that can no longer complete.
  pending_.erase(pending_.upper_bound(fence_), pending_.end());
}

uint64_t CheckpointCoordinator::last_complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_complete_;
}

uint64_t CheckpointCoordinator::epochs_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_completed_;
}

uint64_t CheckpointCoordinator::fence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fence_;
}

EpochAligner::EpochAligner(size_t num_producers, uint64_t timeout_nanos,
                           uint64_t base_epoch)
    : num_producers_(num_producers),
      timeout_nanos_(timeout_nanos),
      aligned_epoch_(base_epoch) {}

uint64_t EpochAligner::OnBarrier(uint32_t producer, uint64_t epoch,
                                 uint64_t now_nanos) {
  uint64_t& watermark = watermark_[producer];
  if (epoch > watermark) watermark = epoch;
  if (watermark_.size() >= num_producers_) {
    uint64_t min_watermark = UINT64_MAX;
    for (const auto& [p, w] : watermark_) {
      min_watermark = std::min(min_watermark, w);
    }
    if (min_watermark > aligned_epoch_) {
      aligned_epoch_ = min_watermark;
      RearmHoldClock(now_nanos);
      return aligned_epoch_;
    }
  }
  RearmHoldClock(now_nanos);
  return 0;
}

bool EpochAligner::ShouldHold(uint32_t producer) const {
  const auto it = watermark_.find(producer);
  return it != watermark_.end() && it->second > aligned_epoch_;
}

uint64_t EpochAligner::HoldTag(uint32_t producer) const {
  const auto it = watermark_.find(producer);
  return (it == watermark_.end() ? 0 : it->second) + 1;
}

bool EpochAligner::TimedOut(uint64_t now_nanos) const {
  return hold_since_nanos_ != 0 &&
         now_nanos - hold_since_nanos_ > timeout_nanos_;
}

uint64_t EpochAligner::ForceAdvance() {
  uint64_t max_watermark = aligned_epoch_;
  for (const auto& [p, w] : watermark_) {
    max_watermark = std::max(max_watermark, w);
  }
  aligned_epoch_ = max_watermark;
  hold_since_nanos_ = 0;
  epochs_timed_out_++;
  return aligned_epoch_;
}

void EpochAligner::RearmHoldClock(uint64_t now_nanos) {
  bool any_ahead = false;
  for (const auto& [p, w] : watermark_) {
    if (w > aligned_epoch_) {
      any_ahead = true;
      break;
    }
  }
  if (!any_ahead) {
    hold_since_nanos_ = 0;
  } else if (hold_since_nanos_ == 0) {
    hold_since_nanos_ = now_nanos;
  }
}

}  // namespace streamlib::platform
