#ifndef STREAMLIB_PLATFORM_EVENT_TIME_H_
#define STREAMLIB_PLATFORM_EVENT_TIME_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/check.h"

namespace streamlib::platform {

/// Watermark tracking for out-of-order streams — the paper's first
/// requirement for streaming systems ("resiliency against stream
/// imperfections, including missing and out-of-order data") and the
/// MillWheel notion of logical time it credits with "making it simple to
/// write time-based aggregations". The watermark trails the maximum
/// observed event time by `allowed_lateness`: events older than the
/// watermark are declared late.
class WatermarkTracker {
 public:
  explicit WatermarkTracker(int64_t allowed_lateness)
      : lateness_(allowed_lateness) {
    STREAMLIB_CHECK_MSG(allowed_lateness >= 0, "lateness must be >= 0");
  }

  /// Observes an event time; returns true if the event is late (older than
  /// the current watermark).
  bool Observe(int64_t event_time) {
    const bool late = has_data_ && event_time < Watermark();
    if (!has_data_ || event_time > max_event_time_) {
      max_event_time_ = event_time;
      has_data_ = true;
    }
    return late;
  }

  /// Current watermark: no event at or before this time is still expected.
  int64_t Watermark() const {
    return has_data_ ? max_event_time_ - lateness_ : INT64_MIN;
  }

 private:
  int64_t lateness_;
  int64_t max_event_time_ = 0;
  bool has_data_ = false;
};

/// A fired event-time window and its contents.
template <typename T>
struct FiredWindow {
  int64_t start = 0;  ///< inclusive
  int64_t end = 0;    ///< exclusive
  std::vector<T> values;
};

/// Tumbling event-time windows over an out-of-order stream: values buffer
/// in their window until the watermark passes the window's end, at which
/// point the window fires complete-as-of-the-lateness-bound. Events older
/// than the watermark are counted (and dropped) as late — the explicit,
/// bounded handling of disorder the paper's requirement list asks for.
template <typename T>
class EventTimeWindower {
 public:
  /// \param window_width      window length in event-time units.
  /// \param allowed_lateness  out-of-orderness tolerated before events drop.
  EventTimeWindower(int64_t window_width, int64_t allowed_lateness)
      : width_(window_width), watermark_(allowed_lateness) {
    STREAMLIB_CHECK_MSG(window_width >= 1, "window width must be >= 1");
  }

  /// Adds a value at `event_time`; returns any windows that fired as the
  /// watermark advanced (oldest first).
  std::vector<FiredWindow<T>> Add(int64_t event_time, T value) {
    if (watermark_.Observe(event_time)) {
      late_drops_++;
    } else {
      const int64_t start = WindowStart(event_time);
      pending_[start].push_back(std::move(value));
    }
    // Fire every pending window whose end precedes the watermark.
    std::vector<FiredWindow<T>> fired;
    const int64_t mark = watermark_.Watermark();
    while (!pending_.empty()) {
      auto it = pending_.begin();
      const int64_t end = it->first + width_;
      if (end > mark) break;
      fired.push_back(FiredWindow<T>{it->first, end, std::move(it->second)});
      pending_.erase(it);
    }
    return fired;
  }

  /// Flushes all buffered windows (end of stream), oldest first.
  std::vector<FiredWindow<T>> Flush() {
    std::vector<FiredWindow<T>> fired;
    for (auto& [start, values] : pending_) {
      fired.push_back(FiredWindow<T>{start, start + width_,
                                     std::move(values)});
    }
    pending_.clear();
    return fired;
  }

  uint64_t late_drops() const { return late_drops_; }
  size_t pending_windows() const { return pending_.size(); }
  int64_t Watermark() const { return watermark_.Watermark(); }

 private:
  int64_t WindowStart(int64_t event_time) const {
    // Floor division that also handles negative event times.
    int64_t q = event_time / width_;
    if (event_time % width_ < 0) q--;
    return q * width_;
  }

  int64_t width_;
  WatermarkTracker watermark_;
  std::map<int64_t, std::vector<T>> pending_;  // Keyed by window start.
  uint64_t late_drops_ = 0;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_EVENT_TIME_H_
