#ifndef STREAMLIB_PLATFORM_REPLAY_H_
#define STREAMLIB_PLATFORM_REPLAY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "platform/checkpoint.h"
#include "platform/metrics.h"
#include "platform/recorder.h"
#include "platform/topology.h"

namespace streamlib::platform {

/// \file replay.h
/// Time-travel re-execution of a flight recording (recorder.h): the
/// recorded spout emissions are fed through the topology one at a time on
/// a single thread, with every nondeterministic decision — shuffle
/// routing, fault draws — regenerated from the recorded seeds in exactly
/// the per-site consultation order of the live engine. Between any two
/// tuples the debugger can pause, inspect bolt state (Bolt::StateBlob)
/// and live TaskMetrics, and resume.
///
/// Determinism contract (DESIGN.md §11): replay-vs-replay of one
/// recording is always bit-identical. Replay-vs-original is bit-identical
/// when (1) every bolt fed during the run phase has exactly one producer
/// *task* (chains and fields/shuffle fan-outs from a single source task —
/// combiners fed only by the single-threaded finish pass don't count),
/// (2) executor-site faults (bolt_throw / task_crash / acker_loss) are
/// only armed with execute_batch_size == 1, (3) at-least-once broadcast
/// edges out of spouts are avoided, and (4) with task_crash armed, the
/// crash budget (max_task_crashes) never runs out — an exhausted budget
/// is claimed by concurrently-firing sites in wall-clock order, which no
/// sequential re-execution can reproduce, and the denial leaks into the
/// losing site's later draw stream (a crash skips the acker-loss draw).
/// Condition (1) pins each task's input order to one producer's program
/// order; (2) pins the executor fault-draw order per tuple; the live ack
/// timeout must also be long enough that only structurally unresolvable
/// trees fail.
///
/// Epoch checkpointing (DESIGN.md §12) is outside this contract entirely:
/// recording requires epoch_interval_tuples == 0 and resume_from_epoch ==
/// 0 (EngineConfig::Validate rejects the combination). A resumed run's
/// first emission depends on restored spout state, and barrier alignment
/// (hold timers, force-advance) depends on wall-clock timing the SLFR
/// format does not capture — replay a *fresh* run, or use the epoch
/// determinism guarantees of exactly_once_test.cc instead.

/// A pause condition for replayed execution.
struct Breakpoint {
  enum class Kind {
    /// Pause before task `task` (global index) executes its `count`th
    /// input tuple (1-based).
    kTaskTuple,
    /// Pause as soon as the replayed FaultPlan has injected any fault.
    kFirstFault,
    /// Pause once the watched checkpoint store (ReplayOptions) has
    /// absorbed at least `count` Put calls.
    kCheckpoint,
  };
  Kind kind = Kind::kTaskTuple;
  size_t task = 0;     ///< kTaskTuple: global task index
  uint64_t count = 0;  ///< kTaskTuple: 1-based tuple ordinal; kCheckpoint: K
};

/// Why Run() / Step() returned control.
enum class ReplayStop {
  kBreakpoint,  ///< a breakpoint fired; inspect, then Run()/Step() again
  kStep,        ///< Step(): one unit executed, more remain
  kEnd,         ///< recording fully replayed, finish pass complete
};

struct ReplayOptions {
  /// Store watched by Breakpoint::kCheckpoint (not owned; may be null).
  const KvCheckpointStore* checkpoint_store = nullptr;
};

/// Deterministic single-threaded re-execution of one RecordedRun.
///
/// Unit of progress: one spout emission injected, or one delivered tuple
/// executed at a bolt. Each emission's full tuple tree drains (FIFO,
/// preserving per-producer order) before the next emission, and under
/// at-least-once its XOR ledger resolves synchronously — acked iff the
/// ledger clears, replacing the live engine's wall-clock ack timeout.
/// Spout user code is never invoked (emissions come from the file);
/// acked/failed land on the spout task's metrics directly.
class ReplayEngine {
 public:
  ReplayEngine(Topology topology, RecordedRun run, ReplayOptions options = {});
  ~ReplayEngine();

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  /// Validates the topology against the recording's fingerprint and
  /// builds tasks. Must be called (and return OK) before anything else.
  Status Prepare();

  void AddBreakpoint(const Breakpoint& breakpoint);

  /// Executes one unit. Returns kEnd when the replay just completed (or
  /// had already completed), kStep otherwise.
  ReplayStop Step();

  /// Runs until a breakpoint fires or the recording (including the finish
  /// pass) completes.
  ReplayStop Run();

  /// Replays until exactly `emission_count` recorded emissions have been
  /// injected and their trees fully drained, ignoring breakpoints and
  /// never entering the finish pass. Counts past the recording clamp to
  /// its length. The divergence bisector's probe primitive.
  Status RunToEmission(uint64_t emission_count);

  bool Done() const;
  uint64_t emissions_processed() const { return next_emission_; }
  uint64_t total_emissions() const { return run_.emissions.size(); }
  /// Tuples currently queued inside the in-flight tree (0 when paused
  /// between trees).
  size_t pending_deliveries() const;
  /// Input tuples delivered to a task so far (kTaskTuple's counter).
  uint64_t inputs_seen(size_t global_index) const;

  /// State snapshot of one bolt: Unimplemented if the bolt exposes no
  /// StateBlob, NotFound for an unknown component/task, InvalidArgument
  /// for a spout.
  Result<std::vector<uint8_t>> BoltStateBlob(const std::string& component,
                                             uint32_t task_index) const;
  /// Same by global task index; nullopt for spouts and blob-less bolts.
  std::optional<std::vector<uint8_t>> TaskStateBlob(size_t global_index) const;

  size_t task_count() const;
  const TaskMetrics& task_metrics(size_t global_index) const;
  MetricsRegistry& metrics() { return metrics_; }
  /// Null when the recording ran without fault injection.
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }
  uint64_t completed_roots() const { return completed_roots_; }
  uint64_t failed_roots() const { return failed_roots_; }
  const RecordedRun& run() const { return run_; }

  /// Current counters in the RunSummary shape (comparable to the
  /// recording's end-segment summary once the replay is Done()).
  RunSummary Summary() const;

  /// OK iff this replay reproduced the recording's end-segment summary
  /// exactly (roots, per-kind fault counts, per-task counters).
  /// FailedPrecondition when the recording carries no summary; Internal
  /// naming the first mismatched counter otherwise.
  Status CompareWithRecorded() const;

 private:
  struct RTask;
  struct Edge;
  struct Delivery;
  class ReplayCollector;
  class ReplayFinishCollector;

  void EmitNext();
  void ExecuteDelivery(Delivery& delivery);
  void MaybeResolveRoot();
  void RestartBolt(RTask* task);
  void RunFinishPass();
  void StepInternal(bool allow_finish);
  bool PreStepBreakpoint() const;
  bool PostStepBreakpoint();
  void InitRoot(uint64_t root, uint64_t edge_xor, size_t spout_task);
  void ApplyAck(uint64_t root, uint64_t xor_value);

  Topology topology_;
  RecordedRun run_;
  ReplayOptions options_;
  bool prepared_ = false;

  MetricsRegistry metrics_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::vector<std::unique_ptr<RTask>> tasks_;
  std::vector<std::vector<Edge>> outgoing_;  // Per component index.

  std::deque<Delivery> work_;
  uint64_t next_emission_ = 0;
  bool finish_done_ = false;

  uint64_t next_root_id_ = 1;
  uint64_t next_edge_id_ = 1;
  // The one in-flight tree's ledger (trees drain before the next starts).
  bool root_active_ = false;
  uint64_t root_id_ = 0;
  uint64_t root_value_ = 0;
  size_t root_spout_task_ = 0;
  uint64_t completed_roots_ = 0;
  uint64_t failed_roots_ = 0;

  std::vector<Breakpoint> breakpoints_;
  bool skip_pre_check_once_ = false;
  bool first_fault_fired_ = false;
  bool checkpoint_fired_ = false;
};

/// One side of a divergence search. `topology` must build a *fresh*
/// topology per call (in particular, bolt factories capturing checkpoint
/// stores must capture stores private to that build — each probe replays
/// from scratch).
struct ReplayTarget {
  std::function<Topology()> topology;
  const RecordedRun* run = nullptr;
};

/// Binary-searches the earliest recorded emission index (0-based) whose
/// replay makes the two runs' bolt state diverge, comparing every bolt's
/// StateBlob bytes after each probe prefix. Returns nullopt when the two
/// recordings replay to identical state over their common length and have
/// equal length; the common length when one recording is a strict prefix
/// of the other. Assumes divergence is persistent (sketch state never
/// re-converges byte-for-byte once it differs) — the property that makes
/// the bisection sound.
Result<std::optional<uint64_t>> FindFirstDivergence(const ReplayTarget& a,
                                                    const ReplayTarget& b);

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_REPLAY_H_
