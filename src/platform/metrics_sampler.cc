#include "platform/metrics_sampler.h"

#include <chrono>

#include "common/check.h"

namespace streamlib::platform {

namespace {

uint64_t MillisBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
          .count());
}

}  // namespace

MetricsSampler::MetricsSampler(std::vector<Probe> probes, uint32_t interval_ms)
    : probes_(std::move(probes)), interval_ms_(interval_ms) {
  STREAMLIB_CHECK_MSG(interval_ms_ > 0,
                      "MetricsSampler requires a positive interval");
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  STREAMLIB_CHECK_MSG(!running_, "MetricsSampler is single-use");
  running_ = true;
  previous_.assign(probes_.size(), CounterSnapshot{});
  start_time_ = std::chrono::steady_clock::now();
  last_sample_time_ = start_time_;
  // Baseline: counters are expected to be zero here (the engine starts the
  // sampler before any worker thread), but snapshot anyway so a sampler
  // attached mid-flight still produces correct deltas.
  for (size_t i = 0; i < probes_.size(); i++) {
    const TaskMetrics* m = probes_[i].metrics;
    previous_[i] = CounterSnapshot{
        m->emitted(), m->executed(),         m->acked(),
        m->failed(),  m->backpressure_stalls(), m->faults_injected(),
        m->flushes(), m->flushed_tuples()};
  }
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  // Final tail sample: guarantees at least one sample for sub-interval
  // runs and makes per-task delta sums equal the final counter totals.
  TakeSample();
  running_ = false;
}

void MetricsSampler::Loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                          [this] { return stop_requested_; })) {
      break;
    }
    TakeSample();
  }
}

void MetricsSampler::TakeSample() {
  const auto now = std::chrono::steady_clock::now();
  TelemetrySample sample;
  sample.t_ms = MillisBetween(start_time_, now);
  sample.interval_ms = MillisBetween(last_sample_time_, now);
  last_sample_time_ = now;
  sample.tasks.reserve(probes_.size());
  for (size_t i = 0; i < probes_.size(); i++) {
    const Probe& probe = probes_[i];
    const TaskMetrics* m = probe.metrics;
    const CounterSnapshot current{
        m->emitted(), m->executed(),         m->acked(),
        m->failed(),  m->backpressure_stalls(), m->faults_injected(),
        m->flushes(), m->flushed_tuples()};
    CounterSnapshot& prev = previous_[i];
    TaskSampleDelta delta;
    delta.task = static_cast<uint32_t>(m->ordinal());
    delta.emitted = current.emitted - prev.emitted;
    delta.executed = current.executed - prev.executed;
    delta.acked = current.acked - prev.acked;
    delta.failed = current.failed - prev.failed;
    delta.backpressure_stalls =
        current.backpressure_stalls - prev.backpressure_stalls;
    delta.faults_injected = current.faults_injected - prev.faults_injected;
    delta.flushes = current.flushes - prev.flushes;
    delta.flushed_tuples = current.flushed_tuples - prev.flushed_tuples;
    if (probe.queue_depth) {
      delta.queue_depth = probe.queue_depth();
      // The sampler owns the high-watermark gauge: periodic instantaneous
      // samples see consumer-side buildup that producer-flush-time
      // sampling (the old scheme) structurally missed.
      probe.metrics->RecordQueueDepth(delta.queue_depth);
    }
    prev = current;
    sample.tasks.push_back(delta);
  }
  std::lock_guard<std::mutex> lock(samples_mu_);
  samples_.push_back(std::move(sample));
}

std::vector<TelemetrySample> MetricsSampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  return samples_;
}

size_t MetricsSampler::sample_count() const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  return samples_.size();
}

}  // namespace streamlib::platform
