#ifndef STREAMLIB_PLATFORM_PLAN_H_
#define STREAMLIB_PLATFORM_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "platform/topology.h"

namespace streamlib::platform {

/// How an edge is realized at runtime.
enum class EdgeChannel : uint8_t {
  kQueued,  ///< producer stages into a queue/ring; consumer thread drains
  kFused,   ///< consumer runs inline on the producer's thread (no queue)
};

/// The engine facts the fusion pass needs, decoupled from EngineConfig so
/// the plan layer has no dependency on engine.h. The engine fills this
/// from its config in BuildTasks; tests construct it directly.
struct FusionOptions {
  bool enable_fusion = false;     ///< master switch (EngineConfig::enable_fusion)
  bool dedicated_mode = true;     ///< ExecutionMode::kDedicated (one thread/task)
  bool tracked = false;           ///< delivery semantics track tuples (acking on)
  bool epochs_enabled = false;    ///< barrier checkpointing active
  bool recorder_attached = false; ///< flight recorder taps spout emissions
};

/// One component of the topology, as a plan node. `component_index` equals
/// the node's own index in TopologyPlan::nodes() — the plan preserves the
/// topology's (topologically sorted) component order.
struct PlanNode {
  size_t component_index = 0;
  std::string name;
  bool is_spout = false;
  uint32_t parallelism = 1;
  std::vector<size_t> in_edges;   ///< indices into TopologyPlan::edges()
  std::vector<size_t> out_edges;  ///< indices into TopologyPlan::edges()
};

/// One subscription edge, annotated with everything the fusion pass and
/// the engine's channel wiring care about.
struct PlanEdge {
  size_t from = 0;  ///< producer node index
  size_t to = 0;    ///< consumer node index
  Grouping grouping;
  uint32_t shards = 1;   ///< consumer parallelism (fan-out of the routing)
  bool tracked = false;  ///< deliveries carry ack-ledger edge ids
  bool barriered = false;  ///< epoch barriers flow across this edge
  EdgeChannel channel = EdgeChannel::kQueued;
  /// Why the fusion pass left this edge queued (empty when fused or when
  /// the pass never ran). Surfaced in ToString() and the bench JSON so a
  /// "why didn't my chain fuse" question has a first-class answer.
  std::string veto;
};

/// A small dataflow IR over a built Topology: nodes for components, edges
/// for subscriptions, annotated with grouping / delivery / shard facts.
/// The fusion pass (DESIGN.md §13) rewrites eligible edges from kQueued to
/// kFused and groups the resulting maximal fused paths into chains; the
/// engine then materializes each chain as one in-thread fused operator.
class TopologyPlan {
 public:
  /// Lowers a validated topology into the IR. All edges start kQueued.
  static TopologyPlan FromTopology(const Topology& topology);

  /// Decides, for one edge in isolation, whether fusing it is legal under
  /// `options`. OK means legal; otherwise the status message names the
  /// veto (these are the §13 legality rules, in check order). Exposed so
  /// tests can probe each rule directly.
  static Status FusionLegality(const PlanNode& from, const PlanNode& to,
                               const PlanEdge& edge,
                               const FusionOptions& options);

  /// Rewrites every legal edge to kFused (stamping `veto` on the rest) and
  /// rebuilds chains(). Idempotent; safe to call with fusion disabled (all
  /// edges stay queued, chains() comes back empty).
  void RunFusionPass(const FusionOptions& options);

  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const std::vector<PlanEdge>& edges() const { return edges_; }

  /// Maximal fused paths, each a list of node indices [head, ..., tail]
  /// with every consecutive pair joined by a kFused edge. A node appears
  /// in at most one chain; single nodes are not chains.
  const std::vector<std::vector<size_t>>& chains() const { return chains_; }

  size_t fused_edge_count() const;

  /// Human-readable dump: one line per edge with channel and veto.
  std::string ToString() const;

 private:
  std::vector<PlanNode> nodes_;
  std::vector<PlanEdge> edges_;
  std::vector<std::vector<size_t>> chains_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_PLAN_H_
