#ifndef STREAMLIB_PLATFORM_TELEMETRY_H_
#define STREAMLIB_PLATFORM_TELEMETRY_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "platform/fault.h"
#include "platform/metrics.h"
#include "platform/metrics_sampler.h"
#include "platform/trace.h"

namespace streamlib::platform {

class RunRecorder;

/// Materialized snapshot of everything the observability layer collected:
/// per-task counters, the sampler's time series, and trace summaries.
/// Serializable to JSON (machine consumers — the schema the telemetry
/// ctest validates) and to a human-readable table (examples, bench logs).
struct TelemetryReport {
  struct TaskRow {
    std::string component;
    uint32_t task_index = 0;
    uint64_t emitted = 0;
    uint64_t executed = 0;
    uint64_t acked = 0;
    uint64_t failed = 0;
    uint64_t backpressure_stalls = 0;
    uint64_t faults_injected = 0;
    uint64_t bolt_exceptions = 0;
    uint64_t flushes = 0;
    uint64_t flushed_tuples = 0;
    uint64_t max_queue_depth = 0;
    double avg_flush_size = 0;
    double p50_latency_us = 0;
    double p99_latency_us = 0;
  };

  /// Chaos-run summary: whether injection was armed, the master seed (so a
  /// failing run's report is enough to replay its fault schedule), and the
  /// engine-wide injected counts per FaultKind.
  struct FaultSummary {
    bool enabled = false;
    uint64_t seed = 0;
    uint64_t total_injected = 0;
    std::array<uint64_t, kNumFaultKinds> by_kind{};
  };

  /// Flight-recorder summary: whether a RunRecorder was attached to the
  /// run, where the recording lands, and its record/byte/drop counters —
  /// a report alone shows whether the run left a replayable artifact.
  struct RecordingSummary {
    bool enabled = false;
    std::string path;
    uint64_t records = 0;
    uint64_t bytes = 0;
    uint64_t dropped = 0;
  };

  /// Per-tenant accounting of one query front-end (the Lambda serving
  /// layer's admission control — DESIGN.md §14).
  struct ServingTenantRow {
    std::string tenant;
    uint64_t served = 0;
    uint64_t rejected_quota = 0;
    uint64_t rejected_queue = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };

  /// Serving-layer summary: snapshot-isolated query front-end counters,
  /// filled by lambda::QueryFrontend::FillTelemetry. enabled=false when no
  /// front-end contributed to the report (the platform-only default).
  struct ServingSummary {
    bool enabled = false;
    uint64_t snapshot_version = 0;  ///< serving snapshot at export time
    uint64_t served = 0;
    uint64_t rejected_quota = 0;
    uint64_t rejected_queue = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    std::vector<ServingTenantRow> tenants;  ///< sorted by tenant name
  };

  uint32_t sample_interval_ms = 0;  ///< 0 = sampler was disabled.
  uint32_t trace_sample_every = 0;  ///< 0 = tracing was disabled.
  FaultSummary faults;              ///< enabled=false outside chaos runs.
  RecordingSummary recording;       ///< enabled=false without a recorder.
  ServingSummary serving;           ///< enabled=false without a front-end.
  /// Indexed by engine task id — TaskSampleDelta::task points here.
  std::vector<TaskRow> tasks;
  std::vector<TelemetrySample> time_series;
  std::vector<TraceTree> trace_trees;
  std::vector<TraceStore::HopStats> hop_stats;
  uint64_t trace_events_dropped = 0;
  uint64_t complete_trace_trees = 0;

  /// Serializes the full report as one JSON document ("schema_version": 1).
  /// Span trees are capped at `max_json_trees` to bound file size.
  void WriteJson(std::ostream& out, size_t max_json_trees = 8) const;

  /// Serializes just the serving section as a JSON object (no trailing
  /// newline). Reused by the serving bench, which embeds the same schema
  /// inside BENCH_lambda_serving.json — tools/telemetry_schema_check
  /// validates both placements.
  static void WriteServingJson(std::ostream& out,
                               const ServingSummary& serving,
                               const char* line_indent);

  /// Human-readable tables: per-task counters, interval throughput, hop
  /// percentiles, and one example span tree.
  void WriteTable(std::ostream& out) const;
};

/// The engine's observability facade: live access to the sampler's time
/// series during Run(), and the full report (counters + time series +
/// traces) once Run() returns. Obtained via TopologyEngine::telemetry().
class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Engine wiring (not part of the public surface).
  void Bind(const MetricsRegistry* registry, uint32_t sample_interval_ms,
            uint32_t trace_sample_every) {
    registry_ = registry;
    sample_interval_ms_ = sample_interval_ms;
    trace_sample_every_ = trace_sample_every;
  }
  void AttachSampler(const MetricsSampler* sampler) { sampler_ = sampler; }
  /// Null outside chaos runs (injection disabled).
  void BindFaultPlan(const FaultPlan* plan) { fault_plan_ = plan; }
  /// Null when the run is not being recorded (recorder.h).
  void BindRecorder(const RunRecorder* recorder) { recorder_ = recorder; }
  TraceStore& mutable_traces() { return traces_; }

  /// Snapshot of the sampler time series; safe to call from any thread
  /// while the topology is running (empty when the sampler is disabled).
  std::vector<TelemetrySample> TimeSeries() const {
    return sampler_ ? sampler_->Snapshot() : std::vector<TelemetrySample>{};
  }

  /// Trace trees and hop summaries; populated after Run() completes.
  const TraceStore& traces() const { return traces_; }

  /// Builds the full materialized report. Counters reflect their values at
  /// call time, so this is normally called after Run().
  TelemetryReport BuildReport() const;

 private:
  const MetricsRegistry* registry_ = nullptr;
  const MetricsSampler* sampler_ = nullptr;
  const FaultPlan* fault_plan_ = nullptr;
  const RunRecorder* recorder_ = nullptr;
  TraceStore traces_;
  uint32_t sample_interval_ms_ = 0;
  uint32_t trace_sample_every_ = 0;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_TELEMETRY_H_
