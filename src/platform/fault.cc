#include "platform/fault.h"

#include <cmath>

#include "platform/metrics.h"

namespace streamlib::platform {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropTuple: return "drop_tuple";
    case FaultKind::kDuplicateTuple: return "duplicate_tuple";
    case FaultKind::kDelayDelivery: return "delay_delivery";
    case FaultKind::kBoltThrow: return "bolt_throw";
    case FaultKind::kTaskCrash: return "task_crash";
    case FaultKind::kQueueStall: return "queue_stall";
    case FaultKind::kAckerEventLoss: return "acker_event_loss";
    case FaultKind::kBarrierDrop: return "barrier_drop";
    case FaultKind::kBarrierDelay: return "barrier_delay";
  }
  return "unknown";
}

bool FaultSpec::Enabled() const {
  return drop_tuple_prob > 0 || duplicate_tuple_prob > 0 ||
         delay_delivery_prob > 0 || bolt_throw_prob > 0 ||
         task_crash_prob > 0 || queue_stall_prob > 0 || acker_loss_prob > 0 ||
         barrier_drop_prob > 0 || barrier_delay_prob > 0;
}

Status FaultSpec::Validate() const {
  const struct {
    const char* name;
    double value;
  } probs[] = {
      {"drop_tuple_prob", drop_tuple_prob},
      {"duplicate_tuple_prob", duplicate_tuple_prob},
      {"delay_delivery_prob", delay_delivery_prob},
      {"bolt_throw_prob", bolt_throw_prob},
      {"task_crash_prob", task_crash_prob},
      {"queue_stall_prob", queue_stall_prob},
      {"acker_loss_prob", acker_loss_prob},
      {"barrier_drop_prob", barrier_drop_prob},
      {"barrier_delay_prob", barrier_delay_prob},
  };
  for (const auto& p : probs) {
    if (!std::isfinite(p.value) || p.value < 0.0 || p.value > 1.0) {
      return Status::InvalidArgument(std::string("FaultSpec::") + p.name +
                                     " must be in [0, 1]");
    }
  }
  return Status::OK();
}

FaultPlan::FaultPlan(FaultSpec spec)
    : spec_(spec), crash_budget_(spec.max_task_crashes) {}

std::unique_ptr<FaultSite> FaultPlan::MakeSite(uint64_t site_id,
                                               TaskMetrics* metrics) {
  auto& slot = site_stats_[site_id];
  if (slot == nullptr) slot = std::make_unique<FaultSiteStats>();
  return std::unique_ptr<FaultSite>(
      new FaultSite(this, site_id, metrics, slot.get()));
}

uint64_t FaultPlan::total_injected() const {
  uint64_t total = 0;
  for (const auto& counter : injected_) {
    total += counter.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, kNumFaultKinds> FaultPlan::Snapshot() const {
  std::array<uint64_t, kNumFaultKinds> out{};
  for (size_t i = 0; i < kNumFaultKinds; i++) {
    out[i] = injected_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::map<uint64_t, FaultSiteStats> FaultPlan::SiteStatsSnapshot() const {
  std::map<uint64_t, FaultSiteStats> out;
  for (const auto& [site_id, stats] : site_stats_) {
    out[site_id] = *stats;
  }
  return out;
}

bool FaultPlan::ConsumeCrashBudget() {
  uint32_t budget = crash_budget_.load(std::memory_order_relaxed);
  while (budget > 0) {
    if (crash_budget_.compare_exchange_weak(budget, budget - 1,
                                            std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

FaultSite::FaultSite(FaultPlan* plan, uint64_t site_id, TaskMetrics* metrics,
                     FaultSiteStats* stats)
    // Golden-ratio mixing keeps adjacent site ids from producing
    // correlated streams (Rng's SplitMix64 expansion finishes the job).
    : plan_(plan),
      rng_(plan->spec_.seed ^ (0x9e3779b97f4a7c15ULL * (site_id + 1))),
      metrics_(metrics),
      stats_(stats) {}

bool FaultSite::Draw(double prob, FaultKind kind) {
  if (prob <= 0.0) return false;
  stats_->consulted[static_cast<size_t>(kind)]++;
  if (rng_.NextDouble() >= prob) return false;
  stats_->fired[static_cast<size_t>(kind)]++;
  plan_->Record(kind);
  if (metrics_ != nullptr) metrics_->IncFaultsInjected();
  return true;
}

bool FaultSite::FireDropTuple() {
  return Draw(plan_->spec_.drop_tuple_prob, FaultKind::kDropTuple);
}

bool FaultSite::FireDuplicateTuple() {
  return Draw(plan_->spec_.duplicate_tuple_prob, FaultKind::kDuplicateTuple);
}

uint32_t FaultSite::DeliveryDelayMicros() {
  const uint32_t max = plan_->spec_.delay_max_micros;
  if (max == 0 ||
      !Draw(plan_->spec_.delay_delivery_prob, FaultKind::kDelayDelivery)) {
    return 0;
  }
  return 1 + static_cast<uint32_t>(rng_.NextBounded(max));
}

bool FaultSite::FireBoltThrow() {
  return Draw(plan_->spec_.bolt_throw_prob, FaultKind::kBoltThrow);
}

bool FaultSite::FireTaskCrash() {
  const double prob = plan_->spec_.task_crash_prob;
  if (prob <= 0.0) return false;
  // Always advance the PRNG so an exhausted budget leaves the site's
  // decision stream (and every later draw) unchanged.
  stats_->consulted[static_cast<size_t>(FaultKind::kTaskCrash)]++;
  if (rng_.NextDouble() >= prob) return false;
  if (!plan_->ConsumeCrashBudget()) return false;
  stats_->fired[static_cast<size_t>(FaultKind::kTaskCrash)]++;
  plan_->Record(FaultKind::kTaskCrash);
  if (metrics_ != nullptr) metrics_->IncFaultsInjected();
  return true;
}

bool FaultSite::FireAckerLoss() {
  return Draw(plan_->spec_.acker_loss_prob, FaultKind::kAckerEventLoss);
}

bool FaultSite::FireBarrierDrop() {
  return Draw(plan_->spec_.barrier_drop_prob, FaultKind::kBarrierDrop);
}

uint32_t FaultSite::BarrierDelayMicros() {
  const uint32_t max = plan_->spec_.barrier_delay_max_micros;
  if (max == 0 ||
      !Draw(plan_->spec_.barrier_delay_prob, FaultKind::kBarrierDelay)) {
    return 0;
  }
  return 1 + static_cast<uint32_t>(rng_.NextBounded(max));
}

uint32_t FaultSite::QueueStallMicros() {
  const uint32_t max = plan_->spec_.queue_stall_micros;
  if (max == 0 ||
      !Draw(plan_->spec_.queue_stall_prob, FaultKind::kQueueStall)) {
    return 0;
  }
  return 1 + static_cast<uint32_t>(rng_.NextBounded(max));
}

}  // namespace streamlib::platform
