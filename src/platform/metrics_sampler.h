#ifndef STREAMLIB_PLATFORM_METRICS_SAMPLER_H_
#define STREAMLIB_PLATFORM_METRICS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "platform/metrics.h"

namespace streamlib::platform {

/// One task's slice of a telemetry interval: counter *deltas* over the
/// interval plus the instantaneous input-queue depth gauge at sample time.
/// Counters are monotone, so every delta is non-negative, and the deltas of
/// one task across all samples sum to its final counter values.
struct TaskSampleDelta {
  uint32_t task = 0;  ///< TaskMetrics::ordinal() (== engine task index).
  uint64_t emitted = 0;
  uint64_t executed = 0;
  uint64_t acked = 0;
  uint64_t failed = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t faults_injected = 0;
  uint64_t flushes = 0;
  uint64_t flushed_tuples = 0;
  uint64_t queue_depth = 0;  ///< Gauge, not a delta (0 for spout tasks).
};

/// One interval snapshot across every task.
struct TelemetrySample {
  uint64_t t_ms = 0;         ///< Milliseconds since sampler start.
  uint64_t interval_ms = 0;  ///< Actual wall time covered by the deltas.
  std::vector<TaskSampleDelta> tasks;
};

/// Background sampler: every `interval_ms` it snapshots all task counters
/// and instantaneous queue depths into an in-memory time series of deltas,
/// and folds each depth observation into the task's max_queue_depth
/// watermark (the sampler *owns* gauge sampling — producers no longer
/// sample depth on flush, which only ever saw producer-side moments and
/// missed drain-side buildup).
///
/// Reads are lock-free against the data path (relaxed atomic counter loads
/// and ApproxSize queue probes); the time series itself is guarded by a
/// mutex so Snapshot() is safe from any thread while the topology runs.
class MetricsSampler {
 public:
  /// One sampled task: its metrics (watermark is updated through the same
  /// pointer) and an optional instantaneous input-depth probe (null for
  /// spouts, which have no input queue).
  struct Probe {
    TaskMetrics* metrics = nullptr;
    std::function<size_t()> queue_depth;  // May be empty.
  };

  MetricsSampler(std::vector<Probe> probes, uint32_t interval_ms);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Takes the baseline snapshot and starts the sampling thread. The
  /// baseline should be taken before any sampled counter moves, so that
  /// delta sums reproduce final totals.
  void Start();

  /// Stops the thread and appends one final sample covering the tail
  /// interval, so even runs shorter than one interval produce a sample and
  /// delta sums always equal final counter totals.
  void Stop();

  /// Copy of the time series so far; safe during a live run.
  std::vector<TelemetrySample> Snapshot() const;

  size_t sample_count() const;
  uint32_t interval_ms() const { return interval_ms_; }

 private:
  struct CounterSnapshot {
    uint64_t emitted = 0;
    uint64_t executed = 0;
    uint64_t acked = 0;
    uint64_t failed = 0;
    uint64_t backpressure_stalls = 0;
    uint64_t faults_injected = 0;
    uint64_t flushes = 0;
    uint64_t flushed_tuples = 0;
  };

  void Loop();
  void TakeSample();

  const std::vector<Probe> probes_;
  const uint32_t interval_ms_;

  // Sampling-thread state (touched by Start/Stop only when the thread is
  // not running).
  std::vector<CounterSnapshot> previous_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_sample_time_;

  mutable std::mutex samples_mu_;
  std::vector<TelemetrySample> samples_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_METRICS_SAMPLER_H_
