#ifndef STREAMLIB_PLATFORM_CLOCK_H_
#define STREAMLIB_PLATFORM_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace streamlib::platform {

/// Injectable time source for everything in the engine that compares "now"
/// against a deadline or stamps a timestamp: epoch-alignment timeouts, the
/// acker's ack-timeout scan, end-to-end latency samples, and trace
/// timestamps. Production runs use the process steady clock; tests inject
/// a ManualClock so timeout paths fire deterministically instead of
/// depending on wall time on a loaded host.
///
/// Implementations must be monotone (reads never decrease) and thread-safe
/// (the engine reads from spout, executor, and acker threads).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds on this clock's monotone timeline. The absolute origin is
  /// implementation-defined; only differences are meaningful.
  virtual uint64_t NowNanos() = 0;

  /// Process-wide steady_clock-backed instance — the default time source.
  static Clock* Steady();
};

inline Clock* Clock::Steady() {
  class SteadyClock final : public Clock {
   public:
    uint64_t NowNanos() override {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    }
  };
  static SteadyClock instance;
  return &instance;
}

/// Test clock: time moves only when told to. Two modes compose:
///  - AdvanceNanos() steps time explicitly from the test body;
///  - a nonzero `advance_per_read_nanos` makes every NowNanos() read step
///    time forward, so engine-internal deadline checks (which a test cannot
///    reach between) still make progress deterministically — each check
///    costs a fixed amount of virtual time, independent of host load.
/// All operations are atomic; reads are monotone by construction.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_nanos = 1,
                       uint64_t advance_per_read_nanos = 0)
      : now_(start_nanos), advance_per_read_(advance_per_read_nanos) {}

  uint64_t NowNanos() override {
    if (advance_per_read_ == 0) {
      return now_.load(std::memory_order_relaxed);
    }
    return now_.fetch_add(advance_per_read_, std::memory_order_relaxed) +
           advance_per_read_;
  }

  /// Steps time forward by `delta_nanos`.
  void AdvanceNanos(uint64_t delta_nanos) {
    now_.fetch_add(delta_nanos, std::memory_order_relaxed);
  }

  /// Current time without advancing (even in auto-advance mode).
  uint64_t PeekNanos() const { return now_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_;
  const uint64_t advance_per_read_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_CLOCK_H_
