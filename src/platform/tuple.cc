#include "platform/tuple.h"

#include <cstring>

namespace streamlib::platform {

uint64_t HashOfValue(const Value& v, uint64_t seed) {
  struct Visitor {
    uint64_t seed;
    uint64_t operator()(std::monostate) const { return HashInt64(0, seed); }
    uint64_t operator()(bool b) const {
      return HashInt64(b ? 2 : 1, seed);
    }
    uint64_t operator()(int64_t x) const {
      return HashInt64(static_cast<uint64_t>(x) ^ 0x5851f42d4c957f2dULL, seed);
    }
    uint64_t operator()(double d) const {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits ^ 0x14057b7ef767814fULL, seed);
    }
    uint64_t operator()(const std::string& s) const {
      return Murmur3_64(s.data(), s.size(), seed);
    }
  };
  return std::visit(Visitor{seed}, v);
}

std::string ValueToString(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(int64_t x) const { return std::to_string(x); }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, v);
}

std::string Tuple::ToString() const {
  if (IsBarrier()) {
    return "(barrier:" + std::to_string(barrier_epoch_) + ")";
  }
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); i++) {
    if (i > 0) out += ", ";
    out += ValueToString(values_[i]);
  }
  out += ")";
  return out;
}

}  // namespace streamlib::platform
