#ifndef STREAMLIB_PLATFORM_TUPLE_H_
#define STREAMLIB_PLATFORM_TUPLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace streamlib::platform {

/// A single field of a tuple. The variant mirrors the value model of
/// Storm/Heron tuples restricted to the types the examples and benches need.
using Value = std::variant<std::monostate, bool, int64_t, double, std::string>;

/// Hashes a Value (used by fields-grouping to route tuples).
uint64_t HashOfValue(const Value& v, uint64_t seed = 0);

/// Renders a Value for logs/debugging.
std::string ValueToString(const Value& v);

/// The unit of data flowing through a topology: an ordered list of named-by-
/// position fields plus routing/ack metadata managed by the engine.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  /// Builds a tuple from a braced list: Tuple::Of("word", int64_t{1}).
  template <typename... Ts>
  static Tuple Of(Ts&&... fields) {
    std::vector<Value> values;
    values.reserve(sizeof...(fields));
    (values.emplace_back(std::forward<Ts>(fields)), ...);
    return Tuple(std::move(values));
  }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& field(size_t i) const {
    STREAMLIB_CHECK(i < values_.size());
    return values_[i];
  }

  /// Typed accessors; abort on type mismatch (a tuple-schema bug).
  int64_t Int(size_t i) const { return Get<int64_t>(i); }
  double Double(size_t i) const { return Get<double>(i); }
  bool Bool(size_t i) const { return Get<bool>(i); }
  const std::string& Str(size_t i) const {
    const Value& v = field(i);
    STREAMLIB_CHECK_MSG(std::holds_alternative<std::string>(v),
                        "tuple field %zu is not a string", i);
    return std::get<std::string>(v);
  }

  const std::vector<Value>& values() const { return values_; }

  /// Engine metadata: id of the root tuple this descends from (0 = untracked)
  /// used by the XOR-ledger acker, mirroring Storm's anchoring model.
  uint64_t anchor_id() const { return anchor_id_; }
  void set_anchor_id(uint64_t id) { anchor_id_ = id; }

  /// Unique id of this tuple edge for ack accounting (0 = untracked).
  uint64_t edge_id() const { return edge_id_; }
  void set_edge_id(uint64_t id) { edge_id_ = id; }

  /// Epoch-barrier marker (Chandy-Lamport snapshot token, DESIGN.md §12):
  /// a field-less control tuple the engine routes to every downstream task.
  /// Bolts never see barriers in Execute — the engine consumes them for
  /// alignment. Epoch numbers start at 1, so 0 doubles as "not a barrier".
  static Tuple Barrier(uint64_t epoch) {
    STREAMLIB_CHECK_MSG(epoch != 0, "barrier epochs start at 1");
    Tuple t;
    t.barrier_epoch_ = epoch;
    return t;
  }
  bool IsBarrier() const { return barrier_epoch_ != 0; }
  uint64_t barrier_epoch() const { return barrier_epoch_; }

  std::string ToString() const;

 private:
  template <typename T>
  const T& Get(size_t i) const {
    const Value& v = field(i);
    STREAMLIB_CHECK_MSG(std::holds_alternative<T>(v),
                        "tuple field %zu holds a different type", i);
    return std::get<T>(v);
  }

  std::vector<Value> values_;
  uint64_t anchor_id_ = 0;
  uint64_t edge_id_ = 0;
  uint64_t barrier_epoch_ = 0;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_TUPLE_H_
