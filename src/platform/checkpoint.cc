#include "platform/checkpoint.h"

#include "common/serde.h"

namespace streamlib::platform {

std::vector<uint8_t> DedupLedger::Serialize() const {

  ByteWriter w;
  w.PutVarint(producers_.size());
  for (const auto& [producer, state] : producers_) {
    w.PutU64(producer);
    w.PutU64(state.watermark);
    w.PutVarint(state.seen.size());
    for (uint64_t id : state.seen) w.PutU64(id);
  }
  return w.TakeBytes();
}

Result<DedupLedger> DedupLedger::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint64_t num_producers;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_producers));
  DedupLedger ledger;
  for (uint64_t p = 0; p < num_producers; p++) {
    uint64_t producer;
    State state;
    uint64_t num_seen;
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&producer));
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&state.watermark));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_seen));
    for (uint64_t i = 0; i < num_seen; i++) {
      uint64_t id;
      STREAMLIB_RETURN_NOT_OK(r.GetU64(&id));
      state.seen.insert(id);
    }
    ledger.producers_.emplace(producer, std::move(state));
  }
  if (!r.AtEnd()) return Status::Corruption("DedupLedger: trailing bytes");
  return ledger;
}

}  // namespace streamlib::platform
