#include "platform/checkpoint.h"

#include <cstdio>

#include "common/serde.h"

namespace streamlib::platform {

namespace {

/// File magic ("SLCK") + format version; a reader seeing anything else
/// knows immediately it is not looking at a checkpoint file.
constexpr uint32_t kCheckpointMagic = 0x534c434bu;
constexpr uint32_t kCheckpointVersion = 1;

}  // namespace

Status KvCheckpointStore::SaveToFile(const std::string& path) const {
  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(kCheckpointVersion);
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.PutVarint(entries_.size());
    for (const auto& [key, entry] : entries_) {
      w.PutString(key);
      w.PutU64(entry.version);
      w.PutVarint(entry.state.size());
      w.PutBytes(entry.state.data(), entry.state.size());
    }
  }
  const std::vector<uint8_t> bytes = w.TakeBytes();
  // Write-then-rename: the file under `path` is always either the old
  // complete checkpoint or the new complete checkpoint, never a torn mix.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + tmp + "' for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

Status KvCheckpointStore::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint file at '" + path + "'");
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on '" + path + "'");
  }

  ByteReader r(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::Corruption("'" + path + "' is not a checkpoint file");
  }
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&version));
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  uint64_t count = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&count));
  // Decode into a staging map so a torn file (Corruption below) leaves the
  // live store untouched.
  std::unordered_map<std::string, Entry> staged;
  staged.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    std::string key;
    Entry entry;
    uint64_t state_len = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetString(&key));
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&entry.version));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&state_len));
    if (state_len > bytes.size()) {
      // A length longer than the whole file is garbage; reject before
      // resize so a torn file can't make us allocate gigabytes.
      return Status::Corruption("checkpoint state length exceeds file size");
    }
    entry.state.resize(state_len);
    STREAMLIB_RETURN_NOT_OK(r.GetBytes(entry.state.data(), state_len));
    staged[std::move(key)] = std::move(entry);
  }
  if (!r.AtEnd()) {
    return Status::Corruption("checkpoint file has trailing bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(staged);
  return Status::OK();
}

std::vector<uint8_t> DedupLedger::Serialize() const {

  ByteWriter w;
  w.PutVarint(producers_.size());
  for (const auto& [producer, state] : producers_) {
    w.PutU64(producer);
    w.PutU64(state.watermark);
    w.PutVarint(state.seen.size());
    for (uint64_t id : state.seen) w.PutU64(id);
  }
  return w.TakeBytes();
}

Result<DedupLedger> DedupLedger::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint64_t num_producers;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_producers));
  DedupLedger ledger;
  for (uint64_t p = 0; p < num_producers; p++) {
    uint64_t producer;
    State state;
    uint64_t num_seen;
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&producer));
    STREAMLIB_RETURN_NOT_OK(r.GetU64(&state.watermark));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_seen));
    for (uint64_t i = 0; i < num_seen; i++) {
      uint64_t id;
      STREAMLIB_RETURN_NOT_OK(r.GetU64(&id));
      state.seen.insert(id);
    }
    ledger.producers_.emplace(producer, std::move(state));
  }
  if (!r.AtEnd()) return Status::Corruption("DedupLedger: trailing bytes");
  return ledger;
}

}  // namespace streamlib::platform
