#include "platform/recorder.h"

#include <cstdio>
#include <utility>
#include <variant>

#include "common/crc32.h"

namespace streamlib::platform {

namespace {

// Segment kinds (part of the persisted format — append only).
constexpr uint8_t kSegMeta = 1;
constexpr uint8_t kSegRecords = 2;
constexpr uint8_t kSegEnd = 3;

// Tuple field tags (part of the persisted format).
constexpr uint8_t kFieldNull = 0;
constexpr uint8_t kFieldBool = 1;
constexpr uint8_t kFieldInt = 2;
constexpr uint8_t kFieldDouble = 3;
constexpr uint8_t kFieldString = 4;

// Records segments flush once the framed buffer passes this size.
constexpr size_t kSegmentFlushBytes = 256 * 1024;

// Backstop for a filesystem slower than the spouts: the handoff queue
// holds at most this many pending segments (~16 MiB) before emit
// threads block on the writer, trading throughput for bounded memory.
constexpr size_t kMaxPendingSegments = 64;

// Recycled segment buffers kept beyond this count are freed instead —
// caps idle memory at ~2 MiB while still absorbing flush bursts.
constexpr size_t kMaxSpareBuffers = 8;

void EncodeConfig(ByteWriter& w, const EngineConfig& c) {
  w.PutU8(static_cast<uint8_t>(c.mode));
  w.PutU8(static_cast<uint8_t>(c.semantics));
  w.PutVarint(c.queue_capacity);
  w.PutVarint(c.multiplexed_threads);
  w.PutVarint(c.max_spout_pending);
  w.PutU64(c.seed);
  w.PutVarint(c.latency_sample_every);
  w.PutDouble(c.ack_timeout_seconds);
  w.PutVarint(c.emit_batch_size);
  w.PutVarint(c.execute_batch_size);
  w.PutU8(c.enable_spsc ? 1 : 0);
  w.PutU8(c.enable_bolt_batch ? 1 : 0);
  w.PutVarint(c.telemetry_sample_interval_ms);
  w.PutVarint(c.trace_sample_every);
  const FaultSpec& f = c.faults;
  w.PutU64(f.seed);
  w.PutDouble(f.drop_tuple_prob);
  w.PutDouble(f.duplicate_tuple_prob);
  w.PutDouble(f.delay_delivery_prob);
  w.PutVarint(f.delay_max_micros);
  w.PutDouble(f.bolt_throw_prob);
  w.PutDouble(f.task_crash_prob);
  w.PutVarint(f.max_task_crashes);
  w.PutDouble(f.queue_stall_prob);
  w.PutVarint(f.queue_stall_micros);
  w.PutDouble(f.acker_loss_prob);
}

Status DecodeConfig(ByteReader& r, EngineConfig* out) {
  uint8_t mode = 0;
  uint8_t semantics = 0;
  uint8_t enable_spsc = 0;
  uint8_t enable_bolt_batch = 0;
  uint64_t v = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&mode));
  if (mode > static_cast<uint8_t>(ExecutionMode::kMultiplexed)) {
    return Status::Corruption("recording: invalid execution mode");
  }
  out->mode = static_cast<ExecutionMode>(mode);
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&semantics));
  if (semantics > static_cast<uint8_t>(DeliverySemantics::kAtLeastOnce)) {
    return Status::Corruption("recording: invalid delivery semantics");
  }
  out->semantics = static_cast<DeliverySemantics>(semantics);
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->queue_capacity = v;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->multiplexed_threads = static_cast<uint32_t>(v);
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->max_spout_pending = v;
  STREAMLIB_RETURN_NOT_OK(r.GetU64(&out->seed));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->latency_sample_every = static_cast<uint32_t>(v);
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&out->ack_timeout_seconds));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->emit_batch_size = v;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->execute_batch_size = v;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&enable_spsc));
  out->enable_spsc = enable_spsc != 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&enable_bolt_batch));
  out->enable_bolt_batch = enable_bolt_batch != 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->telemetry_sample_interval_ms = static_cast<uint32_t>(v);
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  out->trace_sample_every = static_cast<uint32_t>(v);
  FaultSpec& f = out->faults;
  STREAMLIB_RETURN_NOT_OK(r.GetU64(&f.seed));
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&f.drop_tuple_prob));
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&f.duplicate_tuple_prob));
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&f.delay_delivery_prob));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  f.delay_max_micros = static_cast<uint32_t>(v);
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&f.bolt_throw_prob));
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&f.task_crash_prob));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  f.max_task_crashes = static_cast<uint32_t>(v);
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&f.queue_stall_prob));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&v));
  f.queue_stall_micros = static_cast<uint32_t>(v);
  STREAMLIB_RETURN_NOT_OK(r.GetDouble(&f.acker_loss_prob));
  return Status::OK();
}

void EncodeFingerprint(ByteWriter& w, const TopologyFingerprint& fp) {
  w.PutVarint(fp.components.size());
  for (const auto& c : fp.components) {
    w.PutString(c.name);
    w.PutU8(c.is_spout ? 1 : 0);
    w.PutVarint(c.parallelism);
    w.PutVarint(c.inputs.size());
    for (const auto& in : c.inputs) {
      w.PutString(in.source);
      w.PutU8(in.grouping_kind);
      w.PutVarint(in.field_index);
    }
  }
}

Status DecodeFingerprint(ByteReader& r, TopologyFingerprint* out) {
  uint64_t num_components = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_components));
  if (num_components > r.remaining()) {
    return Status::Corruption("recording: component count exceeds segment");
  }
  out->components.clear();
  out->components.reserve(num_components);
  for (uint64_t i = 0; i < num_components; ++i) {
    TopologyFingerprint::Component c;
    uint8_t is_spout = 0;
    uint64_t parallelism = 0;
    uint64_t num_inputs = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetString(&c.name));
    STREAMLIB_RETURN_NOT_OK(r.GetU8(&is_spout));
    c.is_spout = is_spout != 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&parallelism));
    c.parallelism = static_cast<uint32_t>(parallelism);
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_inputs));
    if (num_inputs > r.remaining()) {
      return Status::Corruption("recording: input count exceeds segment");
    }
    c.inputs.reserve(num_inputs);
    for (uint64_t j = 0; j < num_inputs; ++j) {
      TopologyFingerprint::Input in;
      STREAMLIB_RETURN_NOT_OK(r.GetString(&in.source));
      STREAMLIB_RETURN_NOT_OK(r.GetU8(&in.grouping_kind));
      if (in.grouping_kind > static_cast<uint8_t>(GroupingKind::kBroadcast)) {
        return Status::Corruption("recording: invalid grouping kind");
      }
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&in.field_index));
      c.inputs.push_back(std::move(in));
    }
    out->components.push_back(std::move(c));
  }
  return Status::OK();
}

void EncodeSummary(ByteWriter& w, bool has_summary, const RunSummary& s) {
  w.PutU8(has_summary ? 1 : 0);
  if (!has_summary) return;
  w.PutVarint(s.completed_roots);
  w.PutVarint(s.failed_roots);
  for (uint64_t by_kind : s.faults_by_kind) w.PutVarint(by_kind);
  w.PutVarint(s.tasks.size());
  for (const auto& t : s.tasks) {
    w.PutVarint(t.emitted);
    w.PutVarint(t.executed);
    w.PutVarint(t.acked);
    w.PutVarint(t.failed);
    w.PutVarint(t.bolt_exceptions);
  }
}

Status DecodeSummary(ByteReader& r, bool* has_summary, RunSummary* out) {
  uint8_t flag = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU8(&flag));
  *has_summary = flag != 0;
  if (!*has_summary) return Status::OK();
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&out->completed_roots));
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&out->failed_roots));
  for (size_t k = 0; k < kNumFaultKinds; ++k) {
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&out->faults_by_kind[k]));
  }
  uint64_t num_tasks = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_tasks));
  if (num_tasks > r.remaining()) {
    return Status::Corruption("recording: task count exceeds segment");
  }
  out->tasks.clear();
  out->tasks.reserve(num_tasks);
  for (uint64_t i = 0; i < num_tasks; ++i) {
    RunSummary::TaskCounters t;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.emitted));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.executed));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.acked));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.failed));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&t.bolt_exceptions));
    out->tasks.push_back(t);
  }
  return Status::OK();
}

}  // namespace

void EncodeTuple(ByteWriter& w, const Tuple& tuple) {
  w.PutVarint(tuple.size());
  for (const Value& v : tuple.values()) {
    if (std::holds_alternative<std::monostate>(v)) {
      w.PutU8(kFieldNull);
    } else if (const bool* b = std::get_if<bool>(&v)) {
      w.PutU8(kFieldBool);
      w.PutU8(*b ? 1 : 0);
    } else if (const int64_t* i = std::get_if<int64_t>(&v)) {
      w.PutU8(kFieldInt);
      w.PutVarintSigned(*i);
    } else if (const double* d = std::get_if<double>(&v)) {
      w.PutU8(kFieldDouble);
      w.PutDouble(*d);
    } else {
      w.PutU8(kFieldString);
      w.PutString(std::get<std::string>(v));
    }
  }
}

Status DecodeTuple(ByteReader& r, Tuple* out) {
  uint64_t num_fields = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetVarint(&num_fields));
  if (num_fields > r.remaining()) {
    return Status::Corruption("recording: tuple field count exceeds segment");
  }
  std::vector<Value> values;
  values.reserve(num_fields);
  for (uint64_t i = 0; i < num_fields; ++i) {
    uint8_t tag = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetU8(&tag));
    switch (tag) {
      case kFieldNull:
        values.emplace_back(std::monostate{});
        break;
      case kFieldBool: {
        uint8_t b = 0;
        STREAMLIB_RETURN_NOT_OK(r.GetU8(&b));
        values.emplace_back(b != 0);
        break;
      }
      case kFieldInt: {
        int64_t v = 0;
        STREAMLIB_RETURN_NOT_OK(r.GetVarintSigned(&v));
        values.emplace_back(v);
        break;
      }
      case kFieldDouble: {
        double d = 0;
        STREAMLIB_RETURN_NOT_OK(r.GetDouble(&d));
        values.emplace_back(d);
        break;
      }
      case kFieldString: {
        std::string s;
        STREAMLIB_RETURN_NOT_OK(r.GetString(&s));
        values.emplace_back(std::move(s));
        break;
      }
      default:
        return Status::Corruption("recording: unknown tuple field tag");
    }
  }
  *out = Tuple(std::move(values));
  return Status::OK();
}

TopologyFingerprint FingerprintOf(const Topology& topology) {
  TopologyFingerprint fp;
  fp.components.reserve(topology.components().size());
  for (const ComponentSpec& spec : topology.components()) {
    TopologyFingerprint::Component c;
    c.name = spec.name;
    c.is_spout = spec.is_spout;
    c.parallelism = spec.parallelism;
    c.inputs.reserve(spec.inputs.size());
    for (const Subscription& sub : spec.inputs) {
      c.inputs.push_back(TopologyFingerprint::Input{
          sub.source, static_cast<uint8_t>(sub.grouping.kind),
          sub.grouping.field_index});
    }
    fp.components.push_back(std::move(c));
  }
  return fp;
}

Status MatchesTopology(const TopologyFingerprint& fingerprint,
                       const Topology& topology) {
  const TopologyFingerprint actual = FingerprintOf(topology);
  if (actual.components.size() != fingerprint.components.size()) {
    return Status::FailedPrecondition(
        "topology has " + std::to_string(actual.components.size()) +
        " components, recording expects " +
        std::to_string(fingerprint.components.size()));
  }
  for (size_t i = 0; i < actual.components.size(); ++i) {
    const auto& a = actual.components[i];
    const auto& e = fingerprint.components[i];
    if (a.name != e.name || a.is_spout != e.is_spout) {
      return Status::FailedPrecondition("component " + std::to_string(i) +
                                        " is '" + a.name +
                                        "', recording expects '" + e.name +
                                        "'");
    }
    if (a.parallelism != e.parallelism) {
      return Status::FailedPrecondition(
          "component '" + a.name + "' has parallelism " +
          std::to_string(a.parallelism) + ", recording expects " +
          std::to_string(e.parallelism));
    }
    if (a.inputs.size() != e.inputs.size()) {
      return Status::FailedPrecondition("component '" + a.name +
                                        "' subscription list differs from "
                                        "recording");
    }
    for (size_t j = 0; j < a.inputs.size(); ++j) {
      if (a.inputs[j].source != e.inputs[j].source ||
          a.inputs[j].grouping_kind != e.inputs[j].grouping_kind ||
          a.inputs[j].field_index != e.inputs[j].field_index) {
        return Status::FailedPrecondition(
            "component '" + a.name + "' input " + std::to_string(j) +
            " differs from recording");
      }
    }
  }
  return Status::OK();
}

// ----------------------------------------------------------- RunRecorder

// Cache-line aligned so adjacent shards (small heap allocations) never
// share a line — each shard's bytes are written by exactly one thread.
struct alignas(64) RunRecorder::Shard {
  ByteWriter buffer;
  uint64_t buffered_records = 0;
  // Total appended via this shard. Written only by the shard's owner
  // thread (plain load+store, never an RMW — interlocked ops measurably
  // dominated the emit path on virtualized hosts); readers see a
  // monotone value.
  std::atomic<uint64_t> records{0};
};

RunRecorder::RunRecorder(std::string path, std::FILE* file)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp"), file_(file) {}

Result<std::unique_ptr<RunRecorder>> RunRecorder::Create(
    std::string path, const EngineConfig& config, const Topology& topology) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + tmp + "' for writing");
  }
  std::unique_ptr<RunRecorder> recorder(
      new RunRecorder(std::move(path), f));
  // One shard per global task index (separately heap-allocated, so
  // concurrent spout tasks never share a buffer cache line). Bolt
  // indices get shards too — wasteful only in principle; they are one
  // empty ByteWriter each and the indexing stays a plain subscript.
  size_t total_tasks = 0;
  for (const auto& component : topology.components()) {
    total_tasks += component.parallelism;
  }
  recorder->shards_.reserve(total_tasks);
  for (size_t i = 0; i < total_tasks; i++) {
    auto shard = std::make_unique<Shard>();
    // Pre-size to the flush threshold (+ slack for the record that tips
    // it over) so the hot path never reallocates mid-run.
    shard->buffer.Reserve(kSegmentFlushBytes + 4096);
    recorder->shards_.push_back(std::move(shard));
  }
  // Header, then the meta segment — written up front so even a recording
  // interrupted by a crash identifies its run (from the .tmp file).
  ByteWriter header;
  header.PutU32(kRecordingMagic);
  header.PutU32(kRecordingVersion);
  const std::vector<uint8_t> header_bytes = header.TakeBytes();
  if (std::fwrite(header_bytes.data(), 1, header_bytes.size(), f) !=
      header_bytes.size()) {
    std::fclose(f);
    recorder->file_ = nullptr;
    recorder->failed_.store(true, std::memory_order_relaxed);
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  recorder->bytes_written_.fetch_add(header_bytes.size(),
                                     std::memory_order_relaxed);
  ByteWriter meta;
  EncodeConfig(meta, config);
  EncodeFingerprint(meta, FingerprintOf(topology));
  recorder->WriteSegment(kSegMeta, meta.TakeBytes());
  if (recorder->failed()) {
    return Status::Internal("cannot write recording meta segment to '" + tmp +
                            "'");
  }
  // The writer thread owns all records-segment I/O from here on; it is
  // joined by Finalize() before the end segment is written.
  RunRecorder* raw = recorder.get();
  recorder->writer_ = std::thread([raw] { raw->WriterLoop(); });
  return recorder;
}

RunRecorder::~RunRecorder() {
  // Best-effort: an unfinalized recorder still leaves no torn file at the
  // target path (only the .tmp), matching the checkpoint-store discipline.
  (void)Finalize();
}

void RunRecorder::WriteSegment(uint8_t kind,
                               const std::vector<uint8_t>& payload) {
  if (file_ == nullptr || failed_.load(std::memory_order_relaxed)) return;
  ByteWriter frame;
  frame.Reserve(9 + payload.size());
  frame.PutU8(kind);
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  frame.PutBytes(payload.data(), payload.size());
  const std::vector<uint8_t>& bytes = frame.bytes();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    failed_.store(true, std::memory_order_relaxed);
    if (first_error_.ok()) {
      first_error_ = Status::Internal("short write to '" + tmp_path_ + "'");
    }
    return;
  }
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
}

void RunRecorder::RecordEmission(uint32_t spout_task, const Tuple& tuple) {
  // Lock-free single-writer hot path: the tuple is encoded directly into
  // the task's shard buffer — no scratch copy, no mutex, and no
  // interlocked op (see the thread-safety contract in the class doc; the
  // engine's one-thread-per-spout-task lifecycle provides it).
  if (spout_task >= shards_.size() ||
      closed_.load(std::memory_order_relaxed) ||
      failed_.load(std::memory_order_relaxed)) {
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = *shards_[spout_task];
  shard.buffer.PutVarint(spout_task);
  EncodeTuple(shard.buffer, tuple);
  ++shard.buffered_records;
  shard.records.store(shard.records.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  if (shard.buffer.size() < kSegmentFlushBytes) return;

  // Full shard: hand the buffer to the writer thread (a swap and a
  // queue push) and keep emitting into a recycled one. Doing the frame
  // copy, CRC, and fwrite here instead measurably cost ~10% end-to-end
  // throughput on the word-count bench — nearly the recorder's entire
  // overhead — because the emit thread stalls for the full 256 KiB
  // burst every ~36k records.
  ByteWriter full = std::move(shard.buffer);
  const uint64_t count = shard.buffered_records;
  shard.buffered_records = 0;
  EnqueueSegment(std::move(full), count, &shard.buffer);
}

void RunRecorder::EnqueueSegment(ByteWriter&& records, uint64_t count,
                                 ByteWriter* refill) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_space_cv_.wait(
      lock, [this] { return queue_.size() < kMaxPendingSegments; });
  queue_.push_back(PendingSegment{std::move(records), count});
  if (refill != nullptr) {
    if (!spares_.empty()) {
      *refill = std::move(spares_.back());
      spares_.pop_back();
    } else {
      // No spare yet (writer still draining): reserve a fresh buffer.
      // Steady state recycles, so this is rare past warm-up.
      *refill = ByteWriter();
      refill->Reserve(kSegmentFlushBytes + 4096);
    }
  }
  lock.unlock();
  queue_ready_cv_.notify_one();
}

void RunRecorder::WriterLoop() {
  for (;;) {
    PendingSegment seg;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_ready_cv_.wait(
          lock, [this] { return writer_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // writer_stop_ and fully drained.
      seg = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      std::lock_guard<std::mutex> io(io_mu_);
      WriteRecordsSegment(seg.records, seg.count);
    }
    // Recycle the drained buffer: Clear() keeps its capacity, so the
    // next flush reuses warm pages instead of paying an mmap/munmap
    // pair plus a page fault per rewritten line.
    seg.records.Clear();
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (spares_.size() < kMaxSpareBuffers) {
        spares_.push_back(std::move(seg.records));
      }
    }
    queue_space_cv_.notify_one();
  }
}

uint64_t RunRecorder::records_written() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->records.load(std::memory_order_relaxed);
  }
  return total;
}

void RunRecorder::WriteRecordsSegment(const ByteWriter& records,
                                      uint64_t count) {
  if (count == 0) return;
  if (file_ == nullptr || failed_.load(std::memory_order_relaxed)) return;
  // Frame in place: the payload is (varint count ++ record span), but
  // only the tiny count prefix is materialized — the 256 KiB record span
  // is checksummed where it sits and handed straight to fwrite. The
  // obvious build-the-payload-then-WriteSegment path moves every
  // recorded byte through two more buffers, which is pure CPU this
  // machine could have spent running the topology.
  ByteWriter prefix;
  prefix.PutVarint(count);
  uint32_t crc = Crc32(prefix.bytes().data(), prefix.size());
  crc = Crc32(records.bytes().data(), records.size(), crc);
  ByteWriter head;
  head.Reserve(9 + prefix.size());
  head.PutU8(kSegRecords);
  head.PutU32(static_cast<uint32_t>(prefix.size() + records.size()));
  head.PutU32(crc);
  head.PutBytes(prefix.bytes().data(), prefix.size());
  const std::vector<uint8_t>& head_bytes = head.bytes();
  if (std::fwrite(head_bytes.data(), 1, head_bytes.size(), file_) !=
          head_bytes.size() ||
      std::fwrite(records.bytes().data(), 1, records.size(), file_) !=
          records.size()) {
    failed_.store(true, std::memory_order_relaxed);
    if (first_error_.ok()) {
      first_error_ = Status::Internal("short write to '" + tmp_path_ + "'");
    }
    return;
  }
  bytes_written_.fetch_add(head_bytes.size() + records.size(),
                           std::memory_order_relaxed);
}

void RunRecorder::SetSummary(const RunSummary& summary) {
  std::lock_guard<std::mutex> lock(mu_);
  summary_ = summary;
  has_summary_ = true;
}

Status RunRecorder::Finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) {
    std::lock_guard<std::mutex> io(io_mu_);
    return first_error_;
  }
  finalized_ = true;
  // Close the recorder first (a buggy late emit drops instead of
  // vanishing into a drained shard), then push every shard's remainder
  // through the writer queue — FIFO, so each remainder lands after all
  // of its shard's earlier segments — and join the writer before the
  // end segment. The emit threads are quiescent here per the
  // thread-safety contract, so the shards can be read directly.
  closed_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    if (shard->buffered_records == 0) continue;
    ByteWriter full = std::move(shard->buffer);
    const uint64_t count = shard->buffered_records;
    shard->buffered_records = 0;
    EnqueueSegment(std::move(full), count, nullptr);
  }
  if (writer_.joinable()) {
    {
      std::lock_guard<std::mutex> q(queue_mu_);
      writer_stop_ = true;
    }
    queue_ready_cv_.notify_all();
    writer_.join();
  }
  std::lock_guard<std::mutex> io(io_mu_);
  ByteWriter end;
  end.PutU64(records_written());
  EncodeSummary(end, has_summary_, summary_);
  WriteSegment(kSegEnd, end.TakeBytes());
  bool flushed = true;
  if (file_ != nullptr) {
    flushed = std::fflush(file_) == 0;
    std::fclose(file_);
    file_ = nullptr;
  }
  if (failed_.load(std::memory_order_relaxed) || !flushed) {
    std::remove(tmp_path_.c_str());
    if (first_error_.ok()) {
      first_error_ = Status::Internal("short write to '" + tmp_path_ + "'");
    }
    failed_.store(true, std::memory_order_relaxed);
    return first_error_;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    failed_.store(true, std::memory_order_relaxed);
    first_error_ = Status::Internal("cannot rename '" + tmp_path_ + "' to '" +
                                    path_ + "'");
    return first_error_;
  }
  return Status::OK();
}

// ----------------------------------------------------------- ReadRecording

Result<RecordedRun> ReadRecording(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no recording file at '" + path + "'");
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[16384];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on '" + path + "'");
  }

  ByteReader r(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&magic));
  if (magic != kRecordingMagic) {
    return Status::Corruption("'" + path + "' is not a recording file");
  }
  STREAMLIB_RETURN_NOT_OK(r.GetU32(&version));
  if (version != kRecordingVersion) {
    return Status::InvalidArgument("unsupported recording version " +
                                   std::to_string(version));
  }

  RecordedRun run;
  bool saw_meta = false;
  bool saw_end = false;
  uint64_t declared_records = 0;
  while (!r.AtEnd()) {
    if (saw_end) {
      return Status::Corruption("recording: bytes after end segment");
    }
    uint8_t kind = 0;
    uint32_t len = 0;
    uint32_t crc = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetU8(&kind));
    STREAMLIB_RETURN_NOT_OK(r.GetU32(&len));
    STREAMLIB_RETURN_NOT_OK(r.GetU32(&crc));
    if (len > r.remaining()) {
      return Status::Corruption("recording: truncated segment");
    }
    std::vector<uint8_t> payload(len);
    STREAMLIB_RETURN_NOT_OK(r.GetBytes(payload.data(), len));
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption("recording: segment CRC mismatch");
    }
    ByteReader pr(payload);
    switch (kind) {
      case kSegMeta: {
        if (saw_meta) {
          return Status::Corruption("recording: duplicate meta segment");
        }
        saw_meta = true;
        STREAMLIB_RETURN_NOT_OK(DecodeConfig(pr, &run.config));
        STREAMLIB_RETURN_NOT_OK(DecodeFingerprint(pr, &run.fingerprint));
        if (!pr.AtEnd()) {
          return Status::Corruption("recording: trailing bytes in meta");
        }
        break;
      }
      case kSegRecords: {
        if (!saw_meta) {
          return Status::Corruption("recording: records before meta segment");
        }
        uint64_t count = 0;
        STREAMLIB_RETURN_NOT_OK(pr.GetVarint(&count));
        if (count > pr.remaining()) {
          return Status::Corruption("recording: record count exceeds segment");
        }
        run.emissions.reserve(run.emissions.size() + count);
        for (uint64_t i = 0; i < count; ++i) {
          RecordedEmission e;
          uint64_t task = 0;
          STREAMLIB_RETURN_NOT_OK(pr.GetVarint(&task));
          e.spout_task = static_cast<uint32_t>(task);
          STREAMLIB_RETURN_NOT_OK(DecodeTuple(pr, &e.tuple));
          run.emissions.push_back(std::move(e));
        }
        if (!pr.AtEnd()) {
          return Status::Corruption(
              "recording: trailing bytes in records segment");
        }
        break;
      }
      case kSegEnd: {
        if (!saw_meta) {
          return Status::Corruption("recording: end before meta segment");
        }
        saw_end = true;
        STREAMLIB_RETURN_NOT_OK(pr.GetU64(&declared_records));
        STREAMLIB_RETURN_NOT_OK(
            DecodeSummary(pr, &run.has_summary, &run.summary));
        if (!pr.AtEnd()) {
          return Status::Corruption("recording: trailing bytes in end");
        }
        break;
      }
      default:
        return Status::Corruption("recording: unknown segment kind");
    }
  }
  if (!saw_meta) {
    return Status::Corruption("recording: missing meta segment");
  }
  if (!saw_end) {
    return Status::Corruption("recording: missing end segment (torn file)");
  }
  if (declared_records != run.emissions.size()) {
    return Status::Corruption("recording: record count mismatch");
  }
  return run;
}

}  // namespace streamlib::platform
