#ifndef STREAMLIB_PLATFORM_REPLAYABLE_LOG_H_
#define STREAMLIB_PLATFORM_REPLAYABLE_LOG_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "platform/tuple.h"

namespace streamlib::platform {

/// Append-only, offset-addressed tuple log — the in-process stand-in for
/// the Kafka-style durable stream Samza builds on (DESIGN.md §2): consumers
/// read by offset and can *replay* from any offset, which is what gives
/// log-backed pipelines their recovery semantics. Thread-safe.
class ReplayableLog {
 public:
  ReplayableLog() = default;

  /// Appends a tuple; returns its offset.
  uint64_t Append(Tuple tuple) {
    std::lock_guard<std::mutex> lock(mu_);
    log_.push_back(std::move(tuple));
    return log_.size() - 1;
  }

  /// Reads the tuple at `offset`, or nullopt past the end.
  std::optional<Tuple> Read(uint64_t offset) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= log_.size()) return std::nullopt;
    return log_[offset];
  }

  /// Reads up to `max_count` consecutive tuples starting at `offset` under
  /// one lock acquisition — the batched consumer read (Kafka's fetch):
  /// per-tuple Read() pays a mutex round-trip per tuple, which dominates
  /// hot replay loops. Returns fewer than `max_count` at the tail; empty
  /// past the end.
  std::vector<Tuple> ReadBatch(uint64_t offset, size_t max_count) const {
    std::vector<Tuple> batch;
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= log_.size()) return batch;
    const size_t n =
        std::min<size_t>(max_count, log_.size() - static_cast<size_t>(offset));
    batch.reserve(n);
    for (size_t i = 0; i < n; i++) {
      batch.push_back(log_[static_cast<size_t>(offset) + i]);
    }
    return batch;
  }

  uint64_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Tuple> log_;
};

/// Spout replaying a ReplayableLog from a start offset, with at-least-once
/// redelivery: failed roots are re-enqueued and re-emitted. Demonstrates
/// the log-backed recovery model (and exercises the engine's OnFail path
/// in the fault-injection tests).
class LogReplaySpout : public Spout {
 public:
  /// \param log           source log (not owned; must outlive the run).
  /// \param start_offset  first offset to emit.
  /// \param end_offset    one past the last offset (or UINT64_MAX = all).
  LogReplaySpout(const ReplayableLog* log, uint64_t start_offset,
                 uint64_t end_offset)
      : log_(log), next_(start_offset), end_(end_offset) {}

  bool NextTuple(OutputCollector* collector) override {
    // Redeliveries first.
    uint64_t offset;
    std::optional<Tuple> tuple;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!redelivery_.empty()) {
        offset = redelivery_.back();
        redelivery_.pop_back();
      } else if (next_ < end_ && next_ < log_->Size()) {
        // Sequential reads drain a prefetch buffer filled by one ReadBatch
        // per kPrefetchBatch tuples, instead of taking the log's mutex per
        // tuple. The log is append-only, so a refill at next_ < Size() is
        // never empty. Redeliveries (rare, random-access) still Read().
        if (prefetch_pos_ == prefetch_.size()) {
          prefetch_ = log_->ReadBatch(
              next_, static_cast<size_t>(
                         std::min<uint64_t>(kPrefetchBatch, end_ - next_)));
          prefetch_pos_ = 0;
        }
        tuple = std::move(prefetch_[prefetch_pos_++]);
        offset = next_++;
      } else if (pending_ > 0) {
        // Idle poll: waiting for acks/fails of emitted roots. Back off so
        // the spout thread does not spin hot.
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return true;
      } else {
        return false;
      }
      pending_++;
    }
    if (!tuple.has_value()) tuple = log_->Read(offset);
    if (!tuple.has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_--;
      return false;
    }
    collector->Emit(std::move(*tuple));
    // Map the engine-assigned root id to the offset so a failed root can be
    // replayed precisely.
    {
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t root = collector->LastRootId();
      if (root != 0) root_to_offset_[root] = offset;
    }
    return true;
  }

  void OnAck(uint64_t root_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    pending_--;
    acked_++;
    root_to_offset_.erase(root_id);
  }

  void OnFail(uint64_t root_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    pending_--;
    failed_++;
    auto it = root_to_offset_.find(root_id);
    if (it != root_to_offset_.end()) {
      redelivery_.push_back(it->second);
      root_to_offset_.erase(it);
    }
  }

  uint64_t acked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acked_;
  }
  uint64_t failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_;
  }

 private:
  static constexpr size_t kPrefetchBatch = 64;

  const ReplayableLog* log_;
  mutable std::mutex mu_;
  uint64_t next_;
  uint64_t end_;
  std::vector<Tuple> prefetch_;  // Tuples [next_, next_ + size) pre-read.
  size_t prefetch_pos_ = 0;
  uint64_t pending_ = 0;
  uint64_t acked_ = 0;
  uint64_t failed_ = 0;
  std::unordered_map<uint64_t, uint64_t> root_to_offset_;
  std::vector<uint64_t> redelivery_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_REPLAYABLE_LOG_H_
