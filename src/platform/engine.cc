#include "platform/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"

namespace streamlib::platform {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// A unit of data in flight between tasks.
struct Message {
  Tuple tuple;
  uint64_t root_id = 0;          // Ack-tree root; 0 = untracked.
  uint64_t edge_id = 0;          // This delivery's ledger entry.
  uint64_t emit_time_nanos = 0;  // Spout emission time (end-to-end latency).
};

/// Event sent to the acker thread.
struct TopologyEngine::AckerEvent {
  enum Kind { kInit, kUpdate };
  Kind kind = kUpdate;
  uint64_t root_id = 0;
  uint64_t xor_value = 0;
  size_t spout_task = 0;  // kInit only.
};

/// One parallel instance of a component.
struct TopologyEngine::Task {
  size_t global_index = 0;
  size_t component_index = 0;
  uint32_t task_index = 0;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  std::unique_ptr<BlockingQueue<Message>> queue;  // Bolts only.
  std::unique_ptr<TaskCollector> collector;
  ComponentMetrics* metrics = nullptr;
};

/// A subscription edge resolved to concrete target tasks.
struct TopologyEngine::Edge {
  Grouping grouping;
  std::vector<Task*> targets;
};

/// Engine-side OutputCollector for one task: routes, anchors, applies
/// backpressure, and accumulates the XOR of created edge ids.
class TopologyEngine::TaskCollector : public OutputCollector {
 public:
  TaskCollector(TopologyEngine* engine, Task* task, uint64_t seed)
      : engine_(engine), task_(task), rng_(seed) {}

  /// Bolt path: set the anchoring context before Execute.
  void BeginExecute(uint64_t root_id, uint64_t emit_time_nanos) {
    current_root_ = root_id;
    current_emit_time_ = emit_time_nanos;
    xor_out_ = 0;
  }
  uint64_t EndExecute() { return xor_out_; }

  uint64_t LastRootId() const override { return last_spout_root_; }

  void Emit(Tuple tuple) override {
    const bool from_spout = task_->spout != nullptr;
    uint64_t root = current_root_;
    uint64_t emit_time = current_emit_time_;
    if (from_spout) {
      emit_time = NowNanos();
      if (engine_->config_.semantics == DeliverySemantics::kAtLeastOnce) {
        root = engine_->next_root_id_.fetch_add(1, std::memory_order_relaxed);
        engine_->inflight_roots_.fetch_add(1, std::memory_order_relaxed);
        last_spout_root_ = root;
        xor_out_ = 0;
      }
    }

    uint64_t edge_xor = 0;
    const auto& edges = engine_->outgoing_[task_->component_index];
    for (const Edge& edge : edges) {
      // Resolve the target task set for this tuple.
      switch (edge.grouping.kind) {
        case GroupingKind::kBroadcast:
          for (Task* target : edge.targets) {
            edge_xor ^= Send(target, tuple, root, emit_time);
          }
          break;
        case GroupingKind::kShuffle: {
          Task* target = edge.targets[rng_.NextBounded(edge.targets.size())];
          edge_xor ^= Send(target, tuple, root, emit_time);
          break;
        }
        case GroupingKind::kFields: {
          const uint64_t h =
              HashOfValue(tuple.field(edge.grouping.field_index), 77);
          Task* target = edge.targets[h % edge.targets.size()];
          edge_xor ^= Send(target, tuple, root, emit_time);
          break;
        }
        case GroupingKind::kGlobal:
          edge_xor ^= Send(edge.targets[0], tuple, root, emit_time);
          break;
      }
    }
    task_->metrics->IncEmitted();

    if (engine_->config_.semantics == DeliverySemantics::kAtLeastOnce) {
      if (from_spout) {
        // Register the root with its initial ledger value.
        engine_->acker_queue_->Push(AckerEvent{AckerEvent::kInit, root,
                                               edge_xor,
                                               task_->global_index});
      } else if (root != 0) {
        xor_out_ ^= edge_xor;
      }
    }
  }

 private:
  /// Routes one copy to `target`; returns the created edge id (0 untracked).
  uint64_t Send(Task* target, const Tuple& tuple, uint64_t root,
                uint64_t emit_time) {
    const uint64_t edge_id =
        root != 0
            ? engine_->next_edge_id_.fetch_add(1, std::memory_order_relaxed)
            : 0;
    Message message;
    message.tuple = tuple;
    message.root_id = root;
    message.edge_id = edge_id;
    message.emit_time_nanos = emit_time;
    engine_->pending_messages_.fetch_add(1, std::memory_order_acq_rel);
    if (!target->queue->TryPush(std::move(message))) {
      task_->metrics->IncBackpressureStalls();
      Message retry;
      retry.tuple = tuple;
      retry.root_id = root;
      retry.edge_id = edge_id;
      retry.emit_time_nanos = emit_time;
      bool delivered;
      if (engine_->config_.mode == ExecutionMode::kMultiplexed &&
          task_->bolt != nullptr) {
        // A multiplexed executor must never block on a queue it may itself
        // be responsible for draining (deadlock); fall back to unbounded
        // buffering — faithfully reproducing pre-backpressure Storm, whose
        // internal queues grew without bound under imbalance (the failure
        // mode Heron's dedicated executors + real backpressure fixed).
        delivered = target->queue->ForcePush(std::move(retry));
      } else {
        // Spouts and dedicated-mode bolts block: bounded-queue backpressure.
        delivered = target->queue->Push(std::move(retry));
      }
      if (!delivered) {
        engine_->pending_messages_.fetch_sub(1, std::memory_order_acq_rel);
        return 0;  // Queue closed during shutdown; tuple dropped.
      }
    }
    return edge_id;
  }

  TopologyEngine* engine_;
  Task* task_;
  Rng rng_;
  uint64_t current_root_ = 0;
  uint64_t current_emit_time_ = 0;
  uint64_t xor_out_ = 0;
  uint64_t last_spout_root_ = 0;
};

TopologyEngine::TopologyEngine(Topology topology, EngineConfig config)
    : topology_(std::move(topology)), config_(config) {}

TopologyEngine::~TopologyEngine() = default;

void TopologyEngine::BuildTasks() {
  const auto& components = topology_.components();
  std::vector<std::vector<Task*>> tasks_by_component(components.size());

  for (size_t ci = 0; ci < components.size(); ci++) {
    const ComponentSpec& spec = components[ci];
    for (uint32_t ti = 0; ti < spec.parallelism; ti++) {
      auto task = std::make_unique<Task>();
      task->global_index = tasks_.size();
      task->component_index = ci;
      task->task_index = ti;
      task->metrics = &metrics_.ForComponent(spec.name);
      if (spec.is_spout) {
        task->spout = spec.spout_factory();
      } else {
        task->bolt = spec.bolt_factory();
        task->queue =
            std::make_unique<BlockingQueue<Message>>(config_.queue_capacity);
      }
      task->collector = std::make_unique<TaskCollector>(
          this, task.get(),
          config_.seed ^ (0x9e3779b97f4a7c15ULL * (task->global_index + 1)));
      tasks_by_component[ci].push_back(task.get());
      tasks_.push_back(std::move(task));
    }
  }

  // Resolve subscription edges into per-source outgoing lists.
  outgoing_.assign(components.size(), {});
  for (size_t ci = 0; ci < components.size(); ci++) {
    for (const Subscription& sub : components[ci].inputs) {
      const size_t source = topology_.IndexOf(sub.source);
      Edge edge;
      edge.grouping = sub.grouping;
      edge.targets = tasks_by_component[ci];
      outgoing_[source].push_back(std::move(edge));
    }
  }
}

void TopologyEngine::SpoutLoop(Task* task) {
  task->spout->Open(task->task_index,
                    topology_.components()[task->component_index].parallelism);
  while (true) {
    if (config_.semantics == DeliverySemantics::kAtLeastOnce) {
      // Spout throttle: cap in-flight tuple trees.
      while (inflight_roots_.load(std::memory_order_relaxed) >=
             config_.max_spout_pending) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    if (!task->spout->NextTuple(task->collector.get())) break;
  }
}

void TopologyEngine::ExecuteMessage(Task* task, Message& message) {
  task->collector->BeginExecute(message.root_id, message.emit_time_nanos);
  task->bolt->Execute(message.tuple, task->collector.get());
  const uint64_t xor_out = task->collector->EndExecute();
  task->metrics->IncExecuted();
  const uint64_t executed = task->metrics->executed();
  if (config_.latency_sample_every > 0 &&
      executed % config_.latency_sample_every == 0 &&
      message.emit_time_nanos > 0) {
    task->metrics->RecordLatencyNanos(NowNanos() - message.emit_time_nanos);
  }
  if (config_.semantics == DeliverySemantics::kAtLeastOnce &&
      message.root_id != 0) {
    acker_queue_->Push(AckerEvent{AckerEvent::kUpdate, message.root_id,
                                  message.edge_id ^ xor_out, 0});
  }
  pending_messages_.fetch_sub(1, std::memory_order_acq_rel);
}

void TopologyEngine::DedicatedBoltLoop(Task* task) {
  task->bolt->Prepare(
      task->task_index,
      topology_.components()[task->component_index].parallelism);
  while (auto message = task->queue->Pop()) {
    ExecuteMessage(task, *message);
  }
}

void TopologyEngine::MultiplexedWorkerLoop(const std::vector<Task*>& tasks) {
  // One executor thread serving many task queues round-robin (Storm-style
  // multiplexing): poll each queue for a small batch, sleep when idle.
  while (true) {
    bool any = false;
    for (Task* task : tasks) {
      for (int batch = 0; batch < 32; batch++) {
        auto message = task->queue->TryPop();
        if (!message) break;
        any = true;
        ExecuteMessage(task, *message);
      }
    }
    if (!any) {
      bool all_done = true;
      for (Task* task : tasks) {
        if (!task->queue->Closed() || task->queue->Size() > 0) {
          all_done = false;
          break;
        }
      }
      if (all_done) return;
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void TopologyEngine::AckerLoop() {
  struct RootEntry {
    uint64_t value = 0;
    size_t spout_task = 0;
    bool initialized = false;
    uint64_t created_nanos = 0;
  };
  std::unordered_map<uint64_t, RootEntry> ledger;
  const uint64_t timeout_nanos =
      static_cast<uint64_t>(config_.ack_timeout_seconds * 1e9);
  uint64_t last_scan = NowNanos();

  auto resolve = [&](uint64_t root, RootEntry& entry, bool success) {
    Task* spout_task = tasks_[entry.spout_task].get();
    if (success) {
      completed_roots_.fetch_add(1, std::memory_order_relaxed);
      spout_task->metrics->IncAcked();
      spout_task->spout->OnAck(root);
    } else {
      failed_roots_.fetch_add(1, std::memory_order_relaxed);
      spout_task->metrics->IncFailed();
      spout_task->spout->OnFail(root);
    }
    inflight_roots_.fetch_sub(1, std::memory_order_relaxed);
  };

  while (true) {
    auto event = acker_queue_->TryPop();
    if (!event) {
      if (acker_queue_->Closed()) break;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else {
      RootEntry& entry = ledger[event->root_id];
      entry.value ^= event->xor_value;
      if (event->kind == AckerEvent::kInit) {
        entry.initialized = true;
        entry.spout_task = event->spout_task;
        entry.created_nanos = NowNanos();
      }
      if (entry.initialized && entry.value == 0) {
        resolve(event->root_id, entry, /*success=*/true);
        ledger.erase(event->root_id);
      }
    }
    // Periodic timeout scan.
    const uint64_t now = NowNanos();
    if (now - last_scan > timeout_nanos / 4 + 1000000) {
      last_scan = now;
      for (auto it = ledger.begin(); it != ledger.end();) {
        if (it->second.initialized &&
            now - it->second.created_nanos > timeout_nanos) {
          resolve(it->first, it->second, /*success=*/false);
          it = ledger.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  // Shutdown: anything left unresolved fails.
  for (auto& [root, entry] : ledger) {
    if (entry.initialized) resolve(root, entry, /*success=*/false);
  }
}

/// Synchronous collector used by the post-drain Finish() pass: emissions
/// route like live traffic but invoke downstream Execute directly (all
/// worker threads have stopped, so this is safe and single-threaded).
class TopologyEngine::FinishCollector : public OutputCollector {
 public:
  FinishCollector(TopologyEngine* engine, Task* task, uint64_t seed)
      : engine_(engine), task_(task), rng_(seed) {}

  void Emit(Tuple tuple) override {
    task_->metrics->IncEmitted();
    for (const Edge& edge : engine_->outgoing_[task_->component_index]) {
      switch (edge.grouping.kind) {
        case GroupingKind::kBroadcast:
          for (Task* target : edge.targets) Deliver(target, tuple);
          break;
        case GroupingKind::kShuffle:
          Deliver(edge.targets[rng_.NextBounded(edge.targets.size())], tuple);
          break;
        case GroupingKind::kFields: {
          const uint64_t h =
              HashOfValue(tuple.field(edge.grouping.field_index), 77);
          Deliver(edge.targets[h % edge.targets.size()], tuple);
          break;
        }
        case GroupingKind::kGlobal:
          Deliver(edge.targets[0], tuple);
          break;
      }
    }
  }

 private:
  void Deliver(Task* target, const Tuple& tuple) {
    FinishCollector downstream(engine_, target, rng_.Next());
    target->bolt->Execute(tuple, &downstream);
    target->metrics->IncExecuted();
  }

  TopologyEngine* engine_;
  Task* task_;
  Rng rng_;
};

void TopologyEngine::RunFinishPass() {
  // Components are already topologically ordered; flush each bolt task so
  // aggregates emitted here flow to (not-yet-finished) downstream bolts.
  for (const auto& task : tasks_) {
    if (task->bolt == nullptr) continue;
    FinishCollector collector(this, task.get(),
                              config_.seed ^ task->global_index);
    task->bolt->Finish(&collector);
  }
}

void TopologyEngine::Run() {
  STREAMLIB_CHECK_MSG(!ran_, "TopologyEngine is single-use");
  ran_ = true;
  BuildTasks();

  if (config_.semantics == DeliverySemantics::kAtLeastOnce) {
    acker_queue_ = std::make_unique<BlockingQueue<AckerEvent>>(1 << 16);
    acker_thread_ = std::thread([this] { AckerLoop(); });
  }

  // Bolt executors.
  std::vector<Task*> bolt_tasks;
  for (const auto& task : tasks_) {
    if (task->bolt != nullptr) bolt_tasks.push_back(task.get());
  }
  if (config_.mode == ExecutionMode::kDedicated) {
    for (Task* task : bolt_tasks) {
      threads_.emplace_back([this, task] { DedicatedBoltLoop(task); });
    }
  } else {
    const uint32_t workers =
        std::max<uint32_t>(1, config_.multiplexed_threads);
    std::vector<std::vector<Task*>> assignment(workers);
    for (size_t i = 0; i < bolt_tasks.size(); i++) {
      assignment[i % workers].push_back(bolt_tasks[i]);
    }
    for (Task* task : bolt_tasks) {
      task->bolt->Prepare(
          task->task_index,
          topology_.components()[task->component_index].parallelism);
    }
    for (uint32_t w = 0; w < workers; w++) {
      if (assignment[w].empty()) continue;
      auto tasks = assignment[w];
      threads_.emplace_back(
          [this, tasks] { MultiplexedWorkerLoop(tasks); });
    }
  }

  // Spouts.
  std::vector<std::thread> spout_threads;
  for (const auto& task : tasks_) {
    if (task->spout != nullptr) {
      spout_threads.emplace_back([this, t = task.get()] { SpoutLoop(t); });
    }
  }
  for (auto& t : spout_threads) t.join();
  spouts_done_.store(true, std::memory_order_release);

  // Drain: wait until no message is queued or mid-execution, and (at least
  // once) until every tuple tree resolved.
  while (pending_messages_.load(std::memory_order_acquire) != 0 ||
         (config_.semantics == DeliverySemantics::kAtLeastOnce &&
          inflight_roots_.load(std::memory_order_relaxed) != 0)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Stop executors.
  for (Task* task : bolt_tasks) task->queue->Close();
  for (auto& t : threads_) t.join();
  threads_.clear();

  if (config_.semantics == DeliverySemantics::kAtLeastOnce) {
    acker_queue_->Close();
    acker_thread_.join();
  }

  RunFinishPass();
}

}  // namespace streamlib::platform
