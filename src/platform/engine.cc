#include "platform/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"
#include "platform/checkpoint.h"
#include "platform/clock.h"
#include "platform/epoch.h"
#include "platform/recorder.h"
#include "platform/spsc_ring.h"

namespace streamlib::platform {

namespace {

/// Per-task trace event buffer size. Bounds tracing memory regardless of
/// run length; overflow overwrites oldest events (counted, and affected
/// trees are marked incomplete rather than silently miswired).
constexpr size_t kTraceRingCapacity = 4096;

}  // namespace

Status EngineConfig::Validate() const {
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (emit_batch_size == 0 || execute_batch_size == 0) {
    return Status::InvalidArgument(
        "emit_batch_size / execute_batch_size must be >= 1 (1 disables "
        "batching)");
  }
  if (mode == ExecutionMode::kMultiplexed && multiplexed_threads == 0) {
    return Status::InvalidArgument(
        "multiplexed mode needs at least one executor thread");
  }
  // Checked regardless of semantics: the knob must always be sane, and the
  // isfinite guard keeps NaN (for which every comparison is false) from
  // slipping through to the acker's timeout arithmetic.
  if (!std::isfinite(ack_timeout_seconds) || ack_timeout_seconds <= 0) {
    return Status::InvalidArgument(
        "ack_timeout_seconds must be positive and finite");
  }
  if (TracksTuples(semantics) && max_spout_pending == 0) {
    return Status::InvalidArgument(
        "tracked delivery needs max_spout_pending >= 1");
  }
  if (semantics == DeliverySemantics::kExactlyOnce &&
      (checkpoint_store == nullptr || epoch_interval_tuples == 0)) {
    return Status::InvalidArgument(
        "exactly-once needs a checkpoint_store and epoch_interval_tuples "
        ">= 1");
  }
  if ((epoch_interval_tuples > 0 || resume_from_epoch > 0) &&
      checkpoint_store == nullptr) {
    return Status::InvalidArgument(
        "epoch checkpointing needs a checkpoint_store");
  }
  if (!std::isfinite(epoch_align_timeout_seconds) ||
      epoch_align_timeout_seconds <= 0) {
    return Status::InvalidArgument(
        "epoch_align_timeout_seconds must be positive and finite");
  }
  // Recording captures spout emissions only; barrier schedules and restored
  // state are outside the recording's determinism envelope, so a replay
  // could not reproduce the run. Reject the combination up front.
  if (recorder != nullptr &&
      (epoch_interval_tuples > 0 || resume_from_epoch > 0)) {
    return Status::InvalidArgument(
        "flight recording and epoch checkpointing are mutually exclusive");
  }
  // Telemetry knobs: 0 = disabled, not an error. Guard against intervals
  // so short the sampler becomes a busy loop perturbing the data path.
  if (telemetry_sample_interval_ms > 60'000) {
    return Status::InvalidArgument(
        "telemetry_sample_interval_ms must be <= 60000 (0 disables)");
  }
  STREAMLIB_RETURN_NOT_OK(faults.Validate());
  return Status::OK();
}

/// A unit of data in flight between tasks.
struct Message {
  Tuple tuple;
  uint64_t root_id = 0;          // Ack-tree root; 0 = untracked.
  uint64_t edge_id = 0;          // This delivery's ledger entry.
  uint64_t emit_time_nanos = 0;  // Spout emission time (end-to-end latency).
  // Producing task's global index. Barrier alignment needs it: an MPMC
  // input queue merges producers, but the aligner must know *whose*
  // barrier (and whose post-barrier data) each message is.
  uint32_t producer_task = 0;
  // Sampled tracing (all 0 on untraced tuples — the common case).
  uint64_t trace_id = 0;            // Root span id of the sampled tree.
  uint64_t trace_parent_span = 0;   // Span of the hop that emitted this.
  uint64_t trace_enqueue_nanos = 0; // Stage time (queue-wait measurement).
};

/// Event sent to the acker thread.
struct TopologyEngine::AckerEvent {
  enum Kind { kInit, kUpdate };
  Kind kind = kUpdate;
  uint64_t root_id = 0;
  uint64_t xor_value = 0;
  size_t spout_task = 0;  // kInit only.
};

/// One parallel instance of a component.
///
/// Bolt tasks own exactly one input channel: a lock-free SPSC ring when the
/// task has a single producer task in dedicated mode (the common
/// spout→bolt pipeline edge), otherwise the mutex-based MPMC BlockingQueue.
/// The In* helpers dispatch to whichever is present.
struct TopologyEngine::Task {
  size_t global_index = 0;
  size_t component_index = 0;
  uint32_t task_index = 0;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  std::unique_ptr<BlockingQueue<Message>> queue;  // Bolts, multi-producer.
  std::unique_ptr<SpscRing<Message>> ring;        // Bolts, single-producer.
  std::unique_ptr<TaskCollector> collector;
  TaskMetrics* metrics = nullptr;
  std::unique_ptr<TraceRing> trace_ring;  // Null when tracing is disabled.
  // Fault-injection decision streams, null when injection is disabled.
  // All are consulted only by the thread currently running this task
  // (which the engine serializes), so each stream is deterministic.
  std::unique_ptr<FaultSite> transport_faults;  // Stage: drop/dup/delay.
  std::unique_ptr<FaultSite> executor_faults;   // Execute/crash/acker loss.
  std::unique_ptr<FaultSite> stall_faults;      // Input-queue drain stalls.
  std::unique_ptr<FaultSite> barrier_faults;    // Barrier drop/delay.

  // Epoch-barrier state (null/empty unless epoch_interval_tuples > 0; all
  // touched only by the thread currently running this task).
  std::unique_ptr<EpochAligner> aligner;  // Bolts only.
  std::vector<Message> held;        // Post-barrier input awaiting alignment.
  std::vector<uint64_t> held_tags;  // held[i] belongs to epoch held_tags[i].
  uint64_t last_snapshot_epoch = 0;  // Frame a crash-restart restores from.

  // Fused-chain wiring (DESIGN.md §13). On a chain head: the downstream
  // stage tasks in chain order (stage s of tuple routing = fused_stages[s]).
  // A follower has no input channel and no thread of its own — its bolt
  // runs inline on the head's thread, so all its state keeps the
  // one-consulting-thread invariant.
  std::vector<Task*> fused_stages;
  bool fused_follower = false;

  size_t InPushAll(std::span<Message> b) {
    return ring ? ring->PushAll(b) : queue->PushAll(b);
  }
  size_t InTryPushAll(std::span<Message> b) {
    return ring ? ring->TryPushAll(b) : queue->TryPushAll(b);
  }
  size_t InForcePushAll(std::span<Message> b) {
    // Rings are never selected in multiplexed mode, the only ForcePush
    // caller; fall back to a blocking push if that ever changes.
    return ring ? ring->PushAll(b) : queue->ForcePushAll(b);
  }
  size_t InPopBatch(std::vector<Message>& out, size_t max) {
    return ring ? ring->PopBatch(out, max) : queue->PopBatch(out, max);
  }
  size_t InTryPopBatch(std::vector<Message>& out, size_t max) {
    return ring ? ring->TryPopBatch(out, max) : queue->TryPopBatch(out, max);
  }
  size_t InPopBatchTimed(std::vector<Message>& out, size_t max,
                         std::chrono::nanoseconds timeout) {
    return ring ? ring->PopBatchWithTimeout(out, max, timeout)
                : queue->PopBatchWithTimeout(out, max, timeout);
  }
  void InClose() {
    if (ring) {
      ring->Close();
    } else {
      queue->Close();
    }
  }
  size_t InSize() const { return ring ? ring->Size() : queue->Size(); }
  size_t InApproxSize() const {
    return ring ? ring->ApproxSize() : queue->ApproxSize();
  }
  bool InClosed() const { return ring ? ring->Closed() : queue->Closed(); }
};

/// A subscription edge resolved to concrete target tasks.
struct TopologyEngine::Edge {
  Grouping grouping;
  std::vector<Task*> targets;
  // Realized as an in-thread fused hop: no queue, no staging slot; the
  // producer's Emit runs the consumer's chain inline (RunFusedChain).
  bool fused = false;
};

/// Engine-side OutputCollector for one task: routes, anchors, applies
/// backpressure, and accumulates the XOR of created edge ids.
///
/// Emissions do not hit downstream queues directly: they accumulate in
/// per-target staging buffers and flush as one batch push when a buffer
/// reaches emit_batch_size or the surrounding Execute/NextTuple batch ends
/// (FlushAll). This amortizes the lock/notify per queue operation over the
/// batch while preserving per-target FIFO order. Acker traffic (kInit from
/// spouts, kUpdate from bolts) is staged and flushed the same way — one
/// vector push per execute batch.
class TopologyEngine::TaskCollector : public OutputCollector {
 public:
  TaskCollector(TopologyEngine* engine, Task* task, uint64_t seed)
      : engine_(engine),
        task_(task),
        rng_(seed),
        batch_size_(std::max<size_t>(1, engine->config_.emit_batch_size)) {}

  /// Called once after subscription edges are resolved: builds one staging
  /// slot per distinct downstream task this task can route to.
  void InitStaging() {
    slot_of_task_.assign(engine_->tasks_.size(), -1);
    for (const Edge& edge : engine_->outgoing_[task_->component_index]) {
      if (edge.fused) continue;  // Fused hops bypass staging entirely.
      for (Task* target : edge.targets) {
        if (slot_of_task_[target->global_index] < 0) {
          slot_of_task_[target->global_index] =
              static_cast<int32_t>(slots_.size());
          slots_.emplace_back();
          slots_.back().target = target;
          slots_.back().buffer.reserve(batch_size_);
        }
      }
    }
  }

  /// Bolt path: set the anchoring context before Execute. `trace_id` and
  /// `span` propagate the sampled trace (0 on untraced tuples): children
  /// emitted during this Execute become spans parented under `span`.
  void BeginExecute(uint64_t root_id, uint64_t emit_time_nanos,
                    uint64_t trace_id, uint64_t span) {
    current_root_ = root_id;
    current_emit_time_ = emit_time_nanos;
    current_trace_ = trace_id;
    current_span_ = span;
    xor_out_ = 0;
  }
  uint64_t EndExecute() { return xor_out_; }

  uint64_t LastRootId() const override { return last_spout_root_; }

  /// Monotonic count of Emit calls (spout loop uses it to detect idle
  /// polls and flush promptly instead of batching across waits).
  uint64_t total_emitted() const { return total_emitted_; }

  void Emit(Tuple tuple) override {
    const bool from_spout = task_->spout != nullptr;
    uint64_t root = current_root_;
    uint64_t emit_time = current_emit_time_;
    if (from_spout) {
      // Flight recorder tap: capture the emission before routing consumes
      // (moves) the tuple. Everything downstream is deterministic given
      // the config, so spout output is all the recording needs.
      if (engine_->config_.recorder != nullptr) {
        engine_->config_.recorder->RecordEmission(
            static_cast<uint32_t>(task_->global_index), tuple);
      }
      // Source-side latency sampling: stamp every Nth emission instead of
      // reading the clock per tuple; executors sample exactly the stamped
      // tuples (and their descendants, which inherit the stamp).
      const uint32_t every = engine_->config_.latency_sample_every;
      emit_time =
          every > 0 && total_emitted_ % every == 0 ? engine_->NowNanos() : 0;
      // Trace sampling rides the same counter: every Kth root becomes a
      // span tree, rooted at a span recorded right here.
      const uint32_t trace_every = engine_->config_.trace_sample_every;
      if (trace_every > 0 && total_emitted_ % trace_every == 0) {
        current_trace_ =
            engine_->next_span_id_.fetch_add(1, std::memory_order_relaxed);
        current_span_ = current_trace_;
        task_->trace_ring->Record(TraceEvent{
            current_trace_, current_trace_, /*parent_span=*/0,
            static_cast<uint32_t>(task_->global_index), engine_->NowNanos(),
            /*wait_nanos=*/0, /*execute_nanos=*/0});
      } else {
        current_trace_ = 0;
        current_span_ = 0;
      }
      if (TracksTuples(engine_->config_.semantics)) {
        root = engine_->next_root_id_.fetch_add(1, std::memory_order_relaxed);
        engine_->inflight_roots_.fetch_add(1, std::memory_order_relaxed);
        last_spout_root_ = root;
        xor_out_ = 0;
      }
    }

    // Fused chain head: run every downstream stage inline on this thread
    // instead of routing into queues. The chain returns the XOR of poison
    // edge ids for failed hops — 0 when everything succeeded, which under
    // tracking makes the root's ledger resolve immediately (the same
    // eventual outcome the queued path reaches after its ack round-trips).
    if (!task_->fused_stages.empty()) {
      const uint64_t chain_xor = engine_->RunFusedChain(
          task_, std::move(tuple), root, emit_time, current_trace_,
          current_span_);
      total_emitted_++;
      unflushed_emits_++;
      if (TracksTuples(engine_->config_.semantics)) {
        if (from_spout) {
          StageAck(AckerEvent{AckerEvent::kInit, root, chain_xor,
                              task_->global_index});
        } else if (root != 0) {
          xor_out_ ^= chain_xor;
        }
      }
      return;
    }

    // Resolve this tuple's target task set across all outgoing edges.
    targets_scratch_.clear();
    for (const Edge& edge : engine_->outgoing_[task_->component_index]) {
      switch (edge.grouping.kind) {
        case GroupingKind::kBroadcast:
          for (Task* target : edge.targets) targets_scratch_.push_back(target);
          break;
        case GroupingKind::kShuffle:
          targets_scratch_.push_back(
              edge.targets[rng_.NextBounded(edge.targets.size())]);
          break;
        case GroupingKind::kFields: {
          const uint64_t h = HashOfValue(tuple.field(edge.grouping.field_index),
                                         kFieldsGroupingHashSeed);
          targets_scratch_.push_back(edge.targets[h % edge.targets.size()]);
          break;
        }
        case GroupingKind::kGlobal:
          targets_scratch_.push_back(edge.targets[0]);
          break;
      }
    }

    uint64_t edge_xor = 0;
    for (size_t i = 0; i < targets_scratch_.size(); i++) {
      const bool last = i + 1 == targets_scratch_.size();
      edge_xor ^= Stage(targets_scratch_[i],
                        last ? std::move(tuple) : Tuple(tuple), root,
                        emit_time);
    }
    total_emitted_++;
    unflushed_emits_++;

    if (TracksTuples(engine_->config_.semantics)) {
      if (from_spout) {
        // Register the root with its initial ledger value.
        StageAck(AckerEvent{AckerEvent::kInit, root, edge_xor,
                            task_->global_index});
      } else if (root != 0) {
        xor_out_ ^= edge_xor;
      }
    }
  }

  /// Stages the epoch-barrier marker to every downstream task and flushes
  /// immediately: per-slot FIFO puts the marker after every already-staged
  /// tuple of its epoch, and prompt flushing keeps downstream alignment
  /// latency off the data's critical path. Barrier faults (drop/delay)
  /// inject here, one decision per (barrier, target).
  void EmitBarrier(uint64_t epoch) {
    FaultSite* faults = task_->barrier_faults.get();
    for (StagingSlot& slot : slots_) {
      if (faults != nullptr) {
        const uint32_t delay_us = faults->BarrierDelayMicros();
        if (delay_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        }
        if (faults->FireBarrierDrop()) {
          // Marker lost toward this one target: its alignment on `epoch`
          // starves until the timeout force-advances past it. The staged
          // data still flows.
          FlushSlot(slot);
          continue;
        }
      }
      Message& message = slot.buffer.emplace_back();
      message.tuple = Tuple::Barrier(epoch);
      message.producer_task = static_cast<uint32_t>(task_->global_index);
      FlushSlot(slot);
    }
  }

  void StageAck(const AckerEvent& event) {
    // Acker-loss fault: only kUpdate events may be dropped. Dropping a
    // kInit would leave the ledger entry uninitialized forever — the
    // timeout scan skips those, so the root could never fail and the
    // engine's drain would hang. Losing an update models the real failure
    // (an executor's ack lost in transit): the root stays unresolved until
    // the timeout fails it back to the spout.
    if (event.kind == AckerEvent::kUpdate &&
        task_->executor_faults != nullptr &&
        task_->executor_faults->FireAckerLoss()) {
      return;
    }
    acker_staging_.push_back(event);
  }

  /// Flushes every staging buffer, the emitted-counter delta, and staged
  /// acker events. Must run before the owning thread blocks on anything a
  /// staged tuple could be needed to unblock (execute-batch end, spout
  /// throttle wait, shutdown).
  void FlushAll() {
    // A chain head flushes its followers first: a fused tail may have
    // staged tuples toward queued edges past the chain (and kUpdate acker
    // events), and those obey the same flush-before-blocking contract.
    for (Task* follower : task_->fused_stages) follower->collector->FlushAll();
    for (StagingSlot& slot : slots_) FlushSlot(slot);
    if (unflushed_emits_ > 0) {
      task_->metrics->IncEmitted(unflushed_emits_);
      unflushed_emits_ = 0;
    }
    if (!acker_staging_.empty()) {
      engine_->acker_queue_->PushAll(std::span<AckerEvent>(acker_staging_));
      acker_staging_.clear();
    }
  }

 private:
  struct StagingSlot {
    Task* target = nullptr;
    std::vector<Message> buffer;
  };

  /// Stages one copy for `target`; returns the XOR of the edge ids created
  /// for this delivery (0 untracked — normally one id, a dropped delivery
  /// still creates one, a duplicated delivery creates two). Flushes the
  /// slot when it reaches the batch size. Transport faults (delay, drop,
  /// duplicate) inject here — the staging buffer is this engine's wire.
  uint64_t Stage(Task* target, Tuple&& tuple, uint64_t root,
                 uint64_t emit_time) {
    FaultSite* faults = task_->transport_faults.get();
    if (faults != nullptr) {
      const uint32_t delay_us = faults->DeliveryDelayMicros();
      if (delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
      if (faults->FireDropTuple()) {
        // Transport loss: allocate and anchor the edge id but never stage
        // the message — like a packet dropped after send. The ledger now
        // holds a bit no execution will clear, so under at-least-once the
        // root times out and the spout's OnFail replays it; at-most-once
        // simply loses the tuple. Dropped deliveries never touch
        // pending_messages_ (counted at flush), so the drain protocol is
        // unaffected.
        return root != 0 ? engine_->next_edge_id_.fetch_add(
                               1, std::memory_order_relaxed)
                         : 0;
      }
    }
    const uint64_t edge_id =
        root != 0
            ? engine_->next_edge_id_.fetch_add(1, std::memory_order_relaxed)
            : 0;
    StagingSlot& slot = slots_[slot_of_task_[target->global_index]];
    Message& message = slot.buffer.emplace_back();
    message.tuple = std::move(tuple);
    message.root_id = root;
    message.edge_id = edge_id;
    message.emit_time_nanos = emit_time;
    message.producer_task = static_cast<uint32_t>(task_->global_index);
    if (current_trace_ != 0) {
      // Traced path only: one extra clock read to timestamp the enqueue
      // (queue-wait = dequeue - enqueue at the consumer).
      message.trace_id = current_trace_;
      message.trace_parent_span = current_span_;
      message.trace_enqueue_nanos = engine_->NowNanos();
    }
    uint64_t edge_xor = edge_id;
    if (faults != nullptr && faults->FireDuplicateTuple()) {
      // Redelivery: a second copy with its own ledger entry, so the XOR
      // accounting stays balanced while downstream genuinely sees the
      // tuple twice — the duplication at-least-once permits and the
      // MillWheel-style DedupLedger exists to suppress.
      const uint64_t dup_edge =
          root != 0
              ? engine_->next_edge_id_.fetch_add(1, std::memory_order_relaxed)
              : 0;
      Message dup = slot.buffer.back();  // Copy before any reallocation.
      dup.edge_id = dup_edge;
      slot.buffer.push_back(std::move(dup));
      edge_xor ^= dup_edge;
    }
    if (slot.buffer.size() >= batch_size_) FlushSlot(slot);
    return edge_xor;
  }

  /// Pushes one slot's staged messages downstream as a batch. Fast path is
  /// a single non-blocking batch push; on a full queue the producer either
  /// blocks (bounded backpressure: spouts and dedicated-mode bolts) or
  /// falls back to unbounded buffering (multiplexed bolts, which must
  /// never block on a queue they may themselves drain — faithfully
  /// pre-backpressure Storm). The failed prefix stays in place: nothing is
  /// re-copied on the stall path.
  void FlushSlot(StagingSlot& slot) {
    if (slot.buffer.empty()) return;
    Task* target = slot.target;
    const size_t n = slot.buffer.size();
    // Count before pushing so a consumer finishing these messages can
    // never drive pending_messages_ negative.
    engine_->pending_messages_.fetch_add(n, std::memory_order_acq_rel);
    std::span<Message> batch(slot.buffer);
    size_t delivered = target->InTryPushAll(batch);
    if (delivered < n) {
      task_->metrics->IncBackpressureStalls();
      std::span<Message> rest = batch.subspan(delivered);
      if (engine_->config_.mode == ExecutionMode::kMultiplexed &&
          task_->bolt != nullptr) {
        delivered += target->InForcePushAll(rest);
      } else {
        delivered += target->InPushAll(rest);
      }
    }
    if (delivered < n) {
      // Queue closed during shutdown; remainder dropped.
      engine_->pending_messages_.fetch_sub(n - delivered,
                                           std::memory_order_acq_rel);
    }
    task_->metrics->RecordFlush(n);
    slot.buffer.clear();
  }

  TopologyEngine* engine_;
  Task* task_;
  Rng rng_;
  const size_t batch_size_;
  std::vector<StagingSlot> slots_;
  std::vector<int32_t> slot_of_task_;  // global task index -> slot or -1.
  std::vector<Task*> targets_scratch_;
  std::vector<AckerEvent> acker_staging_;
  uint64_t total_emitted_ = 0;
  uint64_t unflushed_emits_ = 0;
  uint64_t current_root_ = 0;
  uint64_t current_emit_time_ = 0;
  uint64_t current_trace_ = 0;
  uint64_t current_span_ = 0;
  uint64_t xor_out_ = 0;
  uint64_t last_spout_root_ = 0;
};

TopologyEngine::TopologyEngine(Topology topology, EngineConfig config)
    : topology_(std::move(topology)),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : Clock::Steady()) {}

TopologyEngine::~TopologyEngine() = default;

uint64_t TopologyEngine::NowNanos() const { return clock_->NowNanos(); }

void TopologyEngine::BuildTasks() {
  const auto& components = topology_.components();
  std::vector<std::vector<Task*>> tasks_by_component(components.size());

  if (config_.faults.Enabled()) {
    fault_plan_ = std::make_unique<FaultPlan>(config_.faults);
  }

  for (size_t ci = 0; ci < components.size(); ci++) {
    const ComponentSpec& spec = components[ci];
    for (uint32_t ti = 0; ti < spec.parallelism; ti++) {
      auto task = std::make_unique<Task>();
      task->global_index = tasks_.size();
      task->component_index = ci;
      task->task_index = ti;
      // Pre-register this task's metrics: the registry freezes before any
      // worker thread starts, so the run phase never mutates it.
      task->metrics = &metrics_.RegisterTask(spec.name, ti);
      if (config_.trace_sample_every > 0) {
        task->trace_ring = std::make_unique<TraceRing>(kTraceRingCapacity);
      }
      if (spec.is_spout) {
        task->spout = spec.spout_factory();
      } else {
        task->bolt = spec.bolt_factory();
      }
      if (fault_plan_ != nullptr) {
        // Site ids derive from the global task index, which is itself a
        // pure function of the topology (component order × parallelism) —
        // so a given (topology, seed) always yields the same per-site
        // streams. One id-space slot per role.
        task->transport_faults =
            fault_plan_->MakeSite(task->global_index * 4 + 0, task->metrics);
        task->executor_faults =
            fault_plan_->MakeSite(task->global_index * 4 + 1, task->metrics);
        if (config_.epoch_interval_tuples > 0) {
          task->barrier_faults =
              fault_plan_->MakeSite(task->global_index * 4 + 3, task->metrics);
        }
      }
      task->collector = std::make_unique<TaskCollector>(
          this, task.get(),
          config_.seed ^ (0x9e3779b97f4a7c15ULL * (task->global_index + 1)));
      tasks_by_component[ci].push_back(task.get());
      tasks_.push_back(std::move(task));
    }
  }

  // Resolve subscription edges into per-source outgoing lists, counting
  // each consumer's distinct producer tasks on the way (the SPSC
  // eligibility test).
  outgoing_.assign(components.size(), {});
  std::vector<uint64_t> producer_tasks(components.size(), 0);
  std::vector<std::vector<bool>> counted(
      components.size(), std::vector<bool>(components.size(), false));
  for (size_t ci = 0; ci < components.size(); ci++) {
    for (const Subscription& sub : components[ci].inputs) {
      const size_t source = topology_.IndexOf(sub.source);
      Edge edge;
      edge.grouping = sub.grouping;
      edge.targets = tasks_by_component[ci];
      outgoing_[source].push_back(std::move(edge));
      if (!counted[ci][source]) {
        counted[ci][source] = true;
        producer_tasks[ci] += components[source].parallelism;
      }
    }
  }

  // Fused-operator compilation (DESIGN.md §13): lower the topology into
  // the dataflow IR, run the fusion pass, and wire each fused chain: the
  // chain head keeps its thread and routes emissions through RunFusedChain;
  // followers lose their input channel and thread — their bolts run inline
  // on the head's thread, paired task i with task i (rule 7 guarantees
  // equal parallelism on every fused edge).
  plan_ = std::make_unique<TopologyPlan>(TopologyPlan::FromTopology(topology_));
  FusionOptions fusion_options;
  fusion_options.enable_fusion = config_.enable_fusion;
  fusion_options.dedicated_mode = config_.mode == ExecutionMode::kDedicated;
  fusion_options.tracked = TracksTuples(config_.semantics);
  fusion_options.epochs_enabled =
      config_.epoch_interval_tuples > 0 || config_.resume_from_epoch > 0;
  fusion_options.recorder_attached = config_.recorder != nullptr;
  plan_->RunFusionPass(fusion_options);
  fused_edges_ = plan_->fused_edge_count();
  for (const std::vector<size_t>& chain : plan_->chains()) {
    for (size_t i = 0; i + 1 < chain.size(); i++) {
      // Rule 9: a fused producer has exactly one outgoing edge.
      outgoing_[chain[i]][0].fused = true;
    }
    const uint32_t chain_parallelism = components[chain[0]].parallelism;
    for (uint32_t ti = 0; ti < chain_parallelism; ti++) {
      Task* head = tasks_by_component[chain[0]][ti];
      for (size_t s = 1; s < chain.size(); s++) {
        Task* follower = tasks_by_component[chain[s]][ti];
        follower->fused_follower = true;
        head->fused_stages.push_back(follower);
      }
    }
  }

  // Input channels: a bolt task whose input has exactly one producer task
  // gets the lock-free SPSC ring (dedicated mode only — both endpoints are
  // single threads there); everything else gets the MPMC blocking queue.
  for (auto& task : tasks_) {
    if (task->bolt == nullptr) continue;
    // Fused followers have no input channel at all: their tuples arrive as
    // inline calls on the chain head's thread. (No queue also means no
    // queue-stall site — the fused analogue of a stall is simply the head
    // thread running the stage.)
    if (task->fused_follower) continue;
    const bool spsc = config_.enable_spsc &&
                      config_.mode == ExecutionMode::kDedicated &&
                      producer_tasks[task->component_index] == 1;
    if (spsc) {
      task->ring = std::make_unique<SpscRing<Message>>(config_.queue_capacity);
      spsc_edges_++;
    } else {
      task->queue =
          std::make_unique<BlockingQueue<Message>>(config_.queue_capacity);
    }
    if (config_.epoch_interval_tuples > 0) {
      // Alignment spans *producer tasks*, not components: every producer
      // task's collector broadcasts each barrier to every consumer task.
      task->aligner = std::make_unique<EpochAligner>(
          producer_tasks[task->component_index],
          static_cast<uint64_t>(config_.epoch_align_timeout_seconds * 1e9),
          config_.resume_from_epoch);
    }
    if (fault_plan_ != nullptr && config_.faults.queue_stall_prob > 0) {
      // Queue-stall injection: the interceptor fires on the consumer
      // thread after each successful drain with the drained count, and
      // draws one stall decision per message (not per pop) — batch
      // boundaries depend on thread timing, per-message consultation does
      // not, which keeps the site's decision stream replayable.
      task->stall_faults =
          fault_plan_->MakeSite(task->global_index * 4 + 2, task->metrics);
      Task* t = task.get();
      auto stall = [t](size_t drained) {
        for (size_t i = 0; i < drained; i++) {
          const uint32_t stall_us = t->stall_faults->QueueStallMicros();
          if (stall_us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
          }
        }
      };
      if (task->ring) {
        task->ring->SetPopInterceptor(std::move(stall));
      } else {
        task->queue->SetPopInterceptor(std::move(stall));
      }
    }
  }

  for (auto& task : tasks_) task->collector->InitStaging();
  metrics_.Freeze();
  telemetry_.Bind(&metrics_, config_.telemetry_sample_interval_ms,
                  config_.trace_sample_every);
  telemetry_.BindFaultPlan(fault_plan_.get());
  telemetry_.BindRecorder(config_.recorder);
}

/// Builds the sampler's per-task probes (counters + instantaneous input
/// depth for bolts) and starts the background sampling thread.
void TopologyEngine::StartSampler() {
  if (config_.telemetry_sample_interval_ms == 0) return;
  std::vector<MetricsSampler::Probe> probes;
  probes.reserve(tasks_.size());
  for (auto& task : tasks_) {
    MetricsSampler::Probe probe;
    probe.metrics = task->metrics;
    if (task->bolt != nullptr && !task->fused_follower) {
      Task* t = task.get();
      probe.queue_depth = [t] { return t->InApproxSize(); };
    }
    probes.push_back(std::move(probe));
  }
  sampler_ = std::make_unique<MetricsSampler>(
      std::move(probes), config_.telemetry_sample_interval_ms);
  telemetry_.AttachSampler(sampler_.get());
  sampler_->Start();
}

/// Merges every task's trace ring into the telemetry span-tree store.
/// Runs after all worker threads joined — rings are single-writer and the
/// writers have stopped.
void TopologyEngine::DrainTraces() {
  if (config_.trace_sample_every == 0) return;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  std::vector<std::string> task_components;
  task_components.reserve(tasks_.size());
  for (auto& task : tasks_) {
    task_components.push_back(task->metrics->component());
    std::vector<TraceEvent> drained = task->trace_ring->Drain();
    events.insert(events.end(), drained.begin(), drained.end());
    dropped += task->trace_ring->dropped();
  }
  telemetry_.mutable_traces().Build(std::move(events), task_components,
                                    dropped);
}

void TopologyEngine::SpoutLoop(Task* task) {
  task->spout->Open(task->task_index,
                    topology_.components()[task->component_index].parallelism);
  RestoreTaskState(task);
  // A fused chain head prepares its followers: they have no thread of
  // their own, and their bolts will run inline right here.
  for (Task* follower : task->fused_stages) {
    follower->bolt->Prepare(
        follower->task_index,
        topology_.components()[follower->component_index].parallelism);
    RestoreTaskState(follower);
  }
  TaskCollector* collector = task->collector.get();
  const size_t batch = std::max<size_t>(1, config_.emit_batch_size);
  const bool track = TracksTuples(config_.semantics);
  // Barrier injection cadence: epoch e's marker follows this spout's
  // e*K-th emission, so epoch boundaries are a pure function of the
  // emission sequence (the determinism the torture test pins down).
  const uint64_t epoch_k = config_.epoch_interval_tuples;
  uint64_t next_epoch = config_.resume_from_epoch + 1;
  uint64_t next_barrier_at = epoch_k;
  auto throttled = [this] {
    return inflight_roots_.load(std::memory_order_relaxed) >=
           config_.max_spout_pending;
  };
  bool done = false;
  while (!done) {
    if (track && throttled()) {
      // Spout throttle: cap in-flight tuple trees. Everything staged must
      // flush first — a root can only resolve (and release the throttle)
      // once its tuples are actually delivered.
      collector->FlushAll();
      std::unique_lock<std::mutex> lock(progress_mu_);
      progress_cv_.wait_for(lock, std::chrono::milliseconds(1),
                            [&] { return !throttled(); });
      continue;
    }
    for (size_t i = 0; i < batch && !done; i++) {
      const uint64_t before = collector->total_emitted();
      if (!task->spout->NextTuple(collector)) {
        done = true;
      } else if (collector->total_emitted() == before) {
        break;  // Idle poll: flush promptly instead of batching waits.
      }
      while (epoch_k > 0 && collector->total_emitted() >= next_barrier_at) {
        InjectSpoutBarrier(task, next_epoch);
        next_epoch++;
        next_barrier_at += epoch_k;
      }
      if (track && throttled()) break;
    }
    collector->FlushAll();
  }
}

void TopologyEngine::ExecuteBatch(Task* task, std::span<Message> batch) {
  // Epoch barriers in the stream demand per-message inspection (markers,
  // alignment holds), so the aligned path replaces both the fused and the
  // plain scalar path whenever barriers are enabled.
  if (task->aligner != nullptr) {
    ExecuteBatchAligned(task, batch);
    return;
  }
  // Fused path: a batch-capable bolt takes the whole batch through one
  // ExecuteBatch call. Traced batches keep per-tuple delivery so their
  // span trees stay per-hop-accurate.
  if (config_.enable_bolt_batch && batch.size() > 1 &&
      task->bolt->BatchCapable()) {
    bool any_traced = false;
    for (const Message& message : batch) {
      if (message.trace_id != 0) {
        any_traced = true;
        break;
      }
    }
    if (!any_traced) {
      ExecuteBatchFused(task, batch);
      return;
    }
  }
  TaskCollector* collector = task->collector.get();
  size_t executed = 0;
  for (Message& message : batch) {
    if (ExecuteOne(task, message, &executed) == ExecOutcome::kCrashed) {
      // The rest of the popped batch dies with the task — in-memory input
      // of a dead process. Its messages were never executed and never
      // acked; at-least-once replays them via the ack timeout. The bolt
      // instance is rebuilt from its factory like a restarted worker.
      RestartBolt(task);
      break;
    }
  }
  // Children enqueue (and acker events post) before the parents' pending
  // count releases, so pending_messages_ == 0 always means fully drained.
  collector->FlushAll();
  task->metrics->IncExecuted(executed);
  FinishPending(batch.size());
}

/// Runs one input tuple through the bolt: tracing, throw-catch, latency,
/// the post-Execute crash draw, and ack staging. kFailed = Execute threw
/// (tuple fails, engine continues); kCrashed = the task "process" died
/// after Execute (the caller restarts the bolt and decides the fate of any
/// not-yet-executed input it holds).
TopologyEngine::ExecOutcome TopologyEngine::ExecuteOne(Task* task,
                                                       Message& message,
                                                       size_t* executed) {
  TaskCollector* collector = task->collector.get();
  FaultSite* faults = task->executor_faults.get();
  // Tracing costs exactly this one branch on untraced tuples; traced
  // hops pay the span allocation and two clock reads.
  uint64_t hop_span = 0;
  uint64_t execute_start = 0;
  if (message.trace_id != 0) {
    hop_span = next_span_id_.fetch_add(1, std::memory_order_relaxed);
    execute_start = NowNanos();
  }
  collector->BeginExecute(message.root_id, message.emit_time_nanos,
                          message.trace_id, hop_span);
  bool ok = true;
  try {
    if (faults != nullptr && faults->FireBoltThrow()) {
      throw InjectedBoltError("injected bolt failure");
    }
    task->bolt->Execute(message.tuple, collector);
  } catch (...) {
    // A throwing Execute fails the tuple, never the engine: whatever
    // children it emitted before throwing stay anchored, no ack is
    // recorded, and under at-least-once the root times out into the
    // spout's OnFail.
    ok = false;
    task->metrics->IncBoltExceptions();
  }
  const uint64_t xor_out = collector->EndExecute();
  if (!ok) return ExecOutcome::kFailed;
  (*executed)++;
  if (message.trace_id != 0) {
    task->trace_ring->Record(TraceEvent{
        message.trace_id, hop_span, message.trace_parent_span,
        static_cast<uint32_t>(task->global_index), execute_start,
        execute_start - message.trace_enqueue_nanos,
        NowNanos() - execute_start});
  }
  if (message.emit_time_nanos > 0) {
    task->metrics->RecordLatencyNanos(NowNanos() - message.emit_time_nanos);
  }
  // Crash draw sits between Execute and the ack — the MillWheel torn
  // window. The completed Execute's state mutations (and any checkpoint
  // Put) survive, but the ack is swallowed with the "process", so the
  // root replays into restored state: exactly the duplicate-delivery
  // case checkpoint-then-ack dedup (DedupLedger) must absorb.
  const bool crash_now = faults != nullptr && faults->FireTaskCrash();
  if (TracksTuples(config_.semantics) && message.root_id != 0 && !crash_now) {
    collector->StageAck(AckerEvent{AckerEvent::kUpdate, message.root_id,
                                   message.edge_id ^ xor_out, 0});
  }
  return crash_now ? ExecOutcome::kCrashed : ExecOutcome::kOk;
}

/// Pending-count release with the drain-wait wakeup the plain paths inline.
void TopologyEngine::FinishPending(size_t n) {
  if (n == 0) return;
  const uint64_t prev =
      pending_messages_.fetch_sub(n, std::memory_order_acq_rel);
  if (prev == n && spouts_done_.load(std::memory_order_acquire)) {
    progress_cv_.notify_all();  // Wake the drain wait in Run().
  }
}

/// Collector for a non-tail fused stage: every Emit becomes the next hop
/// of the chain, executed inline (stack recursion instead of a queue).
class TopologyEngine::FusedStageCollector : public OutputCollector {
 public:
  FusedStageCollector(TopologyEngine* engine, Task* head, size_t next_stage,
                      uint64_t root, uint64_t emit_time, uint64_t trace_id,
                      uint64_t parent_span, uint64_t* chain_xor)
      : engine_(engine),
        head_(head),
        next_stage_(next_stage),
        root_(root),
        emit_time_(emit_time),
        trace_id_(trace_id),
        parent_span_(parent_span),
        chain_xor_(chain_xor) {}

  void Emit(Tuple tuple) override {
    head_->fused_stages[next_stage_ - 1]->metrics->IncEmitted();
    engine_->DeliverFusedHop(head_, next_stage_, std::move(tuple), root_,
                             emit_time_, trace_id_, parent_span_, chain_xor_);
  }

 private:
  TopologyEngine* engine_;
  Task* head_;
  const size_t next_stage_;
  const uint64_t root_;
  const uint64_t emit_time_;
  const uint64_t trace_id_;
  const uint64_t parent_span_;
  uint64_t* chain_xor_;
};

uint64_t TopologyEngine::RunFusedChain(Task* head, Tuple tuple, uint64_t root,
                                       uint64_t emit_time, uint64_t trace_id,
                                       uint64_t parent_span) {
  uint64_t chain_xor = 0;
  DeliverFusedHop(head, 0, std::move(tuple), root, emit_time, trace_id,
                  parent_span, &chain_xor);
  return chain_xor;
}

/// One fused hop: the producer's transport faults are consulted in the
/// exact per-site order of the queued Stage() path (delay → drop →
/// duplicate), so the same seed draws the same transport schedule fused
/// or queued. Delivered hops allocate NO ledger edge ids — the inline
/// call both "delivers" and "acks", a net ledger zero either way — but
/// every failure (drop, throw, crash) poisons the chain ledger with a
/// fresh edge id no execution will ever clear, so under tracking the root
/// fails by ack timeout exactly like its queued counterpart.
void TopologyEngine::DeliverFusedHop(Task* head, size_t stage, Tuple tuple,
                                     uint64_t root, uint64_t emit_time,
                                     uint64_t trace_id, uint64_t parent_span,
                                     uint64_t* chain_xor) {
  Task* producer = stage == 0 ? head : head->fused_stages[stage - 1];
  FaultSite* faults = producer->transport_faults.get();
  bool duplicate = false;
  if (faults != nullptr) {
    const uint32_t delay_us = faults->DeliveryDelayMicros();
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    if (faults->FireDropTuple()) {
      if (root != 0) {
        *chain_xor ^= next_edge_id_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    duplicate = faults->FireDuplicateTuple();
  }
  if (duplicate) {
    // Redelivery: the stage genuinely executes twice (the duplication
    // at-least-once permits), with the copy going first like the queued
    // path's staged copy-then-original order.
    ExecuteFusedStage(head, stage, tuple, root, emit_time, trace_id,
                      parent_span, chain_xor);
  }
  ExecuteFusedStage(head, stage, tuple, root, emit_time, trace_id,
                    parent_span, chain_xor);
}

/// Runs one stage's bolt on one tuple, inline. Mirrors ExecuteOne's
/// sequence exactly — throw inside the try (a thrown tuple fails, no
/// crash draw), then metrics/trace/latency, then the post-Execute crash
/// draw — so the executor site's decision stream is identical to the
/// queued path's. A crash restarts the stage bolt in place (the head's
/// thread IS this "process"; subsequent tuples meet the fresh instance).
void TopologyEngine::ExecuteFusedStage(Task* head, size_t stage,
                                       const Tuple& tuple, uint64_t root,
                                       uint64_t emit_time, uint64_t trace_id,
                                       uint64_t parent_span,
                                       uint64_t* chain_xor) {
  Task* task = head->fused_stages[stage];
  const bool tail = stage + 1 == head->fused_stages.size();
  FaultSite* faults = task->executor_faults.get();
  uint64_t hop_span = 0;
  uint64_t execute_start = 0;
  if (trace_id != 0) {
    hop_span = next_span_id_.fetch_add(1, std::memory_order_relaxed);
    execute_start = NowNanos();
  }
  bool ok = true;
  if (tail) {
    // The tail may feed queued edges past the chain: its own TaskCollector
    // stages those (and accumulates their edge ids in xor_out), which the
    // chain merges into the root's ledger like any bolt's children.
    TaskCollector* collector = task->collector.get();
    collector->BeginExecute(root, emit_time, trace_id, hop_span);
    try {
      if (faults != nullptr && faults->FireBoltThrow()) {
        throw InjectedBoltError("injected bolt failure");
      }
      task->bolt->Execute(tuple, collector);
    } catch (...) {
      ok = false;
      task->metrics->IncBoltExceptions();
    }
    const uint64_t xor_out = collector->EndExecute();
    if (ok) *chain_xor ^= xor_out;
  } else {
    FusedStageCollector next(this, head, stage + 1, root, emit_time, trace_id,
                             hop_span, chain_xor);
    try {
      if (faults != nullptr && faults->FireBoltThrow()) {
        throw InjectedBoltError("injected bolt failure");
      }
      task->bolt->Execute(tuple, &next);
    } catch (...) {
      ok = false;
      task->metrics->IncBoltExceptions();
    }
  }
  if (!ok) {
    // Failed hop: poison the chain ledger (the queued throw reaches the
    // same end state — an uncleared edge id timing the root out).
    if (root != 0) {
      *chain_xor ^= next_edge_id_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  task->metrics->IncExecuted();
  if (trace_id != 0) {
    task->trace_ring->Record(TraceEvent{
        trace_id, hop_span, parent_span,
        static_cast<uint32_t>(task->global_index), execute_start,
        /*wait_nanos=*/0, NowNanos() - execute_start});
  }
  if (emit_time > 0) {
    task->metrics->RecordLatencyNanos(NowNanos() - emit_time);
  }
  if (faults != nullptr && faults->FireTaskCrash()) {
    // The completed Execute's effects stand but the hop's ack is
    // swallowed with the "process" (the MillWheel torn window): poison
    // the ledger so the root replays, and rebuild the stage bolt.
    if (root != 0) {
      *chain_xor ^= next_edge_id_.fetch_add(1, std::memory_order_relaxed);
    }
    RestartBolt(task);
  }
}

/// The fused batch path: one dispatch, one ack-staging pass for the whole
/// batch — but one fault draw PER MESSAGE, exactly like the scalar path.
/// Batch boundaries depend on thread timing (how much the consumer drains
/// per pop), so per-batch draws would make the executor site's decision
/// stream timing-dependent and break the same-seed ⇒ same-schedule replay
/// contract; per-message consultation keeps the stream a pure function of
/// the message sequence (the same reasoning as the queue-stall
/// interceptor in BuildTasks). Blast radius stays batch-granular: any
/// throw fails the whole batch, any crash kills it before execution.
/// Only reached for batch-capable bolts (pure accumulators that never
/// emit from execution) on fully untraced batches.
void TopologyEngine::ExecuteBatchFused(Task* task, std::span<Message> batch) {
  TaskCollector* collector = task->collector.get();
  const bool track = TracksTuples(config_.semantics);
  FaultSite* faults = task->executor_faults.get();
  // Per-message draws in the scalar path's per-site order (throw, then
  // crash). A thrown message draws no crash (ExecuteOne returns kFailed
  // before its crash draw); the first crash ends the stream for the batch
  // (the scalar loop breaks on kCrashed, leaving the remainder undrawn).
  bool throw_now = false;
  bool crash_now = false;
  if (faults != nullptr) {
    for (size_t i = 0; i < batch.size() && !crash_now; i++) {
      if (faults->FireBoltThrow()) {
        throw_now = true;
        continue;
      }
      if (faults->FireTaskCrash()) crash_now = true;
    }
  }
  // A crash kills the batch unexecuted and unacked (at-least-once replays
  // it via the ack timeout), never torn mid-batch. The scalar path keeps
  // covering the mid-batch torn-window case for per-tuple bolts.
  bool executed_ok = false;
  if (!crash_now) {
    thread_local std::vector<const Tuple*> inputs;
    inputs.clear();
    inputs.reserve(batch.size());
    for (const Message& message : batch) inputs.push_back(&message.tuple);
    const uint64_t emitted_before = collector->total_emitted();
    collector->BeginExecute(0, 0, 0, 0);
    bool ok = true;
    try {
      if (throw_now) {
        throw InjectedBoltError("injected bolt failure");
      }
      task->bolt->ExecuteBatch(
          std::span<const Tuple* const>(inputs.data(), inputs.size()),
          collector);
    } catch (...) {
      // The whole batch fails as one unit: no acks are staged, so under
      // at-least-once every root in it times out and replays.
      ok = false;
      task->metrics->IncBoltExceptions();
    }
    collector->EndExecute();
    STREAMLIB_CHECK_MSG(collector->total_emitted() == emitted_before,
                        "batch-capable bolt emitted during ExecuteBatch");
    if (ok) {
      executed_ok = true;
      const uint64_t now = NowNanos();
      for (const Message& message : batch) {
        if (message.emit_time_nanos > 0) {
          task->metrics->RecordLatencyNanos(now - message.emit_time_nanos);
        }
      }
      if (track) {
        // Nothing was emitted, so each input's ledger entry closes with
        // its own edge id (xor_out == 0).
        for (const Message& message : batch) {
          if (message.root_id != 0) {
            collector->StageAck(AckerEvent{AckerEvent::kUpdate,
                                           message.root_id, message.edge_id,
                                           0});
          }
        }
      }
    }
  }
  collector->FlushAll();
  if (executed_ok) task->metrics->IncExecuted(batch.size());
  if (crash_now) RestartBolt(task);
  FinishPending(batch.size());
}

/// The barrier-aware execute path (replaces scalar and fused delivery when
/// epochs are on). Barriers feed the aligner; data from a producer that
/// already barriered past this task's aligned epoch is parked in
/// `task->held` until alignment catches up, so a bolt's state at snapshot
/// time contains exactly the effects of epochs <= the snapshot epoch.
void TopologyEngine::ExecuteBatchAligned(Task* task,
                                         std::span<Message> batch) {
  TaskCollector* collector = task->collector.get();
  size_t consumed = 0;  // Messages leaving the pending count this call.
  size_t executed = 0;
  bool crashed = false;
  for (Message& message : batch) {
    if (crashed) {
      // Input of a dead "process": never executed, never acked;
      // at-least-once replays it via the ack timeout.
      consumed++;
      continue;
    }
    if (message.tuple.IsBarrier()) {
      consumed++;
      HandleBarrier(task, message.producer_task,
                    message.tuple.barrier_epoch(), &executed, &crashed);
      continue;
    }
    if (task->aligner->ShouldHold(message.producer_task)) {
      // This producer already barriered ahead: the message belongs to a
      // later epoch than this task has aligned on. It stays pending (the
      // drain protocol keeps the topology open) until released.
      task->held_tags.push_back(task->aligner->HoldTag(message.producer_task));
      task->held.push_back(std::move(message));
      continue;
    }
    consumed++;
    if (ExecuteOne(task, message, &executed) == ExecOutcome::kCrashed) {
      RestartBolt(task);
      crashed = true;
    }
  }
  if (crashed && !task->held.empty()) {
    // Held input dies with the crashed task too.
    consumed += task->held.size();
    task->held.clear();
    task->held_tags.clear();
  }
  collector->FlushAll();
  task->metrics->IncExecuted(executed);
  FinishPending(consumed);
}

/// One barrier marker reached this task. When the aligner reports full
/// alignment on a new epoch: snapshot first (state now holds exactly
/// epochs <= snap), then forward the barrier (emissions so far precede it
/// in every slot), then release held input (its emissions land after the
/// barrier, in the next epoch — matching the tags the data carries).
void TopologyEngine::HandleBarrier(Task* task, uint32_t producer,
                                   uint64_t epoch, size_t* executed,
                                   bool* crashed) {
  const uint64_t snap = task->aligner->OnBarrier(producer, epoch, NowNanos());
  if (snap == 0) return;
  SnapshotBoltEpoch(task, snap);
  task->collector->EmitBarrier(snap);
  ReleaseHeld(task, snap + 1, executed, crashed);
}

/// Executes (and finishes) every held message with tag <= max_tag,
/// compacting the rest in place. A crash mid-release kills all remaining
/// held input, released or not — it was the in-memory input of the dead
/// task.
void TopologyEngine::ReleaseHeld(Task* task, uint64_t max_tag,
                                 size_t* executed, bool* crashed) {
  if (task->held.empty()) return;
  size_t finished = 0;
  size_t kept = 0;
  for (size_t i = 0; i < task->held.size(); i++) {
    if (!*crashed && task->held_tags[i] > max_tag) {
      if (kept != i) {
        task->held[kept] = std::move(task->held[i]);
        task->held_tags[kept] = task->held_tags[i];
      }
      kept++;
      continue;
    }
    finished++;
    if (*crashed) continue;
    if (ExecuteOne(task, task->held[i], executed) == ExecOutcome::kCrashed) {
      RestartBolt(task);
      *crashed = true;
    }
  }
  if (*crashed && kept > 0) {
    finished += kept;
    kept = 0;
  }
  task->held.resize(kept);
  task->held_tags.resize(kept);
  FinishPending(finished);
}

/// Shutdown safety valve: unconditionally releases whatever is still held
/// when this task's input is closed and drained. Normally unreachable —
/// held messages keep pending_messages_ > 0, so Run() cannot close the
/// queues before an alignment or a timeout released them — but it
/// guarantees the loop exit never strands pending counts.
void TopologyEngine::FlushHeld(Task* task) {
  if (task->aligner == nullptr || task->held.empty()) return;
  size_t executed = 0;
  bool crashed = false;
  ReleaseHeld(task, UINT64_MAX, &executed, &crashed);
  task->collector->FlushAll();
  task->metrics->IncExecuted(executed);
}

/// Alignment-timeout recovery: a barrier lost or badly delayed toward this
/// task would otherwise starve its alignment (and hold its data, and
/// starve downstream alignments) forever. On timeout the task abandons the
/// stuck epochs — no snapshot, no ack, so they simply never complete and
/// restore will not use them — realigns at the highest barrier it has
/// seen, forwards that barrier, and releases the held data. Checkpointing
/// retries at the next epoch instead of wedging the data plane.
void TopologyEngine::MaybeEpochTimeout(Task* task) {
  if (task->aligner == nullptr) return;
  if (!task->aligner->TimedOut(NowNanos())) return;
  const uint64_t forced = task->aligner->ForceAdvance();
  epoch_timeouts_.fetch_add(1, std::memory_order_relaxed);
  size_t executed = 0;
  bool crashed = false;
  task->collector->EmitBarrier(forced);
  ReleaseHeld(task, forced + 1, &executed, &crashed);
  task->collector->FlushAll();
  task->metrics->IncExecuted(executed);
}

void TopologyEngine::SnapshotBoltEpoch(Task* task, uint64_t epoch) {
  std::optional<std::vector<uint8_t>> frame = task->bolt->SnapshotEpoch(epoch);
  if (frame.has_value()) {
    config_.checkpoint_store->Put(
        EpochTaskKey(epoch,
                     topology_.components()[task->component_index].name,
                     task->task_index),
        std::move(*frame));
  }
  task->last_snapshot_epoch = epoch;
  coordinator_->AckEpoch(epoch, task->global_index);
}

/// Spout-side epoch cut: snapshot *before* the marker enters the stream.
/// The frame holds every payload this spout still owes (unemitted cursor +
/// unacked in-flight); anything acked before this instant is guaranteed
/// inside the downstream epoch frames, and the overlap (acked after) is
/// re-emitted on restore and absorbed by the restored DedupLedgers.
void TopologyEngine::InjectSpoutBarrier(Task* task, uint64_t epoch) {
  std::optional<std::vector<uint8_t>> frame =
      task->spout->SnapshotEpoch(epoch);
  if (frame.has_value()) {
    config_.checkpoint_store->Put(
        EpochTaskKey(epoch,
                     topology_.components()[task->component_index].name,
                     task->task_index),
        std::move(*frame));
  }
  task->last_snapshot_epoch = epoch;
  coordinator_->AckEpoch(epoch, task->global_index);
  task->collector->EmitBarrier(epoch);
}

/// Resume path: rehydrate this task from its frame at resume_from_epoch
/// (a complete epoch — Run() checked the marker). Runs on the task's own
/// thread after Open/Prepare, before any traffic. Tasks without a frame
/// were stateless at snapshot time and start fresh.
void TopologyEngine::RestoreTaskState(Task* task) {
  if (config_.resume_from_epoch == 0) return;
  const uint64_t epoch = config_.resume_from_epoch;
  task->last_snapshot_epoch = epoch;
  const std::string key = EpochTaskKey(
      epoch, topology_.components()[task->component_index].name,
      task->task_index);
  Result<std::vector<uint8_t>> frame = config_.checkpoint_store->Fetch(key);
  if (!frame.ok()) return;
  const Status restored =
      task->spout != nullptr
          ? task->spout->RestoreEpoch(epoch, frame.value())
          : task->bolt->RestoreEpoch(epoch, frame.value());
  STREAMLIB_CHECK_MSG(restored.ok(), "epoch %llu restore failed for %s: %s",
                      static_cast<unsigned long long>(epoch), key.c_str(),
                      restored.ToString().c_str());
}

uint64_t TopologyEngine::last_complete_epoch() const {
  return coordinator_ != nullptr ? coordinator_->last_complete() : 0;
}

uint64_t TopologyEngine::epochs_completed() const {
  return coordinator_ != nullptr ? coordinator_->epochs_completed() : 0;
}

/// Crash-restart recovery: discards the bolt instance (all in-memory
/// state) and builds a fresh one from the component factory, re-running
/// Prepare as a restarted worker would. State that matters must have been
/// checkpointed by the bolt itself — that contract is exactly what the
/// chaos suite verifies.
void TopologyEngine::RestartBolt(Task* task) {
  const ComponentSpec& spec = topology_.components()[task->component_index];
  task->bolt = spec.bolt_factory();
  task->bolt->Prepare(task->task_index, spec.parallelism);
  if (coordinator_ == nullptr) return;
  // Epoch fence: the restarted instance rebuilds from its frame at
  // last_snapshot_epoch, which is missing every already-acked effect
  // applied after that snapshot — and acked roots will not replay. Any
  // frame this task writes later inherits that gap, so no epoch beyond
  // the snapshot may ever be marked complete in this run; the resumable
  // point stays at the last epoch whose frames are known whole.
  coordinator_->FenceEpochsAfter(task->last_snapshot_epoch);
  if (task->last_snapshot_epoch == 0) return;
  const std::string key =
      EpochTaskKey(task->last_snapshot_epoch, spec.name, task->task_index);
  Result<std::vector<uint8_t>> frame = config_.checkpoint_store->Fetch(key);
  if (!frame.ok()) return;  // Stateless at snapshot time: fresh start.
  const Status restored =
      task->bolt->RestoreEpoch(task->last_snapshot_epoch, frame.value());
  STREAMLIB_CHECK_MSG(
      restored.ok(), "crash-restart restore failed for %s: %s", key.c_str(),
      restored.ToString().c_str());
}

void TopologyEngine::DedicatedBoltLoop(Task* task) {
  task->bolt->Prepare(
      task->task_index,
      topology_.components()[task->component_index].parallelism);
  RestoreTaskState(task);
  // Bolt-headed fused chains (the spout edge stayed queued but downstream
  // bolt→bolt edges fused): prepare the followers on this thread too.
  for (Task* follower : task->fused_stages) {
    follower->bolt->Prepare(
        follower->task_index,
        topology_.components()[follower->component_index].parallelism);
    RestoreTaskState(follower);
  }
  const size_t max_batch = std::max<size_t>(1, config_.execute_batch_size);
  std::vector<Message> batch;
  batch.reserve(max_batch);
  if (task->aligner == nullptr) {
    while (true) {
      batch.clear();
      const size_t n = task->InPopBatch(batch, max_batch);
      if (n == 0) break;  // Closed and drained.
      ExecuteBatch(task, std::span<Message>(batch.data(), n));
    }
    return;
  }
  // Epoch variant: the blocking pop becomes a timed pop so a task whose
  // alignment is starving (dropped barrier, stalled producer) still gets
  // to run the timeout check while its queue is quiet.
  while (true) {
    batch.clear();
    const size_t n =
        task->InPopBatchTimed(batch, max_batch, std::chrono::milliseconds(1));
    if (n == 0) {
      if (task->InClosed() && task->InSize() == 0) {
        FlushHeld(task);
        break;
      }
      MaybeEpochTimeout(task);
      continue;
    }
    ExecuteBatch(task, std::span<Message>(batch.data(), n));
    MaybeEpochTimeout(task);
  }
}

void TopologyEngine::MultiplexedWorkerLoop(const std::vector<Task*>& tasks) {
  // One executor thread serving many task queues round-robin (Storm-style
  // multiplexing): drain each queue in batches, sleep briefly when idle
  // (a worker polls many queues, so it cannot block on any single one).
  const size_t max_batch = std::max<size_t>(1, config_.execute_batch_size);
  std::vector<Message> batch;
  batch.reserve(max_batch);
  while (true) {
    bool any = false;
    for (Task* task : tasks) {
      batch.clear();
      const size_t n = task->InTryPopBatch(batch, max_batch);
      if (n == 0) {
        MaybeEpochTimeout(task);
        continue;
      }
      any = true;
      ExecuteBatch(task, std::span<Message>(batch.data(), n));
      MaybeEpochTimeout(task);
    }
    if (!any) {
      bool all_done = true;
      for (Task* task : tasks) {
        if (!task->InClosed() || task->InSize() > 0) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        bool flushed = false;
        for (Task* task : tasks) {
          if (task->aligner != nullptr && !task->held.empty()) {
            FlushHeld(task);
            flushed = true;
          }
        }
        if (flushed) continue;  // Released emissions may need a last sweep.
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void TopologyEngine::AckerLoop() {
  struct RootEntry {
    uint64_t value = 0;
    size_t spout_task = 0;
    bool initialized = false;
    uint64_t created_nanos = 0;
  };
  std::unordered_map<uint64_t, RootEntry> ledger;
  const uint64_t timeout_nanos =
      static_cast<uint64_t>(config_.ack_timeout_seconds * 1e9);
  uint64_t last_scan = NowNanos();

  auto resolve = [&](uint64_t root, RootEntry& entry, bool success) {
    Task* spout_task = tasks_[entry.spout_task].get();
    if (success) {
      completed_roots_.fetch_add(1, std::memory_order_relaxed);
      spout_task->metrics->IncAcked();
      spout_task->spout->OnAck(root);
    } else {
      failed_roots_.fetch_add(1, std::memory_order_relaxed);
      spout_task->metrics->IncFailed();
      spout_task->spout->OnFail(root);
    }
    inflight_roots_.fetch_sub(1, std::memory_order_relaxed);
  };

  std::vector<AckerEvent> events;
  events.reserve(1024);
  while (true) {
    events.clear();
    // Timed blocking wait (no spin-sleep): wake on traffic, or on the
    // timeout slice to run the periodic ack-timeout scan.
    const size_t n = acker_queue_->PopBatchWithTimeout(
        events, 1024, std::chrono::milliseconds(5));
    if (n == 0 && acker_queue_->Closed()) break;
    bool resolved_any = false;
    for (const AckerEvent& event : events) {
      RootEntry& entry = ledger[event.root_id];
      entry.value ^= event.xor_value;
      if (event.kind == AckerEvent::kInit) {
        entry.initialized = true;
        entry.spout_task = event.spout_task;
        entry.created_nanos = NowNanos();
      }
      if (entry.initialized && entry.value == 0) {
        resolve(event.root_id, entry, /*success=*/true);
        ledger.erase(event.root_id);
        resolved_any = true;
      }
    }
    // Periodic timeout scan.
    const uint64_t now = NowNanos();
    if (now - last_scan > timeout_nanos / 4 + 1000000) {
      last_scan = now;
      for (auto it = ledger.begin(); it != ledger.end();) {
        if (it->second.initialized &&
            now - it->second.created_nanos > timeout_nanos) {
          resolve(it->first, it->second, /*success=*/false);
          it = ledger.erase(it);
          resolved_any = true;
        } else {
          ++it;
        }
      }
    }
    if (resolved_any) {
      progress_cv_.notify_all();  // Throttled spouts / the drain wait.
    }
  }
  // Shutdown: anything left unresolved fails.
  bool resolved_any = false;
  for (auto& [root, entry] : ledger) {
    if (entry.initialized) {
      resolve(root, entry, /*success=*/false);
      resolved_any = true;
    }
  }
  if (resolved_any) progress_cv_.notify_all();
}

/// Synchronous collector used by the post-drain Finish() pass: emissions
/// route like live traffic but invoke downstream Execute directly (all
/// worker threads have stopped, so this is safe and single-threaded).
class TopologyEngine::FinishCollector : public OutputCollector {
 public:
  FinishCollector(TopologyEngine* engine, Task* task, uint64_t seed)
      : engine_(engine), task_(task), rng_(seed) {}

  void Emit(Tuple tuple) override {
    task_->metrics->IncEmitted();
    for (const Edge& edge : engine_->outgoing_[task_->component_index]) {
      switch (edge.grouping.kind) {
        case GroupingKind::kBroadcast:
          for (Task* target : edge.targets) Deliver(target, tuple);
          break;
        case GroupingKind::kShuffle:
          Deliver(edge.targets[rng_.NextBounded(edge.targets.size())], tuple);
          break;
        case GroupingKind::kFields: {
          const uint64_t h = HashOfValue(tuple.field(edge.grouping.field_index),
                                         kFieldsGroupingHashSeed);
          Deliver(edge.targets[h % edge.targets.size()], tuple);
          break;
        }
        case GroupingKind::kGlobal:
          Deliver(edge.targets[0], tuple);
          break;
      }
    }
  }

 private:
  void Deliver(Task* target, const Tuple& tuple) {
    FinishCollector downstream(engine_, target, rng_.Next());
    target->bolt->Execute(tuple, &downstream);
    target->metrics->IncExecuted();
  }

  TopologyEngine* engine_;
  Task* task_;
  Rng rng_;
};

void TopologyEngine::RunFinishPass() {
  // Components are already topologically ordered; flush each bolt task so
  // aggregates emitted here flow to (not-yet-finished) downstream bolts.
  for (const auto& task : tasks_) {
    if (task->bolt == nullptr) continue;
    FinishCollector collector(this, task.get(),
                              config_.seed ^ task->global_index);
    task->bolt->Finish(&collector);
  }
}

void TopologyEngine::Run() {
  STREAMLIB_CHECK_MSG(!ran_, "TopologyEngine is single-use");
  ran_ = true;
  const Status config_status = config_.Validate();
  STREAMLIB_CHECK_MSG(config_status.ok(), "invalid EngineConfig: %s",
                      config_status.ToString().c_str());
  BuildTasks();
  if (config_.epoch_interval_tuples > 0) {
    // Every task (spouts included) acks every epoch; the coordinator marks
    // an epoch complete — restorable — only on the full set.
    coordinator_ = std::make_unique<CheckpointCoordinator>(
        config_.checkpoint_store, tasks_.size(), config_.resume_from_epoch);
  }
  if (config_.resume_from_epoch > 0) {
    STREAMLIB_CHECK_MSG(
        config_.checkpoint_store->Get(EpochCompleteKey(config_.resume_from_epoch))
            .has_value(),
        "resume_from_epoch %llu was never marked complete",
        static_cast<unsigned long long>(config_.resume_from_epoch));
  }
  StartSampler();

  if (TracksTuples(config_.semantics)) {
    acker_queue_ = std::make_unique<BlockingQueue<AckerEvent>>(1 << 16);
    acker_thread_ = std::thread([this] { AckerLoop(); });
  }

  // Bolt executors. Fused followers get no thread (and have no input
  // channel to drain or close) — they execute inline on their chain
  // head's thread.
  std::vector<Task*> bolt_tasks;
  for (const auto& task : tasks_) {
    if (task->bolt != nullptr && !task->fused_follower) {
      bolt_tasks.push_back(task.get());
    }
  }
  if (config_.mode == ExecutionMode::kDedicated) {
    for (Task* task : bolt_tasks) {
      threads_.emplace_back([this, task] { DedicatedBoltLoop(task); });
    }
  } else {
    const uint32_t workers =
        std::max<uint32_t>(1, config_.multiplexed_threads);
    std::vector<std::vector<Task*>> assignment(workers);
    for (size_t i = 0; i < bolt_tasks.size(); i++) {
      assignment[i % workers].push_back(bolt_tasks[i]);
    }
    for (Task* task : bolt_tasks) {
      task->bolt->Prepare(
          task->task_index,
          topology_.components()[task->component_index].parallelism);
      RestoreTaskState(task);
    }
    for (uint32_t w = 0; w < workers; w++) {
      if (assignment[w].empty()) continue;
      auto tasks = assignment[w];
      threads_.emplace_back(
          [this, tasks] { MultiplexedWorkerLoop(tasks); });
    }
  }

  // Spouts.
  std::vector<std::thread> spout_threads;
  for (const auto& task : tasks_) {
    if (task->spout != nullptr) {
      spout_threads.emplace_back([this, t = task.get()] { SpoutLoop(t); });
    }
  }
  for (auto& t : spout_threads) t.join();
  spouts_done_.store(true, std::memory_order_release);

  // Drain: wait until no message is queued or mid-execution, and (at least
  // once) until every tuple tree resolved. Timed waits on progress_cv_
  // (executors notify on pending hitting zero, the acker on resolves).
  {
    auto drained = [this] {
      return pending_messages_.load(std::memory_order_acquire) == 0 &&
             (!TracksTuples(config_.semantics) ||
              inflight_roots_.load(std::memory_order_relaxed) == 0);
    };
    std::unique_lock<std::mutex> lock(progress_mu_);
    while (!drained()) {
      progress_cv_.wait_for(lock, std::chrono::microseconds(200));
    }
  }

  // Stop executors.
  for (Task* task : bolt_tasks) task->InClose();
  for (auto& t : threads_) t.join();
  threads_.clear();

  if (TracksTuples(config_.semantics)) {
    acker_queue_->Close();
    acker_thread_.join();
  }

  RunFinishPass();

  // Telemetry epilogue: final tail sample (so delta sums equal the final
  // counters, finish-pass emissions included), then merge the per-task
  // trace rings into span trees — all writers have joined by now.
  if (sampler_) sampler_->Stop();
  DrainTraces();

  // Attach the run's final counters to the recording so a replay can be
  // verified against the original from the file alone. The caller still
  // owns Finalize().
  if (config_.recorder != nullptr) {
    RunSummary summary;
    summary.completed_roots =
        completed_roots_.load(std::memory_order_relaxed);
    summary.failed_roots = failed_roots_.load(std::memory_order_relaxed);
    if (fault_plan_ != nullptr) {
      summary.faults_by_kind = fault_plan_->Snapshot();
    }
    summary.tasks.reserve(metrics_.task_count());
    for (size_t i = 0; i < metrics_.task_count(); i++) {
      const TaskMetrics& m = metrics_.task(i);
      summary.tasks.push_back(RunSummary::TaskCounters{
          m.emitted(), m.executed(), m.acked(), m.failed(),
          m.bolt_exceptions()});
    }
    config_.recorder->SetSummary(summary);
  }
}

}  // namespace streamlib::platform
