#ifndef STREAMLIB_PLATFORM_EPOCH_H_
#define STREAMLIB_PLATFORM_EPOCH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "platform/checkpoint.h"

namespace streamlib::platform {

/// Epoch-aligned barrier checkpointing (DESIGN.md §12) — the Chandy-Lamport
/// / Flink snapshot model composed from the pieces this engine already has:
/// spouts inject numbered barrier markers every `epoch_interval_tuples`
/// emissions, bolts align on barriers across all their producer tasks,
/// every task writes its state for epoch E into a KvCheckpointStore frame,
/// and a coordinator declares E complete once all tasks acked it. Restoring
/// every task from the last complete epoch (plus the spout contract of
/// re-emitting its frame's unacked payloads, deduplicated by ledgers inside
/// the bolt frames) yields exactly-once delivery of root effects.

/// Number of key groups fields-grouped rescalable state is partitioned
/// into (the Flink key-group model). Group of a key = hash % kNumKeyGroups;
/// the task owning group g at parallelism N is g % N, which matches the
/// router's h % N exactly when N divides kNumKeyGroups — the invariant
/// KeyGroupedSketchBolt checks in Prepare. Rescaling N -> M is then pure
/// frame surgery: regroup the per-group payloads by g % M (MergeBlob at
/// query time folds a task's groups into one sketch).
inline constexpr uint32_t kNumKeyGroups = 64;

/// Store key of one task's state frame for one epoch.
std::string EpochTaskKey(uint64_t epoch, const std::string& component,
                         uint32_t task_index);

/// Store key of the completion marker written when every task acked `epoch`.
std::string EpochCompleteKey(uint64_t epoch);

/// Store key of the monotonic last-complete-epoch pointer.
inline constexpr const char* kLastCompleteEpochKey = "epoch:last_complete";

/// Reads the last-complete-epoch pointer; 0 when no epoch ever completed.
uint64_t LastCompleteEpoch(const KvCheckpointStore& store);

/// Key-grouped frame payload: an ordered (group id -> opaque payload bytes)
/// map under a magic header, so RescaleEpochFrames can re-bucket groups
/// without understanding what a bolt put inside each payload. Decode
/// returns typed errors (Corruption / InvalidArgument) on any malformed
/// input — the negative-path contract every serde in this repo follows.
std::vector<uint8_t> EncodeGroupedState(
    const std::map<uint32_t, std::vector<uint8_t>>& groups);
Result<std::map<uint32_t, std::vector<uint8_t>>> DecodeGroupedState(
    const std::vector<uint8_t>& bytes);

/// Rewrites component `component`'s frames for (complete) `epoch` from
/// `old_tasks` shards to `new_tasks` shards by reassigning key groups
/// (g % old_tasks -> g % new_tasks). Frames must be EncodeGroupedState
/// blobs; anything else is a typed error and the store is left with every
/// original frame intact (new frames are only written after every old one
/// decoded). Shrinking erases the now-orphaned task frames.
Status RescaleEpochFrames(KvCheckpointStore& store, uint64_t epoch,
                          const std::string& component, uint32_t old_tasks,
                          uint32_t new_tasks);

/// Tracks per-epoch acknowledgements from every task and maintains the
/// durable completion markers. Thread-safe: spout threads ack at barrier
/// injection, bolt executors at alignment, and RestartBolt fences from
/// whichever thread crashed.
class CheckpointCoordinator {
 public:
  /// `participants` is the total task count (spouts + bolts) — every one
  /// must ack an epoch before it completes. `base_epoch` marks epochs
  /// <= base as already complete (resuming a restored run).
  CheckpointCoordinator(KvCheckpointStore* store, size_t participants,
                        uint64_t base_epoch);

  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  /// Records `participant`'s ack of `epoch` (idempotent). Returns true
  /// exactly when this ack completed the epoch — the completion marker and
  /// last-complete pointer are then already in the store.
  bool AckEpoch(uint64_t epoch, size_t participant);

  /// Crash fence: after a task crash-restarts into its epoch-`epoch`
  /// snapshot, any epoch beyond it may be missing that task's
  /// post-restore-lost effects, so epochs > `epoch` must never complete.
  /// Monotonic (the lowest fence wins across multiple crashes).
  void FenceEpochsAfter(uint64_t epoch);

  uint64_t last_complete() const;
  uint64_t epochs_completed() const;
  uint64_t fence() const;

 private:
  struct PendingEpoch {
    std::vector<bool> acked;
    size_t count = 0;
  };

  KvCheckpointStore* store_;
  const size_t participants_;
  mutable std::mutex mu_;
  uint64_t last_complete_;
  uint64_t epochs_completed_ = 0;
  uint64_t fence_;
  std::map<uint64_t, PendingEpoch> pending_;
};

/// Pure barrier-alignment logic for one bolt task: per-producer barrier
/// watermarks, the aligned (snapshot-safe) epoch, and the hold/release
/// decision for post-barrier input. Not thread-safe — owned by the thread
/// currently executing the task, like FaultSite.
///
/// The epoch tag of a data message from producer p is watermark(p) + 1
/// (it was sent after p's barrier watermark(p) and before the next one).
/// A message may execute only once every epoch below its tag has had its
/// chance to snapshot, i.e. once aligned_epoch >= tag - 1; until then it
/// is held. Alignment advances to the minimum watermark across all
/// producers; barriers for skipped epochs simply never get this task's ack
/// (so those epochs never complete — safe, never wrong).
class EpochAligner {
 public:
  EpochAligner(size_t num_producers, uint64_t timeout_nanos,
               uint64_t base_epoch);

  /// Consumes one barrier marker. Returns the epoch to snapshot now (> 0)
  /// when this barrier completed an alignment, else 0. `now_nanos` feeds
  /// the hold clock for TimedOut.
  uint64_t OnBarrier(uint32_t producer, uint64_t epoch, uint64_t now_nanos);

  /// True when data from `producer` belongs to an epoch this task has not
  /// aligned yet (the message must be held, tagged with HoldTag).
  bool ShouldHold(uint32_t producer) const;
  uint64_t HoldTag(uint32_t producer) const;

  /// True when input has been held longer than the alignment timeout —
  /// some producer's barrier was lost or delayed (kBarrierDrop /
  /// kBarrierDelay are built to cause exactly this).
  bool TimedOut(uint64_t now_nanos) const;

  /// Timeout recovery: jumps the aligned epoch to the maximum watermark
  /// WITHOUT snapshotting (the state is torn for the skipped epochs, which
  /// therefore never complete) and returns the new aligned epoch so the
  /// caller can forward the barrier and release held input. Alignment then
  /// retries naturally at the next epoch's barriers.
  uint64_t ForceAdvance();

  uint64_t aligned_epoch() const { return aligned_epoch_; }
  uint64_t epochs_timed_out() const { return epochs_timed_out_; }

 private:
  /// Re-arms (or clears) the hold clock after any state change: ticking
  /// while some producer's watermark is ahead of the aligned epoch.
  void RearmHoldClock(uint64_t now_nanos);

  const size_t num_producers_;
  const uint64_t timeout_nanos_;
  uint64_t aligned_epoch_;
  uint64_t hold_since_nanos_ = 0;  // 0 = nothing held.
  uint64_t epochs_timed_out_ = 0;
  std::unordered_map<uint32_t, uint64_t> watermark_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_EPOCH_H_
