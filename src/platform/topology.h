#ifndef STREAMLIB_PLATFORM_TOPOLOGY_H_
#define STREAMLIB_PLATFORM_TOPOLOGY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "platform/tuple.h"

namespace streamlib::platform {

/// How tuples emitted by a source component are routed among the
/// parallel tasks of a consuming bolt — the Storm grouping model.
enum class GroupingKind {
  kShuffle,    ///< uniform random task
  kFields,     ///< hash of one tuple field -> task (stateful partitioning)
  kGlobal,     ///< everything to task 0
  kBroadcast,  ///< every task receives a copy
};

/// Short stable identifier ("shuffle", "fields", ...) — plan dumps, bench
/// JSON keys, and fusion-veto messages.
const char* GroupingKindName(GroupingKind kind);

/// Hash seed the engine's fields-grouping router uses (HashOfValue with
/// this seed, mod target parallelism). Key-grouped rescalable state
/// (KeyGroupedSketchBolt) must hash with the same seed so its key-group
/// assignment stays consistent with routing.
inline constexpr uint64_t kFieldsGroupingHashSeed = 77;

/// A grouping specification on a subscription edge.
struct Grouping {
  GroupingKind kind = GroupingKind::kShuffle;
  size_t field_index = 0;  ///< used by kFields

  static Grouping Shuffle() { return Grouping{GroupingKind::kShuffle, 0}; }
  static Grouping Fields(size_t field_index) {
    return Grouping{GroupingKind::kFields, field_index};
  }
  static Grouping Global() { return Grouping{GroupingKind::kGlobal, 0}; }
  static Grouping Broadcast() {
    return Grouping{GroupingKind::kBroadcast, 0};
  }
};

/// Sink for tuples produced by a spout or bolt task. Implemented by the
/// engine; handles routing, anchoring and backpressure.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;

  /// Emits a tuple to all subscribed downstream components.
  virtual void Emit(Tuple tuple) = 0;

  /// At-least-once, spout side: the root id assigned to the most recent
  /// Emit from this collector (0 when untracked). Spouts use it to
  /// associate OnAck/OnFail callbacks with their own replay bookkeeping.
  virtual uint64_t LastRootId() const { return 0; }
};

/// A data source (Storm spout). One instance exists per task.
class Spout {
 public:
  virtual ~Spout() = default;

  /// Called once before the stream starts.
  virtual void Open(uint32_t task_index, uint32_t num_tasks) {
    (void)task_index;
    (void)num_tasks;
  }

  /// Produces the next tuple(s) through `collector`. Return false when the
  /// source is exhausted (the engine then begins shutdown once in-flight
  /// tuples drain). May emit zero tuples and return true (idle poll).
  virtual bool NextTuple(OutputCollector* collector) = 0;

  /// At-least-once callbacks: the tuple tree rooted at the spout emission
  /// with this id fully processed / failed (timeout or explicit failure).
  /// Called from the acker thread, serialized per spout instance.
  virtual void OnAck(uint64_t root_id) { (void)root_id; }
  virtual void OnFail(uint64_t root_id) { (void)root_id; }

  /// Epoch-barrier checkpoint hooks (DESIGN.md §12). SnapshotEpoch runs on
  /// the spout thread at the instant barrier `epoch` is injected: return a
  /// blob capturing every payload this spout still owes the stream (the
  /// unemitted cursor plus all in-flight unacked payloads), or nullopt for
  /// sources with nothing to persist. Payloads acked *before* the barrier
  /// are guaranteed to be inside the downstream epoch-`epoch` bolt frames,
  /// so the unacked set is exactly the right re-emission set on restore —
  /// downstream DedupLedgers (restored from the same epoch) absorb the
  /// overlap. OnAck/OnFail run concurrently on the acker thread, so
  /// implementations guard shared state with their own mutex.
  virtual std::optional<std::vector<uint8_t>> SnapshotEpoch(uint64_t epoch) {
    (void)epoch;
    return std::nullopt;
  }
  /// Rehydrates a SnapshotEpoch blob when the engine resumes from `epoch`.
  /// Called once after Open, before the first NextTuple.
  virtual Status RestoreEpoch(uint64_t epoch,
                              const std::vector<uint8_t>& state) {
    (void)epoch;
    (void)state;
    return Status::Unimplemented("spout has no epoch restore");
  }
};

/// A processing node (Storm bolt). One instance exists per task.
class Bolt {
 public:
  virtual ~Bolt() = default;

  /// Called once before the first Execute.
  virtual void Prepare(uint32_t task_index, uint32_t num_tasks) {
    (void)task_index;
    (void)num_tasks;
  }

  /// Processes one input tuple; emissions are anchored to it automatically.
  virtual void Execute(const Tuple& input, OutputCollector* collector) = 0;

  /// Opt-in for the engine's fused batch path: when true, the engine may
  /// deliver whole transport batches through ExecuteBatch instead of
  /// per-tuple Execute. Contract: a batch-capable bolt must NOT emit from
  /// Execute/ExecuteBatch (pure accumulators such as SketchBolt) — the
  /// engine CHECKs this, because batched delivery acks the inputs without
  /// per-tuple anchoring.
  virtual bool BatchCapable() const { return false; }

  /// Batched execution hook. Default: the per-tuple loop, so overriding
  /// BatchCapable alone already yields dispatch-fused semantics; batch-aware
  /// bolts override this to feed one UpdateBatch-style call.
  virtual void ExecuteBatch(std::span<const Tuple* const> inputs,
                            OutputCollector* collector) {
    for (const Tuple* input : inputs) Execute(*input, collector);
  }

  /// End-of-stream hook: called once after all input has been processed
  /// (single-threaded, in topological order) — the place aggregating bolts
  /// emit their final results.
  virtual void Finish(OutputCollector* collector) { (void)collector; }

  /// Debugger hook: a self-describing snapshot of this bolt's state (for
  /// sketch bolts, the SketchBlob envelope), or nullopt for stateless /
  /// non-inspectable bolts. Called only while the bolt is not executing
  /// (the replay debugger pauses between tuples); must not mutate state.
  virtual std::optional<std::vector<uint8_t>> StateBlob() const {
    return std::nullopt;
  }

  /// Epoch-barrier checkpoint hooks (DESIGN.md §12): called by the engine
  /// on the executor thread the moment this task aligned on barrier
  /// `epoch` — the state at that instant contains exactly the effects of
  /// epochs <= epoch. Return nullopt to skip the frame (stateless bolts);
  /// opting in means RestoreEpoch must round-trip the blob, because both
  /// crash-restarts and resumed runs restore through it. Bolts holding a
  /// DedupLedger serialize it inside the blob — that is what makes
  /// restored state exactly-once under at-least-once replays.
  virtual std::optional<std::vector<uint8_t>> SnapshotEpoch(uint64_t epoch) {
    (void)epoch;
    return std::nullopt;
  }
  virtual Status RestoreEpoch(uint64_t epoch,
                              const std::vector<uint8_t>& state) {
    (void)epoch;
    (void)state;
    return Status::Unimplemented("bolt has no epoch restore");
  }
};

using SpoutFactory = std::function<std::unique_ptr<Spout>()>;
using BoltFactory = std::function<std::unique_ptr<Bolt>()>;

/// One subscription edge: bolt consumes `source` with `grouping`.
struct Subscription {
  std::string source;
  Grouping grouping;
};

/// Declarative description of one component.
struct ComponentSpec {
  std::string name;
  bool is_spout = false;
  uint32_t parallelism = 1;
  SpoutFactory spout_factory;
  BoltFactory bolt_factory;
  std::vector<Subscription> inputs;  // Empty for spouts.
};

/// An immutable, validated topology: a DAG of spouts and bolts.
class Topology {
 public:
  const std::vector<ComponentSpec>& components() const { return components_; }

  /// Index of a component by name; CHECK-fails if absent.
  size_t IndexOf(const std::string& name) const;

 private:
  friend class TopologyBuilder;
  std::vector<ComponentSpec> components_;  // Topologically ordered.
};

/// Fluent builder mirroring Storm's TopologyBuilder.
class TopologyBuilder {
 public:
  /// Declares a spout with `parallelism` tasks.
  TopologyBuilder& AddSpout(const std::string& name, SpoutFactory factory,
                            uint32_t parallelism = 1);

  /// Declares a bolt subscribed to one or more upstream components.
  TopologyBuilder& AddBolt(const std::string& name, BoltFactory factory,
                           uint32_t parallelism,
                           std::vector<Subscription> inputs);

  /// Validates (unique names, known sources, acyclic) and produces the
  /// topology with components in topological order.
  Result<Topology> Build();

 private:
  std::vector<ComponentSpec> components_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_TOPOLOGY_H_
