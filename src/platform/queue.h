#ifndef STREAMLIB_PLATFORM_QUEUE_H_
#define STREAMLIB_PLATFORM_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace streamlib::platform {

/// Bounded multi-producer multi-consumer blocking queue. Producers block
/// when the queue is full — that *is* the backpressure mechanism of the
/// engine (a slow bolt stalls its upstreams, exactly the behaviour the
/// Storm/Heron architecture discussion in the paper revolves around).
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed (item dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Push that ignores the capacity bound (never blocks); false only when
  /// closed. Used by multiplexed executors, which must never block on a
  /// queue they may themselves be responsible for draining — the unbounded
  /// internal buffering of pre-backpressure Storm.
  bool ForcePush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending items drain; pushes fail; pops return
  /// nullopt once empty.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_QUEUE_H_
