#ifndef STREAMLIB_PLATFORM_QUEUE_H_
#define STREAMLIB_PLATFORM_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace streamlib::platform {

/// Bounded multi-producer multi-consumer blocking queue. Producers block
/// when the queue is full — that *is* the backpressure mechanism of the
/// engine (a slow bolt stalls its upstreams, exactly the behaviour the
/// Storm/Heron architecture discussion in the paper revolves around).
///
/// The batch operations (PushAll/PopBatch and friends) amortize the mutex
/// acquisition and condition-variable signalling over whole batches; they
/// are the transport primitives of the engine's batched data plane
/// (single-item Push/Pop remain for low-rate control traffic and tests).
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed (item dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    SyncApproxLocked();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Push that ignores the capacity bound (never blocks); false only when
  /// closed. Used by multiplexed executors, which must never block on a
  /// queue they may themselves be responsible for draining — the unbounded
  /// internal buffering of pre-backpressure Storm.
  bool ForcePush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      SyncApproxLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed. On failure the item is
  /// *not* consumed: it is handed back to the caller intact, so a stalled
  /// producer can retry (or fall back to a blocking push) without paying a
  /// second copy.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      SyncApproxLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking batch push: moves every element of `items` into the queue,
  /// waiting for space as needed (partial batches are admitted as capacity
  /// frees up, preserving order). Returns the number of items enqueued —
  /// equal to items.size() unless the queue was closed mid-push, in which
  /// case the remainder is dropped.
  size_t PushAll(std::span<T> items) {
    size_t pushed = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (pushed < items.size()) {
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      if (closed_) break;
      while (pushed < items.size() && items_.size() < capacity_) {
        items_.push_back(std::move(items[pushed++]));
      }
      SyncApproxLocked();
      not_empty_.notify_all();
    }
    return pushed;
  }

  /// Non-blocking batch push: moves a prefix of `items` into the queue up
  /// to the capacity bound and returns its length; the suffix is untouched.
  size_t TryPushAll(std::span<T> items) {
    size_t pushed = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return 0;
      while (pushed < items.size() && items_.size() < capacity_) {
        items_.push_back(std::move(items[pushed++]));
      }
      SyncApproxLocked();
    }
    if (pushed > 0) not_empty_.notify_all();
    return pushed;
  }

  /// Batch ForcePush: ignores the capacity bound; returns items.size(), or
  /// 0 when closed (nothing is enqueued).
  size_t ForcePushAll(std::span<T> items) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return 0;
      for (T& item : items) items_.push_back(std::move(item));
      SyncApproxLocked();
    }
    not_empty_.notify_all();
    return items.size();
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    SyncApproxLocked();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      SyncApproxLocked();
    }
    not_full_.notify_one();
    return item;
  }

  /// Timed pop: waits up to `timeout` for an item. Returns nullopt on
  /// timeout or when closed and drained.
  std::optional<T> PopWithTimeout(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;  // Timed out.
    }
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    SyncApproxLocked();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocking batch pop: waits until at least one item is available, then
  /// drains up to `max` items into `out` under a single lock. Returns the
  /// number appended; 0 means closed and drained.
  size_t PopBatch(std::vector<T>& out, size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    return DrainLocked(lock, out, max);
  }

  /// Timed batch pop: like PopBatch but gives up after `timeout` (returning
  /// 0 without closing). Lets consumers with periodic side-work (the acker's
  /// timeout scan) block instead of spin-polling.
  size_t PopBatchWithTimeout(std::vector<T>& out, size_t max,
                             std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return !items_.empty() || closed_; })) {
      return 0;
    }
    return DrainLocked(lock, out, max);
  }

  /// Non-blocking batch pop.
  size_t TryPopBatch(std::vector<T>& out, size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    return DrainLocked(lock, out, max);
  }

  /// Closes the queue: pending items drain; pushes fail; pops return
  /// nullopt once empty.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Lock-free instantaneous depth estimate for samplers and monitors: a
  /// relaxed read of a counter maintained under the queue lock, so it may
  /// lag a concurrent push/pop by one operation but never tears and never
  /// contends with the data path.
  size_t ApproxSize() const {
    return approx_size_.load(std::memory_order_relaxed);
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Fault-injection hook: invoked with the drained count after every
  /// successful batch pop, outside the queue lock, on the consumer thread.
  /// Must be installed before any consumer runs (the engine does this in
  /// BuildTasks); when unset the only cost is one branch per drain. The
  /// chaos harness uses it to stall consumers (queue.h stays free of any
  /// fault-injection dependency — the policy lives in the installed
  /// closure).
  void SetPopInterceptor(std::function<void(size_t)> interceptor) {
    pop_interceptor_ = std::move(interceptor);
  }

 private:
  /// Moves up to `max` items into `out`; unlocks and signals producers.
  size_t DrainLocked(std::unique_lock<std::mutex>& lock, std::vector<T>& out,
                     size_t max) {
    size_t n = 0;
    while (n < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      n++;
    }
    SyncApproxLocked();
    lock.unlock();
    if (n > 0) {
      not_full_.notify_all();
      if (pop_interceptor_) pop_interceptor_(n);
    }
    return n;
  }

  /// Mirrors items_.size(); written under mu_, read lock-free.
  void SyncApproxLocked() {
    approx_size_.store(items_.size(), std::memory_order_relaxed);
  }

  size_t capacity_;
  std::function<void(size_t)> pop_interceptor_;
  std::atomic<size_t> approx_size_{0};
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_QUEUE_H_
