#ifndef STREAMLIB_PLATFORM_METRICS_H_
#define STREAMLIB_PLATFORM_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/quantiles/tdigest.h"

namespace streamlib::platform {

/// Per-component runtime counters. Updated lock-free on the hot path;
/// latency percentiles go through a mutex-guarded t-digest (sampled, so the
/// lock is off the common path).
class ComponentMetrics {
 public:
  ComponentMetrics() : latency_digest_(100.0) {}

  void IncEmitted(uint64_t n = 1) {
    emitted_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncExecuted(uint64_t n = 1) {
    executed_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncAcked(uint64_t n = 1) {
    acked_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncFailed(uint64_t n = 1) {
    failed_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncBackpressureStalls(uint64_t n = 1) {
    backpressure_stalls_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Records one transport flush of `batch_tuples` tuples from this
  /// component's staging buffer into a downstream queue. flushes() and
  /// AvgFlushSize() expose how well emission batching is amortizing.
  void RecordFlush(uint64_t batch_tuples) {
    flushes_.fetch_add(1, std::memory_order_relaxed);
    flushed_tuples_.fetch_add(batch_tuples, std::memory_order_relaxed);
  }

  /// High-watermark gauge of this component's input queue depth, sampled
  /// by producers after each flush (cheap: one sample per batch).
  void RecordQueueDepth(uint64_t depth) {
    uint64_t current = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > current &&
           !max_queue_depth_.compare_exchange_weak(
               current, depth, std::memory_order_relaxed)) {
    }
  }

  /// Records one end-to-end latency observation (nanoseconds). Callers
  /// sample (e.g. every 64th tuple) to keep contention negligible.
  void RecordLatencyNanos(uint64_t nanos) {
    std::lock_guard<std::mutex> lock(latency_mu_);
    latency_digest_.Add(static_cast<double>(nanos));
  }

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t acked() const { return acked_.load(std::memory_order_relaxed); }
  uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }
  uint64_t backpressure_stalls() const {
    return backpressure_stalls_.load(std::memory_order_relaxed);
  }
  uint64_t flushes() const {
    return flushes_.load(std::memory_order_relaxed);
  }
  uint64_t flushed_tuples() const {
    return flushed_tuples_.load(std::memory_order_relaxed);
  }
  /// Mean tuples per transport flush (0 with no flushes).
  double AvgFlushSize() const {
    const uint64_t n = flushes();
    return n == 0 ? 0.0 : static_cast<double>(flushed_tuples()) / n;
  }
  uint64_t max_queue_depth() const {
    return max_queue_depth_.load(std::memory_order_relaxed);
  }

  /// Latency percentile in nanoseconds (0 if no samples).
  double LatencyPercentileNanos(double q) {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_digest_.count() == 0) return 0.0;
    return latency_digest_.Quantile(q);
  }

 private:
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> acked_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> backpressure_stalls_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> flushed_tuples_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::mutex latency_mu_;
  TDigest latency_digest_;
};

/// Registry mapping component names to metrics; owned by the engine, read
/// by benches and examples after a run.
class MetricsRegistry {
 public:
  ComponentMetrics& ForComponent(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_[name];
  }

  std::vector<std::string> ComponentNames() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(metrics_.size());
    for (const auto& [name, m] : metrics_) names.push_back(name);
    return names;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, ComponentMetrics> metrics_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_METRICS_H_
