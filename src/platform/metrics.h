#ifndef STREAMLIB_PLATFORM_METRICS_H_
#define STREAMLIB_PLATFORM_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/quantiles/tdigest.h"

namespace streamlib::platform {

/// Runtime counters for one *task* (one parallel instance of a component).
/// Updated lock-free on the hot path by exactly the threads that run the
/// task; latency percentiles go through a mutex-guarded t-digest (sampled,
/// so the lock is off the common path).
///
/// The per-task split is the observability counterpart of the paper's
/// Storm-vs-Heron argument: a multiplexed counter bag shared by all tasks
/// of a component both contends on the hot path and hides stragglers —
/// per-task instances remove the contention and make skew visible.
class TaskMetrics {
 public:
  TaskMetrics(std::string component, uint32_t task_index, size_t ordinal)
      : component_(std::move(component)),
        task_index_(task_index),
        ordinal_(ordinal),
        latency_digest_(100.0) {}

  TaskMetrics(const TaskMetrics&) = delete;
  TaskMetrics& operator=(const TaskMetrics&) = delete;

  /// Component this task instantiates.
  const std::string& component() const { return component_; }
  /// Index of this task within its component (0..parallelism-1).
  uint32_t task_index() const { return task_index_; }
  /// Registry-wide ordinal — stable task id used by the sampler's time
  /// series and the telemetry report (== the engine's global task index).
  size_t ordinal() const { return ordinal_; }

  void IncEmitted(uint64_t n = 1) {
    emitted_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncExecuted(uint64_t n = 1) {
    executed_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncAcked(uint64_t n = 1) {
    acked_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncFailed(uint64_t n = 1) {
    failed_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncBackpressureStalls(uint64_t n = 1) {
    backpressure_stalls_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Faults the chaos harness injected at this task's sites (fault.h).
  void IncFaultsInjected(uint64_t n = 1) {
    faults_injected_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Exceptions the engine caught escaping this task's Execute — injected
  /// bolt-throws and genuine user-bolt bugs alike.
  void IncBoltExceptions(uint64_t n = 1) {
    bolt_exceptions_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Records one transport flush of `batch_tuples` tuples from this task's
  /// staging buffer into a downstream queue. flushes() and AvgFlushSize()
  /// expose how well emission batching is amortizing.
  void RecordFlush(uint64_t batch_tuples) {
    flushes_.fetch_add(1, std::memory_order_relaxed);
    flushed_tuples_.fetch_add(batch_tuples, std::memory_order_relaxed);
  }

  /// Folds one input-queue depth observation into the high-watermark gauge.
  /// Owned by the telemetry sampler (periodic instantaneous samples of the
  /// task's input channel), so the watermark sees drain-side depth too —
  /// not just the moments producers happened to flush.
  void RecordQueueDepth(uint64_t depth) {
    uint64_t current = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > current &&
           !max_queue_depth_.compare_exchange_weak(
               current, depth, std::memory_order_relaxed)) {
    }
  }

  /// Records one end-to-end latency observation (nanoseconds). Callers
  /// sample (e.g. every 64th tuple) to keep contention negligible.
  void RecordLatencyNanos(uint64_t nanos) {
    std::lock_guard<std::mutex> lock(latency_mu_);
    latency_digest_.Add(static_cast<double>(nanos));
  }

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t acked() const { return acked_.load(std::memory_order_relaxed); }
  uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }
  uint64_t backpressure_stalls() const {
    return backpressure_stalls_.load(std::memory_order_relaxed);
  }
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  uint64_t bolt_exceptions() const {
    return bolt_exceptions_.load(std::memory_order_relaxed);
  }
  uint64_t flushes() const {
    return flushes_.load(std::memory_order_relaxed);
  }
  uint64_t flushed_tuples() const {
    return flushed_tuples_.load(std::memory_order_relaxed);
  }
  /// Mean tuples per transport flush (0 with no flushes).
  double AvgFlushSize() const {
    const uint64_t n = flushes();
    return n == 0 ? 0.0 : static_cast<double>(flushed_tuples()) / n;
  }
  uint64_t max_queue_depth() const {
    return max_queue_depth_.load(std::memory_order_relaxed);
  }

  /// Latency percentile in nanoseconds (0 if no samples).
  double LatencyPercentileNanos(double q) const {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_digest_.count() == 0) return 0.0;
    return latency_digest_.Quantile(q);
  }

  /// Merges this task's latency digest into `into` (for component-level
  /// aggregation).
  void MergeLatencyInto(TDigest& into) const {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_digest_.count() > 0) into.Merge(latency_digest_);
  }

 private:
  const std::string component_;
  const uint32_t task_index_;
  const size_t ordinal_;

  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> acked_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> backpressure_stalls_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> bolt_exceptions_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> flushed_tuples_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  mutable std::mutex latency_mu_;
  mutable TDigest latency_digest_;
};

/// Value snapshot aggregating every task of one component — the cheap
/// roll-up view benches, tests, and examples read after (or during) a run.
/// Counters are sums across tasks; max_queue_depth is the max; the latency
/// digest is a merge, so percentiles reflect the full sample population.
class ComponentAggregate {
 public:
  ComponentAggregate() : latency_digest_(100.0) {}

  uint64_t emitted() const { return emitted_; }
  uint64_t executed() const { return executed_; }
  uint64_t acked() const { return acked_; }
  uint64_t failed() const { return failed_; }
  uint64_t backpressure_stalls() const { return backpressure_stalls_; }
  uint64_t faults_injected() const { return faults_injected_; }
  uint64_t bolt_exceptions() const { return bolt_exceptions_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t flushed_tuples() const { return flushed_tuples_; }
  uint64_t max_queue_depth() const { return max_queue_depth_; }
  size_t task_count() const { return task_count_; }

  /// Mean tuples per transport flush (0 with no flushes).
  double AvgFlushSize() const {
    return flushes_ == 0 ? 0.0
                         : static_cast<double>(flushed_tuples_) / flushes_;
  }

  /// Latency percentile in nanoseconds over all tasks' samples (0 if none).
  double LatencyPercentileNanos(double q) {
    if (latency_digest_.count() == 0) return 0.0;
    return latency_digest_.Quantile(q);
  }

 private:
  friend class MetricsRegistry;

  uint64_t emitted_ = 0;
  uint64_t executed_ = 0;
  uint64_t acked_ = 0;
  uint64_t failed_ = 0;
  uint64_t backpressure_stalls_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t bolt_exceptions_ = 0;
  uint64_t flushes_ = 0;
  uint64_t flushed_tuples_ = 0;
  uint64_t max_queue_depth_ = 0;
  size_t task_count_ = 0;
  TDigest latency_digest_;
};

/// Registry of per-task metrics; owned by the engine.
///
/// Lifecycle contract: every task is registered up front (the engine does
/// this in BuildTasks, before any worker thread starts), then the registry
/// is frozen — the run phase only ever reads it. Late registration against
/// a frozen registry is a programming error and aborts: handing out
/// references from a concurrently-mutated map was the pre-freeze bug this
/// contract fixes.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers one task instance. Must happen before Freeze(); the returned
  /// reference stays valid for the registry's lifetime.
  TaskMetrics& RegisterTask(const std::string& component,
                            uint32_t task_index) {
    STREAMLIB_CHECK_MSG(!frozen(),
                        "MetricsRegistry is frozen: all tasks must register "
                        "before the run phase (component %s, task %u)",
                        component.c_str(), task_index);
    tasks_.push_back(
        std::make_unique<TaskMetrics>(component, task_index, tasks_.size()));
    by_component_[component].push_back(tasks_.back().get());
    return *tasks_.back();
  }

  /// Makes the registry read-only; called once registration is complete.
  void Freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Aggregated roll-up over every task of `name` (all-zero snapshot for
  /// unknown components). Safe concurrently with a running topology: task
  /// counters are atomics and the task set is frozen.
  ComponentAggregate ForComponent(const std::string& name) const {
    ComponentAggregate agg;
    auto it = by_component_.find(name);
    if (it == by_component_.end()) return agg;
    for (const TaskMetrics* task : it->second) {
      agg.emitted_ += task->emitted();
      agg.executed_ += task->executed();
      agg.acked_ += task->acked();
      agg.failed_ += task->failed();
      agg.backpressure_stalls_ += task->backpressure_stalls();
      agg.faults_injected_ += task->faults_injected();
      agg.bolt_exceptions_ += task->bolt_exceptions();
      agg.flushes_ += task->flushes();
      agg.flushed_tuples_ += task->flushed_tuples();
      agg.max_queue_depth_ =
          std::max(agg.max_queue_depth_, task->max_queue_depth());
      task->MergeLatencyInto(agg.latency_digest_);
      agg.task_count_++;
    }
    return agg;
  }

  std::vector<std::string> ComponentNames() const {
    std::vector<std::string> names;
    names.reserve(by_component_.size());
    for (const auto& [name, tasks] : by_component_) names.push_back(name);
    return names;
  }

  /// Task iteration in registration order (== engine global task index).
  size_t task_count() const { return tasks_.size(); }
  const TaskMetrics& task(size_t ordinal) const { return *tasks_[ordinal]; }
  TaskMetrics& mutable_task(size_t ordinal) { return *tasks_[ordinal]; }

 private:
  std::vector<std::unique_ptr<TaskMetrics>> tasks_;
  std::map<std::string, std::vector<const TaskMetrics*>> by_component_;
  std::atomic<bool> frozen_{false};
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_METRICS_H_
