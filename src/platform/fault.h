#ifndef STREAMLIB_PLATFORM_FAULT_H_
#define STREAMLIB_PLATFORM_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/random.h"
#include "common/status.h"

namespace streamlib::platform {

class TaskMetrics;

/// The failure vocabulary of the engine's chaos harness — each kind maps
/// to one injection point in the data or control plane. The paper's
/// platform axis (Table 2) separates Storm/Heron/MillWheel by what they
/// guarantee *under exactly these events*; the injector exists so tests
/// can create them on demand instead of waiting for them to happen.
enum class FaultKind : uint8_t {
  kDropTuple = 0,    ///< staged delivery silently lost in "transport"
  kDuplicateTuple,   ///< staged delivery arrives twice (redelivery)
  kDelayDelivery,    ///< staged delivery held back a bounded interval
  kBoltThrow,        ///< bolt Execute throws mid-tuple
  kTaskCrash,        ///< bolt instance dies and restarts from its factory
  kQueueStall,       ///< consumer stalls after draining its input queue
  kAckerEventLoss,   ///< executor→acker kUpdate event lost
  kBarrierDrop,      ///< epoch-barrier marker lost toward one target task
  kBarrierDelay,     ///< epoch-barrier marker held back a bounded interval
};

inline constexpr size_t kNumFaultKinds = 9;

/// Short stable identifier ("drop_tuple", ...) — JSON keys and logs.
const char* FaultKindName(FaultKind kind);

/// Declarative fault mix: per-injection-point probabilities plus the
/// master seed every per-site PRNG derives from. All probabilities default
/// to 0 (injection fully disabled — the engine then skips every hook).
///
/// Determinism model: each injection site (one task's transport path, one
/// task's executor, one queue's consumer) owns a PRNG seeded from
/// (seed, site id) and consults it in the site's own program order. A
/// site's decision stream — which consultation indices fire, and every
/// drawn delay/stall magnitude — is therefore a pure function of the seed,
/// independent of thread scheduling. Rerunning a failing seed replays the
/// same fault schedule at every site.
struct FaultSpec {
  uint64_t seed = 0xc4a05;  ///< master seed; per-site PRNGs derive from it

  double drop_tuple_prob = 0.0;       ///< per staged delivery
  double duplicate_tuple_prob = 0.0;  ///< per staged delivery
  double delay_delivery_prob = 0.0;   ///< per staged delivery
  uint32_t delay_max_micros = 200;    ///< delay drawn uniform in [1, max]
  double bolt_throw_prob = 0.0;       ///< per Execute call
  double task_crash_prob = 0.0;       ///< per executed tuple (post-Execute)
  uint32_t max_task_crashes = 1;      ///< engine-wide crash/restart budget
  double queue_stall_prob = 0.0;      ///< per message drained from a queue
  uint32_t queue_stall_micros = 100;  ///< stall drawn uniform in [1, max]
  double acker_loss_prob = 0.0;       ///< per staged kUpdate acker event
  // Barrier-marker faults (epoch checkpointing only): consulted per
  // (barrier, target task) in EmitBarrier. A dropped barrier starves the
  // target's alignment for that epoch; the alignment timeout then
  // force-advances, the epoch goes incomplete, and checkpointing retries
  // at the next epoch — the wedge-resistance the chaos suite certifies.
  double barrier_drop_prob = 0.0;         ///< per barrier per target task
  double barrier_delay_prob = 0.0;        ///< per barrier per target task
  uint32_t barrier_delay_max_micros = 200;  ///< delay uniform in [1, max]

  /// Any probability > 0 — i.e. the engine must build sites and hooks.
  bool Enabled() const;

  /// All probabilities finite and in [0, 1].
  Status Validate() const;
};

class FaultSite;

/// Per-site decision-stream accounting: how many times each kind's draw
/// was consulted (PRNG advanced) and how many of those fired. Two runs
/// with the same seed executed the same fault schedule iff their per-site
/// stats maps compare equal — this is what the fused-vs-queued schedule
/// equality regression test asserts, and what caught the per-batch draw
/// sizing drift in the fused execute path.
struct FaultSiteStats {
  std::array<uint64_t, kNumFaultKinds> consulted{};
  std::array<uint64_t, kNumFaultKinds> fired{};

  bool operator==(const FaultSiteStats&) const = default;
};

/// Engine-wide fault-injection state for one run: the spec, the per-kind
/// injected counters (atomic — sites on different threads record into
/// them), and the crash budget. Owned by the engine; tests read the
/// counters through TopologyEngine::fault_plan() or the telemetry report.
class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultSpec& spec() const { return spec_; }

  /// Creates the deterministic decision stream for one injection site.
  /// `site_id` must be unique and stable across runs (the engine uses the
  /// task's global index × site-role); `metrics` (nullable) receives the
  /// per-task faults_injected increments.
  std::unique_ptr<FaultSite> MakeSite(uint64_t site_id, TaskMetrics* metrics);

  /// Faults actually injected so far, per kind / in total.
  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_injected() const;
  std::array<uint64_t, kNumFaultKinds> Snapshot() const;

  /// Copies every site's consulted/fired counters, keyed by site id. Call
  /// only after the run's worker threads have joined (each site's stats are
  /// written by the one thread that consults the site).
  std::map<uint64_t, FaultSiteStats> SiteStatsSnapshot() const;

 private:
  friend class FaultSite;

  void Record(FaultKind kind) {
    injected_[static_cast<size_t>(kind)].fetch_add(1,
                                                   std::memory_order_relaxed);
  }

  /// Claims one crash from the engine-wide budget; false once exhausted.
  bool ConsumeCrashBudget();

  const FaultSpec spec_;
  std::array<std::atomic<uint64_t>, kNumFaultKinds> injected_{};
  std::atomic<uint32_t> crash_budget_;
  // Stats slots live here (stable addresses) so a site can outlive nothing:
  // MakeSite is called single-threaded from BuildTasks; afterwards each
  // slot is written only by its site's consulting thread.
  std::map<uint64_t, std::unique_ptr<FaultSiteStats>> site_stats_;
};

/// One injection site's deterministic decision stream. NOT thread-safe:
/// a site belongs to exactly one consulting thread (the engine gives each
/// task its own sites, consulted only by the thread currently running
/// that task — which the engine already serializes).
///
/// Every Fire*/draw method advances the site PRNG exactly once when its
/// probability is nonzero, so the stream position after N consultations
/// is a function of the spec alone.
class FaultSite {
 public:
  /// Transport path (TaskCollector::Stage), consulted per staged delivery.
  bool FireDropTuple();
  bool FireDuplicateTuple();
  /// 0 = no delay; otherwise the number of microseconds to hold delivery.
  uint32_t DeliveryDelayMicros();

  /// Executor path (ExecuteBatch), consulted per input tuple.
  bool FireBoltThrow();
  /// Consulted after a successful Execute: true = the "process" dies here,
  /// between its state mutation and its ack (the MillWheel torn window).
  /// Respects the engine-wide crash budget.
  bool FireTaskCrash();

  /// Ack path, consulted per staged kUpdate event.
  bool FireAckerLoss();

  /// Barrier path (TaskCollector::EmitBarrier), consulted once per
  /// (barrier, target task). Data tuples never draw from these.
  bool FireBarrierDrop();
  /// 0 = no delay; otherwise microseconds to hold the barrier back.
  uint32_t BarrierDelayMicros();

  /// Queue consumer path, consulted per drained message.
  /// 0 = no stall; otherwise microseconds the consumer sleeps.
  uint32_t QueueStallMicros();

 private:
  friend class FaultPlan;

  FaultSite(FaultPlan* plan, uint64_t site_id, TaskMetrics* metrics,
            FaultSiteStats* stats);

  /// One Bernoulli draw against `prob`; records `kind` on fire. Skips the
  /// PRNG entirely when prob == 0 so disabled kinds cost nothing and do
  /// not perturb the streams of enabled ones.
  bool Draw(double prob, FaultKind kind);

  FaultPlan* plan_;
  Rng rng_;
  TaskMetrics* metrics_;  // Nullable (sites not tied to one task).
  FaultSiteStats* stats_;  // Owned by the plan; written only by this site.
};

/// The exception the bolt-throw injection point raises inside Execute.
/// Deliberately a real throw: it exercises the engine's genuine unwind and
/// catch path, the same one a buggy user bolt would take.
class InjectedBoltError : public std::runtime_error {
 public:
  explicit InjectedBoltError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_FAULT_H_
