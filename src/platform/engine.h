#ifndef STREAMLIB_PLATFORM_ENGINE_H_
#define STREAMLIB_PLATFORM_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"
#include "platform/fault.h"
#include "platform/metrics.h"
#include "platform/metrics_sampler.h"
#include "platform/plan.h"
#include "platform/queue.h"
#include "platform/telemetry.h"
#include "platform/topology.h"
#include "platform/trace.h"

namespace streamlib::platform {

class RunRecorder;
class KvCheckpointStore;
class CheckpointCoordinator;
class Clock;

/// How bolt tasks map onto threads — the architectural axis the paper's
/// Storm-vs-Heron discussion (Section 3) turns on.
enum class ExecutionMode {
  /// Heron-style: every task runs in its own dedicated thread, blocking on
  /// its own input queue ("each task in a process of its own").
  kDedicated,
  /// Storm-style: a small pool of executor threads multiplexes all tasks,
  /// polling their queues round-robin ("disparate tasks multiplexed in a
  /// single worker" — the architecture Heron was built to replace).
  kMultiplexed,
};

/// Delivery guarantee for spout-rooted tuple trees.
enum class DeliverySemantics {
  kAtMostOnce,   ///< no tracking; failures lose tuples
  kAtLeastOnce,  ///< XOR-ledger acker; spouts see OnAck/OnFail
  /// At-least-once replay plus epoch-aligned barrier checkpoints plus
  /// checkpointed dedup state (DESIGN.md §12): every payload's effect is
  /// applied exactly once even across crash/restore. Requires a
  /// checkpoint_store and epoch_interval_tuples > 0.
  kExactlyOnce,
};

/// Whether a semantics level runs the acker / root-tracking machinery
/// (everything above at-most-once does).
inline bool TracksTuples(DeliverySemantics s) {
  return s != DeliverySemantics::kAtMostOnce;
}

/// Engine tuning knobs.
struct EngineConfig {
  ExecutionMode mode = ExecutionMode::kDedicated;
  DeliverySemantics semantics = DeliverySemantics::kAtMostOnce;
  size_t queue_capacity = 1024;      ///< per-task input queue bound
  uint32_t multiplexed_threads = 2;  ///< executor pool size (kMultiplexed)
  size_t max_spout_pending = 4096;   ///< at-least-once spout throttle
  uint64_t seed = 0x5eed;            ///< shuffle-grouping randomness
  /// Every Nth tuple contributes an end-to-end latency sample.
  uint32_t latency_sample_every = 64;
  /// At-least-once: a root not fully acked within this window fails (and
  /// the spout's OnFail may replay it).
  double ack_timeout_seconds = 5.0;
  /// Transport batching: emissions accumulate in per-target staging
  /// buffers and flush as one batch push when a buffer reaches this size
  /// (or when the producing Execute/NextTuple batch ends). 1 disables
  /// output batching (per-tuple pushes, the pre-batching data plane).
  size_t emit_batch_size = 32;
  /// Max input messages a bolt executor drains per queue operation.
  /// 1 disables input batching.
  size_t execute_batch_size = 128;
  /// Use a lock-free SPSC ring (instead of the mutex BlockingQueue) for
  /// bolt input queues with exactly one producer task, in dedicated mode.
  bool enable_spsc = true;
  /// Fused batch execution: deliver whole input batches to bolts that
  /// declare BatchCapable() through one ExecuteBatch call (one dispatch,
  /// one ack-staging pass, batched sketch kernels) instead of per-tuple
  /// Execute. Traced batches and non-capable bolts always take the
  /// per-tuple path. false restores tuple-at-a-time delivery everywhere.
  bool enable_bolt_batch = true;
  /// Telemetry sampler period: every N ms a background thread snapshots
  /// all per-task counters and instantaneous queue depths into the time
  /// series exposed by TopologyEngine::telemetry(). 0 disables the sampler
  /// (no thread, and max_queue_depth stays 0 — the sampler owns gauges).
  uint32_t telemetry_sample_interval_ms = 10;
  /// Tuple tracing: every Kth spout root carries a trace id, and each hop
  /// records (task, queue wait, execute time) into per-task ring buffers
  /// that merge into span trees after Run(). 0 disables tracing; untraced
  /// tuples pay exactly one branch per hop.
  uint32_t trace_sample_every = 0;
  /// Deterministic fault injection (chaos testing): per-injection-point
  /// probabilities, all 0 by default — fully disabled, and the engine
  /// builds no sites or hooks. See fault.h for the determinism model.
  FaultSpec faults;
  /// Flight recorder (recorder.h): when set, every spout emission is
  /// captured before routing, and Run() attaches the final counters as the
  /// recording's summary. Not owned; the caller Finalize()s after Run().
  /// Null (the default) records nothing and costs one branch per emission.
  RunRecorder* recorder = nullptr;
  /// Epoch-aligned barrier checkpointing (DESIGN.md §12). Spouts inject an
  /// epoch barrier every `epoch_interval_tuples` emissions; bolts align on
  /// barriers across their input edges, snapshot their state into per-epoch
  /// frames in `checkpoint_store`, and a coordinator marks an epoch
  /// complete once every task acked it. 0 disables barriers entirely.
  /// Required (with a non-null store) for kExactlyOnce.
  uint64_t epoch_interval_tuples = 0;
  /// Per-epoch frame storage. Not owned; must outlive Run(). Required when
  /// epoch_interval_tuples > 0 or resume_from_epoch > 0.
  KvCheckpointStore* checkpoint_store = nullptr;
  /// A bolt whose alignment on the next barrier stalls longer than this
  /// (dropped/delayed barrier, stalled producer) force-advances: it skips
  /// the stuck epochs — they simply never complete — and realigns at the
  /// highest barrier it has seen, so checkpointing retries instead of
  /// wedging the data plane.
  double epoch_align_timeout_seconds = 0.5;
  /// Resume: restore every task from its frame at this (complete) epoch
  /// before pumping data, and number new epochs from here. 0 = fresh run.
  uint64_t resume_from_epoch = 0;
  /// Fused-operator compilation (DESIGN.md §13): lower the topology to a
  /// dataflow IR, collapse eligible spout→bolt→bolt chains into in-thread
  /// fused operators (no queue, no per-hop ack traffic), and fall back to
  /// queued edges wherever the legality rules demand it. Off by default:
  /// fusion removes queues, which changes the observable transport shape
  /// (spsc_edges(), queue-depth gauges) existing callers rely on.
  bool enable_fusion = false;
  /// Time source for latency stamps, ack/alignment timeouts, and trace
  /// timestamps. Null (the default) uses the process steady clock; tests
  /// inject a ManualClock to drive timeout paths deterministically.
  /// Not owned; must outlive Run().
  Clock* clock = nullptr;

  /// Checks knob ranges (0 means "disabled" for the telemetry knobs, not
  /// an error). Run() aborts on an invalid config; callers building
  /// configs from user input should validate first.
  Status Validate() const;
};

/// Executes a topology to completion: runs all spouts until exhausted,
/// drains in-flight tuples, then runs the Finish() pass. Single-use.
class TopologyEngine {
 public:
  TopologyEngine(Topology topology, EngineConfig config);
  ~TopologyEngine();

  TopologyEngine(const TopologyEngine&) = delete;
  TopologyEngine& operator=(const TopologyEngine&) = delete;

  /// Blocking run to completion.
  void Run();

  MetricsRegistry& metrics() { return metrics_; }

  /// Observability facade: live time series during Run() (sampler
  /// snapshots are thread-safe), full report including trace span trees
  /// once Run() returns. See telemetry.h.
  Telemetry& telemetry() { return telemetry_; }

  /// Completed (fully acked) tuple trees — at-least-once mode only.
  uint64_t completed_roots() const {
    return completed_roots_.load(std::memory_order_relaxed);
  }
  /// Failed tuple trees — at-least-once mode only.
  uint64_t failed_roots() const {
    return failed_roots_.load(std::memory_order_relaxed);
  }

  /// Number of bolt input queues backed by the SPSC ring (after Run()).
  size_t spsc_edges() const { return spsc_edges_; }

  /// The dataflow IR the engine compiled this topology into, with fusion
  /// decisions and per-edge vetoes. Built during Run()'s BuildTasks (null
  /// before Run()); always present afterwards, even with fusion disabled.
  const TopologyPlan* plan() const { return plan_.get(); }

  /// Edges realized as in-thread fused hops instead of queues (after
  /// Run()). 0 whenever enable_fusion is false or nothing was eligible.
  size_t fused_edges() const { return fused_edges_; }

  /// Injected-fault counters for this run; null when config.faults is
  /// disabled. Valid from Run() start (tests read it after Run returns).
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Epoch checkpointing results (barriers enabled; after Run()).
  /// Highest epoch every task acked — the epoch a resumed run restores.
  uint64_t last_complete_epoch() const;
  /// Epochs that reached completion during this run.
  uint64_t epochs_completed() const;
  /// Alignment timeouts: times a bolt force-advanced past a stuck barrier.
  uint64_t epoch_timeouts() const {
    return epoch_timeouts_.load(std::memory_order_relaxed);
  }

 private:
  struct Task;
  struct Edge;
  class TaskCollector;
  class FinishCollector;
  class FusedStageCollector;
  struct AckerEvent;

  void BuildTasks();
  void StartSampler();
  void DrainTraces();
  void SpoutLoop(Task* task);
  void DedicatedBoltLoop(Task* task);
  void MultiplexedWorkerLoop(const std::vector<Task*>& tasks);
  void AckerLoop();
  void ExecuteBatch(Task* task, std::span<struct Message> batch);
  void ExecuteBatchFused(Task* task, std::span<struct Message> batch);
  void RestartBolt(Task* task);
  void RunFinishPass();

  /// Injected time source (config.clock or the steady default).
  uint64_t NowNanos() const;

  // Fused-chain execution (DESIGN.md §13). RunFusedChain drives one spout
  // emission through every stage of `head`'s fused chain inline on the
  // calling thread; the return value is the XOR of the poison edge ids of
  // any hops that failed (0 = the whole chain succeeded — kInit with
  // ledger 0 resolves immediately, matching the queued eventual outcome).
  uint64_t RunFusedChain(Task* head, Tuple tuple, uint64_t root,
                         uint64_t emit_time, uint64_t trace_id,
                         uint64_t parent_span);
  void DeliverFusedHop(Task* head, size_t stage, Tuple tuple, uint64_t root,
                       uint64_t emit_time, uint64_t trace_id,
                       uint64_t parent_span, uint64_t* chain_xor);
  void ExecuteFusedStage(Task* head, size_t stage, const Tuple& tuple,
                         uint64_t root, uint64_t emit_time, uint64_t trace_id,
                         uint64_t parent_span, uint64_t* chain_xor);

  // Epoch-barrier plumbing (all no-ops unless epoch_interval_tuples > 0).
  enum class ExecOutcome { kOk, kFailed, kCrashed };
  ExecOutcome ExecuteOne(Task* task, struct Message& message,
                         size_t* executed);
  void ExecuteBatchAligned(Task* task, std::span<struct Message> batch);
  void HandleBarrier(Task* task, uint32_t producer, uint64_t epoch,
                     size_t* executed, bool* crashed);
  void ReleaseHeld(Task* task, uint64_t max_tag, size_t* executed,
                   bool* crashed);
  void FlushHeld(Task* task);
  void MaybeEpochTimeout(Task* task);
  void SnapshotBoltEpoch(Task* task, uint64_t epoch);
  void InjectSpoutBarrier(Task* task, uint64_t epoch);
  void RestoreTaskState(Task* task);
  void FinishPending(size_t n);

  Topology topology_;
  EngineConfig config_;
  MetricsRegistry metrics_;
  Telemetry telemetry_;
  std::unique_ptr<MetricsSampler> sampler_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::unique_ptr<CheckpointCoordinator> coordinator_;
  std::atomic<uint64_t> epoch_timeouts_{0};

  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::vector<Edge>> outgoing_;  // Per component index.
  size_t spsc_edges_ = 0;
  std::unique_ptr<TopologyPlan> plan_;
  size_t fused_edges_ = 0;
  Clock* clock_;  // Never null after construction; not owned.

  std::atomic<uint64_t> pending_messages_{0};
  std::atomic<uint64_t> next_root_id_{1};
  std::atomic<uint64_t> next_edge_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> inflight_roots_{0};
  std::atomic<uint64_t> completed_roots_{0};
  std::atomic<uint64_t> failed_roots_{0};
  std::atomic<bool> spouts_done_{false};

  /// Signalled on progress the blocked sides wait for: roots resolving
  /// (spout throttle) and the pipeline draining (Run's drain wait). All
  /// waits are timed, so a missed notify costs bounded latency, never a
  /// hang.
  std::mutex progress_mu_;
  std::condition_variable progress_cv_;

  std::unique_ptr<BlockingQueue<AckerEvent>> acker_queue_;
  std::thread acker_thread_;
  std::vector<std::thread> threads_;
  bool ran_ = false;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_ENGINE_H_
