#ifndef STREAMLIB_PLATFORM_STREAM_OPERATORS_H_
#define STREAMLIB_PLATFORM_STREAM_OPERATORS_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/serde.h"
#include "common/state.h"
#include "platform/checkpoint.h"
#include "platform/epoch.h"
#include "platform/topology.h"

namespace streamlib::platform {

/// Checkpointing knobs for SketchBolt. With a null store the bolt is
/// stateless-on-failure (pure recompute); with a store it snapshots its
/// sketch as a versioned SketchBlob every `every` tuples and on Finish,
/// and restores the latest blob in Prepare — the generic replacement for
/// hand-rolled per-bolt tuple snapshots.
struct SketchCheckpoint {
  KvCheckpointStore* store = nullptr;  ///< not owned; may be null
  std::string key_prefix;              ///< store key = prefix + ":" + task
  uint64_t every = 256;                ///< Put frequency in tuples
};

/// Generic sketch-maintaining bolt over any state::MergeableSketch: applies
/// a caller-supplied update per tuple, checkpoints through the SketchBlob
/// envelope, and on end-of-stream emits its sketch as a single blob tuple
/// (field 0: the blob bytes as a string) for a downstream combiner.
///
/// The key-sharded partial-aggregation pattern (the mergeable-summaries
/// deployment from Agarwal et al. applied to a Storm-style topology): run N
/// parallel SketchBolt tasks behind a fields grouping, then subscribe one
/// SketchCombinerBolt via a global grouping — each shard's final blob is
/// merged into one sketch whose estimates equal a single-instance run.
template <state::MergeableSketch T>
class SketchBolt : public Bolt {
 public:
  using UpdateFn = std::function<void(T&, const Tuple&)>;
  /// Batched update: applies a whole engine batch in one call (e.g. one
  /// UpdateBatch on a BatchUpdatable sketch). Must leave the sketch in the
  /// same state as applying the scalar UpdateFn per tuple in order.
  using BatchUpdateFn = std::function<void(T&, std::span<const Tuple* const>)>;

  SketchBolt(T initial, UpdateFn update, SketchCheckpoint checkpoint = {})
      : sketch_(std::move(initial)),
        update_(std::move(update)),
        checkpoint_(std::move(checkpoint)) {}

  /// With a batched kernel: the engine's fused path lands in one
  /// batch_update call per input batch; everything else (checkpointing,
  /// Finish, restore) is shared with the scalar form.
  SketchBolt(T initial, UpdateFn update, BatchUpdateFn batch_update,
             SketchCheckpoint checkpoint = {})
      : sketch_(std::move(initial)),
        update_(std::move(update)),
        batch_update_(std::move(batch_update)),
        checkpoint_(std::move(checkpoint)) {}

  void Prepare(uint32_t task_index, uint32_t num_tasks) override {
    (void)num_tasks;
    if (checkpoint_.store == nullptr) return;
    key_ = checkpoint_.key_prefix + ":" + std::to_string(task_index);
    Result<std::vector<uint8_t>> blob = checkpoint_.store->Fetch(key_);
    if (!blob.ok()) return;  // NotFound: first start, keep the initial sketch.
    Result<T> restored = state::FromBlob<T>(blob.value());
    STREAMLIB_CHECK_MSG(restored.ok(), "sketch restore failed: %s",
                        restored.status().ToString().c_str());
    sketch_ = std::move(restored).value();
  }

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    update_(sketch_, input);
    AfterUpdates(1);
  }

  /// Pure accumulator: never emits from execution, so the engine may fuse
  /// whole batches into one call.
  bool BatchCapable() const override { return true; }

  void ExecuteBatch(std::span<const Tuple* const> inputs,
                    OutputCollector* collector) override {
    (void)collector;
    if (batch_update_) {
      batch_update_(sketch_, inputs);
    } else {
      for (const Tuple* input : inputs) update_(sketch_, *input);
    }
    AfterUpdates(inputs.size());
  }

  void Finish(OutputCollector* collector) override {
    if (checkpoint_.store != nullptr) {
      checkpoint_.store->Put(key_, state::ToBlob(sketch_));
    }
    const std::vector<uint8_t> blob = state::ToBlob(sketch_);
    collector->Emit(Tuple::Of(std::string(blob.begin(), blob.end())));
  }

  /// Debugger state inspection: the live sketch as a SketchBlob.
  std::optional<std::vector<uint8_t>> StateBlob() const override {
    return state::ToBlob(sketch_);
  }

  /// Epoch-barrier frames: the sketch travels through the same SketchBlob
  /// envelope the periodic checkpoints use.
  std::optional<std::vector<uint8_t>> SnapshotEpoch(uint64_t epoch) override {
    (void)epoch;
    return state::ToBlob(sketch_);
  }
  Status RestoreEpoch(uint64_t epoch,
                      const std::vector<uint8_t>& state) override {
    (void)epoch;
    Result<T> restored = state::FromBlob<T>(state);
    STREAMLIB_RETURN_NOT_OK(restored.status());
    sketch_ = std::move(restored).value();
    return Status::OK();
  }

  const T& sketch() const { return sketch_; }

 private:
  /// Checkpoint cadence, counted in tuples but evaluated only at update
  /// boundaries: a batch is applied in full before the threshold check, so
  /// every snapshot the store sees is a between-batches consistent sketch —
  /// never one with half a batch applied.
  void AfterUpdates(uint64_t n) {
    if (checkpoint_.store == nullptr) return;
    since_checkpoint_ += n;
    if (since_checkpoint_ >= checkpoint_.every) {
      checkpoint_.store->Put(key_, state::ToBlob(sketch_));
      since_checkpoint_ = 0;
    }
  }

  T sketch_;
  UpdateFn update_;
  BatchUpdateFn batch_update_;
  SketchCheckpoint checkpoint_;
  std::string key_;
  uint64_t since_checkpoint_ = 0;
};

/// Builds a SketchBolt BatchUpdateFn for a BatchUpdatable sketch keyed by
/// one tuple field: hashes the field per tuple with the sketch's own seed
/// (so digests match the scalar `sketch.Add(field)` path bit for bit) and
/// feeds chunks into one AddHashBatch call. String and int64 fields are
/// supported — the two key shapes the workload generators emit.
template <typename T>
  requires state::BatchUpdatable<T>
std::function<void(T&, std::span<const Tuple* const>)> FieldKeyBatchUpdate(
    size_t field_index) {
  return [field_index](T& sketch, std::span<const Tuple* const> inputs) {
    constexpr size_t kChunk = 64;
    uint64_t digests[kChunk];
    size_t n = 0;
    for (const Tuple* input : inputs) {
      const Value& v = input->field(field_index);
      if (const std::string* s = std::get_if<std::string>(&v)) {
        digests[n++] = Murmur3_64(s->data(), s->size(), T::kHashSeed);
      } else if (const int64_t* i = std::get_if<int64_t>(&v)) {
        digests[n++] = HashInt64(static_cast<uint64_t>(*i), T::kHashSeed);
      } else {
        STREAMLIB_CHECK_MSG(false,
                            "FieldKeyBatchUpdate: field %zu is neither "
                            "string nor int64",
                            field_index);
      }
      if (n == kChunk) {
        sketch.AddHashBatch(std::span<const uint64_t>(digests, n));
        n = 0;
      }
    }
    if (n > 0) sketch.AddHashBatch(std::span<const uint64_t>(digests, n));
  };
}

/// Merge side of the sharded pattern: consumes the blob tuples emitted by
/// upstream SketchBolt tasks (subscribe with a global grouping so every
/// shard lands on one task), folds each into its sketch via the envelope,
/// and on end-of-stream either invokes `on_result` or re-emits the merged
/// blob for further combining (multi-level merge trees).
template <state::MergeableSketch T>
class SketchCombinerBolt : public Bolt {
 public:
  using ResultFn = std::function<void(const T&, OutputCollector*)>;

  explicit SketchCombinerBolt(T initial, ResultFn on_result = nullptr)
      : merged_(std::move(initial)), on_result_(std::move(on_result)) {}

  /// Pure accumulator (emits only from Finish): eligible for the engine's
  /// fused batch path via the default per-tuple ExecuteBatch loop.
  bool BatchCapable() const override { return true; }

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    const std::string& bytes = input.Str(0);
    const std::vector<uint8_t> blob(bytes.begin(), bytes.end());
    const Status status = state::MergeBlob(merged_, blob);
    STREAMLIB_CHECK_MSG(status.ok(), "shard blob merge failed: %s",
                        status.ToString().c_str());
    shards_merged_++;
  }

  void Finish(OutputCollector* collector) override {
    if (on_result_) {
      on_result_(merged_, collector);
      return;
    }
    const std::vector<uint8_t> blob = state::ToBlob(merged_);
    collector->Emit(Tuple::Of(std::string(blob.begin(), blob.end())));
  }

  /// Debugger state inspection: the merged sketch as a SketchBlob.
  std::optional<std::vector<uint8_t>> StateBlob() const override {
    return state::ToBlob(merged_);
  }

  /// Epoch-barrier frames for the merge side.
  std::optional<std::vector<uint8_t>> SnapshotEpoch(uint64_t epoch) override {
    (void)epoch;
    return state::ToBlob(merged_);
  }
  Status RestoreEpoch(uint64_t epoch,
                      const std::vector<uint8_t>& state) override {
    (void)epoch;
    Result<T> restored = state::FromBlob<T>(state);
    STREAMLIB_RETURN_NOT_OK(restored.status());
    merged_ = std::move(restored).value();
    return Status::OK();
  }

  const T& merged() const { return merged_; }
  uint64_t shards_merged() const { return shards_merged_; }

 private:
  T merged_;
  ResultFn on_result_;
  uint64_t shards_merged_ = 0;
};

/// Tumbling aggregation operator — the paper's "time windows, aggregation"
/// streaming operators. Tuples are (key: string, value: double); every
/// `window_size` inputs the bolt emits (key, sum, count) for each key seen
/// in the window and resets. Deploy behind a fields grouping so each key's
/// aggregates are complete.
class TumblingAggregateBolt : public Bolt {
 public:
  explicit TumblingAggregateBolt(uint64_t window_size)
      : window_size_(window_size) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    auto& slot = aggregates_[input.Str(0)];
    slot.first += input.Double(1);
    slot.second++;
    if (++in_window_ >= window_size_) Flush(collector);
  }

  void Finish(OutputCollector* collector) override { Flush(collector); }

 private:
  void Flush(OutputCollector* collector) {
    for (const auto& [key, agg] : aggregates_) {
      collector->Emit(Tuple::Of(key, agg.first,
                                static_cast<int64_t>(agg.second)));
    }
    aggregates_.clear();
    in_window_ = 0;
  }

  uint64_t window_size_;
  uint64_t in_window_ = 0;
  std::unordered_map<std::string, std::pair<double, uint64_t>> aggregates_;
};

/// Windowed stream-stream equi-join — the Photon problem (cited as [40]:
/// "fault-tolerant and scalable joining of continuous data streams").
/// Two logical streams arrive tagged by their side in field 0 ("L"/"R"),
/// keyed by field 1, with one payload field 2; each side retains its last
/// `window_per_side` tuples (per task), and every arrival probes the
/// opposite window, emitting (key, left payload, right payload) for each
/// match — so out-of-order pairs within the window join exactly once per
/// pairing. Deploy behind Fields(1) grouping so both sides of a key meet
/// in the same task.
class WindowJoinBolt : public Bolt {
 public:
  /// \param window_per_side  tuples retained per side per task.
  explicit WindowJoinBolt(size_t window_per_side)
      : window_(window_per_side) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    const std::string& side = input.Str(0);
    const std::string& key = input.Str(1);
    const bool is_left = side == "L";
    Side& mine = is_left ? left_ : right_;
    Side& other = is_left ? right_ : left_;

    // Probe the opposite window.
    auto it = other.by_key.find(key);
    if (it != other.by_key.end()) {
      for (const Tuple& match : it->second) {
        if (is_left) {
          collector->Emit(Tuple::Of(key, input.field(2), match.field(2)));
        } else {
          collector->Emit(Tuple::Of(key, match.field(2), input.field(2)));
        }
        emitted_joins_++;
      }
    }

    // Insert into my window; evict my oldest beyond the bound.
    mine.by_key[key].push_back(input);
    mine.order.push_back(key);
    if (mine.order.size() > window_) {
      const std::string& oldest_key = mine.order.front();
      auto victim = mine.by_key.find(oldest_key);
      if (victim != mine.by_key.end()) {
        victim->second.pop_front();
        if (victim->second.empty()) mine.by_key.erase(victim);
      }
      mine.order.pop_front();
    }
  }

  uint64_t emitted_joins() const { return emitted_joins_; }

 private:
  struct Side {
    std::unordered_map<std::string, std::deque<Tuple>> by_key;
    std::deque<std::string> order;  // Arrival order for eviction.
  };

  size_t window_;
  Side left_;
  Side right_;
  uint64_t emitted_joins_ = 0;
};

/// Predicate filter operator (the paper's "filtering" operator): passes
/// tuples satisfying a caller-supplied predicate.
class FilterBolt : public Bolt {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  explicit FilterBolt(Predicate predicate)
      : predicate_(std::move(predicate)) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    if (predicate_(input)) collector->Emit(input);
  }

 private:
  Predicate predicate_;
};

/// Enrichment operator (the paper's "enrichment" operator): appends a
/// value looked up from a reference table by the key in field `key_index`;
/// misses pass through with a default.
class EnrichBolt : public Bolt {
 public:
  EnrichBolt(std::unordered_map<std::string, Value> reference,
             size_t key_index, Value default_value)
      : reference_(std::move(reference)),
        key_index_(key_index),
        default_(std::move(default_value)) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    std::vector<Value> values = input.values();
    auto it = reference_.find(input.Str(key_index_));
    values.push_back(it == reference_.end() ? default_ : it->second);
    collector->Emit(Tuple(std::move(values)));
  }

 private:
  std::unordered_map<std::string, Value> reference_;
  size_t key_index_;
  Value default_;
};

/// Rescalable sketch shard: state lives in key groups (epoch.h), the
/// Flink-style unit of state redistribution. The key in `key_field` hashes
/// (with the fields-grouping seed, so group ownership agrees with routing)
/// into one of kNumKeyGroups groups, each holding its own sketch plus its
/// own DedupLedger — so when RescaleEpochFrames re-deals the groups across
/// a different task count, the duplicate-suppression state moves *with*
/// the keys it protects. Deploy behind Fields(key_field) grouping with a
/// parallelism dividing kNumKeyGroups.
///
/// With `dedup_seq_field` set, that int64 field is a unique payload
/// sequence number and each group's ledger drops redeliveries — the
/// checkpoint-then-ack exactly-once recipe, rescale-safe.
template <state::MergeableSketch T>
class KeyGroupedSketchBolt : public Bolt {
 public:
  using MakeFn = std::function<T()>;
  using UpdateFn = std::function<void(T&, const Tuple&)>;

  KeyGroupedSketchBolt(MakeFn make, UpdateFn update, size_t key_field,
                       std::optional<size_t> dedup_seq_field = std::nullopt)
      : make_(std::move(make)),
        update_(std::move(update)),
        key_field_(key_field),
        dedup_seq_field_(dedup_seq_field) {}

  void Prepare(uint32_t task_index, uint32_t num_tasks) override {
    STREAMLIB_CHECK_MSG(num_tasks > 0 && kNumKeyGroups % num_tasks == 0,
                        "KeyGroupedSketchBolt parallelism %u must divide %u "
                        "key groups",
                        num_tasks, kNumKeyGroups);
    task_index_ = task_index;
    num_tasks_ = num_tasks;
  }

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    const uint64_t h =
        HashOfValue(input.field(key_field_), kFieldsGroupingHashSeed);
    const uint32_t g = static_cast<uint32_t>(h % kNumKeyGroups);
    auto it = groups_.find(g);
    if (it == groups_.end()) {
      it = groups_.emplace(g, Group{make_(), DedupLedger{}}).first;
    }
    Group& group = it->second;
    if (dedup_seq_field_.has_value() &&
        !group.ledger.CheckAndRecord(
            0, static_cast<uint64_t>(input.Int(*dedup_seq_field_)))) {
      return;  // Redelivery of an already-applied payload: drop.
    }
    update_(group.sketch, input);
  }

  /// Pure accumulator (emits only from Finish).
  bool BatchCapable() const override { return true; }

  /// Epoch frame: the grouped-state envelope (EncodeGroupedState), each
  /// group payload = [sketch SketchBlob][ledger bytes], both
  /// length-prefixed. std::map iteration keeps the bytes deterministic.
  std::optional<std::vector<uint8_t>> SnapshotEpoch(uint64_t epoch) override {
    (void)epoch;
    std::map<uint32_t, std::vector<uint8_t>> grouped;
    for (const auto& [g, group] : groups_) {
      ByteWriter w;
      const std::vector<uint8_t> sketch_blob = state::ToBlob(group.sketch);
      w.PutVarint(sketch_blob.size());
      w.PutBytes(sketch_blob.data(), sketch_blob.size());
      const std::vector<uint8_t> ledger = group.ledger.Serialize();
      w.PutVarint(ledger.size());
      w.PutBytes(ledger.data(), ledger.size());
      grouped.emplace(g, std::move(w).TakeBytes());
    }
    return EncodeGroupedState(grouped);
  }

  Status RestoreEpoch(uint64_t epoch,
                      const std::vector<uint8_t>& state) override {
    (void)epoch;
    Result<std::map<uint32_t, std::vector<uint8_t>>> grouped =
        DecodeGroupedState(state);
    STREAMLIB_RETURN_NOT_OK(grouped.status());
    std::map<uint32_t, Group> restored;
    for (const auto& [g, payload] : grouped.value()) {
      if (g % num_tasks_ != task_index_) {
        return Status::InvalidArgument(
            "key group " + std::to_string(g) + " does not belong to task " +
            std::to_string(task_index_) + "/" + std::to_string(num_tasks_) +
            " (frame not rescaled?)");
      }
      ByteReader r(payload);
      uint64_t sketch_len = 0;
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&sketch_len));
      if (sketch_len > r.remaining()) {
        return Status::Corruption("key-group payload truncated (sketch)");
      }
      std::vector<uint8_t> sketch_bytes(sketch_len);
      STREAMLIB_RETURN_NOT_OK(r.GetBytes(sketch_bytes.data(), sketch_len));
      uint64_t ledger_len = 0;
      STREAMLIB_RETURN_NOT_OK(r.GetVarint(&ledger_len));
      if (ledger_len > r.remaining()) {
        return Status::Corruption("key-group payload truncated (ledger)");
      }
      std::vector<uint8_t> ledger_bytes(ledger_len);
      STREAMLIB_RETURN_NOT_OK(r.GetBytes(ledger_bytes.data(), ledger_len));
      Result<T> sketch = state::FromBlob<T>(sketch_bytes);
      STREAMLIB_RETURN_NOT_OK(sketch.status());
      Result<DedupLedger> ledger = DedupLedger::Deserialize(ledger_bytes);
      STREAMLIB_RETURN_NOT_OK(ledger.status());
      restored.emplace(g, Group{std::move(sketch).value(),
                                std::move(ledger).value()});
    }
    groups_ = std::move(restored);
    return Status::OK();
  }

  /// All of this task's groups folded into one sketch (query side).
  T Merged() const {
    T out = make_();
    for (const auto& [g, group] : groups_) {
      const Status merged = state::MergeBlob(out, state::ToBlob(group.sketch));
      STREAMLIB_CHECK_MSG(merged.ok(), "key-group merge failed: %s",
                          merged.ToString().c_str());
    }
    return out;
  }

  void Finish(OutputCollector* collector) override {
    const std::vector<uint8_t> blob = state::ToBlob(Merged());
    collector->Emit(Tuple::Of(std::string(blob.begin(), blob.end())));
  }

  std::optional<std::vector<uint8_t>> StateBlob() const override {
    return state::ToBlob(Merged());
  }

  size_t num_groups() const { return groups_.size(); }

 private:
  struct Group {
    T sketch;
    DedupLedger ledger;
  };

  MakeFn make_;
  UpdateFn update_;
  size_t key_field_;
  std::optional<size_t> dedup_seq_field_;
  uint32_t task_index_ = 0;
  uint32_t num_tasks_ = 1;
  std::map<uint32_t, Group> groups_;  // Ordered: deterministic frame bytes.
};

/// Replayable integer-sequence source with full epoch-snapshot support —
/// the chaos suite's reference spout. Emits payloads 0..limit-1 (through
/// `make_tuple` when given, else as single-field int tuples); under
/// tracked delivery it keeps every payload owed until acked, re-queueing
/// failures, and only declares exhaustion once nothing is owed.
///
/// `halt_at` >= 0 simulates a mid-stream source crash: the spout stops
/// dead once the cursor reaches it, abandoning pending and in-flight
/// payloads exactly as a killed process would. A later run restoring its
/// epoch frame (cursor + owed payloads) re-emits precisely what the
/// snapshot still owed.
class ReplayableSequenceSpout : public Spout {
 public:
  using TupleFn = std::function<Tuple(int64_t)>;

  explicit ReplayableSequenceSpout(int64_t limit, TupleFn make_tuple = nullptr,
                                   int64_t halt_at = -1)
      : limit_(limit),
        make_tuple_(std::move(make_tuple)),
        halt_at_(halt_at) {}

  bool NextTuple(OutputCollector* collector) override {
    int64_t seq = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (halt_at_ >= 0 && cursor_ >= halt_at_) {
        return false;  // Simulated crash: abandon everything still owed.
      }
      if (!pending_.empty()) {
        seq = pending_.front();
        pending_.pop_front();
      } else if (cursor_ < limit_) {
        seq = cursor_++;
      } else if (inflight_.empty()) {
        return false;  // Every payload emitted and acked.
      }
    }
    if (seq < 0) {
      // Only in-flight payloads remain: idle-poll for acks/failures.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return true;
    }
    collector->Emit(make_tuple_ ? make_tuple_(seq) : Tuple::Of(seq));
    const uint64_t root = collector->LastRootId();
    if (root != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_[root] = seq;
    }
    return true;
  }

  void OnAck(uint64_t root_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_.erase(root_id) > 0) acked_++;
  }

  void OnFail(uint64_t root_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(root_id);
    if (it == inflight_.end()) return;
    pending_.push_back(it->second);
    inflight_.erase(it);
  }

  /// Frame = cursor + every payload still owed (pending ∪ in-flight),
  /// sorted for canonical bytes. Payloads acked before this instant are
  /// excluded — they are inside the downstream frames of this epoch.
  /// Runs on the spout thread while OnAck/OnFail run on the acker thread;
  /// mu_ makes the cut atomic.
  std::optional<std::vector<uint8_t>> SnapshotEpoch(uint64_t epoch) override {
    (void)epoch;
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<int64_t> owed(pending_.begin(), pending_.end());
    for (const auto& [root, seq] : inflight_) owed.push_back(seq);
    std::sort(owed.begin(), owed.end());
    ByteWriter w;
    w.PutVarint(static_cast<uint64_t>(cursor_));
    w.PutVarint(owed.size());
    for (int64_t seq : owed) w.PutI64(seq);
    return std::move(w).TakeBytes();
  }

  Status RestoreEpoch(uint64_t epoch,
                      const std::vector<uint8_t>& state) override {
    (void)epoch;
    std::lock_guard<std::mutex> lock(mu_);
    ByteReader r(state);
    uint64_t cursor = 0;
    uint64_t owed = 0;
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&cursor));
    STREAMLIB_RETURN_NOT_OK(r.GetVarint(&owed));
    std::deque<int64_t> pending;
    for (uint64_t i = 0; i < owed; i++) {
      int64_t seq = 0;
      STREAMLIB_RETURN_NOT_OK(r.GetI64(&seq));
      pending.push_back(seq);
    }
    pending_ = std::move(pending);
    inflight_.clear();
    cursor_ = static_cast<int64_t>(cursor);
    return Status::OK();
  }

  uint64_t acked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acked_;
  }
  size_t owed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size() + inflight_.size();
  }

 private:
  const int64_t limit_;
  TupleFn make_tuple_;
  const int64_t halt_at_;
  mutable std::mutex mu_;
  int64_t cursor_ = 0;
  std::deque<int64_t> pending_;                   // Failed: re-emit next.
  std::unordered_map<uint64_t, int64_t> inflight_;  // root id -> payload.
  uint64_t acked_ = 0;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_STREAM_OPERATORS_H_
