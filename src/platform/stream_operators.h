#ifndef STREAMLIB_PLATFORM_STREAM_OPERATORS_H_
#define STREAMLIB_PLATFORM_STREAM_OPERATORS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/state.h"
#include "platform/checkpoint.h"
#include "platform/topology.h"

namespace streamlib::platform {

/// Checkpointing knobs for SketchBolt. With a null store the bolt is
/// stateless-on-failure (pure recompute); with a store it snapshots its
/// sketch as a versioned SketchBlob every `every` tuples and on Finish,
/// and restores the latest blob in Prepare — the generic replacement for
/// hand-rolled per-bolt tuple snapshots.
struct SketchCheckpoint {
  KvCheckpointStore* store = nullptr;  ///< not owned; may be null
  std::string key_prefix;              ///< store key = prefix + ":" + task
  uint64_t every = 256;                ///< Put frequency in tuples
};

/// Generic sketch-maintaining bolt over any state::MergeableSketch: applies
/// a caller-supplied update per tuple, checkpoints through the SketchBlob
/// envelope, and on end-of-stream emits its sketch as a single blob tuple
/// (field 0: the blob bytes as a string) for a downstream combiner.
///
/// The key-sharded partial-aggregation pattern (the mergeable-summaries
/// deployment from Agarwal et al. applied to a Storm-style topology): run N
/// parallel SketchBolt tasks behind a fields grouping, then subscribe one
/// SketchCombinerBolt via a global grouping — each shard's final blob is
/// merged into one sketch whose estimates equal a single-instance run.
template <state::MergeableSketch T>
class SketchBolt : public Bolt {
 public:
  using UpdateFn = std::function<void(T&, const Tuple&)>;
  /// Batched update: applies a whole engine batch in one call (e.g. one
  /// UpdateBatch on a BatchUpdatable sketch). Must leave the sketch in the
  /// same state as applying the scalar UpdateFn per tuple in order.
  using BatchUpdateFn = std::function<void(T&, std::span<const Tuple* const>)>;

  SketchBolt(T initial, UpdateFn update, SketchCheckpoint checkpoint = {})
      : sketch_(std::move(initial)),
        update_(std::move(update)),
        checkpoint_(std::move(checkpoint)) {}

  /// With a batched kernel: the engine's fused path lands in one
  /// batch_update call per input batch; everything else (checkpointing,
  /// Finish, restore) is shared with the scalar form.
  SketchBolt(T initial, UpdateFn update, BatchUpdateFn batch_update,
             SketchCheckpoint checkpoint = {})
      : sketch_(std::move(initial)),
        update_(std::move(update)),
        batch_update_(std::move(batch_update)),
        checkpoint_(std::move(checkpoint)) {}

  void Prepare(uint32_t task_index, uint32_t num_tasks) override {
    (void)num_tasks;
    if (checkpoint_.store == nullptr) return;
    key_ = checkpoint_.key_prefix + ":" + std::to_string(task_index);
    Result<std::vector<uint8_t>> blob = checkpoint_.store->Fetch(key_);
    if (!blob.ok()) return;  // NotFound: first start, keep the initial sketch.
    Result<T> restored = state::FromBlob<T>(blob.value());
    STREAMLIB_CHECK_MSG(restored.ok(), "sketch restore failed: %s",
                        restored.status().ToString().c_str());
    sketch_ = std::move(restored).value();
  }

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    update_(sketch_, input);
    AfterUpdates(1);
  }

  /// Pure accumulator: never emits from execution, so the engine may fuse
  /// whole batches into one call.
  bool BatchCapable() const override { return true; }

  void ExecuteBatch(std::span<const Tuple* const> inputs,
                    OutputCollector* collector) override {
    (void)collector;
    if (batch_update_) {
      batch_update_(sketch_, inputs);
    } else {
      for (const Tuple* input : inputs) update_(sketch_, *input);
    }
    AfterUpdates(inputs.size());
  }

  void Finish(OutputCollector* collector) override {
    if (checkpoint_.store != nullptr) {
      checkpoint_.store->Put(key_, state::ToBlob(sketch_));
    }
    const std::vector<uint8_t> blob = state::ToBlob(sketch_);
    collector->Emit(Tuple::Of(std::string(blob.begin(), blob.end())));
  }

  /// Debugger state inspection: the live sketch as a SketchBlob.
  std::optional<std::vector<uint8_t>> StateBlob() const override {
    return state::ToBlob(sketch_);
  }

  const T& sketch() const { return sketch_; }

 private:
  /// Checkpoint cadence, counted in tuples but evaluated only at update
  /// boundaries: a batch is applied in full before the threshold check, so
  /// every snapshot the store sees is a between-batches consistent sketch —
  /// never one with half a batch applied.
  void AfterUpdates(uint64_t n) {
    if (checkpoint_.store == nullptr) return;
    since_checkpoint_ += n;
    if (since_checkpoint_ >= checkpoint_.every) {
      checkpoint_.store->Put(key_, state::ToBlob(sketch_));
      since_checkpoint_ = 0;
    }
  }

  T sketch_;
  UpdateFn update_;
  BatchUpdateFn batch_update_;
  SketchCheckpoint checkpoint_;
  std::string key_;
  uint64_t since_checkpoint_ = 0;
};

/// Builds a SketchBolt BatchUpdateFn for a BatchUpdatable sketch keyed by
/// one tuple field: hashes the field per tuple with the sketch's own seed
/// (so digests match the scalar `sketch.Add(field)` path bit for bit) and
/// feeds chunks into one AddHashBatch call. String and int64 fields are
/// supported — the two key shapes the workload generators emit.
template <typename T>
  requires state::BatchUpdatable<T>
std::function<void(T&, std::span<const Tuple* const>)> FieldKeyBatchUpdate(
    size_t field_index) {
  return [field_index](T& sketch, std::span<const Tuple* const> inputs) {
    constexpr size_t kChunk = 64;
    uint64_t digests[kChunk];
    size_t n = 0;
    for (const Tuple* input : inputs) {
      const Value& v = input->field(field_index);
      if (const std::string* s = std::get_if<std::string>(&v)) {
        digests[n++] = Murmur3_64(s->data(), s->size(), T::kHashSeed);
      } else if (const int64_t* i = std::get_if<int64_t>(&v)) {
        digests[n++] = HashInt64(static_cast<uint64_t>(*i), T::kHashSeed);
      } else {
        STREAMLIB_CHECK_MSG(false,
                            "FieldKeyBatchUpdate: field %zu is neither "
                            "string nor int64",
                            field_index);
      }
      if (n == kChunk) {
        sketch.AddHashBatch(std::span<const uint64_t>(digests, n));
        n = 0;
      }
    }
    if (n > 0) sketch.AddHashBatch(std::span<const uint64_t>(digests, n));
  };
}

/// Merge side of the sharded pattern: consumes the blob tuples emitted by
/// upstream SketchBolt tasks (subscribe with a global grouping so every
/// shard lands on one task), folds each into its sketch via the envelope,
/// and on end-of-stream either invokes `on_result` or re-emits the merged
/// blob for further combining (multi-level merge trees).
template <state::MergeableSketch T>
class SketchCombinerBolt : public Bolt {
 public:
  using ResultFn = std::function<void(const T&, OutputCollector*)>;

  explicit SketchCombinerBolt(T initial, ResultFn on_result = nullptr)
      : merged_(std::move(initial)), on_result_(std::move(on_result)) {}

  /// Pure accumulator (emits only from Finish): eligible for the engine's
  /// fused batch path via the default per-tuple ExecuteBatch loop.
  bool BatchCapable() const override { return true; }

  void Execute(const Tuple& input, OutputCollector* collector) override {
    (void)collector;
    const std::string& bytes = input.Str(0);
    const std::vector<uint8_t> blob(bytes.begin(), bytes.end());
    const Status status = state::MergeBlob(merged_, blob);
    STREAMLIB_CHECK_MSG(status.ok(), "shard blob merge failed: %s",
                        status.ToString().c_str());
    shards_merged_++;
  }

  void Finish(OutputCollector* collector) override {
    if (on_result_) {
      on_result_(merged_, collector);
      return;
    }
    const std::vector<uint8_t> blob = state::ToBlob(merged_);
    collector->Emit(Tuple::Of(std::string(blob.begin(), blob.end())));
  }

  /// Debugger state inspection: the merged sketch as a SketchBlob.
  std::optional<std::vector<uint8_t>> StateBlob() const override {
    return state::ToBlob(merged_);
  }

  const T& merged() const { return merged_; }
  uint64_t shards_merged() const { return shards_merged_; }

 private:
  T merged_;
  ResultFn on_result_;
  uint64_t shards_merged_ = 0;
};

/// Tumbling aggregation operator — the paper's "time windows, aggregation"
/// streaming operators. Tuples are (key: string, value: double); every
/// `window_size` inputs the bolt emits (key, sum, count) for each key seen
/// in the window and resets. Deploy behind a fields grouping so each key's
/// aggregates are complete.
class TumblingAggregateBolt : public Bolt {
 public:
  explicit TumblingAggregateBolt(uint64_t window_size)
      : window_size_(window_size) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    auto& slot = aggregates_[input.Str(0)];
    slot.first += input.Double(1);
    slot.second++;
    if (++in_window_ >= window_size_) Flush(collector);
  }

  void Finish(OutputCollector* collector) override { Flush(collector); }

 private:
  void Flush(OutputCollector* collector) {
    for (const auto& [key, agg] : aggregates_) {
      collector->Emit(Tuple::Of(key, agg.first,
                                static_cast<int64_t>(agg.second)));
    }
    aggregates_.clear();
    in_window_ = 0;
  }

  uint64_t window_size_;
  uint64_t in_window_ = 0;
  std::unordered_map<std::string, std::pair<double, uint64_t>> aggregates_;
};

/// Windowed stream-stream equi-join — the Photon problem (cited as [40]:
/// "fault-tolerant and scalable joining of continuous data streams").
/// Two logical streams arrive tagged by their side in field 0 ("L"/"R"),
/// keyed by field 1, with one payload field 2; each side retains its last
/// `window_per_side` tuples (per task), and every arrival probes the
/// opposite window, emitting (key, left payload, right payload) for each
/// match — so out-of-order pairs within the window join exactly once per
/// pairing. Deploy behind Fields(1) grouping so both sides of a key meet
/// in the same task.
class WindowJoinBolt : public Bolt {
 public:
  /// \param window_per_side  tuples retained per side per task.
  explicit WindowJoinBolt(size_t window_per_side)
      : window_(window_per_side) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    const std::string& side = input.Str(0);
    const std::string& key = input.Str(1);
    const bool is_left = side == "L";
    Side& mine = is_left ? left_ : right_;
    Side& other = is_left ? right_ : left_;

    // Probe the opposite window.
    auto it = other.by_key.find(key);
    if (it != other.by_key.end()) {
      for (const Tuple& match : it->second) {
        if (is_left) {
          collector->Emit(Tuple::Of(key, input.field(2), match.field(2)));
        } else {
          collector->Emit(Tuple::Of(key, match.field(2), input.field(2)));
        }
        emitted_joins_++;
      }
    }

    // Insert into my window; evict my oldest beyond the bound.
    mine.by_key[key].push_back(input);
    mine.order.push_back(key);
    if (mine.order.size() > window_) {
      const std::string& oldest_key = mine.order.front();
      auto victim = mine.by_key.find(oldest_key);
      if (victim != mine.by_key.end()) {
        victim->second.pop_front();
        if (victim->second.empty()) mine.by_key.erase(victim);
      }
      mine.order.pop_front();
    }
  }

  uint64_t emitted_joins() const { return emitted_joins_; }

 private:
  struct Side {
    std::unordered_map<std::string, std::deque<Tuple>> by_key;
    std::deque<std::string> order;  // Arrival order for eviction.
  };

  size_t window_;
  Side left_;
  Side right_;
  uint64_t emitted_joins_ = 0;
};

/// Predicate filter operator (the paper's "filtering" operator): passes
/// tuples satisfying a caller-supplied predicate.
class FilterBolt : public Bolt {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  explicit FilterBolt(Predicate predicate)
      : predicate_(std::move(predicate)) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    if (predicate_(input)) collector->Emit(input);
  }

 private:
  Predicate predicate_;
};

/// Enrichment operator (the paper's "enrichment" operator): appends a
/// value looked up from a reference table by the key in field `key_index`;
/// misses pass through with a default.
class EnrichBolt : public Bolt {
 public:
  EnrichBolt(std::unordered_map<std::string, Value> reference,
             size_t key_index, Value default_value)
      : reference_(std::move(reference)),
        key_index_(key_index),
        default_(std::move(default_value)) {}

  void Execute(const Tuple& input, OutputCollector* collector) override {
    std::vector<Value> values = input.values();
    auto it = reference_.find(input.Str(key_index_));
    values.push_back(it == reference_.end() ? default_ : it->second);
    collector->Emit(Tuple(std::move(values)));
  }

 private:
  std::unordered_map<std::string, Value> reference_;
  size_t key_index_;
  Value default_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_STREAM_OPERATORS_H_
