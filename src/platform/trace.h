#ifndef STREAMLIB_PLATFORM_TRACE_H_
#define STREAMLIB_PLATFORM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/quantiles/tdigest.h"

namespace streamlib::platform {

/// One hop of a sampled tuple tree through the topology — the in-process
/// analogue of a distributed-trace span. Roots are recorded by the spout at
/// emit time (wait == execute == 0); every downstream hop records how long
/// the tuple waited in the input channel (enqueue -> dequeue) and how long
/// its Execute ran.
struct TraceEvent {
  uint64_t trace_id = 0;     ///< Root span id; shared by the whole tree.
  uint64_t span_id = 0;      ///< Unique per hop.
  uint64_t parent_span = 0;  ///< 0 for the root.
  uint32_t task = 0;         ///< Engine global task index.
  uint64_t start_nanos = 0;  ///< Emit time (root) / execute start (hop).
  uint64_t wait_nanos = 0;   ///< Enqueue -> dequeue queueing delay.
  uint64_t execute_nanos = 0;  ///< Bolt Execute duration.
};

/// Fixed-capacity per-task event buffer with exactly one writer (the thread
/// running the task), so Record is a plain array store — no synchronization
/// on the traced path. On overflow the oldest events are overwritten and
/// counted; the drain marks trees missing a dropped parent as incomplete.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : events_(capacity) {}

  /// Single-writer append (the task's executor thread).
  void Record(const TraceEvent& event) {
    events_[next_ % events_.size()] = event;
    next_++;
  }

  /// Events still buffered, oldest first. Only call after the writer
  /// thread has stopped (the engine drains post-join).
  std::vector<TraceEvent> Drain() const;

  /// Events overwritten because the ring wrapped.
  uint64_t dropped() const {
    return next_ > events_.size() ? next_ - events_.size() : 0;
  }

 private:
  std::vector<TraceEvent> events_;
  uint64_t next_ = 0;  // Free-running write index.
};

/// One reassembled tuple tree: spans in a parent-before-child order with
/// child links, plus derived whole-tree timings.
struct TraceTree {
  struct Span {
    TraceEvent event;
    std::string component;         ///< Component of event.task.
    std::vector<size_t> children;  ///< Indices into spans.
  };

  uint64_t trace_id = 0;
  std::vector<Span> spans;  ///< spans[0] is the root when complete.
  /// Max over spans of (start + execute) - root start.
  uint64_t end_to_end_nanos = 0;
  /// True when the root and every referenced parent were recovered (ring
  /// overflow can drop interior hops).
  bool complete = false;
};

/// Post-run store of sampled trace trees plus per-component hop timing
/// summaries. Built once by the engine after all executor threads join.
class TraceStore {
 public:
  /// Per-component percentile summary over all non-root hops.
  struct HopStats {
    std::string component;
    uint64_t hops = 0;
    double wait_p50_us = 0;
    double wait_p99_us = 0;
    double execute_p50_us = 0;
    double execute_p99_us = 0;
  };

  /// Groups `events` by trace id and builds span trees. `task_components`
  /// maps engine task index -> component name (registry order).
  void Build(std::vector<TraceEvent> events,
             const std::vector<std::string>& task_components,
             uint64_t dropped_events);

  const std::vector<TraceTree>& trees() const { return trees_; }
  uint64_t dropped_events() const { return dropped_events_; }
  size_t complete_tree_count() const { return complete_trees_; }

  /// p50/p99 queueing wait and execute time per component, over every
  /// non-root hop in every tree (complete or not — hop timings are valid
  /// even when an ancestor was dropped).
  std::vector<HopStats> ComponentHopStats() const;

 private:
  std::vector<TraceTree> trees_;
  uint64_t dropped_events_ = 0;
  size_t complete_trees_ = 0;
  std::vector<std::string> task_components_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_TRACE_H_
