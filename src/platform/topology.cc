#include "platform/topology.h"

#include <map>
#include <set>

#include "common/check.h"

namespace streamlib::platform {

const char* GroupingKindName(GroupingKind kind) {
  switch (kind) {
    case GroupingKind::kShuffle: return "shuffle";
    case GroupingKind::kFields: return "fields";
    case GroupingKind::kGlobal: return "global";
    case GroupingKind::kBroadcast: return "broadcast";
  }
  return "unknown";
}

size_t Topology::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < components_.size(); i++) {
    if (components_[i].name == name) return i;
  }
  STREAMLIB_CHECK_MSG(false, "unknown component '%s'", name.c_str());
  return 0;
}

TopologyBuilder& TopologyBuilder::AddSpout(const std::string& name,
                                           SpoutFactory factory,
                                           uint32_t parallelism) {
  ComponentSpec spec;
  spec.name = name;
  spec.is_spout = true;
  spec.parallelism = parallelism;
  spec.spout_factory = std::move(factory);
  components_.push_back(std::move(spec));
  return *this;
}

TopologyBuilder& TopologyBuilder::AddBolt(const std::string& name,
                                          BoltFactory factory,
                                          uint32_t parallelism,
                                          std::vector<Subscription> inputs) {
  ComponentSpec spec;
  spec.name = name;
  spec.is_spout = false;
  spec.parallelism = parallelism;
  spec.bolt_factory = std::move(factory);
  spec.inputs = std::move(inputs);
  components_.push_back(std::move(spec));
  return *this;
}

Result<Topology> TopologyBuilder::Build() {
  // Validate names and references.
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < components_.size(); i++) {
    const ComponentSpec& c = components_[i];
    if (c.name.empty()) return Status::InvalidArgument("empty component name");
    if (c.parallelism == 0) {
      return Status::InvalidArgument("component '" + c.name +
                                     "' has parallelism 0");
    }
    if (!index.emplace(c.name, i).second) {
      return Status::InvalidArgument("duplicate component '" + c.name + "'");
    }
    if (c.is_spout && !c.inputs.empty()) {
      return Status::InvalidArgument("spout '" + c.name + "' has inputs");
    }
    if (!c.is_spout && c.inputs.empty()) {
      return Status::InvalidArgument("bolt '" + c.name + "' has no inputs");
    }
  }
  for (const ComponentSpec& c : components_) {
    for (const Subscription& sub : c.inputs) {
      if (index.find(sub.source) == index.end()) {
        return Status::InvalidArgument("bolt '" + c.name +
                                       "' subscribes to unknown '" +
                                       sub.source + "'");
      }
    }
  }

  // Kahn topological sort (also rejects cycles).
  std::vector<size_t> in_degree(components_.size(), 0);
  for (const ComponentSpec& c : components_) {
    (void)c;
  }
  for (size_t i = 0; i < components_.size(); i++) {
    in_degree[i] = components_[i].inputs.size();
  }
  std::vector<size_t> order;
  std::set<size_t> ready;
  for (size_t i = 0; i < components_.size(); i++) {
    if (in_degree[i] == 0) ready.insert(i);
  }
  while (!ready.empty()) {
    const size_t i = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(i);
    for (size_t j = 0; j < components_.size(); j++) {
      for (const Subscription& sub : components_[j].inputs) {
        if (index[sub.source] == i) {
          if (--in_degree[j] == 0) ready.insert(j);
        }
      }
    }
  }
  if (order.size() != components_.size()) {
    return Status::InvalidArgument("topology contains a cycle");
  }

  Topology topology;
  topology.components_.reserve(components_.size());
  for (size_t i : order) topology.components_.push_back(components_[i]);
  return topology;
}

}  // namespace streamlib::platform
