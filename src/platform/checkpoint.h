#ifndef STREAMLIB_PLATFORM_CHECKPOINT_H_
#define STREAMLIB_PLATFORM_CHECKPOINT_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace streamlib::platform {

/// Versioned key-value checkpoint store — the in-process stand-in for the
/// BigTable MillWheel checkpoints against (DESIGN.md §2). Writes are
/// versioned per key; a bolt restores the latest state after a (simulated)
/// crash. Thread-safe.
class KvCheckpointStore {
 public:
  KvCheckpointStore() = default;

  /// Stores a new version of `key`'s state; returns the version number.
  uint64_t Put(const std::string& key, std::vector<uint8_t> state) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[key];
    entry.version++;
    entry.state = std::move(state);
    return entry.version;
  }

  /// Latest state for `key` (nullopt if never checkpointed).
  std::optional<std::vector<uint8_t>> Get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second.state;
  }

  /// Status-typed restore lookup: NotFound (with the key in the message)
  /// when `key` was never checkpointed. Restore paths use this instead of
  /// Get so a component renamed between save and restore produces a clean
  /// diagnosable error rather than silently starting empty.
  Result<std::vector<uint8_t>> Fetch(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return Status::NotFound("no checkpoint for key '" + key + "'");
    }
    return it->second.state;
  }

  /// Latest version for `key` (0 if never checkpointed).
  uint64_t VersionOf(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.version;
  }

  size_t NumKeys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Removes `key` (all versions); returns whether it existed. Rescaling
  /// uses this to retire epoch frames of task indices that no longer exist.
  bool Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.erase(key) > 0;
  }

  /// Total Put() calls absorbed across all keys (the sum of per-key
  /// versions). The replay debugger's "on checkpoint K" breakpoint keys on
  /// this monotonic count.
  uint64_t TotalPuts() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& [key, entry] : entries_) total += entry.version;
    return total;
  }

  /// Durability across "process" restarts: writes every entry (key,
  /// version, state) to `path` atomically (temp file + rename), so a crash
  /// mid-save can never leave a half-written file under the real name. An
  /// empty store saves a valid file that restores to an empty store.
  Status SaveToFile(const std::string& path) const;

  /// Replaces this store's contents with the entries in `path`. Rejects
  /// torn/truncated/garbage files with Corruption (the store is left
  /// untouched on any error) and a missing file with NotFound.
  Status LoadFromFile(const std::string& path);

 private:
  struct Entry {
    uint64_t version = 0;
    std::vector<uint8_t> state;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

/// MillWheel-style duplicate suppression: the paper credits MillWheel with
/// "exactly once semantics by checkpointing state every time" — concretely,
/// each (producer, sequence) id is recorded alongside the state mutation so
/// a redelivered record (the at-least-once engine *will* redeliver after
/// failures) is recognized and dropped. Bounded memory via a per-producer
/// low-watermark: ids below it are trivially duplicates.
///
/// Not internally synchronized: a ledger belongs to one bolt task, whose
/// Execute calls the engine already serializes.
class DedupLedger {
 public:
  DedupLedger() = default;

  /// Records `sequence` for `producer`; returns false if it was already
  /// processed (a duplicate the caller must drop).
  bool CheckAndRecord(uint64_t producer, uint64_t sequence) {
    State& state = producers_[producer];
    if (sequence < state.watermark) return false;
    if (!state.seen.insert(sequence).second) return false;
    // Advance the watermark over the contiguous prefix and forget it.
    while (state.seen.count(state.watermark) != 0) {
      state.seen.erase(state.watermark);
      state.watermark++;
    }
    return true;
  }

  /// Ids retained above all watermarks (memory diagnostic).
  size_t RetainedIds() const {
    size_t total = 0;
    for (const auto& [producer, state] : producers_) {
      total += state.seen.size();
    }
    return total;
  }

  /// Serialization for inclusion in checkpoints.
  std::vector<uint8_t> Serialize() const;
  static Result<DedupLedger> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  struct State {
    uint64_t watermark = 0;
    std::unordered_set<uint64_t> seen;  // Ids >= watermark, non-contiguous.
  };

  std::unordered_map<uint64_t, State> producers_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_CHECKPOINT_H_
