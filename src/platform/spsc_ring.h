#ifndef STREAMLIB_PLATFORM_SPSC_RING_H_
#define STREAMLIB_PLATFORM_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace streamlib::platform {

namespace internal {
/// Polite busy-wait hint (PAUSE/YIELD) for short spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}
}  // namespace internal

/// Bounded single-producer single-consumer ring buffer.
///
/// The fast path is wait-free: the producer and consumer each own one
/// cache-line-padded free-running index and only read the other side's
/// index when their cached copy says the ring looks full/empty. A batch
/// push or pop therefore costs one atomic store (plus an occasional
/// refresh load) for the whole batch — no mutex, no condvar signalling.
///
/// Blocking is the slow path: when the ring is genuinely full (producer)
/// or empty (consumer), the waiting side parks on a condition variable.
/// The opposite side wakes it only when the matching `*_waiting_` flag is
/// set, so steady-state flow never touches the mutex. Waits are timed
/// (bounded at 1 ms) as a belt-and-suspenders guard against missed
/// wakeups, on top of the seq_cst flag/index handshake.
///
/// Both sides spin briefly (bounded, with a CPU relax hint) before
/// parking, so a streaming producer/consumer pair that stays roughly
/// matched in rate never pays a futex round-trip at all.
///
/// Close semantics mirror BlockingQueue: after Close() pushes fail,
/// pending items drain, and pops return empty once drained.
///
/// The engine uses this ring automatically for bolt input queues that have
/// exactly one producer task (the common spout→bolt pipeline edge) in
/// dedicated-executor mode, where both endpoints are single threads.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    capacity_ = 2;
    while (capacity_ < capacity) capacity_ <<= 1;
    mask_ = capacity_ - 1;
    slots_ = std::make_unique<T[]>(capacity_);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Blocking single push. Returns false if the ring was closed.
  bool Push(T&& item) { return PushAll(std::span<T>(&item, 1)) == 1; }

  /// Blocking batch push: moves every element of `items` into the ring,
  /// waiting for space as needed (order preserved). Returns the number
  /// enqueued — items.size() unless the ring was closed mid-push.
  size_t PushAll(std::span<T> items) {
    size_t pushed = 0;
    while (pushed < items.size()) {
      if (closed_.load(std::memory_order_relaxed)) break;
      const size_t n = TryPushAll(items.subspan(pushed));
      pushed += n;
      if (pushed < items.size() && n == 0 && !SpinUntilNotFull() &&
          !WaitNotFull()) {
        break;
      }
    }
    return pushed;
  }

  /// Non-blocking batch push: moves a prefix of `items` into free slots and
  /// returns its length; the suffix is untouched.
  size_t TryPushAll(std::span<T> items) {
    if (closed_.load(std::memory_order_relaxed)) return 0;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t free = capacity_ - (tail - cached_head_);
    if (free == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - cached_head_);
      if (free == 0) return 0;
    }
    const size_t n = free < items.size() ? free : items.size();
    for (size_t i = 0; i < n; i++) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    tail_.store(tail + n, std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(mu_);
      not_empty_.notify_one();
    }
    return n;
  }

  /// Blocking single pop: nullopt when closed and drained.
  std::optional<T> Pop() {
    std::optional<T> item;
    std::vector<T> out;
    if (PopBatch(out, 1) == 1) item = std::move(out.front());
    return item;
  }

  /// Timed pop: nullopt on timeout or when closed and drained.
  std::optional<T> PopWithTimeout(std::chrono::nanoseconds timeout) {
    std::vector<T> out;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      if (TryPopBatch(out, 1) == 1) return std::move(out.front());
      if (closed_.load(std::memory_order_seq_cst)) {
        // Closed: only remaining items count. The fence guarantees this
        // recheck observes any push that preceded the close.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        cached_tail_ = tail_.load(std::memory_order_acquire);
        if (TryPopBatch(out, 1) == 1) return std::move(out.front());
        return std::nullopt;
      }
      if (!SpinUntilNotEmpty() && !WaitNotEmptyUntil(deadline)) {
        return std::nullopt;
      }
    }
  }

  /// Blocking batch pop: waits until at least one item is available, then
  /// drains up to `max` items into `out`. Returns the number appended;
  /// 0 means closed and drained.
  size_t PopBatch(std::vector<T>& out, size_t max) {
    while (true) {
      const size_t n = TryPopBatch(out, max);
      if (n > 0) return n;
      if (closed_.load(std::memory_order_seq_cst)) {
        // Recheck: items may have landed just before the close. The fence
        // guarantees the refreshed tail observes any such push.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        cached_tail_ = tail_.load(std::memory_order_acquire);
        return TryPopBatch(out, max);
      }
      if (!SpinUntilNotEmpty()) {
        WaitNotEmptyUntil(std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(1));
      }
    }
  }

  /// Timed batch pop: like PopBatch but gives up after `timeout` if nothing
  /// arrives (returning 0 without closing). Lets a consumer with periodic
  /// side-work — the engine's barrier-alignment timeout check — block
  /// instead of spin-polling. Mirrors BlockingQueue::PopBatchWithTimeout.
  size_t PopBatchWithTimeout(std::vector<T>& out, size_t max,
                             std::chrono::nanoseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      const size_t n = TryPopBatch(out, max);
      if (n > 0) return n;
      if (closed_.load(std::memory_order_seq_cst)) {
        // Closed: only remaining items count (see PopBatch).
        std::atomic_thread_fence(std::memory_order_seq_cst);
        cached_tail_ = tail_.load(std::memory_order_acquire);
        return TryPopBatch(out, max);
      }
      if (!SpinUntilNotEmpty() && !WaitNotEmptyUntil(deadline)) return 0;
      if (std::chrono::steady_clock::now() >= deadline) {
        return TryPopBatch(out, max);
      }
    }
  }

  /// Non-blocking batch pop.
  size_t TryPopBatch(std::vector<T>& out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const size_t n = avail < max ? avail : max;
    for (size_t i = 0; i < n; i++) {
      out.push_back(std::move(slots_[(head + i) & mask_]));
    }
    head_.store(head + n, std::memory_order_seq_cst);
    if (producer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(mu_);
      not_full_.notify_one();
    }
    if (pop_interceptor_) pop_interceptor_(n);
    return n;
  }

  /// Closes the ring: pending items drain; pushes fail; pops return empty
  /// once drained.
  void Close() {
    closed_.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(mu_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool Closed() const { return closed_.load(std::memory_order_seq_cst); }

  size_t Size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  /// Instantaneous depth estimate for samplers and monitors: relaxed index
  /// reads, so a third-party observer pays no ordering cost and never
  /// perturbs the producer/consumer fast path.
  size_t ApproxSize() const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    // Relaxed reads can observe head ahead of tail; clamp to 0.
    return tail > head ? static_cast<size_t>(tail - head) : 0;
  }

  size_t capacity() const { return capacity_; }

  /// Fault-injection hook: invoked with the drained count after every
  /// successful pop, on the consumer thread (never during the empty spin).
  /// Must be installed before the consumer starts; when unset the fast
  /// path pays one predictable branch. See BlockingQueue::SetPopInterceptor.
  void SetPopInterceptor(std::function<void(size_t)> interceptor) {
    pop_interceptor_ = std::move(interceptor);
  }

 private:
  /// Spin budget before parking on the condvar (a few microseconds —
  /// enough to ride out the partner's current batch without a syscall).
  static constexpr int kSpinIterations = 4096;

  /// Bounded spin until the ring has data (or closes). Returns false if
  /// still empty after the spin budget — time to park.
  bool SpinUntilNotEmpty() const {
    for (int i = 0; i < kSpinIterations; i++) {
      if (tail_.load(std::memory_order_acquire) !=
              head_.load(std::memory_order_relaxed) ||
          closed_.load(std::memory_order_relaxed)) {
        return true;
      }
      internal::CpuRelax();
    }
    return false;
  }

  /// Bounded spin until the ring has space (or closes). Returns false if
  /// still full after the spin budget.
  bool SpinUntilNotFull() const {
    for (int i = 0; i < kSpinIterations; i++) {
      if (tail_.load(std::memory_order_relaxed) -
                  head_.load(std::memory_order_acquire) <
              capacity_ ||
          closed_.load(std::memory_order_relaxed)) {
        return true;
      }
      internal::CpuRelax();
    }
    return false;
  }

  bool Full() const {
    return tail_.load(std::memory_order_seq_cst) -
               head_.load(std::memory_order_seq_cst) ==
           capacity_;
  }
  bool Empty() const {
    return tail_.load(std::memory_order_seq_cst) ==
           head_.load(std::memory_order_seq_cst);
  }

  /// Parks the producer until space frees up or the ring closes. Returns
  /// false when closed.
  bool WaitNotFull() {
    std::unique_lock<std::mutex> lock(mu_);
    producer_waiting_.store(true, std::memory_order_seq_cst);
    while (Full() && !closed_.load(std::memory_order_seq_cst)) {
      not_full_.wait_for(lock, std::chrono::milliseconds(1));
    }
    producer_waiting_.store(false, std::memory_order_relaxed);
    return !closed_.load(std::memory_order_seq_cst);
  }

  /// Parks the consumer until data arrives, the ring closes, or `deadline`
  /// passes. Returns false only on deadline expiry.
  bool WaitNotEmptyUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    bool timed_out = false;
    while (Empty() && !closed_.load(std::memory_order_seq_cst)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        timed_out = true;
        break;
      }
      const auto slice = std::min<std::chrono::nanoseconds>(
          deadline - now, std::chrono::milliseconds(1));
      not_empty_.wait_for(lock, slice);
    }
    consumer_waiting_.store(false, std::memory_order_relaxed);
    return !timed_out;
  }

  // Consumer-owned index (next slot to read) on its own cache line.
  alignas(64) std::atomic<uint64_t> head_{0};
  // Producer-owned index (next slot to write) on its own cache line.
  alignas(64) std::atomic<uint64_t> tail_{0};
  // Producer-local cache of head_ (refreshed only when the ring looks full).
  alignas(64) uint64_t cached_head_ = 0;
  // Consumer-local cache of tail_ (refreshed only when the ring looks empty).
  alignas(64) uint64_t cached_tail_ = 0;

  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};

  std::unique_ptr<T[]> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::function<void(size_t)> pop_interceptor_;

  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

}  // namespace streamlib::platform

#endif  // STREAMLIB_PLATFORM_SPSC_RING_H_
