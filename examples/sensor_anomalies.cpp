// Sensor-stream anomaly detection and missing-value imputation — the
// Table 1 rows "Anomaly Detection" (sensor networks) and "Data Prediction"
// (sensor data analysis) on one synthetic telemetry feed.
//
// A seasonal, drifting signal with injected spikes and dropped readings is
// streamed through four detectors (EWMA, CUSUM, robust-MAD, Half-Space
// Trees) and a velocity Kalman filter that imputes the missing readings.
// Precision/recall per detector and imputation RMSE are printed.
//
//   ./sensor_anomalies

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/anomaly/adwin.h"
#include "core/anomaly/ewma_detector.h"
#include "core/anomaly/half_space_trees.h"
#include "core/anomaly/robust_detector.h"
#include "core/prediction/kalman_filter.h"
#include "workload/timeseries.h"

int main() {
  using namespace streamlib;

  constexpr int kSteps = 100000;

  workload::TimeSeriesConfig config;
  config.base_level = 500.0;
  config.trend_per_step = 0.002;
  config.season_amplitude = 0.0;  // Detectors here are level-based.
  config.noise_sigma = 3.0;
  config.spike_probability = 0.001;
  config.spike_magnitude = 10.0;
  config.missing_probability = 0.02;
  workload::TimeSeriesGenerator generator(config, 99);

  struct Entry {
    std::unique_ptr<AnomalyDetector> detector;
    int true_positives = 0;
    int false_positives = 0;
    int false_negatives = 0;
  };
  std::vector<Entry> detectors;
  detectors.push_back({std::make_unique<EwmaDetector>(0.05, 5.0), 0, 0, 0});
  detectors.push_back({std::make_unique<CusumDetector>(0.5, 10.0), 0, 0, 0});
  detectors.push_back(
      {std::make_unique<RobustMadDetector>(128, 6.0), 0, 0, 0});
  detectors.push_back(
      {std::make_unique<HstDetector>(25, 8, 250, 4, 0.6, 17), 0, 0, 0});

  VelocityKalmanFilter imputer(0.0001, config.noise_sigma * config.noise_sigma);
  // Guard detector for the imputer: spikes must not poison the Kalman
  // baseline, so flagged readings are withheld from it (composition of the
  // anomaly-detection and data-prediction rows in one pipeline).
  RobustMadDetector imputer_guard(128, 6.0);
  double imputation_sq_error = 0.0;
  int imputed = 0;

  std::printf("streaming %d sensor readings (0.1%% spikes, 2%% dropped)...\n",
              kSteps);

  for (int t = 0; t < kSteps; t++) {
    const auto point = generator.Next();
    const bool is_anomaly =
        point.label != workload::AnomalyKind::kNone;

    if (generator.last_missing()) {
      // Reading lost in transit: impute it, score against the truth.
      const double predicted = imputer.PredictMissing();
      imputation_sq_error += (predicted - point.value) * (predicted - point.value);
      imputed++;
      continue;  // Detectors see no reading this tick.
    }
    if (!imputer_guard.AddAndDetect(point.value)) {
      imputer.Update(point.value);
    }

    for (Entry& e : detectors) {
      const bool flagged = e.detector->AddAndDetect(point.value);
      if (t < 2000) continue;  // Warm-up grace for every detector.
      if (flagged && is_anomaly) e.true_positives++;
      if (flagged && !is_anomaly) e.false_positives++;
      if (!flagged && is_anomaly) e.false_negatives++;
    }
  }

  std::printf("\n== detector scoreboard ==\n");
  std::printf("  %-18s %10s %10s %10s %10s\n", "detector", "tp", "fp", "fn",
              "precision");
  for (const Entry& e : detectors) {
    const double precision =
        e.true_positives + e.false_positives > 0
            ? static_cast<double>(e.true_positives) /
                  (e.true_positives + e.false_positives)
            : 1.0;
    std::printf("  %-18s %10d %10d %10d %9.2f%%\n", e.detector->Name(),
                e.true_positives, e.false_positives, e.false_negatives,
                100.0 * precision);
  }

  std::printf("\n== missing-value imputation (velocity Kalman) ==\n");
  std::printf("  imputed %d readings, RMSE %.2f (sensor noise sigma %.1f)\n",
              imputed, std::sqrt(imputation_sq_error / imputed),
              config.noise_sigma);
  std::printf("  learned trend %.4f per step (true %.4f)\n", imputer.trend(),
              config.trend_per_step);
  return 0;
}
