// Online fraud scoring — the paper's fraud-detection application (Table 1
// "Correlation -> Fraud detection", §3 "online fraud detection" as the
// batch+stream integration case) built from streamlib's incremental-ML and
// sketch layers:
//   * per-merchant transaction velocity from a DecayedCounter feeds the
//     feature vector (a classic fraud signal),
//   * an online logistic model scores transactions test-then-train,
//   * ADWIN watches the error stream for concept drift (fraud patterns
//     change!) and reports when the model had to relearn.
//
//   ./fraud_scoring

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/anomaly/adwin.h"
#include "core/frequency/decayed_counter.h"
#include "core/ml/online_classifiers.h"
#include "workload/zipf.h"

int main() {
  using namespace streamlib;

  constexpr int kTransactions = 200000;
  constexpr int kDriftAt = 120000;

  Rng rng(404);
  workload::ZipfGenerator merchants(5000, 1.1, 405);
  DecayedCounter<uint64_t> merchant_velocity(/*half_life=*/500.0);
  OnlineLogisticRegression model(/*dimensions=*/4, /*learning_rate=*/0.05);
  PrequentialEvaluator eval(2000);
  AdwinDetector drift_alarm(0.002);

  int frauds = 0;
  int caught = 0;
  int false_alarms = 0;
  int drift_detected_at = -1;

  std::printf("scoring %d transactions (fraud pattern shifts at %d)...\n",
              kTransactions, kDriftAt);

  for (int i = 0; i < kTransactions; i++) {
    const uint64_t merchant = merchants.Next();
    const double amount = std::exp(3.0 + 1.2 * rng.NextGaussian());
    const double hour = static_cast<double>(i % 24);
    merchant_velocity.Add(merchant, static_cast<double>(i));
    const double velocity =
        merchant_velocity.Estimate(merchant, static_cast<double>(i));

    // Ground truth: fraud concentrates on high amounts at night through
    // low-velocity merchants; after the drift, daytime card-testing bursts
    // at high-velocity merchants dominate instead.
    double fraud_score;
    if (i < kDriftAt) {
      fraud_score = 0.8 * std::log(amount / 40.0) +
                    (hour < 6 ? 1.2 : -0.8) - 0.1 * velocity;
    } else {
      fraud_score = 0.15 * velocity + (hour >= 9 && hour <= 17 ? 1.0 : -1.0) -
                    0.3 * std::log(amount / 40.0);
    }
    const bool is_fraud = fraud_score + 0.7 * rng.NextGaussian() > 1.8;

    const std::vector<double> features = {std::log(amount), hour / 24.0,
                                          velocity,
                                          hour < 6 ? 1.0 : 0.0};
    const bool flagged = model.Predict(features);
    eval.Record(flagged, is_fraud);
    model.Update(features, is_fraud);

    if (drift_alarm.AddAndDetect(flagged == is_fraud ? 0.0 : 1.0) &&
        i >= kDriftAt && drift_detected_at < 0) {
      drift_detected_at = i;
    }

    if (i > 5000) {  // After warm-up.
      if (is_fraud) {
        frauds++;
        if (flagged) caught++;
      } else if (flagged) {
        false_alarms++;
      }
    }
  }

  std::printf("\n== scoring quality (after warm-up) ==\n");
  std::printf("  frauds: %d   caught: %d (%.1f%%)   false alarms: %d "
              "(%.3f%% of legit)\n",
              frauds, caught, 100.0 * caught / frauds, false_alarms,
              100.0 * false_alarms / (kTransactions - 5000 - frauds));
  std::printf("  prequential accuracy: overall %.2f%%, last-2k %.2f%%\n",
              100 * eval.OverallAccuracy(), 100 * eval.WindowAccuracy());
  if (drift_detected_at >= 0) {
    std::printf("\n== drift ==\n");
    std::printf("  fraud pattern shifted at %d; ADWIN flagged the error-rate "
                "change %d transactions later\n",
                kDriftAt, drift_detected_at - kDriftAt);
    std::printf("  the one-pass model relearned without any restart — the "
                "incremental-ML property the paper highlights\n");
  }
  return 0;
}
