// Quickstart: a ten-minute tour of streamlib's sketch layer.
//
// Streams one million Zipf-distributed events through the four workhorse
// summaries the paper's Section 2 surveys — membership (Bloom), cardinality
// (HyperLogLog), frequency (Count-Min + SpaceSaving) and quantiles
// (t-digest) — and compares every estimate against the exact answer.
//
//   ./quickstart

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "core/cardinality/hyperloglog.h"
#include "core/filtering/bloom_filter.h"
#include "core/frequency/count_min_sketch.h"
#include "core/frequency/space_saving.h"
#include "core/quantiles/tdigest.h"
#include "workload/text_stream.h"
#include "workload/zipf.h"

namespace {

constexpr uint64_t kEvents = 1000000;
constexpr uint64_t kVocabulary = 200000;

}  // namespace

int main() {
  using namespace streamlib;

  std::printf("streamlib quickstart: %llu Zipf(1.1) events over %llu keys\n\n",
              static_cast<unsigned long long>(kEvents),
              static_cast<unsigned long long>(kVocabulary));

  workload::TextStreamGenerator stream(kVocabulary, 1.1, /*seed=*/2025);

  // The summaries under demonstration.
  HyperLogLog distinct(/*precision=*/12);
  CountMinSketch counts = CountMinSketch::WithErrorBound(0.0005, 0.01);
  SpaceSaving<std::string> trending(/*capacity=*/100);
  TDigest latency(/*compression=*/100);
  BloomFilter seen = BloomFilter::WithExpectedItems(kVocabulary, 0.01);

  // Ground truth for the comparison table.
  std::map<std::string, uint64_t> exact_counts;
  std::set<std::string> exact_distinct;

  for (uint64_t i = 0; i < kEvents; i++) {
    const std::string& tag = stream.Next();
    distinct.Add(tag);
    counts.Add(tag);
    trending.Add(tag);
    seen.Add(tag);
    // Pretend each event carries a latency measurement (Zipf-shaped).
    latency.Add(1.0 + static_cast<double>(i % 997) * 0.25);

    exact_counts[tag]++;
    exact_distinct.insert(tag);
  }

  std::printf("== cardinality (HyperLogLog, p=12, %zu bytes) ==\n",
              distinct.MemoryBytes());
  std::printf("  exact distinct: %zu   estimate: %.0f   error: %+.2f%%\n\n",
              exact_distinct.size(), distinct.Estimate(),
              100.0 * (distinct.Estimate() - exact_distinct.size()) /
                  exact_distinct.size());

  std::printf("== frequency (Count-Min %u x %u, SpaceSaving k=100) ==\n",
              counts.width(), counts.depth());
  std::printf("  %-8s %10s %10s %10s\n", "tag", "exact", "cms", "spacesaving");
  for (uint64_t rank = 0; rank < 5; rank++) {
    const std::string& tag = stream.TokenForRank(rank);
    std::printf("  %-8s %10llu %10llu %10llu\n", tag.c_str(),
                static_cast<unsigned long long>(exact_counts[tag]),
                static_cast<unsigned long long>(counts.Estimate(tag)),
                static_cast<unsigned long long>(trending.Estimate(tag)));
  }

  std::printf("\n== trending top-5 (SpaceSaving) ==\n");
  for (const auto& item : trending.TopK(5)) {
    std::printf("  %-8s ~%llu (max overestimate %llu)\n", item.key.c_str(),
                static_cast<unsigned long long>(item.estimate),
                static_cast<unsigned long long>(item.error_bound));
  }

  std::printf("\n== quantiles (t-digest, %zu centroids) ==\n",
              latency.NumCentroids());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    std::printf("  p%-5g = %.2f\n", q * 100, latency.Quantile(q));
  }

  std::printf("\n== membership (Bloom, %.1f bits/key) ==\n",
              8.0 * static_cast<double>(seen.MemoryBytes()) / kVocabulary);
  uint64_t false_positives = 0;
  const uint64_t kProbes = 100000;
  for (uint64_t i = 0; i < kProbes; i++) {
    std::string unseen_key = "never-" + std::to_string(i);
    if (seen.Contains(unseen_key)) false_positives++;
  }
  std::printf("  false-positive rate on unseen keys: %.3f%% (target 1%%)\n",
              100.0 * static_cast<double>(false_positives) / kProbes);

  std::printf("\nDone. Each summary used kilobytes against a %llu-event "
              "stream.\n",
              static_cast<unsigned long long>(kEvents));
  return 0;
}
