// Network traffic accounting — three Table 1 rows on one packet stream:
//   * Hierarchical heavy hitters: which hosts AND subnets are hot
//     (Cormode et al., the "hierarchical heavy hitters" row).
//   * Basic counting (DGIM): how many SYN packets in the last N packets.
//   * Significant-one counting (Lee & Ting / Estan & Varghese): the same
//     question, cheaper, when only theta-significant windows matter.
//
//   ./network_monitor

#include <cstdio>

#include "common/random.h"
#include "core/frequency/hierarchical_heavy_hitters.h"
#include "core/windowing/exponential_histogram.h"
#include "core/windowing/significant_ones.h"
#include "workload/bit_stream.h"
#include "workload/zipf.h"

namespace {

// Renders a.b.c.d from a packed IPv4.
void PrintAddr(uint32_t addr, int bits) {
  std::printf("%u.%u.%u.%u/%d", addr >> 24, (addr >> 16) & 0xff,
              (addr >> 8) & 0xff, addr & 0xff, bits);
}

}  // namespace

int main() {
  using namespace streamlib;

  constexpr uint64_t kPackets = 2000000;
  constexpr uint64_t kWindow = 1 << 16;

  // Synthetic traffic: a hot /24 (10.1.7.0/24 spread over hosts), one hot
  // single host (192.168.3.9), and heavy-tailed background.
  Rng rng(31);
  workload::ZipfGenerator background(1 << 20, 1.05, 33);
  workload::BurstyBitStream syn_bits(0.8, 0.02, 0.001, 0.02, 35);

  HierarchicalHeavyHitters hhh(/*counters_per_level=*/512);
  ExponentialHistogram syn_window(kWindow, /*k=*/16);
  SignificantOneCounter syn_significant(kWindow, /*theta=*/0.2, /*eps=*/0.1);

  std::printf("monitoring %llu packets...\n",
              static_cast<unsigned long long>(kPackets));

  uint64_t exact_recent_syns = 0;  // Rolling exact count via simple ring.
  std::vector<bool> ring(kWindow, false);
  uint64_t pos = 0;

  for (uint64_t i = 0; i < kPackets; i++) {
    uint32_t src;
    const double dice = rng.NextDouble();
    if (dice < 0.15) {
      // Hot subnet: 10.1.7.0/24.
      src = (10u << 24) | (1u << 16) | (7u << 8) |
            static_cast<uint32_t>(rng.NextBounded(256));
    } else if (dice < 0.22) {
      // Hot host.
      src = (192u << 24) | (168u << 16) | (3u << 8) | 9u;
    } else {
      src = static_cast<uint32_t>((background.Next() + 1) * 2654435761u);
    }
    hhh.Add(src);

    const bool syn = syn_bits.Next();
    syn_window.Add(syn);
    syn_significant.Add(syn);
    const size_t slot = pos % kWindow;
    if (pos >= kWindow && ring[slot]) exact_recent_syns--;
    ring[slot] = syn;
    if (syn) exact_recent_syns++;
    pos++;
  }

  const uint64_t threshold = kPackets / 20;  // 5% of traffic.
  std::printf("\n== hierarchical heavy hitters (>= 5%% of traffic) ==\n");
  for (const auto& r : hhh.Query(threshold)) {
    std::printf("  ");
    PrintAddr(r.prefix, r.prefix_bits);
    std::printf("  total ~%llu  own-traffic ~%llu\n",
                static_cast<unsigned long long>(r.count),
                static_cast<unsigned long long>(r.conditioned));
  }

  std::printf("\n== SYN flood watch: 1s in the last %llu packets ==\n",
              static_cast<unsigned long long>(kWindow));
  std::printf("  exact:                 %llu\n",
              static_cast<unsigned long long>(exact_recent_syns));
  std::printf("  DGIM (%3zu buckets):    %llu\n", syn_window.NumBuckets(),
              static_cast<unsigned long long>(syn_window.Estimate()));
  std::printf("  significant-ones (%2zu buckets): %llu  significant=%s\n",
              syn_significant.NumBuckets(),
              static_cast<unsigned long long>(syn_significant.Estimate()),
              syn_significant.IsSignificant() ? "yes" : "no");
  std::printf("\n  (the significant-one counter holds %.1fx fewer buckets "
              "for the same decision)\n",
              static_cast<double>(syn_window.NumBuckets()) /
                  static_cast<double>(syn_significant.NumBuckets()));
  return 0;
}
