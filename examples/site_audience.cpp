// Site-audience analytics on the Lambda Architecture (Figure 1).
//
// A click stream (user, page) flows into the pipeline; dashboards ask
// three questions the paper's site-audience application needs answered in
// real time:
//   * how many clicks did page P get (total)?
//   * what are the top pages right now?
//   * how many distinct users visited today?
//
// The batch layer periodically recomputes exact views over the immutable
// master log; between batches the speed layer's sketches cover the gap.
// The example prints both the merged answers and the exact ground truth so
// the approximation cost of the speed layer is visible.
//
//   ./site_audience

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "lambda/lambda_pipeline.h"
#include "workload/zipf.h"

int main() {
  using namespace streamlib;

  constexpr uint64_t kClicks = 300000;
  constexpr uint64_t kPages = 2000;
  constexpr uint64_t kUsers = 50000;

  lambda::LambdaConfig config;
  config.batch_interval_records = 50000;  // Batch every 50k clicks.
  lambda::LambdaPipeline pipeline(config);

  workload::ZipfGenerator page_picker(kPages, 1.3, 11);
  workload::ZipfGenerator user_picker(kUsers, 0.8, 13);

  std::map<std::string, double> exact_clicks;
  std::set<uint64_t> exact_users;

  std::printf("ingesting %llu clicks (%llu pages, %llu users), batch every "
              "%llu records...\n",
              static_cast<unsigned long long>(kClicks),
              static_cast<unsigned long long>(kPages),
              static_cast<unsigned long long>(kUsers),
              static_cast<unsigned long long>(config.batch_interval_records));

  for (uint64_t i = 0; i < kClicks; i++) {
    const uint64_t page = page_picker.Next();
    const uint64_t user = user_picker.Next();
    const std::string page_key = "page" + std::to_string(page);

    // Two event families share the log: page clicks and user visits.
    pipeline.Ingest(static_cast<int64_t>(i), page_key, 1.0);
    pipeline.Ingest(static_cast<int64_t>(i),
                    "user" + std::to_string(user), 1.0);

    exact_clicks[page_key] += 1.0;
    exact_users.insert(user);
  }

  std::printf("\nbatch recomputes run: %llu; records awaiting next batch: "
              "%llu\n",
              static_cast<unsigned long long>(pipeline.batch_recomputes()),
              static_cast<unsigned long long>(pipeline.SpeedSuffixLength()));

  std::printf("\n== per-page totals (merged batch + speed vs exact) ==\n");
  std::printf("  %-8s %12s %12s\n", "page", "merged", "exact");
  for (uint64_t rank = 0; rank < 5; rank++) {
    const std::string key = "page" + std::to_string(rank);
    std::printf("  %-8s %12.0f %12.0f\n", key.c_str(),
                pipeline.QueryTotal(key), exact_clicks[key]);
  }

  std::printf("\n== top pages (merged) ==\n");
  for (const auto& [page, total] : pipeline.QueryTopK(5)) {
    if (page.rfind("page", 0) != 0) continue;  // Skip user keys.
    std::printf("  %-8s %.0f clicks\n", page.c_str(), total);
  }

  // Distinct *keys* include pages and users; subtract the page count for a
  // distinct-visitor figure (pages are few and all present).
  const double distinct_keys = pipeline.QueryDistinctKeys();
  std::printf("\n== audience ==\n");
  std::printf("  distinct visitors (est): %.0f    exact: %zu\n",
              distinct_keys - static_cast<double>(exact_clicks.size()),
              exact_users.size());

  std::printf("\nThe master log retains all %llu immutable events; rerun "
              "analytics any time by replaying it.\n",
              static_cast<unsigned long long>(pipeline.log().size()));
  return 0;
}
