// Site-audience analytics on the Lambda Architecture (Figure 1), served to
// multiple tenants through the snapshot-isolated query front-end
// (DESIGN.md §14).
//
// A click stream (user, page) flows into the pipeline on a writer thread
// while three dashboard tenants query it live:
//   * "dashboard" — unmetered internal dashboards asking for page totals
//     and the top pages;
//   * "partner"   — an external partner on a 2000 qps token-bucket quota;
//   * "audit"     — occasional distinct-visitor audits.
// Every answer comes from one immutable (batch view, speed view) snapshot:
// readers never block ingest, ingest never tears an answer, over-quota
// queries are rejected with a typed status instead of queueing unboundedly.
//
// After the stream drains, the example prints merged answers vs the exact
// ground truth plus the front-end's per-tenant accounting table.
//
//   ./site_audience

#include <atomic>
#include <cstdio>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lambda/lambda_pipeline.h"
#include "lambda/query_frontend.h"
#include "platform/telemetry.h"
#include "workload/zipf.h"

int main() {
  using namespace streamlib;
  using lambda::QueryKind;
  using lambda::QueryRequest;
  using lambda::QueryResponse;

  constexpr uint64_t kClicks = 300000;
  constexpr uint64_t kPages = 2000;
  constexpr uint64_t kUsers = 50000;

  lambda::LambdaConfig config;
  config.batch_interval_records = 50000;  // Batch every 50k clicks.
  lambda::LambdaPipeline pipeline(config);

  lambda::QueryFrontendConfig fe_config;
  fe_config.workers = 2;
  lambda::QueryFrontend frontend(&pipeline.serving(), fe_config);
  // The partner tenant is metered; dashboards and audits are not.
  frontend.RegisterTenant("partner", {2000.0, 32.0});
  frontend.Start();

  workload::ZipfGenerator page_picker(kPages, 1.3, 11);
  workload::ZipfGenerator user_picker(kUsers, 0.8, 13);

  std::map<std::string, double> exact_clicks;
  std::set<uint64_t> exact_users;

  std::printf("ingesting %llu clicks (%llu pages, %llu users), batch every "
              "%llu records, 3 tenants querying live...\n",
              static_cast<unsigned long long>(kClicks),
              static_cast<unsigned long long>(kPages),
              static_cast<unsigned long long>(kUsers),
              static_cast<unsigned long long>(config.batch_interval_records));

  // Writer: the click stream. Ground truth is tracked inline (single
  // writer, so the maps need no locking).
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < kClicks; i++) {
      const uint64_t page = page_picker.Next();
      const uint64_t user = user_picker.Next();
      const std::string page_key = "page" + std::to_string(page);

      // Two event families share the log: page clicks and user visits.
      pipeline.Ingest(static_cast<int64_t>(i), page_key, 1.0);
      pipeline.Ingest(static_cast<int64_t>(i),
                      "user" + std::to_string(user), 1.0);

      exact_clicks[page_key] += 1.0;
      exact_users.insert(user);
    }
    done.store(true, std::memory_order_release);
  });

  // Tenants: each queries the stream while it runs. All answers are
  // internally consistent snapshots no matter how the writer races.
  std::thread dashboard([&] {
    QueryRequest request;
    request.tenant = "dashboard";
    uint64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (i++ % 4 == 3) {
        request.kind = QueryKind::kTopK;
        request.k = 5;
      } else {
        request.kind = QueryKind::kTotal;
        request.key = "page" + std::to_string(i % 10);
      }
      frontend.Query(request);
    }
  });
  std::thread partner([&] {
    QueryRequest request;
    request.tenant = "partner";
    request.kind = QueryKind::kTotal;
    uint64_t rejected = 0;
    while (!done.load(std::memory_order_acquire)) {
      request.key = "page" + std::to_string(rejected % 3);
      Result<QueryResponse> r = frontend.Query(request);
      if (!r.ok()) {
        // Over quota: typed, synchronous rejection — back off and retry,
        // like a well-behaved client.
        rejected++;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
  std::thread audit([&] {
    QueryRequest request;
    request.tenant = "audit";
    request.kind = QueryKind::kDistinctKeys;
    while (!done.load(std::memory_order_acquire)) {
      frontend.Query(request);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  writer.join();
  dashboard.join();
  partner.join();
  audit.join();
  // Everything ingested, nothing published yet past the last interval:
  // force a fresh snapshot so the final answers cover the whole stream.
  pipeline.PublishSpeedSnapshot();

  std::printf("\nbatch recomputes run: %llu; records awaiting next batch: "
              "%llu\n",
              static_cast<unsigned long long>(pipeline.batch_recomputes()),
              static_cast<unsigned long long>(pipeline.SpeedSuffixLength()));

  std::printf("\n== per-page totals (merged batch + speed vs exact) ==\n");
  std::printf("  %-8s %12s %12s\n", "page", "merged", "exact");
  QueryRequest request;
  request.tenant = "dashboard";
  request.kind = QueryKind::kTotal;
  for (uint64_t rank = 0; rank < 5; rank++) {
    request.key = "page" + std::to_string(rank);
    Result<QueryResponse> r = frontend.Query(request);
    std::printf("  %-8s %12.0f %12.0f\n", request.key.c_str(),
                r.ok() ? r.value().value : 0.0, exact_clicks[request.key]);
  }

  std::printf("\n== top pages (merged) ==\n");
  request.kind = QueryKind::kTopK;
  request.k = 5;
  Result<QueryResponse> top = frontend.Query(request);
  if (top.ok()) {
    for (const auto& [page, total] : top.value().topk) {
      if (page.rfind("page", 0) != 0) continue;  // Skip user keys.
      std::printf("  %-8s %.0f clicks\n", page.c_str(), total);
    }
  }

  // Distinct *keys* include pages and users; subtract the page count for a
  // distinct-visitor figure (pages are few and all present).
  request.kind = QueryKind::kDistinctKeys;
  Result<QueryResponse> distinct = frontend.Query(request);
  std::printf("\n== audience ==\n");
  std::printf("  distinct visitors (est): %.0f    exact: %zu\n",
              (distinct.ok() ? distinct.value().value : 0.0) -
                  static_cast<double>(exact_clicks.size()),
              exact_users.size());

  // The front-end's per-tenant accounting — the "serving" section of the
  // telemetry JSON schema, as a table.
  frontend.Stop();
  platform::TelemetryReport report;
  frontend.FillTelemetry(&report);
  std::printf("\n");
  std::fflush(stdout);
  report.WriteTable(std::cout);
  return 0;
}
